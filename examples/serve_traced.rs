//! Observability tour: structured tracing, per-query profiles and
//! Prometheus-style metrics over the serving subsystem.
//!
//! Installs an in-memory trace collector, serves a handful of
//! concurrent requests (with an artificial execution delay so
//! coalescing is visible), then prints:
//!
//! 1. the leader's span tree — admission on the client thread, the
//!    execution span on a worker thread, the cube build inside it;
//! 2. a coalesced follower's span with its `link_trace` back to the
//!    leader;
//! 3. the `EXPLAIN ANALYZE`-style query profile attached to the
//!    outcome;
//! 4. the unified metrics registry in Prometheus exposition format;
//! 5. the same trace as JSONL, ready for offline analysis.
//!
//! Run with: `cargo run --example serve_traced`
//!
//! Tracing is off by default (one relaxed atomic load per would-be
//! span); everything below starts with `obs::install`.

use dd_dgms::DdDgms;
use discri::{generate, CohortConfig};
use obs::{render_trace, RingCollector};
use serve::{QueryRequest, ServeConfig, ServedSource};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

const FIG5: &str = "SELECT [Gender].MEMBERS ON COLUMNS, [Age_SubGroup].MEMBERS ON ROWS \
                    FROM [Medical Measures] WHERE [DiabetesStatus] = 'yes' \
                    MEASURE COUNT(DISTINCT [PatientId])";

fn main() -> clinical_types::Result<()> {
    // 1. Install the subscriber. Until this line every span is inert.
    let collector = Arc::new(RingCollector::new(4096));
    obs::install(collector.clone());

    let cohort = generate(&CohortConfig::small(7));
    let system = DdDgms::from_raw_attendances(&cohort.attendances)?;
    let service = system
        .serve(ServeConfig {
            workers: 1,
            // Slow executions down so concurrent identical queries
            // visibly coalesce onto one leader.
            execution_delay: Some(Duration::from_millis(25)),
            ..ServeConfig::default()
        })
        .expect("workers spawn");

    // 2. Four clients fire the same query at once: one leads, the
    // rest coalesce onto its in-flight execution.
    let request = QueryRequest::Mdx(FIG5.into());
    thread::scope(|s| {
        for _ in 0..4 {
            let service = &service;
            let request = &request;
            s.spawn(move || service.execute(request).expect("serve"));
        }
    });

    // 3. A warm repeat: served from the epoch-keyed cache, carrying
    // the profile of the execution that produced it.
    let warm = service.execute(&request).expect("warm serve");
    assert_eq!(warm.source, ServedSource::Cache);

    let spans = collector.spans();
    let leader = spans
        .iter()
        .find(|s| s.name == "serve.request" && s.field("source") == Some("executed"))
        .expect("leader span");
    println!("=== leader trace (trace id {}) ===", leader.trace.0);
    print!("{}", render_trace(&spans, leader.trace));

    if let Some(follower) = spans
        .iter()
        .find(|s| s.name == "serve.request" && s.field("source") == Some("coalesced"))
    {
        println!(
            "\n=== coalesced follower (trace id {}) ===",
            follower.trace.0
        );
        print!("{}", render_trace(&spans, follower.trace));
        println!(
            "links to leader: link_trace={} link_span={}",
            follower.field("link_trace").unwrap_or("?"),
            follower.field("link_span").unwrap_or("?"),
        );
    }

    println!("\n=== query profile (attached to the cached outcome) ===");
    println!("{}", warm.value.profile);

    println!("=== metrics (Prometheus exposition, excerpt) ===");
    for line in service
        .metrics_text()
        .lines()
        .filter(|l| !l.starts_with('#'))
        .take(12)
    {
        println!("{line}");
    }

    println!("\n=== the same trace as JSONL (first 3 records) ===");
    for line in collector.to_jsonl().lines().take(3) {
        println!("{line}");
    }

    service.shutdown();
    obs::uninstall();
    Ok(())
}
