//! Quickstart: the whole DD-DGMS closed loop in one run (paper Fig. 2).
//!
//! Generates the synthetic DiScRi cohort, builds the system (ETL →
//! warehouse), runs one guidance cycle (learn → predict → optimise →
//! acquire) and prints what each architecture component produced.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dd_dgms::DdDgms;
use discri::{generate, CohortConfig};

fn main() -> clinical_types::Result<()> {
    println!("== DD-DGMS quickstart =====================================");
    println!("Generating the synthetic DiScRi cohort (seed 42)…");
    let cohort = generate(&CohortConfig::default());
    println!(
        "  {} patients, {} attendances, {} attributes",
        cohort.patients.len(),
        cohort.n_attendances(),
        cohort.attendances.schema().len()
    );

    println!("\n-- Data Transformation + Warehouse ------------------------");
    let mut system = DdDgms::from_raw_attendances(&cohort.attendances)?;
    let report = system.pipeline_report();
    println!(
        "  cleaned: {} rows in, {} kept, {} cells nulled ({} generic)",
        report.cleaning.rows_in,
        report.cleaning.rows_out,
        report.cleaning.cells_nulled,
        report.cleaning.cells_nulled_generic
    );
    println!(
        "  cardinality: {} patients, mean {:.1} visits, max {}",
        report.cardinality.n_patients,
        report.cardinality.mean_visits,
        report.cardinality.max_visits
    );
    println!("  derived bands: {}", report.bands.len());
    println!(
        "  warehouse: {} facts across {} dimensions ({} distinct dimension tuples)",
        system.warehouse().n_facts(),
        system.warehouse().dimensions().len(),
        system.warehouse().total_dimension_tuples()
    );

    println!("\n-- Reporting (OLAP) ---------------------------------------");
    let pivot = system
        .query()
        .on_rows("Age_Band")
        .on_columns("Gender")
        .where_equals("DiabetesStatus", "yes")
        .count()
        .execute()?;
    println!("Diabetic attendances by age group and gender:");
    print!("{}", pivot.render());

    println!("\n-- Guidance cycle: learn → predict → optimise → acquire ---");
    let cycle = system.run_guidance_cycle()?;
    println!("Learned interactions (AWSum):");
    for i in cycle.interactions.iter().take(3) {
        println!(
            "  {}={} & {}={} → {}  (joint {:.2}, best single {:.2}, n={})",
            i.feature_a,
            i.value_a,
            i.feature_b,
            i.value_b,
            i.class,
            i.joint_confidence,
            i.best_single_confidence,
            i.support
        );
    }
    println!("Association rules:");
    for r in cycle.rules.iter().take(3) {
        println!("  {r}");
    }
    println!(
        "Prediction: Markov {:.0}% | similar-patient {:.0}% | baseline {:.0}%  (n={})",
        cycle.prediction.markov_accuracy * 100.0,
        cycle.prediction.similar_accuracy * 100.0,
        cycle.prediction.baseline_accuracy * 100.0,
        cycle.prediction.n_evaluated
    );
    println!(
        "Optimisation: top FBG band {:?} is {:.0}% consistent under perturbation",
        cycle.robustness.top_cell,
        cycle.robustness.consistency() * 100.0
    );
    println!(
        "Optimal regimen within budget: {} (risk {:.2}, cost {})",
        cycle.regimen.regimen.describe(),
        cycle.regimen.risk,
        cycle.regimen.annual_cost
    );

    println!("\n-- Knowledge Base -----------------------------------------");
    println!("  {} findings recorded this cycle", cycle.findings_recorded);
    for f in system.knowledge_base().by_tag("interaction").iter().take(2) {
        println!("  {}", f.describe());
    }

    println!("\nClosed loop complete: the warehouse now carries a");
    println!("`Clinician Feedback` dimension with the predicted next FBG band.");
    Ok(())
}
