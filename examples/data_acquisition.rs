//! The fourth DGMS phase: data-acquisition queries as feedback.
//!
//! §IV: *"in the final phase data acquisition queries are used as
//! feedback to reduce ambiguity of decisions"* — and the paper's own
//! §V example: the Ewing hand-grip test cannot be administered to many
//! elderly patients, so the architecture should point the clinic at
//! the measurements whose absence hurts decisions most and generate
//! the "more refined and better informed test plans" the conclusion
//! promises.
//!
//! ```text
//! cargo run --release --example data_acquisition
//! ```

use dd_dgms::{acquisition_queries, attribute_gaps, DdDgms};
use discri::{generate, CohortConfig};
use predict::extract_trajectories;
use viz::{sparkline, state_timeline};

fn main() -> clinical_types::Result<()> {
    let cohort = generate(&CohortConfig::default());
    let system = DdDgms::from_raw_attendances(&cohort.attendances)?;
    let table = system.transformed();

    println!("== Attribute gaps: information × missingness ==============");
    let candidates = [
        "FBG_Band",
        "HbA1c_Band",
        "AnkleReflexRight",
        "KneeReflexRight",
        "SDNN_Band",
        "QTc_Band",
        "BMI_Band",
    ];
    let gaps = attribute_gaps(table, &candidates, "DiabetesStatus")?;
    println!(
        "{:<20} {:>8} {:>9} {:>8}",
        "attribute", "MI(bits)", "missing%", "score"
    );
    for g in &gaps {
        println!(
            "{:<20} {:>8.3} {:>8.1}% {:>8.4}",
            g.attribute,
            g.information,
            g.missing_rate * 100.0,
            g.score
        );
    }

    println!("\n== Test plan: patients to re-measure next attendance ======");
    let plan = acquisition_queries(table, &candidates, "DiabetesStatus", 2)?;
    println!("{} acquisition queries generated; first ten:", plan.len());
    for q in plan.iter().take(10) {
        println!(
            "  re-measure {:<18} for patient {}",
            q.attribute, q.patient_id
        );
    }

    println!("\n== Context for the clinician: trajectories of plan patients");
    let trajectories = extract_trajectories(table, "PatientId", "TestDate", "FBG_Band")?;
    let mut shown = 0;
    for q in &plan {
        if shown >= 5 {
            break;
        }
        if let Some(t) = trajectories.iter().find(|t| t.patient_id == q.patient_id) {
            if t.len() < 2 {
                continue;
            }
            // Numeric FBG sparkline next to the qualitative timeline.
            let fbg: Vec<Option<f64>> = table
                .rows()
                .iter()
                .filter(|r| r[0].as_i64() == Some(q.patient_id))
                .map(|r| {
                    table
                        .schema()
                        .index_of("FBG")
                        .ok()
                        .and_then(|i| r[i].as_f64())
                })
                .collect();
            println!(
                "  patient {:<4} FBG {}  {}",
                q.patient_id,
                sparkline(&fbg)?,
                state_timeline(&t.states, true)
            );
            shown += 1;
        }
    }

    println!("\nThese queries feed the next screening round — closing the");
    println!("loop back to Data Transformation, as Fig. 2 draws it.");
    Ok(())
}
