//! Fig. 4: "drag and drop" query construction.
//!
//! The paper's screenshot shows Microsoft BI Studio with *family
//! history of diabetes by age group and by gender* composed by
//! dragging attributes into the query area. This example reproduces
//! the interaction with the programmatic [`olap::QueryBuilder`] and
//! the equivalent MDX, then demonstrates drag-out (remove) and
//! drill-down, exactly the operations the figure caption describes.
//!
//! ```text
//! cargo run --release --example fig4_query_builder
//! ```

use dd_dgms::DdDgms;
use discri::{generate, CohortConfig};

fn main() -> clinical_types::Result<()> {
    let cohort = generate(&CohortConfig::default());
    let system = DdDgms::from_raw_attendances(&cohort.attendances)?;

    println!("== Fig. 4: family history of diabetes by age group & gender");
    println!("(drag Age_Band to rows, Gender to columns, slice on");
    println!(" FamilyHistoryDiabetes = true, measure COUNT)\n");
    let pivot = system
        .query()
        .on_rows("Age_Band")
        .on_columns("Gender")
        .where_equals("FamilyHistoryDiabetes", true)
        .count()
        .execute()?;
    print!("{}", pivot.render());

    println!("\nThe same query in MDX:");
    let mdx = "SELECT [Gender].MEMBERS ON COLUMNS, [Age_Band].MEMBERS ON ROWS \
               FROM [Medical Measures] MEASURE COUNT(*)";
    println!("  {mdx}\n");
    let all = system.mdx(mdx)?;
    print!("{}", all.render());

    println!("\nDrag another attribute in (DiabetesStatus on rows too):");
    let multi = system
        .query()
        .on_rows("Age_Band")
        .on_rows("DiabetesStatus")
        .on_columns("Gender")
        .count()
        .execute()?;
    print!("{}", multi.render());

    println!("\nDrill-down: Age_Band → Age_SubGroup (hierarchy walk):");
    let fine = system
        .query()
        .on_rows("Age_Band")
        .on_columns("Gender")
        .where_equals("FamilyHistoryDiabetes", true)
        .count()
        .drill_down("Age_Band")?
        .execute()?;
    print!("{}", fine.render());

    let coarse_total: f64 = pivot.row_totals().iter().sum();
    let fine_total: f64 = fine.row_totals().iter().sum();
    println!("\nTotals preserved across granularity: coarse {coarse_total} = fine {fine_total}");
    Ok(())
}
