//! §II / §V insight: "the absence of reflex in the knees and ankles
//! together with a mid-range glucose reading was unexpectedly highly
//! predictive of diabetes" (found with AWSum, paper reference [9]).
//!
//! The synthetic cohort embeds that interaction via a latent
//! sub-clinical neuropathy plus medication-controlled glucose; this
//! example rediscovers it through two independent analytics channels —
//! the AWSum interaction miner and Apriori association rules — exactly
//! the knowledge-acquisition workflow the paper motivates.
//!
//! ```text
//! cargo run --release --example insight_reflex_glucose
//! ```

use dd_dgms::DdDgms;
use discri::{generate, CohortConfig};
use mining::{Apriori, AwSum, DatasetBuilder, NaiveBayes};

fn main() -> clinical_types::Result<()> {
    let cohort = generate(&CohortConfig::default());
    let system = DdDgms::from_raw_attendances(&cohort.attendances)?;
    let table = system.transformed();

    println!("== Channel 1: AWSum influence + interaction mining ========");
    let features = vec![
        "KneeReflexRight",
        "KneeReflexLeft",
        "AnkleReflexRight",
        "AnkleReflexLeft",
        "FBG_Band",
        "Age_Band",
        "Gender",
        "FootPulses",
    ];
    let dataset = DatasetBuilder::new(features, "DiabetesStatus").build(table)?;
    let awsum = AwSum::fit(&dataset)?;
    let yes = dataset
        .class_labels
        .iter()
        .position(|c| c == "yes")
        .expect("diabetic class present");

    println!("strongest single-value influences toward diabetes:");
    for (feature, value, p) in awsum.top_influences(yes, 6) {
        println!("  P(diabetes | {feature}={value}) = {p:.2}");
    }

    println!("\nsurprising value-pair interactions (joint ≫ best single):");
    let interactions = awsum.top_interactions(&dataset, yes, 25, 8)?;
    let mut reflex_glucose_found = false;
    for i in &interactions {
        let is_reflex_glucose = (i.feature_a.contains("Reflex") && i.feature_b == "FBG_Band")
            || (i.feature_b.contains("Reflex") && i.feature_a == "FBG_Band");
        if is_reflex_glucose
            && (i.value_a == "absent" || i.value_b == "absent")
            && (i.value_a == "preDiabetic"
                || i.value_b == "preDiabetic"
                || i.value_a == "high"
                || i.value_b == "high")
        {
            reflex_glucose_found = true;
        }
        println!(
            "  {}={} & {}={} → {}  joint {:.2} vs single {:.2} (n={}){}",
            i.feature_a,
            i.value_a,
            i.feature_b,
            i.value_b,
            i.class,
            i.joint_confidence,
            i.best_single_confidence,
            i.support,
            if is_reflex_glucose {
                "   ← the paper's insight"
            } else {
                ""
            }
        );
    }

    println!("\n== Channel 2: Apriori association rules ===================");
    let rule_features = vec![
        "AnkleReflexRight",
        "KneeReflexRight",
        "FBG_Band",
        "DiabetesStatus",
    ];
    let rule_data = DatasetBuilder::new(rule_features, "DiabetesStatus").build(table)?;
    let status = rule_data
        .features
        .iter()
        .position(|f| f.name == "DiabetesStatus")
        .expect("class inlined");
    let rules = Apriori::new(table.len() / 40, 0.7, 3).rules(&rule_data, Some(status))?;
    for r in rules.iter().take(6) {
        println!("  {}", r.describe(&rule_data));
    }

    println!("\n== Cross-check: does the pair add signal? =================");
    // Classifier with vs without the limb-health features.
    let with = NaiveBayes::fit(&dataset)?;
    let acc_with = mining::accuracy(&dataset.classes, &with.predict_all(&dataset)?)?;
    let reduced = dataset.select_features(&[4, 5, 6])?; // FBG, age, gender only
    let without = NaiveBayes::fit(&reduced)?;
    let acc_without = mining::accuracy(&reduced.classes, &without.predict_all(&reduced)?)?;
    println!("naive Bayes accuracy with reflex features:    {acc_with:.3}");
    println!("naive Bayes accuracy without reflex features: {acc_without:.3}");

    println!(
        "\npaper's reflex+glucose interaction: {}",
        if reflex_glucose_found {
            "REPRODUCED (surfaced by AWSum interaction mining)"
        } else {
            "NOT reproduced in this run"
        }
    );
    Ok(())
}
