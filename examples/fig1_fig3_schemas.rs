//! Figs. 1 and 3: the paper's two dimensional models, constructed and
//! printed, then the Fig. 3 model loaded with the synthetic cohort.
//!
//! ```text
//! cargo run --release --example fig1_fig3_schemas
//! ```

use discri::{generate, CohortConfig};
use etl::TransformPipeline;
use warehouse::{discri_model, fig1_model, LoadPlan, Warehouse};

fn main() -> clinical_types::Result<()> {
    println!("== Fig. 1: generic Clinical Data Warehouse model ==========");
    print!("{}", fig1_model().describe());

    println!("\n== Fig. 3: the DiScRi trial model =========================");
    print!("{}", discri_model().describe());

    println!("\n== Loading the Fig. 3 model ================================");
    let cohort = generate(&CohortConfig::small(42));
    let (table, _) = TransformPipeline::discri_default().run(&cohort.attendances)?;
    let wh = Warehouse::load(&LoadPlan::discri_default(), &table)?;
    println!("facts: {}", wh.n_facts());
    for d in wh.dimensions() {
        println!(
            "  dimension {:<22} {:>5} distinct tuples × {} attributes",
            d.name,
            d.len(),
            d.attributes.len()
        );
    }
    println!(
        "dictionary encoding: {} tuples total vs {} fact rows × {} dimensions",
        wh.total_dimension_tuples(),
        wh.n_facts(),
        wh.dimensions().len()
    );
    Ok(())
}
