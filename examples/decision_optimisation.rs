//! §IV Decision Optimisation — both halves:
//!
//! 1. **Aggregate robustness** (operational): validate a reported
//!    aggregate by re-ranking it while control dimensions are added
//!    and removed ("optimal aggregates would be consistent regardless
//!    of the changes to dimensions").
//! 2. **Regimen optimisation** (strategic): pick the treatment regimen
//!    with the best empirical outcome within an annual budget.
//!
//! ```text
//! cargo run --release --example decision_optimisation
//! ```

use dd_dgms::{DdDgms, StrategicView};
use discri::{generate, CohortConfig};
use olap::CubeSpec;
use optimize::{validate_aggregate, RegimenOptimiser};

fn main() -> clinical_types::Result<()> {
    let cohort = generate(&CohortConfig::default());
    let system = DdDgms::from_raw_attendances(&cohort.attendances)?;
    let wh = system.warehouse();

    println!("== Robustness of the dominant FBG band ====================");
    let report = validate_aggregate(
        wh,
        &CubeSpec::count(vec!["FBG_Band"]),
        &["Gender", "VisitKind", "Age_Band"],
        2,
    )?;
    println!(
        "top aggregate: FBG band {:?} with {} attendances",
        report.top_cell, report.top_value
    );
    println!(
        "perturbations: {} | still top: {} | within top-2: {}",
        report.total_perturbations, report.consistent, report.near_consistent
    );
    for (description, top) in report.details.iter().take(8) {
        println!("  under {description:<28} top = {top:?}");
    }
    println!(
        "verdict: {} ({:.0}% consistency)",
        if report.is_robust(0.8) {
            "ROBUST"
        } else {
            "FRAGILE"
        },
        report.consistency() * 100.0
    );

    println!("\n== Strategic regimen optimisation =========================");
    let optimiser = RegimenOptimiser::default();
    println!(
        "cost model: medication {}/yr, exercise bands {:?}, budget {}",
        optimiser.medication_cost, optimiser.exercise_costs, optimiser.budget
    );
    println!("\nempirical outcomes among diabetic attendances:");
    println!(
        "{:<38} {:>6} {:>8} {:>9}",
        "regimen", "risk", "cost", "support"
    );
    for o in optimiser.outcomes(wh)? {
        println!(
            "{:<38} {:>6.2} {:>8.0} {:>9}",
            o.regimen.describe(),
            o.risk,
            o.annual_cost,
            o.support
        );
    }
    let best = optimiser.optimise(wh)?;
    println!(
        "\noptimal within budget: {} (risk {:.2}, cost {})",
        best.regimen.describe(),
        best.risk,
        best.annual_cost
    );

    println!("\n== Same question through the strategic view ===============");
    let strat = StrategicView::new(&system);
    for budget in [200.0, 700.0, 1000.0] {
        match strat.optimise_regimen(budget) {
            Ok(o) => println!(
                "budget {budget:>6}: {} (risk {:.2})",
                o.regimen.describe(),
                o.risk
            ),
            Err(e) => println!("budget {budget:>6}: {e}"),
        }
    }
    Ok(())
}
