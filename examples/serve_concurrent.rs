//! Concurrent serving: many clinicians, one warehouse.
//!
//! DiScRi's warehouse serves clinicians, researchers and students at
//! once (§IV). This example stands up the serving subsystem over a
//! synthetic cohort and hammers it from eight client threads mixing
//! the paper's reporting queries, then mutates the warehouse (a
//! clinician feedback dimension) mid-stream to show epoch-driven
//! cache invalidation, and finally prints the service metrics.
//!
//! Run with: `cargo run --example serve_concurrent`

use dd_dgms::DdDgms;
use discri::{generate, CohortConfig};
use serve::{QueryRequest, ReportSpec, ServeConfig, ServedSource};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;
use std::thread;

fn main() -> clinical_types::Result<()> {
    let cohort = generate(&CohortConfig::small(7));
    let system = DdDgms::from_raw_attendances(&cohort.attendances)?;
    let service = system
        .serve(ServeConfig {
            workers: 4,
            queue_depth: 64,
            ..ServeConfig::default()
        })
        .expect("workers spawn");

    // The query mix: Fig. 5's distribution (MDX), a Fig. 4-style
    // report, and a cube materialisation.
    let requests = vec![
        QueryRequest::Mdx(
            "SELECT [Gender].MEMBERS ON COLUMNS, [Age_SubGroup].MEMBERS ON ROWS \
             FROM [Medical Measures] WHERE [DiabetesStatus] = 'yes' \
             MEASURE COUNT(DISTINCT [PatientId])"
                .into(),
        ),
        QueryRequest::Report(
            ReportSpec::new()
                .on_rows("FBG_Band")
                .on_columns("Gender")
                .count(),
        ),
        QueryRequest::Cube(olap::CubeSpec::count(vec!["Age_Band", "DiabetesStatus"])),
    ];

    const CLIENTS: usize = 8;
    const ROUNDS: usize = 24;
    let executed = AtomicU64::new(0);
    let from_cache = AtomicU64::new(0);
    let coalesced = AtomicU64::new(0);
    // Clients pause at the halfway barrier while the clinician's
    // mutation lands, then resume against the new data epoch.
    let halfway = Barrier::new(CLIENTS + 1);
    let resumed = Barrier::new(CLIENTS + 1);

    println!("serving {CLIENTS} clients × {ROUNDS} requests over 4 workers…");
    thread::scope(|s| {
        for client in 0..CLIENTS {
            let service = &service;
            let requests = &requests;
            let (executed, from_cache, coalesced) = (&executed, &from_cache, &coalesced);
            let (halfway, resumed) = (&halfway, &resumed);
            s.spawn(move || {
                for round in 0..ROUNDS {
                    if round == ROUNDS / 2 {
                        halfway.wait();
                        resumed.wait();
                    }
                    let request = &requests[(client + round) % requests.len()];
                    match service.execute(request) {
                        Ok(served) => {
                            match served.source {
                                ServedSource::Executed => executed.fetch_add(1, Ordering::Relaxed),
                                ServedSource::Cache => from_cache.fetch_add(1, Ordering::Relaxed),
                                ServedSource::Coalesced => {
                                    coalesced.fetch_add(1, Ordering::Relaxed)
                                }
                            };
                        }
                        Err(e) => println!("client {client}: {e}"),
                    }
                }
            });
        }

        // Midway, a clinician reviews FBG bands and labels rows — the
        // mutation bumps the data epoch and invalidates every cached
        // result, forcing a second wave of executions.
        let service = &service;
        let (halfway, resumed) = (&halfway, &resumed);
        s.spawn(move || {
            halfway.wait();
            let labels = service.with_warehouse(|wh| {
                wh.attribute_column("FBG_Band")
                    .expect("FBG_Band column")
                    .into_iter()
                    .map(|band| clinical_types::Value::from(band.as_str() == Some("Diabetic")))
                    .collect::<Vec<_>>()
            });
            let before = service.epoch();
            service
                .add_feedback_dimension("Clinician Review", "NeedsFollowUp", labels)
                .expect("feedback dimension");
            println!(
                "mutation: feedback dimension added, epoch {} → {} (cache revalidates via delta log)",
                before,
                service.epoch()
            );
            resumed.wait();
        });
    });

    println!(
        "client view: {} executed | {} from cache | {} coalesced",
        executed.load(Ordering::Relaxed),
        from_cache.load(Ordering::Relaxed),
        coalesced.load(Ordering::Relaxed),
    );

    let metrics = service.shutdown();
    println!("\nservice metrics on shutdown:\n{metrics}");
    Ok(())
}
