//! The segmented storage lifecycle, end to end.
//!
//! Attendances load into the mutable fact table, a compaction pass
//! seals them into sorted immutable segments (here on the disk
//! backend: one CRC-framed file each), and selective queries then
//! prune whole segments on their zone maps. Appends land in the
//! mutable tail and stay queryable; the next compaction folds them in
//! and vacuums the superseded files.
//!
//! ```text
//! cargo run --release --example segstore_compaction
//! ```

use clinical_types::{DataType, FieldDef, Record, Schema, Table, Value};
use olap::{Cube, CubeFilter, CubeSpec, ScanOptions};
use segstore::DiskBackend;
use std::sync::Arc;
use warehouse::{CompactionConfig, DimensionDef, FactDef, LoadPlan, StarSchema, Warehouse};

const YEARS: usize = 8;
const ROWS_PER_YEAR: usize = 512;

fn schema() -> Schema {
    Schema::new(vec![
        FieldDef::nullable("Year", DataType::Text),
        FieldDef::nullable("FBG_Band", DataType::Text),
        FieldDef::nullable("FBG", DataType::Float),
        FieldDef::required("PatientId", DataType::Int),
    ])
    .expect("schema")
}

/// Attendances arrive in visit order, so `Year` correlates with row
/// position — exactly the layout zone maps exploit.
fn attendances() -> Table {
    let bands = ["very good", "preDiabetic", "Diabetic"];
    let mut records = Vec::new();
    for y in 0..YEARS {
        for i in 0..ROWS_PER_YEAR {
            records.push(Record::new(vec![
                Value::from((2018 + y).to_string().as_str()),
                bands[i % bands.len()].into(),
                Value::Float(4.0 + (i % 20) as f64 * 0.25),
                Value::Int((y * ROWS_PER_YEAR + i) as i64),
            ]));
        }
    }
    Table::from_rows(schema(), records).expect("table")
}

fn seg_files(dir: &std::path::Path) -> usize {
    std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(|e| Some(e.ok()?.path()))
                .filter(|p| p.extension().is_some_and(|x| x == "seg"))
                .count()
        })
        .unwrap_or(0)
}

fn selective_count(wh: &Warehouse, year: &str) -> clinical_types::Result<()> {
    let spec =
        CubeSpec::count(vec!["FBG_Band"]).with_filter(CubeFilter::all().equals("Year", year));
    let (cube, stats) = Cube::build_with_stats(wh, &spec)?;
    let total: f64 = cube.iter().map(|(_, v)| v).sum();
    println!(
        "  Year = {year}: {total:>6.0} attendances | segments {} of {} pruned, {} rows scanned",
        stats.segments_pruned, stats.segments_total, stats.rows_scanned
    );
    // The same numbers flow into every profiled query via
    // QueryProfile::segments_pruned / rows_scanned.
    let full = ScanOptions {
        segments: false,
        ..ScanOptions::default()
    };
    let (baseline, _) = Cube::build_with_options(wh, &spec, &full)?;
    assert_eq!(cube, baseline, "pruned scan must agree with full scan");
    Ok(())
}

fn main() -> clinical_types::Result<()> {
    let star = StarSchema::new(
        FactDef::new("Facts", vec!["FBG"], vec!["PatientId"]),
        vec![
            DimensionDef::new("Visit", vec!["Year"]),
            DimensionDef::new("Bloods", vec!["FBG_Band"]),
        ],
    )?;
    let mut wh = Warehouse::load(&LoadPlan::from_star(star), &attendances())?;

    let dir = std::env::temp_dir().join(format!("segstore_example_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    wh.set_segment_backend(Arc::new(DiskBackend::create(&dir)?))?;

    println!(
        "== 1. Seal {} loaded rows into disk segments ==========",
        wh.n_facts()
    );
    wh.compact_with(&CompactionConfig {
        target_rows_per_segment: ROWS_PER_YEAR,
        sort: true,
    })?;
    println!(
        "  {} segments sealed ({} files in {}), watermark {}",
        wh.segments().len(),
        seg_files(&dir),
        dir.display(),
        wh.segments().watermark()
    );
    for meta in wh.segments().metas().iter().take(3) {
        let zone = meta.key_zone("Visit").expect("Visit zone");
        println!(
            "  segment {:>2}: {:>4} rows, Visit keys [{}..{}]",
            meta.id, meta.rows, zone.min, zone.max
        );
    }
    println!("  ...");

    println!("\n== 2. Selective queries prune on zone maps ============");
    selective_count(&wh, "2020")?;
    selective_count(&wh, "2024")?;

    println!("\n== 3. Appends land in the mutable tail ================");
    let late = Table::from_rows(
        schema(),
        (0..100)
            .map(|i| {
                Record::new(vec![
                    "2026".into(),
                    "Diabetic".into(),
                    Value::Float(8.5),
                    Value::Int((YEARS * ROWS_PER_YEAR + i) as i64),
                ])
            })
            .collect(),
    )
    .expect("late rows");
    wh.append(&late)?;
    println!(
        "  appended 100 rows; watermark {} < {} facts",
        wh.segments().watermark(),
        wh.n_facts()
    );
    selective_count(&wh, "2026")?;

    println!("\n== 4. Incremental recompaction seals the tail =========");
    let before = seg_files(&dir);
    wh.compact_with(&CompactionConfig {
        target_rows_per_segment: ROWS_PER_YEAR,
        sort: true,
    })?;
    // Append-only deltas compact incrementally: the sealed prefix is
    // untouched, only the tail becomes a new segment. Vacuum reclaims
    // files whenever a rebuild superseded older segments.
    let reclaimed = wh.vacuum_segments()?;
    println!(
        "  {} -> {} segment files ({} superseded files vacuumed), watermark {}",
        before,
        seg_files(&dir),
        reclaimed,
        wh.segments().watermark()
    );
    selective_count(&wh, "2026")?;

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
