//! Fig. 6: distribution of years since hypertension diagnosis by age
//! group, using the Table I `DiagnosticHTYears` clinical scheme.
//!
//! The paper: *"the use of drill-down feature in age groups detects a
//! significant drop in the number of 5-10 year hypertension cases in
//! the age sub-groups of 70-75 and 75-80"* — the shape the synthetic
//! cohort embeds and this example verifies.
//!
//! ```text
//! cargo run --release --example fig6_hypertension_years
//! ```

use clinical_types::Value;
use dd_dgms::DdDgms;
use discri::{generate, CohortConfig};
use viz::GroupedBarChart;

fn main() -> clinical_types::Result<()> {
    let cohort = generate(&CohortConfig::default());
    let system = DdDgms::from_raw_attendances(&cohort.attendances)?;

    println!("== Fig. 6 (coarse): HT-years bands by age group ===========");
    let coarse = system.mdx(
        "SELECT [DiagnosticHTYears_Band].MEMBERS ON COLUMNS, [Age_Band].MEMBERS ON ROWS \
         FROM [Medical Measures] \
         WHERE [HypertensionStatus] = 'yes' \
         MEASURE COUNT(*)",
    )?;
    print!("{}", coarse.render());

    println!("\n== Fig. 6 (drill-down): five-year sub-groups ==============");
    let fine = system.mdx(
        "SELECT [DiagnosticHTYears_Band].MEMBERS ON COLUMNS, [Age_SubGroup].MEMBERS ON ROWS \
         FROM [Medical Measures] \
         WHERE [HypertensionStatus] = 'yes' \
         MEASURE COUNT(*)",
    )?;
    print!(
        "{}",
        GroupedBarChart::titled("hypertensive attendances by years-since-diagnosis")
            .render(&fine)?
    );

    // The paper's dip: the 5-10 band collapses in 70-75 and 75-80
    // relative to the neighbouring 65-70 sub-group.
    let band = |age: &str, ht: &str| fine.get(&Value::from(age), &Value::from(ht)).unwrap_or(0.0);
    let share = |age: &str| {
        let five_ten = band(age, "5-10");
        let total: f64 = ["<2", "2-5", "5-10", "10-20", ">20"]
            .iter()
            .map(|b| band(age, b))
            .sum();
        if total > 0.0 {
            five_ten / total
        } else {
            0.0
        }
    };
    let (s6570, s7075, s7580) = (share("65-70"), share("70-75"), share("75-80"));
    println!("\n== Paper finding vs this run ==============================");
    println!("share of '5-10 years since diagnosis' among hypertensives:");
    println!(
        "  65-70: {:.1}%   70-75: {:.1}%   75-80: {:.1}%",
        s6570 * 100.0,
        s7075 * 100.0,
        s7580 * 100.0
    );
    let reproduced = s7075 < s6570 * 0.75 && s7580 < s6570 * 0.75;
    println!(
        "drop of the 5-10 band in 70-75 and 75-80: paper YES | here → {}",
        if reproduced {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
    Ok(())
}
