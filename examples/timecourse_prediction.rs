//! §IV Prediction: predicting a patient's next disease phase from the
//! warehouse's past records of similar patients.
//!
//! Fits the Markov time-course model over per-patient FBG-band
//! trajectories, shows the learned transition structure (the "well
//! known disease trajectories" the paper says can be validated), and
//! evaluates both predictors on held-out last visits.
//!
//! ```text
//! cargo run --release --example timecourse_prediction
//! ```

use dd_dgms::DdDgms;
use discri::{generate, CohortConfig};
use predict::{evaluate_predictor, extract_trajectories, MarkovModel};

fn main() -> clinical_types::Result<()> {
    let cohort = generate(&CohortConfig::default());
    let system = DdDgms::from_raw_attendances(&cohort.attendances)?;
    let trajectories =
        extract_trajectories(system.transformed(), "PatientId", "TestDate", "FBG_Band")?;
    println!(
        "{} patient trajectories, {} total visits",
        trajectories.len(),
        trajectories.iter().map(|t| t.len()).sum::<usize>()
    );

    println!("\n== Learned FBG-band transition matrix =====================");
    let markov = MarkovModel::fit(&trajectories)?;
    let mut states = markov.states().to_vec();
    states.sort();
    print!("{:>12}", "");
    for to in &states {
        print!("{to:>13}");
    }
    println!();
    for from in &states {
        print!("{from:>12}");
        for to in &states {
            print!("{:>13.2}", markov.transition_probability(from, to)?);
        }
        println!();
    }
    println!("\nmost likely next state:");
    for from in &states {
        println!("  {from:<12} → {}", markov.predict_next(from));
    }

    println!("\n== Two-year outlook for a preDiabetic patient =============");
    if markov.state_index("preDiabetic").is_some() {
        for (state, p) in markov.predict_distribution("preDiabetic", 2)? {
            println!("  P({state:<12}) = {p:.2}");
        }
    }

    println!("\n== Held-out evaluation (leave last visit out) =============");
    let report = evaluate_predictor(&trajectories, 3)?;
    println!("  evaluable patients:        {}", report.n_evaluated);
    println!(
        "  Markov accuracy:           {:.1}%",
        report.markov_accuracy * 100.0
    );
    println!(
        "  similar-patient accuracy:  {:.1}%",
        report.similar_accuracy * 100.0
    );
    println!(
        "  majority baseline:         {:.1}%",
        report.baseline_accuracy * 100.0
    );
    println!(
        "\nMarkov beats the baseline by {:.1} points — the time-course\nstructure in the warehouse is real, not majority class.",
        (report.markov_accuracy - report.baseline_accuracy) * 100.0
    );
    Ok(())
}
