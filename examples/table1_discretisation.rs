//! Table I: the clinical discretisation schemes, applied to the
//! synthetic cohort. Prints the schemes verbatim (the paper's table)
//! and the resulting band populations, plus the algorithmic fall-back
//! methods on an attribute without a clinical scheme.
//!
//! ```text
//! cargo run --release --example table1_discretisation
//! ```

use clinical_types::Value;
use discri::{generate, CohortConfig};
use etl::{table1_schemes, ChiMerge, Discretiser, EqualFrequency, EqualWidth, Mdlp};
use std::collections::BTreeMap;

fn main() -> clinical_types::Result<()> {
    let cohort = generate(&CohortConfig::default());
    let table = &cohort.attendances;

    println!("== Table I: clinical discretisation schemes ===============");
    println!("{:<18} {:<42} bands", "Attribute", "Description");
    for scheme in table1_schemes() {
        println!(
            "{:<18} {:<42} {}",
            scheme.attribute,
            scheme.description,
            scheme.bins.labels().join(" | ")
        );
    }

    println!("\n== Band populations over the synthetic cohort =============");
    for scheme in table1_schemes() {
        let mut counts: BTreeMap<usize, usize> = BTreeMap::new();
        let mut missing = 0usize;
        for v in table.column(&scheme.attribute)? {
            match v.as_f64() {
                Some(x) if x >= 0.0 => *counts.entry(scheme.bins.assign(x)).or_insert(0) += 1,
                _ => missing += 1,
            }
        }
        println!("\n{} (missing/invalid: {missing}):", scheme.attribute);
        for (bin, count) in &counts {
            println!("  {:<14} {count}", scheme.bins.labels()[*bin]);
        }
    }

    println!("\n== Algorithmic fall-back on BMI (no clinical scheme) ======");
    let bmi: Vec<f64> = table
        .column("BMI")?
        .filter_map(Value::as_f64)
        .filter(|x| *x > 0.0)
        .collect();
    let classes: Vec<usize> = table
        .column("DiabetesStatus")?
        .zip(table.column("BMI")?)
        .filter(|(_, b)| b.as_f64().is_some_and(|x| x > 0.0))
        .map(|(s, _)| usize::from(s.as_str() == Some("yes")))
        .collect();
    let methods: Vec<(Box<dyn Discretiser>, bool)> = vec![
        (Box::new(EqualWidth::new(4)), false),
        (Box::new(EqualFrequency::new(4)), false),
        (Box::new(Mdlp::new()), true),
        (Box::new(ChiMerge::new(6)), true),
    ];
    for (method, supervised) in methods {
        let bins = method.fit(&bmi, supervised.then_some(classes.as_slice()))?;
        println!(
            "{:<16} → {} bins, cuts {:?}",
            method.method_name(),
            bins.len(),
            bins.edges()
                .iter()
                .map(|e| (e * 10.0).round() / 10.0)
                .collect::<Vec<_>>()
        );
    }
    Ok(())
}
