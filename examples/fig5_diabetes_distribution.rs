//! Fig. 5: age and gender distribution of patients with diabetes, at
//! two levels of granularity.
//!
//! The paper's findings on DiScRi, which the synthetic cohort is
//! calibrated to reproduce in shape:
//!
//! * drill-down "exposed a distinction between genders in the 70–80
//!   age group; **males dominate the 70–75 subgroup while females are
//!   the majority in the 75–80 subgroup**", and
//! * "the proportion of women with diabetes **drops substantially
//!   over 78**".
//!
//! ```text
//! cargo run --release --example fig5_diabetes_distribution
//! ```

use clinical_types::Value;
use dd_dgms::DdDgms;
use discri::{generate, CohortConfig};
use viz::GroupedBarChart;

fn main() -> clinical_types::Result<()> {
    let cohort = generate(&CohortConfig::default());
    let system = DdDgms::from_raw_attendances(&cohort.attendances)?;

    println!("== Fig. 5 (coarse): diabetic patients by age group & gender");
    let coarse = system.mdx(
        "SELECT [Gender].MEMBERS ON COLUMNS, [Age_Band].MEMBERS ON ROWS \
         FROM [Medical Measures] \
         WHERE [DiabetesStatus] = 'yes' \
         MEASURE COUNT(DISTINCT [PatientId])",
    )?;
    print!(
        "{}",
        GroupedBarChart::titled("patients with diabetes").render(&coarse)?
    );

    println!("\n== Fig. 5 (drill-down): five-year sub-groups ==============");
    let fine = system.mdx(
        "SELECT [Gender].MEMBERS ON COLUMNS, [Age_SubGroup].MEMBERS ON ROWS \
         FROM [Medical Measures] \
         WHERE [DiabetesStatus] = 'yes' \
         MEASURE COUNT(DISTINCT [PatientId])",
    )?;
    print!(
        "{}",
        GroupedBarChart::titled("patients with diabetes").render(&fine)?
    );

    let get = |band: &str, gender: &str| {
        fine.get(&Value::from(band), &Value::from(gender))
            .unwrap_or(0.0)
    };
    let (m_7075, f_7075) = (get("70-75", "M"), get("70-75", "F"));
    let (m_7580, f_7580) = (get("75-80", "M"), get("75-80", "F"));
    let f_80 = get("80-85", "F") + get(">=85", "F");

    println!("\n== Paper findings vs this run =============================");
    println!(
        "males dominate 70-75:        paper YES | here M={m_7075} vs F={f_7075} → {}",
        verdict(m_7075 > f_7075)
    );
    println!(
        "females majority in 75-80:   paper YES | here F={f_7580} vs M={m_7580} → {}",
        verdict(f_7580 > m_7580)
    );
    // "the proportion of women with diabetes drops substantially over
    // 78": the female count past 80 collapses relative to its 75-80
    // peak.
    println!(
        "female count drops >78:      paper YES | here 80+: F={f_80} vs 75-80: F={f_7580} → {}",
        verdict(f_80 < f_7580 * 0.75)
    );
    Ok(())
}

fn verdict(ok: bool) -> &'static str {
    if ok {
        "REPRODUCED"
    } else {
        "NOT reproduced"
    }
}
