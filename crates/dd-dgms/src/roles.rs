//! The two user groups of §IV.
//!
//! *"The first group comprises of users (operational level) interested
//! in short term outcomes … The second group of users (strategic
//! level) such as clinical administrators and policy makers seek
//! information relevant for optimising treatment regimen … within the
//! economic constraints of the current health care system."*
//!
//! The views are deliberately thin: they scope which features each
//! group reaches first, while (as the paper notes) "the use of each
//! feature is not strictly limited to a single group".

use crate::system::DdDgms;
use clinical_types::{Result, Table};
use kb::{Finding, FindingStatus};
use mining::Dataset;
use olap::{PivotTable, QueryBuilder};
use optimize::{RegimenOptimiser, RegimenOutcome};
use predict::{evaluate_predictor, extract_trajectories, EvaluationReport};

/// Operational-level access: reporting, prediction, visualisation.
pub struct OperationalView<'s> {
    system: &'s DdDgms,
}

impl<'s> OperationalView<'s> {
    /// View over a system.
    pub fn new(system: &'s DdDgms) -> Self {
        OperationalView { system }
    }

    /// Start a reporting query (Fig. 4 semantics).
    pub fn report(&self) -> QueryBuilder<'s> {
        self.system.query()
    }

    /// MDX reporting.
    pub fn mdx(&self, query: &str) -> Result<PivotTable> {
        self.system.mdx(query)
    }

    /// Evaluate the time-course predictor over a state column.
    pub fn prediction_quality(&self, state_column: &str) -> Result<EvaluationReport> {
        let trajectories = extract_trajectories(
            self.system.transformed(),
            "PatientId",
            "TestDate",
            state_column,
        )?;
        evaluate_predictor(&trajectories, 3)
    }

    /// The transformed table (for chart-side drill downs).
    pub fn data(&self) -> &Table {
        self.system.transformed()
    }
}

/// Strategic-level access: analytics, optimisation, the knowledge base.
pub struct StrategicView<'s> {
    system: &'s DdDgms,
}

impl<'s> StrategicView<'s> {
    /// View over a system.
    pub fn new(system: &'s DdDgms) -> Self {
        StrategicView { system }
    }

    /// Isolate an analytics dataset (a cube region flattened for the
    /// miners).
    pub fn isolate_dataset(&self, features: Vec<&str>, class: &str) -> Result<Dataset> {
        mining::DatasetBuilder::new(features, class).build(self.system.transformed())
    }

    /// Optimise a treatment regimen under a budget.
    pub fn optimise_regimen(&self, budget: f64) -> Result<RegimenOutcome> {
        RegimenOptimiser {
            budget,
            min_support: (self.system.warehouse().n_facts() / 100).clamp(3, 20),
            ..RegimenOptimiser::default()
        }
        .optimise(self.system.warehouse())
    }

    /// Mature knowledge (validated or promoted findings).
    pub fn guidelines(&self) -> Vec<Finding> {
        let kb = self.system.knowledge_base();
        let mut out = kb.by_status(FindingStatus::Validated);
        out.extend(kb.by_status(FindingStatus::Promoted));
        out
    }

    /// The next screening round's test plan: acquisition queries for
    /// the `top_attributes` most ambiguity-reducing measurements (the
    /// fourth DGMS phase, strategic side).
    pub fn acquisition_plan(
        &self,
        candidates: &[&str],
        class_column: &str,
        top_attributes: usize,
    ) -> Result<Vec<crate::acquisition::AcquisitionQuery>> {
        crate::acquisition::acquisition_queries(
            self.system.transformed(),
            candidates,
            class_column,
            top_attributes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use discri::{generate, CohortConfig};

    fn system() -> DdDgms {
        let cohort = generate(&CohortConfig::small(91));
        DdDgms::from_raw_attendances(&cohort.attendances).unwrap()
    }

    #[test]
    fn operational_view_reports_and_predicts() {
        let s = system();
        let op = OperationalView::new(&s);
        let pivot = op.report().on_rows("FBG_Band").count().execute().unwrap();
        assert!(!pivot.row_headers.is_empty());
        let quality = op.prediction_quality("FBG_Band").unwrap();
        assert!(quality.n_evaluated > 0);
    }

    #[test]
    fn strategic_view_isolates_and_optimises() {
        let s = system();
        let strat = StrategicView::new(&s);
        let ds = strat
            .isolate_dataset(vec!["FBG_Band", "Gender"], "DiabetesStatus")
            .unwrap();
        assert!(!ds.is_empty());
        assert_eq!(ds.n_features(), 2);
        let regimen = strat.optimise_regimen(2000.0).unwrap();
        assert!(regimen.annual_cost <= 2000.0);
        // A fresh system has no mature knowledge yet.
        assert!(strat.guidelines().is_empty());
    }

    #[test]
    fn strategic_view_plans_acquisition() {
        let s = system();
        let strat = StrategicView::new(&s);
        let plan = strat
            .acquisition_plan(&["FBG_Band", "AnkleReflexRight"], "DiabetesStatus", 2)
            .unwrap();
        // Missing-value injection guarantees some gaps to fill.
        assert!(!plan.is_empty());
    }
}
