#![warn(missing_docs)]

//! The DD-DGMS facade: the paper's Fig. 2 architecture as one object.
//!
//! A Decision Guidance Management System operates in *"iterative
//! loop-back phases"* (§IV): learn from the data space, predict and
//! simulate, optimise decisions, then acquire new data/feedback to
//! reduce ambiguity. The DD-DGMS variant routes every phase through
//! the clinical data warehouse. [`DdDgms`] wires the crates of this
//! workspace into that loop:
//!
//! ```text
//! raw attendances ──etl──▶ warehouse ──┬─▶ reporting (OLTP/OLAP/MDX)
//!                                      ├─▶ prediction (time course)
//!                                      ├─▶ visualisation
//!                                      ├─▶ decision optimisation
//!                                      └─▶ data analytics ──▶ knowledge base
//!                         ▲                                        │
//!                         └───── feedback dimensions ◀─────────────┘
//! ```
//!
//! [`roles`] exposes the two user groups of §IV: operational users
//! (short-term outcomes) and strategic users (long-term planning).
//!
//! # Example
//!
//! ```
//! use dd_dgms::DdDgms;
//! use discri::{generate, CohortConfig};
//!
//! // A small synthetic screening cohort stands in for DiScRi.
//! let cohort = generate(&CohortConfig::small(1));
//! let system = DdDgms::from_raw_attendances(&cohort.attendances)?;
//!
//! // Fig. 4-style reporting…
//! let pivot = system
//!     .query()
//!     .on_rows("FBG_Band")
//!     .on_columns("Gender")
//!     .count()
//!     .execute()?;
//! assert!(!pivot.row_headers.is_empty());
//!
//! // …or the same through MDX.
//! let mdx = system.mdx(
//!     "SELECT [Gender].MEMBERS ON COLUMNS, [FBG_Band].MEMBERS ON ROWS \
//!      FROM [Medical Measures] MEASURE COUNT(*)",
//! )?;
//! assert_eq!(mdx.row_headers, pivot.row_headers);
//! # Ok::<(), clinical_types::Error>(())
//! ```

pub mod acquisition;
pub mod roles;
pub mod system;

pub use acquisition::{acquisition_queries, attribute_gaps, AcquisitionQuery, AttributeGap};
pub use roles::{OperationalView, StrategicView};
pub use system::{DdDgms, GuidanceCycleReport};
