//! Data-acquisition queries — the fourth DGMS phase.
//!
//! §IV: *"in the final phase data acquisition queries are used as
//! feedback to reduce ambiguity of decisions"*, and the conclusion
//! envisages the architecture equipping clinical scientists *"to
//! produce more refined and better informed test plans for future
//! data collection"*.
//!
//! This module generates those test plans: it ranks attributes by how
//! much decision ambiguity their missingness causes — the product of
//! (a) how informative the attribute is about the decision class
//! (mutual information on the observed rows) and (b) how often it is
//! missing — then emits per-patient acquisition queries: "re-measure
//! attribute X for patient P at their next attendance", prioritising
//! patients whose *latest* attendance lacks the measurement.

use clinical_types::{Error, Result, Table};
use mining::{mutual_information_ranking, DatasetBuilder};
use std::collections::HashMap;

/// One attribute's contribution to decision ambiguity.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributeGap {
    /// Attribute name.
    pub attribute: String,
    /// Mutual information with the decision class (bits, observed rows).
    pub information: f64,
    /// Fraction of rows with the measurement missing.
    pub missing_rate: f64,
    /// Ranking score: `information × missing_rate` — the expected
    /// information recoverable by filling the gaps.
    pub score: f64,
}

/// A concrete test-plan entry for one patient.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AcquisitionQuery {
    /// Patient to re-measure.
    pub patient_id: i64,
    /// Attribute to collect at the next attendance.
    pub attribute: String,
}

/// Rank candidate attributes by recoverable information.
///
/// `candidates` are the measurements a clinic could re-order;
/// `class_column` is the decision the ambiguity is measured against.
pub fn attribute_gaps(
    table: &Table,
    candidates: &[&str],
    class_column: &str,
) -> Result<Vec<AttributeGap>> {
    if candidates.is_empty() {
        return Err(Error::invalid("no candidate attributes supplied"));
    }
    // MI is computed over a dataset where missing is its own category;
    // to score the *observed* signal we instead compute MI on the
    // interned data and pair it with the missing rate separately.
    let dataset = DatasetBuilder::new(candidates.to_vec(), class_column).build(table)?;
    let ranking = mutual_information_ranking(&dataset)?;
    let mi_by_feature: HashMap<usize, f64> = ranking.into_iter().collect();

    let n = table.len().max(1) as f64;
    let mut gaps = Vec::with_capacity(candidates.len());
    for (fi, name) in candidates.iter().enumerate() {
        let missing = table.column(name)?.filter(|v| v.is_null()).count() as f64;
        let missing_rate = missing / n;
        let information = mi_by_feature.get(&fi).copied().unwrap_or(0.0);
        gaps.push(AttributeGap {
            attribute: name.to_string(),
            information,
            missing_rate,
            score: information * missing_rate,
        });
    }
    gaps.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("scores are finite"));
    Ok(gaps)
}

/// Build the per-patient test plan for the top `top_attributes`
/// attribute gaps: one query per (patient, attribute) where the
/// patient's most recent attendance is missing that measurement.
pub fn acquisition_queries(
    table: &Table,
    candidates: &[&str],
    class_column: &str,
    top_attributes: usize,
) -> Result<Vec<AcquisitionQuery>> {
    let gaps = attribute_gaps(table, candidates, class_column)?;
    let schema = table.schema();
    let pid_idx = schema.index_of("PatientId")?;
    let date_idx = schema.index_of("TestDate")?;

    // Latest attendance row per patient.
    let mut latest: HashMap<i64, usize> = HashMap::new();
    for (i, row) in table.rows().iter().enumerate() {
        let pid = row[pid_idx]
            .as_i64()
            .ok_or_else(|| Error::invalid("PatientId must be integer"))?;
        match latest.get(&pid) {
            Some(&j) if table.rows()[j][date_idx].as_date() >= row[date_idx].as_date() => {}
            _ => {
                latest.insert(pid, i);
            }
        }
    }

    let mut out = Vec::new();
    for gap in gaps.iter().take(top_attributes) {
        if gap.score <= 0.0 {
            continue; // nothing recoverable
        }
        let attr_idx = schema.index_of(&gap.attribute)?;
        let mut patients: Vec<i64> = latest
            .iter()
            .filter(|(_, &row)| table.rows()[row][attr_idx].is_null())
            .map(|(&pid, _)| pid)
            .collect();
        patients.sort_unstable();
        out.extend(patients.into_iter().map(|patient_id| AcquisitionQuery {
            patient_id,
            attribute: gap.attribute.clone(),
        }));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clinical_types::{DataType, Date, FieldDef, Record, Schema, Value};

    /// `Signal` is informative but often missing; `Noise` is complete
    /// but useless; `Rarely` is informative and almost complete.
    fn table() -> Table {
        let schema = Schema::new(vec![
            FieldDef::required("PatientId", DataType::Int),
            FieldDef::required("TestDate", DataType::Date),
            FieldDef::nullable("Signal", DataType::Text),
            FieldDef::nullable("Noise", DataType::Text),
            FieldDef::nullable("Rarely", DataType::Text),
            FieldDef::nullable("Class", DataType::Text),
        ])
        .unwrap();
        let mut rows = Vec::new();
        for i in 0..100i64 {
            let class = if i % 2 == 0 { "yes" } else { "no" };
            let signal = if i % 3 == 0 {
                Value::Null // 1/3 missing
            } else {
                Value::from(class) // perfectly informative when present
            };
            let noise = Value::from(if i % 5 < 2 { "a" } else { "b" });
            let rarely = if i == 0 {
                Value::Null
            } else {
                Value::from(class)
            };
            rows.push(Record::new(vec![
                Value::Int(i % 20 + 1), // 20 patients, 5 visits each
                Value::Date(Date::new(2005 + (i / 20) as i32, 6, 1).unwrap()),
                signal,
                noise,
                rarely,
                Value::from(class),
            ]));
        }
        Table::from_rows(schema, rows).unwrap()
    }

    #[test]
    fn gaps_rank_informative_and_missing_first() {
        let gaps = attribute_gaps(&table(), &["Signal", "Noise", "Rarely"], "Class").unwrap();
        assert_eq!(gaps[0].attribute, "Signal");
        assert!(gaps[0].missing_rate > 0.3);
        assert!(gaps[0].score > gaps[1].score);
        // Noise has near-zero MI → near-zero score despite being complete.
        let noise = gaps.iter().find(|g| g.attribute == "Noise").unwrap();
        assert!(noise.score < 0.05, "noise score {}", noise.score);
    }

    #[test]
    fn queries_target_patients_with_missing_latest_measurement() {
        let queries = acquisition_queries(&table(), &["Signal", "Noise"], "Class", 1).unwrap();
        assert!(!queries.is_empty());
        for q in &queries {
            assert_eq!(q.attribute, "Signal");
        }
        // Every targeted patient's latest visit indeed lacks Signal.
        let t = table();
        let schema = t.schema();
        let (pid, date, sig) = (
            schema.index_of("PatientId").unwrap(),
            schema.index_of("TestDate").unwrap(),
            schema.index_of("Signal").unwrap(),
        );
        for q in &queries {
            let latest = t
                .rows()
                .iter()
                .filter(|r| r[pid].as_i64() == Some(q.patient_id))
                .max_by_key(|r| r[date].as_date())
                .unwrap();
            assert!(latest[sig].is_null());
        }
    }

    #[test]
    fn zero_score_attributes_produce_no_queries() {
        // Only Noise (complete + uninformative) as candidate.
        let queries = acquisition_queries(&table(), &["Noise"], "Class", 3).unwrap();
        assert!(queries.is_empty());
    }

    #[test]
    fn empty_candidates_error() {
        assert!(attribute_gaps(&table(), &[], "Class").is_err());
    }

    #[test]
    fn works_on_the_discri_cohort() {
        let cohort = discri::generate(&discri::CohortConfig::small(121));
        let (t, _) = etl::TransformPipeline::discri_default()
            .run(&cohort.attendances)
            .unwrap();
        // The Ewing hand-grip is the paper's own example: informative
        // for CAN risk but unmeasurable for many elderly patients.
        let gaps = attribute_gaps(
            &t,
            &["FBG_Band", "AnkleReflexRight", "Age_Band"],
            "DiabetesStatus",
        )
        .unwrap();
        assert_eq!(gaps.len(), 3);
        let queries =
            acquisition_queries(&t, &["FBG_Band", "AnkleReflexRight"], "DiabetesStatus", 2)
                .unwrap();
        // Some attendances lack FBG (missing-rate injection), so the
        // plan is non-trivial.
        assert!(!queries.is_empty());
    }
}
