//! The integrated system and its guidance cycle.

use clinical_types::{Result, Table, Value};
use etl::{PipelineReport, TransformPipeline};
use kb::{FindingStatus, KnowledgeBase, Source};
use mining::{Apriori, AwSum, DatasetBuilder};
use olap::{execute_mdx, CubeSpec, PivotTable, QueryBuilder};
use optimize::{validate_aggregate, RegimenOptimiser, RegimenOutcome, RobustnessReport};
use predict::{evaluate_predictor, extract_trajectories, EvaluationReport, MarkovModel};
use warehouse::{LoadPlan, Warehouse};

/// The assembled DD-DGMS instance: transformed table, warehouse,
/// knowledge base.
pub struct DdDgms {
    transformed: Table,
    pipeline_report: PipelineReport,
    warehouse: Warehouse,
    knowledge_base: KnowledgeBase,
}

/// Outcome of one closed-loop guidance cycle.
#[derive(Debug)]
pub struct GuidanceCycleReport {
    /// Interactions surfaced by AWSum (the learn phase).
    pub interactions: Vec<mining::Interaction>,
    /// High-lift association rules toward `DiabetesStatus`.
    pub rules: Vec<String>,
    /// Time-course predictor evaluation (the predict phase).
    pub prediction: EvaluationReport,
    /// Robustness of the dominant FBG band (the optimise phase).
    pub robustness: RobustnessReport,
    /// The optimal treatment regimen under the default budget.
    pub regimen: RegimenOutcome,
    /// Findings recorded into the knowledge base this cycle.
    pub findings_recorded: usize,
}

impl GuidanceCycleReport {
    /// Render the cycle outcome as the markdown briefing a clinical
    /// scientist would read — one section per architecture component.
    pub fn render_markdown(&self) -> String {
        let mut out = String::from("# DD-DGMS guidance cycle\n\n");
        out.push_str("## Learn — data analytics\n\n");
        if self.interactions.is_empty() {
            out.push_str("No surprising value-pair interactions this cycle.\n");
        }
        for i in &self.interactions {
            out.push_str(&format!(
                "- **{}={} & {}={} → {}** (joint {:.2} vs best single {:.2}, n={})\n",
                i.feature_a,
                i.value_a,
                i.feature_b,
                i.value_b,
                i.class,
                i.joint_confidence,
                i.best_single_confidence,
                i.support
            ));
        }
        out.push_str("\nAssociation rules:\n\n");
        for r in &self.rules {
            out.push_str(&format!("- `{r}`\n"));
        }
        out.push_str(&format!(
            "\n## Predict — time course\n\nMarkov {:.1}% | similar-patient {:.1}% | baseline {:.1}% (n={}).\n",
            self.prediction.markov_accuracy * 100.0,
            self.prediction.similar_accuracy * 100.0,
            self.prediction.baseline_accuracy * 100.0,
            self.prediction.n_evaluated
        ));
        out.push_str(&format!(
            "\n## Optimise\n\nDominant aggregate {:?} ({} attendances) is {} — {:.0}% consistent over {} perturbations.\n",
            self.robustness.top_cell,
            self.robustness.top_value,
            if self.robustness.is_robust(0.8) {
                "**robust**"
            } else {
                "**fragile**"
            },
            self.robustness.consistency() * 100.0,
            self.robustness.total_perturbations
        ));
        out.push_str(&format!(
            "\nRecommended regimen within budget: **{}** (risk {:.2}, cost {}, n={}).\n",
            self.regimen.regimen.describe(),
            self.regimen.risk,
            self.regimen.annual_cost,
            self.regimen.support
        ));
        out.push_str(&format!(
            "\n## Acquire\n\n{} findings recorded into the knowledge base; the predicted next FBG band was written back as the `Clinician Feedback` dimension.\n",
            self.findings_recorded
        ));
        out
    }
}

impl DdDgms {
    /// Build the system from a raw attendance table: runs the DiScRi
    /// transformation pipeline and loads the Fig. 3 warehouse.
    pub fn from_raw_attendances(raw: &Table) -> Result<DdDgms> {
        let (transformed, pipeline_report) = TransformPipeline::discri_default().run(raw)?;
        let warehouse = Warehouse::load(&LoadPlan::discri_default(), &transformed)?;
        Ok(DdDgms {
            transformed,
            pipeline_report,
            warehouse,
            knowledge_base: KnowledgeBase::new(2),
        })
    }

    /// The transformed (cleaned, discretised, abstracted) table.
    pub fn transformed(&self) -> &Table {
        &self.transformed
    }

    /// The ETL report of the load.
    pub fn pipeline_report(&self) -> &PipelineReport {
        &self.pipeline_report
    }

    /// The warehouse.
    pub fn warehouse(&self) -> &Warehouse {
        &self.warehouse
    }

    /// Mutable warehouse access (feedback dimensions).
    pub fn warehouse_mut(&mut self) -> &mut Warehouse {
        &mut self.warehouse
    }

    /// The knowledge base handle.
    pub fn knowledge_base(&self) -> &KnowledgeBase {
        &self.knowledge_base
    }

    /// Start a Fig. 4-style drag-and-drop query.
    pub fn query(&self) -> QueryBuilder<'_> {
        QueryBuilder::new(&self.warehouse)
    }

    /// Execute an MDX query.
    pub fn mdx(&self, query: &str) -> Result<PivotTable> {
        execute_mdx(&self.warehouse, query)
    }

    /// Execute an MDX query and return the result together with its
    /// [`obs::QueryProfile`] — `EXPLAIN ANALYZE` for the facade: phase
    /// timings (parse / execute / aggregate), rows scanned and cells
    /// emitted. The profile is always populated; installing an `obs`
    /// subscriber additionally captures the span tree.
    pub fn profile_query(&self, query: &str) -> Result<(PivotTable, obs::QueryProfile)> {
        let mut profile = obs::ProfileBuilder::start();
        let parsed = profile.time(obs::Phase::Parse, || olap::parse_mdx(query))?;
        let pivot = olap::mdx::execute_query_profiled(&self.warehouse, &parsed, &mut profile)?;
        Ok((pivot, profile.finish()))
    }

    /// Run the semantic analyzer over an MDX query without executing
    /// it: parse, resolve every name against the warehouse catalog
    /// (with did-you-mean suggestions), type-check conditions and
    /// check aggregation legality. Parse failures are `Err`; semantic
    /// findings come back as [`analyze::Diagnostics`] with stable
    /// codes (`analyze::explain` expands them).
    pub fn analyze(&self, query: &str) -> Result<analyze::Diagnostics> {
        let catalog = analyze::Catalog::from_warehouse(&self.warehouse);
        olap::analyze_mdx_str(&catalog, query)
    }

    /// Expand a diagnostic code (e.g. `"A002"`) into its long
    /// explanation — the same text the `explain` binary prints.
    pub fn explain(code: &str) -> Option<&'static str> {
        analyze::explain(code)
    }

    /// Start a concurrent query service over a snapshot of the
    /// warehouse (§IV's multi-user setting: clinicians, researchers
    /// and students querying at once). The service owns its copy;
    /// feed later loads to [`serve::QueryService::append`] or keep
    /// mutating this system and start a fresh service. Fails only
    /// when the OS refuses to spawn the worker threads.
    pub fn serve(&self, config: serve::ServeConfig) -> serve::ServeResult<serve::QueryService> {
        serve::QueryService::new(self.warehouse.clone(), config)
    }

    /// Start a *replicated* serve tier over a snapshot of the
    /// warehouse: a primary write head publishing every mutation to a
    /// durable oplog, plus epoch-aware read replicas behind a
    /// [`serve::ReplicaRouter`] with failover. Queries route only to
    /// replicas that have fully applied the primary's current epoch;
    /// when none has, the result is explicitly stale-marked.
    pub fn serve_replicated(
        &self,
        config: serve::RouterConfig,
    ) -> serve::ServeResult<serve::ReplicaRouter> {
        serve::ReplicaRouter::new(self.warehouse.clone(), config)
    }

    /// Force a flight-recorder dump through the globally installed
    /// recorder (the operator's "grab the black box now" lever on the
    /// whole system, not one service). `None` when no recorder is
    /// installed — see [`obs::install_recorder`].
    pub fn flight_dump(reason: &str) -> Option<obs::BlackBox> {
        obs::trigger_dump(reason, None)
    }

    /// Evaluate `service`'s configured SLOs right now and return the
    /// per-objective burn-rate status (a convenience passthrough to
    /// [`serve::QueryService::slo_status`], so system-level callers
    /// need not import the serve types).
    pub fn slo_status(service: &serve::QueryService) -> Vec<obs::SloStatus> {
        service.slo_status()
    }

    /// Run one full closed-loop guidance cycle: learn → predict →
    /// optimise → acquire. Every phase's headline outcome is recorded
    /// as evidence in the knowledge base.
    pub fn run_guidance_cycle(&mut self) -> Result<GuidanceCycleReport> {
        // ---- Phase 1: learn (data analytics over the warehouse). ----
        let features = vec![
            "KneeReflexRight",
            "KneeReflexLeft",
            "AnkleReflexRight",
            "AnkleReflexLeft",
            "FBG_Band",
            "Age_Band",
            "Gender",
        ];
        let dataset = DatasetBuilder::new(features, "DiabetesStatus").build(&self.transformed)?;
        let awsum = AwSum::fit(&dataset)?;
        let yes_class = dataset
            .class_labels
            .iter()
            .position(|c| c == "yes")
            .unwrap_or(0);
        let interactions = awsum.top_interactions(&dataset, yes_class, 15, 5)?;

        let apriori = Apriori::new(self.transformed.len() / 50 + 5, 0.6, 3);
        let status_feature = dataset
            .features
            .iter()
            .position(|f| f.name == "FBG_Band")
            .map(|_| ());
        let _ = status_feature;
        // Rules toward DiabetesStatus need it as a feature: build a
        // second dataset with the class inlined.
        let rule_features = vec![
            "AnkleReflexRight",
            "KneeReflexRight",
            "FBG_Band",
            "DiabetesStatus",
        ];
        let rule_data =
            DatasetBuilder::new(rule_features, "DiabetesStatus").build(&self.transformed)?;
        let status_idx = rule_data
            .features
            .iter()
            .position(|f| f.name == "DiabetesStatus")
            .expect("inlined class feature");
        let rules: Vec<String> = apriori
            .rules(&rule_data, Some(status_idx))?
            .iter()
            .take(5)
            .map(|r| r.describe(&rule_data))
            .collect();

        // ---- Phase 2: predict (time course). ----
        let trajectories =
            extract_trajectories(&self.transformed, "PatientId", "TestDate", "FBG_Band")?;
        let prediction = evaluate_predictor(&trajectories, 3)?;
        let markov = MarkovModel::fit(&trajectories)?;

        // ---- Phase 3: optimise. ----
        let robustness = validate_aggregate(
            &self.warehouse,
            &CubeSpec::count(vec!["FBG_Band"]),
            &["Gender", "VisitKind"],
            2,
        )?;
        let regimen = RegimenOptimiser {
            // Scale the evidence threshold with cohort size so small
            // pilots still produce a (weaker) recommendation.
            min_support: (self.warehouse.n_facts() / 100).clamp(3, 20),
            ..RegimenOptimiser::default()
        }
        .optimise(&self.warehouse)?;

        // ---- Phase 4: acquire (KB evidence + feedback dimension). ----
        let kb = &self.knowledge_base;
        let mut recorded = 0usize;
        for i in &interactions {
            kb.add_evidence(
                &format!(
                    "{}={} with {}={} predicts {} (joint {:.2} vs single {:.2})",
                    i.feature_a,
                    i.value_a,
                    i.feature_b,
                    i.value_b,
                    i.class,
                    i.joint_confidence,
                    i.best_single_confidence
                ),
                Source::Analytics,
                i.joint_confidence,
                &["diabetes", "interaction"],
            )?;
            recorded += 1;
        }
        for r in &rules {
            kb.add_evidence(r, Source::Analytics, 1.0, &["association"])?;
            recorded += 1;
        }
        kb.add_evidence(
            &format!(
                "Markov time-course model predicts next FBG band with {:.0}% accuracy (baseline {:.0}%)",
                prediction.markov_accuracy * 100.0,
                prediction.baseline_accuracy * 100.0
            ),
            Source::Prediction,
            prediction.markov_accuracy,
            &["time-course"],
        )?;
        recorded += 1;
        kb.add_evidence(
            &format!(
                "dominant FBG band {:?} is {} under dimension perturbation ({:.0}% consistent)",
                robustness.top_cell,
                if robustness.is_robust(0.8) {
                    "robust"
                } else {
                    "fragile"
                },
                robustness.consistency() * 100.0
            ),
            Source::Optimisation,
            robustness.consistency(),
            &["robustness"],
        )?;
        recorded += 1;
        kb.add_evidence(
            &format!(
                "optimal regimen within budget: {} (risk {:.2})",
                regimen.regimen.describe(),
                regimen.risk
            ),
            Source::Optimisation,
            1.0 - regimen.risk,
            &["regimen"],
        )?;
        recorded += 1;

        // Feedback dimension: the predicted next FBG band per
        // attendance becomes a queryable dimension (the paper's
        // "translated back to the warehouse as dimensions").
        if self
            .warehouse
            .star()
            .dimension("Clinician Feedback")
            .is_err()
        {
            let fbg_bands = self.warehouse.attribute_column("FBG_Band")?;
            let labels: Vec<Value> = fbg_bands
                .iter()
                .map(|band| match band.as_str() {
                    Some(b) => Value::Text(markov.predict_next(b)),
                    None => Value::Null,
                })
                .collect();
            self.warehouse.add_feedback_dimension(
                "Clinician Feedback",
                "PredictedNextFBGBand",
                labels,
            )?;
        }

        Ok(GuidanceCycleReport {
            interactions,
            rules,
            prediction,
            robustness,
            regimen,
            findings_recorded: recorded,
        })
    }

    /// Validated-or-better findings, for reports.
    pub fn mature_findings(&self) -> Vec<kb::Finding> {
        let mut out = self.knowledge_base.by_status(FindingStatus::Validated);
        out.extend(self.knowledge_base.by_status(FindingStatus::Promoted));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use discri::{generate, CohortConfig};

    fn system() -> DdDgms {
        let cohort = generate(&CohortConfig::small(81));
        DdDgms::from_raw_attendances(&cohort.attendances).unwrap()
    }

    #[test]
    fn construction_runs_etl_and_load() {
        let s = system();
        assert!(!s.transformed().is_empty());
        assert_eq!(s.warehouse().n_facts(), s.transformed().len());
        assert_eq!(
            s.pipeline_report().cardinality.n_visits,
            s.transformed().len()
        );
    }

    #[test]
    fn facade_queries_work() {
        let s = system();
        let pivot = s
            .query()
            .on_rows("Age_Band")
            .on_columns("Gender")
            .count()
            .execute()
            .unwrap();
        assert!(!pivot.row_headers.is_empty());
        let mdx = s
            .mdx(
                "SELECT [Gender].MEMBERS ON COLUMNS, [Age_Band].MEMBERS ON ROWS \
                  FROM [Medical Measures] MEASURE COUNT(*)",
            )
            .unwrap();
        assert_eq!(mdx.row_headers, pivot.row_headers);
    }

    #[test]
    fn facade_profiles_queries() {
        let s = system();
        let (pivot, profile) = s
            .profile_query(
                "SELECT [Gender].MEMBERS ON COLUMNS, [Age_Band].MEMBERS ON ROWS \
                 FROM [Medical Measures] MEASURE COUNT(*)",
            )
            .unwrap();
        assert!(!pivot.row_headers.is_empty());
        assert!(!profile.is_empty());
        assert!(profile
            .phases
            .iter()
            .any(|(p, _)| *p == obs::Phase::Execute));
        assert_eq!(profile.rows_scanned, s.warehouse().n_facts() as u64);
        assert!(profile.cells_emitted > 0);
        assert!(profile.total_us >= profile.phases_total_us());
        // Renders EXPLAIN ANALYZE-style output.
        assert!(profile.to_string().contains("execute"), "{profile}");
    }

    #[test]
    fn facade_analyzes_without_executing() {
        let s = system();
        let clean = s
            .analyze(
                "SELECT [Gender].MEMBERS ON COLUMNS, [Age_Band].MEMBERS ON ROWS \
                 FROM [Medical Measures] MEASURE COUNT(*)",
            )
            .unwrap();
        assert!(clean.is_empty(), "{clean}");
        let diags = s
            .analyze(
                "SELECT [Gendr].MEMBERS ON COLUMNS, [Age_Band].MEMBERS ON ROWS \
                 FROM [Medical Measures] MEASURE COUNT(*)",
            )
            .unwrap();
        assert_eq!(diags.codes(), vec!["A002"]);
        let explained = DdDgms::explain("A002").unwrap();
        assert!(explained.contains("axis"), "{explained}");
        // The rendered report points at the offending fragment.
        assert!(diags.to_string().contains('^'), "{diags}");
    }

    #[test]
    fn guidance_cycle_closes_the_loop() {
        let mut s = system();
        let dims_before = s.warehouse().dimensions().len();
        let report = s.run_guidance_cycle().unwrap();
        assert!(report.findings_recorded >= 3);
        assert!(report.prediction.n_evaluated > 0);
        assert!(report.regimen.annual_cost <= 800.0);
        // Feedback dimension appended.
        assert_eq!(s.warehouse().dimensions().len(), dims_before + 1);
        assert!(s
            .warehouse()
            .attribute_column("PredictedNextFBGBand")
            .is_ok());
        // The KB holds the evidence.
        assert!(!s.knowledge_base().is_empty());
    }

    #[test]
    fn cycle_report_renders_every_section() {
        let mut s = system();
        let report = s.run_guidance_cycle().unwrap();
        let md = report.render_markdown();
        for section in ["## Learn", "## Predict", "## Optimise", "## Acquire"] {
            assert!(md.contains(section), "missing section {section}");
        }
        assert!(md.contains("Recommended regimen"));
        assert!(md.contains('%'));
    }

    #[test]
    fn second_cycle_strengthens_instead_of_duplicating() {
        let mut s = system();
        s.run_guidance_cycle().unwrap();
        let after_first = s.knowledge_base().len();
        s.run_guidance_cycle().unwrap();
        // Statements dedupe: the count stays equal (all re-observed).
        assert_eq!(s.knowledge_base().len(), after_first);
        // And repeated observation validates findings.
        assert!(!s.mature_findings().is_empty());
    }
}
