//! Dynamic lock-rank enforcement drills.
//!
//! The deterministic deadlock repro inverts a two-lock acquisition
//! order behind a `fault` failpoint: with the point armed, the second
//! thread acquires the higher-ranked lock first and then reaches for
//! the lower-ranked one — the classic AB/BA interleaving. The rank
//! check fires *before* the inverted thread blocks on the contended
//! mutex, so the latent deadlock becomes a loud, named report instead
//! of a frozen test suite.
//!
//! The property test drives randomized rank sequences the other way:
//! any strictly-ascending acquisition order must never trip the
//! checker, no matter how the sequence was sampled.

use fault::test_support::fault_lock;
use fault::{arm, FaultKind, Trigger};
use obs::{set_rank_checks, LockRank, RankedMutex, ALL_RANKS};
use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Barrier};
use std::thread;

/// The failpoint that flips thread B into the inverted order.
const INVERT_POINT: &str = "lockrank.invert";

fn run_two_thread_drill() -> thread::Result<()> {
    let low = Arc::new(RankedMutex::new(LockRank::Heap, "oltp.heap", 0u32));
    let high = Arc::new(RankedMutex::new(LockRank::Index, "oltp.index.map", 0u32));
    let barrier = Arc::new(Barrier::new(2));

    let forward = thread::spawn({
        let low = Arc::clone(&low);
        let high = Arc::clone(&high);
        let barrier = Arc::clone(&barrier);
        move || {
            let mut a = low.lock();
            barrier.wait();
            // Blocks until the inverted thread lets go of `high` —
            // which it does by aborting on the rank violation.
            let mut b = high.lock();
            *a += 1;
            *b += 1;
        }
    });

    let inverted = thread::spawn({
        let low = Arc::clone(&low);
        let high = Arc::clone(&high);
        let barrier = Arc::clone(&barrier);
        move || {
            if fault::point(INVERT_POINT).is_err() {
                // Fault armed: acquire in descending rank order.
                let mut b = high.lock();
                barrier.wait();
                let mut a = low.lock(); // rank checker aborts here
                *a += 1;
                *b += 1;
            } else {
                barrier.wait();
                let mut a = low.lock();
                let mut b = high.lock();
                *a += 1;
                *b += 1;
            }
        }
    });

    let inverted_result = inverted.join();
    forward
        .join()
        .expect("forward thread acquires in rank order");
    inverted_result
}

#[test]
fn inverted_acquisition_behind_failpoint_aborts_naming_both_locks() {
    let _serial = fault_lock();
    set_rank_checks(true);
    let _armed = arm(INVERT_POINT, Trigger::Always, FaultKind::Error);

    let err = run_two_thread_drill().expect_err("inverted thread must abort");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .expect("panic payload is a message");
    assert!(
        msg.contains("lock-rank violation"),
        "unexpected report: {msg}"
    );
    assert!(
        msg.contains("oltp.heap"),
        "report must name the acquired lock: {msg}"
    );
    assert!(
        msg.contains("oltp.index.map"),
        "report must name the held lock: {msg}"
    );
}

#[test]
fn same_drill_with_failpoint_disarmed_is_clean() {
    let _serial = fault_lock();
    set_rank_checks(true);
    run_two_thread_drill().expect("rank-ordered drill never trips");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any strictly-ascending acquisition sequence — arbitrary subset
    /// of the rank table, arbitrary length — passes the checker.
    #[test]
    fn rank_consistent_sequences_never_trip(picks in proptest::collection::vec(0usize..ALL_RANKS.len(), 1..8)) {
        set_rank_checks(true);
        let mut ranks: Vec<LockRank> = picks.iter().map(|&i| ALL_RANKS[i]).collect();
        ranks.sort();
        ranks.dedup();
        let locks: Vec<RankedMutex<u32>> = ranks
            .iter()
            .map(|&r| RankedMutex::new(r, r.name(), 0u32))
            .collect();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut guards = Vec::new();
            for lock in &locks {
                guards.push(lock.lock());
            }
            for mut g in guards {
                *g += 1;
            }
        }));
        prop_assert!(outcome.is_ok(), "ascending ranks {ranks:?} tripped the checker");
    }

    /// …and any sequence containing a descent (or a repeat) trips it
    /// at exactly the first non-ascending acquisition.
    #[test]
    fn non_ascending_sequences_always_trip(picks in proptest::collection::vec(0usize..ALL_RANKS.len(), 2..8)) {
        set_rank_checks(true);
        let ranks: Vec<LockRank> = picks.iter().map(|&i| ALL_RANKS[i]).collect();
        let ascending = ranks.windows(2).all(|w| w[0] < w[1]);
        prop_assume!(!ascending);
        let locks: Vec<RankedMutex<u32>> = ranks
            .iter()
            .map(|&r| RankedMutex::new(r, r.name(), 0u32))
            .collect();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut guards = Vec::new();
            for lock in &locks {
                guards.push(lock.lock());
            }
        }));
        prop_assert!(outcome.is_err(), "non-ascending ranks {ranks:?} passed the checker");
    }
}
