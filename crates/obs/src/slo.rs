//! Declarative SLOs with multi-window burn-rate alerting.
//!
//! An [`SloSpec`] names an objective (e.g. "99% of requests complete
//! under 5 ms", "99.9% of requests succeed") over instruments in a
//! [`MetricsRegistry`](crate::MetricsRegistry). The [`SloEngine`]
//! keeps a short history of registry snapshots and, on each
//! evaluation, measures the *burn rate* — the fraction of the error
//! budget consumed per unit time, where burn 1.0 means the budget
//! exactly runs out at the end of its window — over two windows at
//! once: a fast window (default 5 m) that reacts quickly, and a slow
//! window (default 1 h) that filters transient blips. An alert fires
//! only when **both** exceed their thresholds (the classic 14.4×/6×
//! multi-window pattern), which keeps pages rare and meaningful.
//!
//! Firing is edge-triggered: the transition into the firing state
//! emits one `slo.burn_alert` event and triggers a flight-recorder
//! dump (`slo.<name>`), so the black box captures what the system was
//! doing as the budget burned. Status renders as Prometheus-style
//! gauges plus `ALERTS{...}` lines via [`render_status`].

use crate::metrics::{HistogramSnapshot, RegistrySnapshot};
use std::collections::{BTreeSet, VecDeque};
use std::sync::Mutex;
use std::time::Duration;

/// The two evaluation windows and their burn-rate thresholds.
#[derive(Debug, Clone)]
pub struct SloWindows {
    /// Fast window (reacts quickly; default 5 minutes).
    pub fast: Duration,
    /// Slow window (filters blips; default 1 hour).
    pub slow: Duration,
    /// Fast-window burn threshold (default 14.4 — burns a 30-day
    /// budget in 2 days).
    pub fast_burn: f64,
    /// Slow-window burn threshold (default 6.0).
    pub slow_burn: f64,
}

impl Default for SloWindows {
    fn default() -> SloWindows {
        SloWindows {
            fast: Duration::from_secs(5 * 60),
            slow: Duration::from_secs(60 * 60),
            fast_burn: 14.4,
            slow_burn: 6.0,
        }
    }
}

/// What an objective measures.
#[derive(Debug, Clone)]
pub enum SloKind {
    /// "`objective` of observations in `histogram` are below
    /// `threshold_us`." Good events are counted by (interpolated)
    /// bucket mass under the threshold.
    Latency {
        /// Histogram name in the registry (`serve_latency_us`).
        histogram: String,
        /// The latency target in the histogram's unit (µs).
        threshold_us: u64,
    },
    /// "`objective` of events succeed": bad = sum of `errors`
    /// counters, total = sum of `total` counters.
    ErrorRate {
        /// Counter names whose sum is the bad-event count.
        errors: Vec<String>,
        /// Counter names whose sum is the total-event count.
        total: Vec<String>,
    },
}

/// One declarative objective.
#[derive(Debug, Clone)]
pub struct SloSpec {
    /// Stable name (`serve_latency_p99`, `serve_errors`); appears in
    /// gauges, alerts and dump triggers.
    pub name: String,
    /// The target good fraction in `0.0..1.0` (e.g. `0.99`). The
    /// error budget is `1 - objective`.
    pub objective: f64,
    /// What to measure.
    pub kind: SloKind,
    /// Evaluation windows and thresholds.
    pub windows: SloWindows,
}

impl SloSpec {
    /// A latency objective with default windows: `objective` of
    /// `histogram` observations below `threshold_us`.
    pub fn latency(name: &str, histogram: &str, threshold_us: u64, objective: f64) -> SloSpec {
        SloSpec {
            name: name.to_string(),
            objective,
            kind: SloKind::Latency {
                histogram: histogram.to_string(),
                threshold_us,
            },
            windows: SloWindows::default(),
        }
    }

    /// An error-rate objective with default windows.
    pub fn error_rate(name: &str, errors: &[&str], total: &[&str], objective: f64) -> SloSpec {
        SloSpec {
            name: name.to_string(),
            objective,
            kind: SloKind::ErrorRate {
                errors: errors.iter().map(|s| s.to_string()).collect(),
                total: total.iter().map(|s| s.to_string()).collect(),
            },
            windows: SloWindows::default(),
        }
    }
}

/// One objective's evaluated state.
#[derive(Debug, Clone, PartialEq)]
pub struct SloStatus {
    /// The spec's name.
    pub name: String,
    /// The spec's objective.
    pub objective: f64,
    /// Burn rate over the fast window (1.0 = exactly on budget).
    pub fast_burn: f64,
    /// Burn rate over the slow window.
    pub slow_burn: f64,
    /// Bad events in the fast window.
    pub fast_bad: u64,
    /// Total events in the fast window.
    pub fast_total: u64,
    /// Whether both windows exceed their thresholds right now.
    pub firing: bool,
}

/// Interpolated count of observations strictly below `threshold` in a
/// bucketed histogram delta (bounds as in
/// [`percentile_from_buckets`](crate::percentile_from_buckets): the
/// overflow bucket spans `last finite bound .. 2×`).
fn count_below(bounds: &[u64], counts: &[u64], threshold: u64) -> f64 {
    let mut good = 0.0f64;
    for (i, (&bound, &count)) in bounds.iter().zip(counts).enumerate() {
        if count == 0 {
            continue;
        }
        let lower = if i == 0 { 0 } else { bounds[i - 1] };
        let upper = if bound == u64::MAX {
            lower.saturating_mul(2).max(lower.saturating_add(1))
        } else {
            bound
        };
        if threshold >= upper {
            good += count as f64;
        } else if threshold > lower {
            let fraction = (threshold - lower) as f64 / (upper - lower).max(1) as f64;
            good += count as f64 * fraction.clamp(0.0, 1.0);
        }
    }
    good
}

fn histogram_delta(now: &HistogramSnapshot, then: Option<&HistogramSnapshot>) -> HistogramSnapshot {
    let mut counts = now.counts.clone();
    if let Some(then) = then {
        if then.bounds == now.bounds {
            for (c, &t) in counts.iter_mut().zip(&then.counts) {
                *c = c.saturating_sub(t);
            }
        }
    }
    HistogramSnapshot {
        bounds: now.bounds.clone(),
        counts,
        sum: now.sum.saturating_sub(then.map(|t| t.sum).unwrap_or(0)),
    }
}

fn sum_counters(snap: &RegistrySnapshot, names: &[String]) -> u64 {
    names
        .iter()
        .map(|n| snap.counters.get(n).copied().unwrap_or(0))
        .sum()
}

struct EngineState {
    /// `(at_us, snapshot)` pairs, oldest first.
    history: VecDeque<(u64, RegistrySnapshot)>,
    /// Names currently in the firing state (for edge detection).
    firing: BTreeSet<String>,
}

/// Evaluates a set of [`SloSpec`]s against a stream of registry
/// snapshots. Feed it snapshots with [`observe`], read alerts with
/// [`evaluate`]; the serve tier drives both from the watchdog's
/// cadence and from `metrics_text()` pulls.
///
/// [`observe`]: SloEngine::observe
/// [`evaluate`]: SloEngine::evaluate
pub struct SloEngine {
    specs: Vec<SloSpec>,
    state: Mutex<EngineState>,
    max_history: usize,
}

impl SloEngine {
    /// An engine over `specs`.
    pub fn new(specs: Vec<SloSpec>) -> SloEngine {
        SloEngine {
            specs,
            state: Mutex::new(EngineState {
                history: VecDeque::new(),
                firing: BTreeSet::new(),
            }),
            max_history: 4096,
        }
    }

    /// The configured objectives.
    pub fn specs(&self) -> &[SloSpec] {
        &self.specs
    }

    /// Record a snapshot taken at `now_us` (µs since process start,
    /// monotonic — [`crate::monotonic_us`]). History older than the
    /// longest slow window (plus one boundary entry) is discarded.
    pub fn observe(&self, now_us: u64, snapshot: RegistrySnapshot) {
        let keep_us = self
            .specs
            .iter()
            .map(|s| s.windows.slow.as_micros().min(u64::MAX as u128) as u64)
            .max()
            .unwrap_or(3_600_000_000);
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.history.push_back((now_us, snapshot));
        let cutoff = now_us.saturating_sub(keep_us);
        // Keep one entry older than the cutoff as the slow-window edge.
        while state.history.len() > 2 && state.history[1].0 < cutoff {
            state.history.pop_front();
        }
        while state.history.len() > self.max_history {
            state.history.pop_front();
        }
    }

    /// Bad/total deltas for `spec` between the newest snapshot and the
    /// newest snapshot at least `window` old (falling back to the
    /// oldest retained — early in a run the window is simply shorter).
    fn window_counts(
        &self,
        spec: &SloSpec,
        history: &VecDeque<(u64, RegistrySnapshot)>,
        now_us: u64,
        window: Duration,
    ) -> (f64, u64) {
        let Some((_, newest)) = history.back() else {
            return (0.0, 0);
        };
        let window_us = window.as_micros().min(u64::MAX as u128) as u64;
        let edge_ts = now_us.saturating_sub(window_us);
        let baseline = history
            .iter()
            .rev()
            .skip(1)
            .find(|(ts, _)| *ts <= edge_ts)
            .or_else(|| {
                history
                    .front()
                    .filter(|(ts, _)| *ts < history.back().map(|(t, _)| *t).unwrap_or(0))
            })
            .map(|(_, snap)| snap);
        match &spec.kind {
            SloKind::Latency {
                histogram,
                threshold_us,
            } => {
                let Some(now_hist) = newest.histograms.get(histogram) else {
                    return (0.0, 0);
                };
                let then_hist = baseline.and_then(|b| b.histograms.get(histogram));
                let delta = histogram_delta(now_hist, then_hist);
                let total = delta.count();
                if total == 0 {
                    return (0.0, 0);
                }
                let good = count_below(&delta.bounds, &delta.counts, *threshold_us);
                ((total as f64 - good).max(0.0), total)
            }
            SloKind::ErrorRate { errors, total } => {
                let bad_now = sum_counters(newest, errors);
                let total_now = sum_counters(newest, total);
                let (bad_then, total_then) = baseline
                    .map(|b| (sum_counters(b, errors), sum_counters(b, total)))
                    .unwrap_or((0, 0));
                (
                    bad_now.saturating_sub(bad_then) as f64,
                    total_now.saturating_sub(total_then),
                )
            }
        }
    }

    /// Evaluate every objective as of `now_us`. Transitions into the
    /// firing state emit one `slo.burn_alert` event and trigger a
    /// flight-recorder dump named `slo.<name>`.
    pub fn evaluate(&self, now_us: u64) -> Vec<SloStatus> {
        let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let mut statuses = Vec::with_capacity(self.specs.len());
        let mut newly_firing = Vec::new();
        let mut firing_now = BTreeSet::new();
        for spec in &self.specs {
            let budget = (1.0 - spec.objective).max(1e-9);
            let (fast_bad, fast_total) =
                self.window_counts(spec, &state.history, now_us, spec.windows.fast);
            let (slow_bad, slow_total) =
                self.window_counts(spec, &state.history, now_us, spec.windows.slow);
            let fast_burn = if fast_total == 0 {
                0.0
            } else {
                (fast_bad / fast_total as f64) / budget
            };
            let slow_burn = if slow_total == 0 {
                0.0
            } else {
                (slow_bad / slow_total as f64) / budget
            };
            let firing = fast_burn >= spec.windows.fast_burn && slow_burn >= spec.windows.slow_burn;
            if firing {
                firing_now.insert(spec.name.clone());
                if !state.firing.contains(&spec.name) {
                    newly_firing.push((spec.name.clone(), fast_burn, slow_burn));
                }
            }
            statuses.push(SloStatus {
                name: spec.name.clone(),
                objective: spec.objective,
                fast_burn,
                slow_burn,
                fast_bad: fast_bad.round() as u64,
                fast_total,
                firing,
            });
        }
        drop(state);
        self.state.lock().unwrap_or_else(|e| e.into_inner()).firing = firing_now;
        for (name, fast_burn, slow_burn) in newly_firing {
            let fast = format!("{fast_burn:.2}");
            let slow = format!("{slow_burn:.2}");
            crate::trace::event_with(
                "slo.burn_alert",
                &[("slo", &name), ("fast_burn", &fast), ("slow_burn", &slow)],
            );
            crate::recorder::trigger_dump(&format!("slo.{name}"), None);
        }
        statuses
    }

    /// [`observe`](SloEngine::observe) then
    /// [`evaluate`](SloEngine::evaluate) in one call.
    pub fn observe_and_evaluate(&self, now_us: u64, snapshot: RegistrySnapshot) -> Vec<SloStatus> {
        self.observe(now_us, snapshot);
        self.evaluate(now_us)
    }
}

/// Render statuses as Prometheus-style gauges plus `ALERTS` lines for
/// firing objectives (the shape scrapers and humans both expect).
pub fn render_status(statuses: &[SloStatus]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    if statuses.is_empty() {
        return out;
    }
    let _ = writeln!(out, "# TYPE slo_burn_rate gauge");
    for status in statuses {
        let _ = writeln!(
            out,
            "slo_burn_rate{{slo=\"{}\",window=\"fast\"}} {:.4}",
            status.name, status.fast_burn
        );
        let _ = writeln!(
            out,
            "slo_burn_rate{{slo=\"{}\",window=\"slow\"}} {:.4}",
            status.name, status.slow_burn
        );
    }
    let _ = writeln!(out, "# TYPE slo_firing gauge");
    for status in statuses {
        let _ = writeln!(
            out,
            "slo_firing{{slo=\"{}\"}} {}",
            status.name,
            u8::from(status.firing)
        );
    }
    for status in statuses.iter().filter(|s| s.firing) {
        let _ = writeln!(
            out,
            "ALERTS{{alertname=\"SloBurn_{}\",severity=\"page\"}} 1",
            status.name
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;
    use crate::test_support::tracing_lock;

    fn minutes_us(m: u64) -> u64 {
        m * 60 * 1_000_000
    }

    #[test]
    fn count_below_interpolates() {
        let bounds = [100, 1000, u64::MAX];
        // 10 obs in [0,100), 10 in [100,1000), 10 in the overflow.
        let counts = [10, 10, 10];
        assert_eq!(count_below(&bounds, &counts, 100) as u64, 10);
        // 550 is halfway through the second bucket.
        let mid = count_below(&bounds, &counts, 550);
        assert!((14.0..=16.0).contains(&mid), "{mid}");
        // Above the synthetic overflow top (2000) everything counts.
        assert_eq!(count_below(&bounds, &counts, 5000) as u64, 30);
        assert_eq!(count_below(&bounds, &counts, 0) as u64, 0);
    }

    #[test]
    fn quiet_system_burns_nothing() {
        let engine = SloEngine::new(vec![SloSpec::latency(
            "lat",
            "serve_latency_us",
            5_000,
            0.99,
        )]);
        let reg = MetricsRegistry::new();
        let statuses = engine.observe_and_evaluate(minutes_us(1), reg.snapshot());
        assert_eq!(statuses.len(), 1);
        assert_eq!(statuses[0].fast_burn, 0.0);
        assert!(!statuses[0].firing);
    }

    #[test]
    fn fast_latency_keeps_burn_low_and_slow_latency_fires() {
        let _guard = tracing_lock();
        let engine = SloEngine::new(vec![SloSpec::latency(
            "lat",
            "serve_latency_us",
            5_000,
            0.99,
        )]);
        let reg = MetricsRegistry::new();
        let hist = reg.histogram("serve_latency_us", &[1_000, 10_000, 100_000]);
        engine.observe(minutes_us(0), reg.snapshot());
        // 100 fast requests: all under threshold.
        for _ in 0..100 {
            hist.record(500);
        }
        let statuses = engine.observe_and_evaluate(minutes_us(1), reg.snapshot());
        assert!(statuses[0].fast_burn < 1.0, "{:?}", statuses[0]);
        assert!(!statuses[0].firing);
        // Now 100 requests at 50ms: ~100% bad vs a 1% budget → burn ~100
        // in both windows (history is short, so fast ≈ slow).
        for _ in 0..100 {
            hist.record(50_000);
        }
        let statuses = engine.observe_and_evaluate(minutes_us(2), reg.snapshot());
        assert!(
            statuses[0].fast_burn > 14.4 && statuses[0].slow_burn > 6.0,
            "{:?}",
            statuses[0]
        );
        assert!(statuses[0].firing);
        let text = render_status(&statuses);
        assert!(text.contains("slo_burn_rate{slo=\"lat\",window=\"fast\"}"));
        assert!(text.contains("slo_firing{slo=\"lat\"} 1"));
        assert!(text.contains("ALERTS{alertname=\"SloBurn_lat\",severity=\"page\"} 1"));
    }

    #[test]
    fn error_rate_objective_counts_counters() {
        let engine = SloEngine::new(vec![SloSpec::error_rate(
            "errors",
            &["serve_failed_total"],
            &["serve_total"],
            0.999,
        )]);
        let reg = MetricsRegistry::new();
        engine.observe(minutes_us(0), reg.snapshot());
        reg.counter("serve_total").add(1000);
        reg.counter("serve_failed_total").add(10); // 1% bad vs 0.1% budget
        let statuses = engine.observe_and_evaluate(minutes_us(1), reg.snapshot());
        assert!(
            (9.0..=11.0).contains(&statuses[0].fast_burn),
            "{:?}",
            statuses[0]
        );
        assert_eq!(statuses[0].fast_bad, 10);
        assert_eq!(statuses[0].fast_total, 1000);
    }

    #[test]
    fn firing_edge_emits_event_and_dump_once() {
        let _guard = tracing_lock();
        let collector = std::sync::Arc::new(crate::collect::RingCollector::new(64));
        crate::trace::install(collector.clone());
        let recorder = std::sync::Arc::new(crate::recorder::FlightRecorder::new(
            crate::recorder::RecorderConfig::default(),
        ));
        crate::recorder::install_recorder(std::sync::Arc::clone(&recorder));
        let engine = SloEngine::new(vec![SloSpec::error_rate("drill", &["bad"], &["all"], 0.99)]);
        let reg = MetricsRegistry::new();
        engine.observe(minutes_us(0), reg.snapshot());
        reg.counter("all").add(100);
        reg.counter("bad").add(100);
        let s1 = engine.observe_and_evaluate(minutes_us(1), reg.snapshot());
        assert!(s1[0].firing);
        // Still firing: no second alert.
        reg.counter("all").add(100);
        reg.counter("bad").add(100);
        let s2 = engine.observe_and_evaluate(minutes_us(2), reg.snapshot());
        assert!(s2[0].firing);
        crate::recorder::uninstall_recorder();
        crate::trace::uninstall();
        let alerts: Vec<_> = collector
            .events()
            .iter()
            .filter(|e| e.name == "slo.burn_alert")
            .cloned()
            .collect();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].field("slo"), Some("drill"));
        let dumps = recorder.dumps();
        assert_eq!(dumps.len(), 1);
        assert_eq!(dumps[0].trigger, "slo.drill");
    }

    #[test]
    fn windows_use_the_right_baseline() {
        // Bad traffic older than the fast window must not count in the
        // fast burn but must count in the slow burn.
        let mut spec = SloSpec::error_rate("w", &["bad"], &["all"], 0.99);
        spec.windows.fast = Duration::from_secs(60);
        spec.windows.slow = Duration::from_secs(3600);
        let engine = SloEngine::new(vec![spec]);
        let reg = MetricsRegistry::new();
        engine.observe(0, reg.snapshot());
        // t = 1 min: a burst of pure failures.
        reg.counter("all").add(100);
        reg.counter("bad").add(100);
        engine.observe(minutes_us(1), reg.snapshot());
        // t = 10 min: clean traffic since the burst.
        reg.counter("all").add(100);
        let statuses = engine.observe_and_evaluate(minutes_us(10), reg.snapshot());
        let s = &statuses[0];
        // Fast window (last 60s) saw only the clean 100.
        assert_eq!(s.fast_bad, 0, "{s:?}");
        assert_eq!(s.fast_total, 100, "{s:?}");
        // Slow window saw everything: 100 bad of 200.
        assert!(s.slow_burn > 6.0, "{s:?}");
        assert!(!s.firing, "fast window is clean → no page");
    }
}
