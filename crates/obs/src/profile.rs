//! Per-query execution profiles — the `EXPLAIN ANALYZE` of the stack.
//!
//! A [`QueryProfile`] breaks one query's life into the pipeline
//! phases of the paper's Fig. 2 (parse → analyze → cache lookup →
//! queue → execute → aggregate), with rows-scanned / cells-emitted
//! volume counters. Profiles are built with a [`ProfileBuilder`] and
//! travel with the result they describe: the serving layer attaches
//! the *producing* execution's profile to the cached outcome, so a
//! cache hit can still explain how its aggregate was computed.

use crate::json::Json;
use std::fmt;
use std::time::Instant;

/// A pipeline phase of one query execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Phase {
    /// Lexing + parsing the query text.
    Parse,
    /// Semantic analysis against the catalog.
    Analyze,
    /// Result-cache probe.
    CacheLookup,
    /// Waiting in the admission queue for a worker.
    Queue,
    /// Scanning the warehouse and building the cube / cells.
    Execute,
    /// Assembling the output shape (pivot, sorted cell list).
    Aggregate,
}

impl Phase {
    /// Stable lowercase name (used in JSON and Display).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Parse => "parse",
            Phase::Analyze => "analyze",
            Phase::CacheLookup => "cache_lookup",
            Phase::Queue => "queue",
            Phase::Execute => "execute",
            Phase::Aggregate => "aggregate",
        }
    }

    fn from_name(name: &str) -> Option<Phase> {
        match name {
            "parse" => Some(Phase::Parse),
            "analyze" => Some(Phase::Analyze),
            "cache_lookup" => Some(Phase::CacheLookup),
            "queue" => Some(Phase::Queue),
            "execute" => Some(Phase::Execute),
            "aggregate" => Some(Phase::Aggregate),
            _ => None,
        }
    }
}

/// The completed profile of one query execution.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QueryProfile {
    /// `(phase, µs)` in execution order. A phase recorded twice (e.g.
    /// parse at admission and again on the worker) appears twice.
    pub phases: Vec<(Phase, u64)>,
    /// Fact rows visited by the execute phase.
    pub rows_scanned: u64,
    /// Sealed segments the execute phase skipped on zone-map /
    /// footprint evidence alone (0 for unsegmented scans).
    pub segments_pruned: u64,
    /// Output cells produced by the aggregate phase.
    pub cells_emitted: u64,
    /// Morsels the vectorized scan claimed from the work queue (0 for
    /// scalar and legacy scans).
    pub morsels_executed: u64,
    /// Mean rows per executed morsel (0 when no morsels ran) — the
    /// effective scan granularity after segment-boundary clipping.
    pub rows_per_morsel: u64,
    /// End-to-end duration from builder start to finish (µs).
    pub total_us: u64,
    /// The trace the execution ran under, when tracing was enabled.
    pub trace: Option<u64>,
}

impl QueryProfile {
    /// Total µs recorded for `phase` (summing repeats).
    pub fn phase_us(&self, phase: Phase) -> u64 {
        self.phases
            .iter()
            .filter(|(p, _)| *p == phase)
            .map(|(_, us)| us)
            .sum()
    }

    /// Sum of all phase durations (µs). Bounded above by
    /// [`QueryProfile::total_us`] up to clock granularity; the
    /// difference is unattributed overhead.
    pub fn phases_total_us(&self) -> u64 {
        self.phases.iter().map(|(_, us)| us).sum()
    }

    /// Whether any phase was recorded.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// Encode as JSON (the shape documented in EXPERIMENTS.md).
    pub fn to_json(&self) -> Json {
        let mut obj = vec![
            (
                "phases",
                Json::Arr(
                    self.phases
                        .iter()
                        .map(|(p, us)| {
                            Json::obj([("phase", Json::from(p.name())), ("us", Json::from(*us))])
                        })
                        .collect(),
                ),
            ),
            ("rows_scanned", Json::from(self.rows_scanned)),
            ("segments_pruned", Json::from(self.segments_pruned)),
            ("cells_emitted", Json::from(self.cells_emitted)),
            ("morsels_executed", Json::from(self.morsels_executed)),
            ("rows_per_morsel", Json::from(self.rows_per_morsel)),
            ("total_us", Json::from(self.total_us)),
        ];
        if let Some(trace) = self.trace {
            obj.push(("trace", Json::from(trace)));
        }
        Json::obj(obj)
    }

    /// Decode the shape produced by [`QueryProfile::to_json`].
    pub fn from_json(value: &Json) -> Option<QueryProfile> {
        let phases = value
            .get("phases")?
            .as_arr()?
            .iter()
            .map(|p| {
                Some((
                    Phase::from_name(p.get("phase")?.as_str()?)?,
                    p.get("us")?.as_u64()?,
                ))
            })
            .collect::<Option<Vec<_>>>()?;
        Some(QueryProfile {
            phases,
            rows_scanned: value.get("rows_scanned")?.as_u64()?,
            // Absent in profiles serialized before segmented scans
            // existed; read tolerantly.
            segments_pruned: value
                .get("segments_pruned")
                .and_then(Json::as_u64)
                .unwrap_or(0),
            cells_emitted: value.get("cells_emitted")?.as_u64()?,
            // Absent before morsel-driven scans; read tolerantly.
            morsels_executed: value
                .get("morsels_executed")
                .and_then(Json::as_u64)
                .unwrap_or(0),
            rows_per_morsel: value
                .get("rows_per_morsel")
                .and_then(Json::as_u64)
                .unwrap_or(0),
            total_us: value.get("total_us")?.as_u64()?,
            trace: value.get("trace").and_then(Json::as_u64),
        })
    }
}

impl fmt::Display for QueryProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Query Profile  (total {}µs, {} rows scanned, {} segments pruned, {} morsels, {} cells emitted)",
            self.total_us,
            self.rows_scanned,
            self.segments_pruned,
            self.morsels_executed,
            self.cells_emitted
        )?;
        let total = self.total_us.max(1) as f64;
        for (phase, us) in &self.phases {
            writeln!(
                f,
                "  {:<12} {:>9}µs  {:>5.1}%",
                phase.name(),
                us,
                *us as f64 / total * 100.0
            )?;
        }
        let unattributed = self.total_us.saturating_sub(self.phases_total_us());
        write!(
            f,
            "  {:<12} {:>9}µs  {:>5.1}%",
            "(overhead)",
            unattributed,
            unattributed as f64 / total * 100.0
        )
    }
}

/// Accumulates phase timings into a [`QueryProfile`].
///
/// The builder is the sanctioned way to time query phases in crates
/// the `no-raw-timing` lint covers: it owns the `Instant` reads.
#[derive(Debug)]
pub struct ProfileBuilder {
    started: Instant,
    profile: QueryProfile,
}

impl ProfileBuilder {
    /// Start the end-to-end clock.
    pub fn start() -> ProfileBuilder {
        ProfileBuilder {
            started: Instant::now(),
            profile: QueryProfile {
                trace: crate::trace::current_context().map(|c| c.trace.0),
                ..QueryProfile::default()
            },
        }
    }

    /// Run `work`, recording its duration under `phase`.
    pub fn time<R>(&mut self, phase: Phase, work: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let out = work();
        self.record_us(phase, t0.elapsed().as_micros().min(u64::MAX as u128) as u64);
        out
    }

    /// Record an externally measured duration under `phase` (used for
    /// queue wait, where the interval spans two threads).
    pub fn record_us(&mut self, phase: Phase, us: u64) {
        self.profile.phases.push((phase, us));
    }

    /// Set the rows-scanned volume counter.
    pub fn rows_scanned(&mut self, rows: u64) {
        self.profile.rows_scanned = rows;
    }

    /// Set the segments-pruned volume counter.
    pub fn segments_pruned(&mut self, segments: u64) {
        self.profile.segments_pruned = segments;
    }

    /// Set the cells-emitted volume counter.
    pub fn cells_emitted(&mut self, cells: u64) {
        self.profile.cells_emitted = cells;
    }

    /// Set the morsel volume counters from a scan's morsel count and
    /// the rows it covered: `rows_per_morsel` is the mean morsel size
    /// after segment-boundary clipping (0 when no morsels ran).
    pub fn morsels(&mut self, executed: u64, rows_covered: u64) {
        self.profile.morsels_executed = executed;
        self.profile.rows_per_morsel = rows_covered.checked_div(executed).unwrap_or(0);
    }

    /// µs elapsed since [`ProfileBuilder::start`] — the sanctioned
    /// read for deadline-style checks inside profiled sections.
    pub fn elapsed_us(&self) -> u64 {
        self.started.elapsed().as_micros().min(u64::MAX as u128) as u64
    }

    /// Stop the end-to-end clock and freeze the profile.
    pub fn finish(mut self) -> QueryProfile {
        self.profile.total_us = self.elapsed_us();
        if self.profile.trace.is_none() {
            self.profile.trace = crate::trace::current_context().map(|c| c.trace.0);
        }
        self.profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    // Sleep granularity is unreliable under CI schedulers; spin on the
    // monotonic clock so elapsed time is what we asked for.
    fn busy_wait(d: Duration) {
        let t0 = Instant::now();
        while t0.elapsed() < d {
            std::hint::spin_loop();
        }
    }

    #[test]
    fn phases_sum_close_to_total() {
        let mut pb = ProfileBuilder::start();
        pb.time(Phase::Parse, || busy_wait(Duration::from_millis(5)));
        pb.time(Phase::Execute, || busy_wait(Duration::from_millis(20)));
        pb.rows_scanned(100);
        pb.cells_emitted(7);
        let profile = pb.finish();
        assert_eq!(profile.phases.len(), 2);
        assert!(profile.phase_us(Phase::Execute) >= profile.phase_us(Phase::Parse));
        let sum = profile.phases_total_us();
        assert!(sum <= profile.total_us + 1000);
        assert!(
            (profile.total_us as f64 - sum as f64).abs() / profile.total_us as f64 <= 0.10,
            "phase sum {sum} vs total {}",
            profile.total_us
        );
    }

    #[test]
    fn display_lists_every_phase_with_shares() {
        let profile = QueryProfile {
            phases: vec![(Phase::Parse, 100), (Phase::Execute, 900)],
            rows_scanned: 2500,
            segments_pruned: 3,
            cells_emitted: 12,
            morsels_executed: 4,
            rows_per_morsel: 625,
            total_us: 1100,
            trace: Some(3),
        };
        let text = profile.to_string();
        assert!(text.contains("parse"));
        assert!(text.contains("execute"));
        assert!(text.contains("2500 rows scanned"));
        assert!(text.contains("4 morsels"));
        assert!(text.contains("(overhead)"));
        assert!(text.contains("90.0%") || text.contains("81.8%"), "{text}");
    }

    #[test]
    fn profile_round_trips_through_json() {
        let profile = QueryProfile {
            phases: vec![
                (Phase::Parse, 10),
                (Phase::Analyze, 20),
                (Phase::CacheLookup, 1),
                (Phase::Queue, 40),
                (Phase::Execute, 400),
                (Phase::Aggregate, 30),
            ],
            rows_scanned: 999,
            segments_pruned: 7,
            cells_emitted: 42,
            morsels_executed: 3,
            rows_per_morsel: 333,
            total_us: 510,
            trace: None,
        };
        let json = profile.to_json().render();
        assert_eq!(
            QueryProfile::from_json(&Json::parse(&json).unwrap()),
            Some(profile)
        );
    }

    #[test]
    fn morsel_setter_computes_mean_rows() {
        let mut pb = ProfileBuilder::start();
        pb.morsels(4, 1000);
        let profile = pb.finish();
        assert_eq!(profile.morsels_executed, 4);
        assert_eq!(profile.rows_per_morsel, 250);

        let mut none = ProfileBuilder::start();
        none.morsels(0, 0);
        let profile = none.finish();
        assert_eq!(profile.rows_per_morsel, 0);
    }

    #[test]
    fn profiles_without_morsel_fields_decode_to_zero() {
        // Serialized by a pre-morsel build: fields absent entirely.
        let json =
            Json::parse("{\"phases\":[],\"rows_scanned\":5,\"cells_emitted\":1,\"total_us\":9}")
                .unwrap();
        let profile = QueryProfile::from_json(&json).unwrap();
        assert_eq!(profile.morsels_executed, 0);
        assert_eq!(profile.rows_per_morsel, 0);
    }

    #[test]
    fn repeated_phases_accumulate() {
        let profile = QueryProfile {
            phases: vec![(Phase::Parse, 10), (Phase::Parse, 5)],
            ..QueryProfile::default()
        };
        assert_eq!(profile.phase_us(Phase::Parse), 15);
        assert_eq!(profile.phases_total_us(), 15);
    }
}
