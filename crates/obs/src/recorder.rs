//! The flight recorder: an always-on ring of recent observability
//! records that can be snapshotted into a self-contained "black box"
//! when something goes wrong.
//!
//! The recorder is the incident-time complement to the subscriber
//! pipeline: subscribers stream *everything* to whoever asked, while
//! the recorder keeps the *recent past* — spans, events, failpoint
//! hits, lock-rank acquisitions, metric deltas — in fixed memory so
//! that a trigger (worker panic, circuit-breaker open, deadline
//! blowout, watchdog stall, explicit call) can capture what the whole
//! process was doing in the seconds before the incident.
//!
//! Capture is thread-sharded: each thread appends to its own bounded
//! ring behind a private mutex, so hot serving threads never contend
//! with each other — the only cross-thread contention is with a dump
//! in progress, which is rare by construction. The disabled path is a
//! single relaxed atomic load, matching the tracing layer and the
//! fault registry.
//!
//! Span and event capture is **head-sampled**: recording the full
//! firehose of healthy traffic would both tax the serving hot path
//! and flush the bounded ring in milliseconds, erasing the incident
//! window the recorder exists to keep. One trace in
//! [`RecorderConfig::span_sample_every`] is captured end to end for
//! texture; everything else enters the ring only when it is
//! *interesting*: failure paths promote their trace explicitly
//! ([`crate::promote_trace`]), spans on watchdog-registered threads
//! that run past [`RecorderConfig::span_min_elapsed_us`] are kept as
//! slow outliers, and events outside any span (stalls, breaker trips,
//! dump markers) always land. Failpoint evaluations and ranked-lock
//! traffic are never sampled — they are rare and signal-bearing.
//!
//! A dump ([`FlightRecorder::dump`] or the global [`trigger_dump`])
//! freezes the last [`RecorderConfig::window`] of records together
//! with every live worker's current span path and held lock ranks
//! (from [`crate::watchdog`]) and per-source metric deltas, producing
//! a [`BlackBox`] that serialises losslessly to JSONL via the same
//! codec the exporters use. The `black-box` bin in `crates/analyze`
//! pretty-prints these for post-mortems.

use crate::json::Json;
use crate::lockrank::LockRank;
use crate::metrics::{RegistryDelta, RegistrySnapshot};
use crate::trace::{monotonic_us, EventRecord, SpanRecord, TraceId};
use crate::watchdog::ThreadState;
use std::cell::Cell;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

/// One captured record in the flight ring.
#[derive(Debug, Clone, PartialEq)]
pub enum FlightRecord {
    /// A completed span (same shape the subscribers see).
    Span(SpanRecord),
    /// A fired event.
    Event(EventRecord),
    /// A failpoint was evaluated (`fired` = it actually injected).
    Failpoint {
        /// Failpoint name (`serve.execute`, …).
        name: String,
        /// Whether the trigger matched and the fault was injected.
        fired: bool,
        /// Offset from process start (µs, monotonic).
        at_us: u64,
        /// Thread the failpoint was evaluated on.
        thread: String,
    },
    /// A ranked lock was acquired or released.
    Lock {
        /// The lock's stable name (`serve.warehouse`, …).
        name: String,
        /// The lock's rank name in the global hierarchy.
        rank: String,
        /// `true` on acquisition, `false` on release.
        acquired: bool,
        /// Offset from process start (µs, monotonic).
        at_us: u64,
        /// Thread that touched the lock.
        thread: String,
    },
    /// A counter (or histogram observation count) moved between two
    /// periodic registry samples.
    Metric {
        /// `source.metric_name` (source = the attach label).
        name: String,
        /// The increment since the previous sample.
        delta: u64,
        /// Offset from process start (µs, monotonic).
        at_us: u64,
    },
}

impl FlightRecord {
    /// The record's timestamp (span records use their close time, so
    /// windowing keeps spans that *finished* recently).
    pub fn at_us(&self) -> u64 {
        match self {
            FlightRecord::Span(s) => s.start_us.saturating_add(s.elapsed_us),
            FlightRecord::Event(e) => e.at_us,
            FlightRecord::Failpoint { at_us, .. }
            | FlightRecord::Lock { at_us, .. }
            | FlightRecord::Metric { at_us, .. } => *at_us,
        }
    }

    /// Encode as a single-line JSON object (the JSONL wire shape).
    /// Span and event records reuse their subscriber encodings, so a
    /// black box parses with the same machinery as a JSONL export.
    pub fn to_json(&self) -> Json {
        match self {
            FlightRecord::Span(s) => s.to_json(),
            FlightRecord::Event(e) => e.to_json(),
            FlightRecord::Failpoint {
                name,
                fired,
                at_us,
                thread,
            } => Json::obj([
                ("kind", Json::from("failpoint")),
                ("name", Json::from(name.as_str())),
                ("fired", Json::from(*fired)),
                ("at_us", Json::from(*at_us)),
                ("thread", Json::from(thread.as_str())),
            ]),
            FlightRecord::Lock {
                name,
                rank,
                acquired,
                at_us,
                thread,
            } => Json::obj([
                ("kind", Json::from("lock")),
                ("name", Json::from(name.as_str())),
                ("rank", Json::from(rank.as_str())),
                ("acquired", Json::from(*acquired)),
                ("at_us", Json::from(*at_us)),
                ("thread", Json::from(thread.as_str())),
            ]),
            FlightRecord::Metric { name, delta, at_us } => Json::obj([
                ("kind", Json::from("metric")),
                ("name", Json::from(name.as_str())),
                ("delta", Json::from(*delta)),
                ("at_us", Json::from(*at_us)),
            ]),
        }
    }

    /// Decode any record shape produced by [`FlightRecord::to_json`].
    pub fn from_json(value: &Json) -> Option<FlightRecord> {
        match value.get("kind")?.as_str()? {
            "span" => SpanRecord::from_json(value).map(FlightRecord::Span),
            "event" => EventRecord::from_json(value).map(FlightRecord::Event),
            "failpoint" => Some(FlightRecord::Failpoint {
                name: value.get("name")?.as_str()?.to_string(),
                fired: matches!(value.get("fired"), Some(Json::Bool(true))),
                at_us: value.get("at_us")?.as_u64()?,
                thread: value.get("thread")?.as_str()?.to_string(),
            }),
            "lock" => Some(FlightRecord::Lock {
                name: value.get("name")?.as_str()?.to_string(),
                rank: value.get("rank")?.as_str()?.to_string(),
                acquired: matches!(value.get("acquired"), Some(Json::Bool(true))),
                at_us: value.get("at_us")?.as_u64()?,
                thread: value.get("thread")?.as_str()?.to_string(),
            }),
            "metric" => Some(FlightRecord::Metric {
                name: value.get("name")?.as_str()?.to_string(),
                delta: value.get("delta")?.as_u64()?,
                at_us: value.get("at_us")?.as_u64()?,
            }),
            _ => None,
        }
    }
}

fn delta_counters_to_json(map: &BTreeMap<String, u64>) -> Json {
    Json::Obj(
        map.iter()
            .map(|(k, &v)| (k.clone(), Json::from(v)))
            .collect(),
    )
}

fn delta_counters_from_json(value: Option<&Json>) -> BTreeMap<String, u64> {
    match value {
        Some(Json::Obj(map)) => map
            .iter()
            .filter_map(|(k, v)| Some((k.clone(), v.as_u64()?)))
            .collect(),
        _ => BTreeMap::new(),
    }
}

fn delta_to_json(source: &str, delta: &RegistryDelta) -> Json {
    Json::obj([
        ("kind", Json::from("metrics")),
        ("source", Json::from(source)),
        ("counters", delta_counters_to_json(&delta.counters)),
        (
            "gauges",
            Json::Obj(
                delta
                    .gauges
                    .iter()
                    .map(|(k, &v)| (k.clone(), Json::from(v)))
                    .collect(),
            ),
        ),
        ("observations", delta_counters_to_json(&delta.observations)),
    ])
}

fn delta_from_json(value: &Json) -> Option<(String, RegistryDelta)> {
    if value.get("kind")?.as_str()? != "metrics" {
        return None;
    }
    let gauges = match value.get("gauges") {
        Some(Json::Obj(map)) => map
            .iter()
            .filter_map(|(k, v)| Some((k.clone(), v.as_i64()?)))
            .collect(),
        _ => BTreeMap::new(),
    };
    Some((
        value.get("source")?.as_str()?.to_string(),
        RegistryDelta {
            counters: delta_counters_from_json(value.get("counters")),
            gauges,
            observations: delta_counters_from_json(value.get("observations")),
        },
    ))
}

/// A frozen incident snapshot: the triggering context, every live
/// worker's state at dump time, per-source metric deltas since the
/// recorder attached, and the windowed flight records.
#[derive(Debug, Clone, PartialEq)]
pub struct BlackBox {
    /// Monotonic dump sequence number within this recorder.
    pub seq: u64,
    /// What fired the dump (`serve.breaker_open`, `watchdog.stall`,
    /// `manual`, …).
    pub trigger: String,
    /// The trace at the centre of the incident, when the trigger had
    /// one (it leads the header line of the JSONL form).
    pub trace: Option<TraceId>,
    /// Dump time (µs since process start, monotonic).
    pub at_us: u64,
    /// Every registered worker's span path, held lock ranks and
    /// heartbeat at dump time.
    pub threads: Vec<ThreadState>,
    /// Per-source metric movement since the source was attached.
    pub metrics: Vec<(String, RegistryDelta)>,
    /// The windowed flight records, oldest first.
    pub records: Vec<FlightRecord>,
}

impl BlackBox {
    /// Serialise to self-contained JSONL: one `blackbox` header line
    /// (trigger and trace front and centre), then `thread` lines,
    /// `metrics` lines, and finally the flight records.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let mut header = vec![
            ("kind", Json::from("blackbox")),
            ("seq", Json::from(self.seq)),
            ("trigger", Json::from(self.trigger.as_str())),
            ("at_us", Json::from(self.at_us)),
            ("threads", Json::from(self.threads.len())),
            ("records", Json::from(self.records.len())),
        ];
        if let Some(trace) = self.trace {
            header.push(("trace", Json::from(trace.0)));
        }
        out.push_str(&Json::obj(header).render());
        out.push('\n');
        for thread in &self.threads {
            out.push_str(&thread.to_json().render());
            out.push('\n');
        }
        for (source, delta) in &self.metrics {
            out.push_str(&delta_to_json(source, delta).render());
            out.push('\n');
        }
        for record in &self.records {
            out.push_str(&record.to_json().render());
            out.push('\n');
        }
        out
    }

    /// Parse the JSONL shape produced by [`BlackBox::to_jsonl`].
    /// Returns `None` when the first line is not a black-box header;
    /// unparseable later lines are skipped (reads are best-effort).
    pub fn parse(text: &str) -> Option<BlackBox> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = Json::parse(lines.next()?)?;
        if header.get("kind")?.as_str()? != "blackbox" {
            return None;
        }
        let mut black_box = BlackBox {
            seq: header.get("seq")?.as_u64()?,
            trigger: header.get("trigger")?.as_str()?.to_string(),
            trace: header.get("trace").and_then(Json::as_u64).map(TraceId),
            at_us: header.get("at_us")?.as_u64()?,
            threads: Vec::new(),
            metrics: Vec::new(),
            records: Vec::new(),
        };
        for line in lines {
            let Some(value) = Json::parse(line) else {
                continue;
            };
            if let Some(thread) = ThreadState::from_json(&value) {
                black_box.threads.push(thread);
            } else if let Some((source, delta)) = delta_from_json(&value) {
                black_box.metrics.push((source, delta));
            } else if let Some(record) = FlightRecord::from_json(&value) {
                black_box.records.push(record);
            }
        }
        Some(black_box)
    }

    /// Write the JSONL form to `writer`, flushing at the end so a
    /// black box on disk is never truncated mid-record.
    pub fn write_to<W: std::io::Write>(&self, writer: &mut W) -> std::io::Result<()> {
        writer.write_all(self.to_jsonl().as_bytes())?;
        writer.flush()
    }

    /// The span records inside this black box (for trace rendering).
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.records
            .iter()
            .filter_map(|r| match r {
                FlightRecord::Span(s) => Some(s.clone()),
                _ => None,
            })
            .collect()
    }
}

/// Sizing and retention knobs for a [`FlightRecorder`].
#[derive(Debug, Clone)]
pub struct RecorderConfig {
    /// Total record capacity, split evenly across the thread shards.
    /// Oldest records are evicted (and counted) under pressure.
    pub capacity: usize,
    /// How far back a dump reaches: records older than this at dump
    /// time are excluded even if still resident.
    pub window: Duration,
    /// How many completed black boxes to retain in memory (oldest
    /// evicted first). Dumps are also handed back to the caller.
    pub max_dumps: usize,
    /// Head-sampling rate for span/event capture: one trace in this
    /// many is recorded end to end (`1` = capture everything; rounded
    /// up to a power of two so the hot-path check is a mask, not a
    /// division). Error paths bypass sampling via
    /// [`crate::promote_trace`].
    pub span_sample_every: u64,
    /// Spans on watchdog-registered threads whose wall time reaches
    /// this many microseconds are captured even when their trace was
    /// not sampled — slow outliers are always interesting.
    pub span_min_elapsed_us: u64,
}

impl Default for RecorderConfig {
    fn default() -> RecorderConfig {
        RecorderConfig {
            capacity: 8192,
            window: Duration::from_secs(30),
            max_dumps: 8,
            span_sample_every: 128,
            span_min_elapsed_us: 100,
        }
    }
}

/// Number of per-thread ring shards. Threads are striped across the
/// shards round-robin at first touch; with a worker pool smaller than
/// this, every worker effectively owns a private ring.
const SHARDS: usize = 16;

struct MetricSource {
    name: String,
    read: Box<dyn Fn() -> Option<RegistrySnapshot> + Send + Sync>,
    /// Snapshot at attach time — dump deltas are measured from here.
    baseline: RegistrySnapshot,
    /// Snapshot at the previous periodic sample — ring deltas are
    /// measured from here.
    last: Mutex<RegistrySnapshot>,
}

/// The always-on flight recorder. See the [module docs](self) for the
/// capture model; most callers interact through the module-level
/// globals ([`install_recorder`], [`trigger_dump`]) rather than
/// holding the recorder directly.
pub struct FlightRecorder {
    config: RecorderConfig,
    shards: Vec<Mutex<VecDeque<FlightRecord>>>,
    per_shard: usize,
    dropped: AtomicU64,
    seq: AtomicU64,
    sources: Mutex<Vec<Arc<MetricSource>>>,
    dumps: Mutex<VecDeque<BlackBox>>,
}

impl FlightRecorder {
    /// A recorder with the given sizing.
    pub fn new(config: RecorderConfig) -> FlightRecorder {
        let per_shard = (config.capacity / SHARDS).max(8);
        FlightRecorder {
            shards: (0..SHARDS).map(|_| Mutex::new(VecDeque::new())).collect(),
            per_shard,
            dropped: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            sources: Mutex::new(Vec::new()),
            dumps: Mutex::new(VecDeque::new()),
            config,
        }
    }

    /// The recorder's configuration.
    pub fn config(&self) -> &RecorderConfig {
        &self.config
    }

    fn shard(&self) -> &Mutex<VecDeque<FlightRecord>> {
        thread_local! {
            static STRIPE: Cell<Option<usize>> = const { Cell::new(None) };
        }
        static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);
        let stripe = STRIPE.with(|s| match s.get() {
            Some(stripe) => stripe,
            None => {
                let stripe = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed);
                s.set(Some(stripe));
                stripe
            }
        });
        &self.shards[stripe % self.shards.len()]
    }

    /// Append one record to this thread's ring shard.
    pub fn push(&self, record: FlightRecord) {
        let mut ring = self.shard().lock().unwrap_or_else(|e| e.into_inner());
        if ring.len() >= self.per_shard {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(record);
    }

    /// Number of records evicted because a shard ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// A copy of every resident record, oldest first (merged across
    /// shards by timestamp).
    pub fn records(&self) -> Vec<FlightRecord> {
        let mut all = Vec::new();
        for shard in &self.shards {
            let ring = shard.lock().unwrap_or_else(|e| e.into_inner());
            all.extend(ring.iter().cloned());
        }
        all.sort_by_key(FlightRecord::at_us);
        all
    }

    /// Register a metric source: `read` is polled by the watchdog (and
    /// at dump time); counter/observation movement lands in the ring
    /// as [`FlightRecord::Metric`] records and dumps carry the full
    /// delta since attach. `read` returning `None` (e.g. a dropped
    /// `Weak` owner) detaches the source lazily.
    pub fn attach_metrics(
        &self,
        name: &str,
        read: Box<dyn Fn() -> Option<RegistrySnapshot> + Send + Sync>,
    ) {
        let baseline = read().unwrap_or_default();
        let source = Arc::new(MetricSource {
            name: name.to_string(),
            read,
            last: Mutex::new(baseline.clone()),
            baseline,
        });
        self.sources
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(source);
    }

    /// Poll every metric source, recording counter/observation deltas
    /// since the previous poll into the ring. Sources whose reader
    /// returns `None` are dropped. Called periodically by the
    /// watchdog; harmless to call directly.
    pub fn sample_metrics(&self) {
        let sources: Vec<Arc<MetricSource>> = self
            .sources
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        let now = monotonic_us();
        let mut dead = Vec::new();
        for source in &sources {
            let Some(snap) = (source.read)() else {
                dead.push(source.name.clone());
                continue;
            };
            let delta = {
                let mut last = source.last.lock().unwrap_or_else(|e| e.into_inner());
                let delta = snap.diff(&last);
                *last = snap;
                delta
            };
            for (metric, &inc) in delta.counters.iter().chain(delta.observations.iter()) {
                if inc > 0 {
                    self.push(FlightRecord::Metric {
                        name: format!("{}.{}", source.name, metric),
                        delta: inc,
                        at_us: now,
                    });
                }
            }
        }
        if !dead.is_empty() {
            self.sources
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .retain(|s| !dead.contains(&s.name));
        }
    }

    /// Snapshot the last [`RecorderConfig::window`] into a
    /// [`BlackBox`], retaining a copy in the dump buffer and handing
    /// one back. Captures every registered worker's current state
    /// from the watchdog's active-task table.
    pub fn dump(&self, trigger: &str, trace: Option<TraceId>) -> BlackBox {
        let now = monotonic_us();
        let window_us = self.config.window.as_micros().min(u64::MAX as u128) as u64;
        let cutoff = now.saturating_sub(window_us);
        let records: Vec<FlightRecord> = self
            .records()
            .into_iter()
            .filter(|r| r.at_us() >= cutoff)
            .collect();
        let sources: Vec<Arc<MetricSource>> = self
            .sources
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        let metrics = sources
            .iter()
            .filter_map(|source| {
                let snap = (source.read)()?;
                Some((source.name.clone(), snap.diff(&source.baseline)))
            })
            .collect();
        let black_box = BlackBox {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            trigger: trigger.to_string(),
            trace,
            at_us: now,
            threads: crate::watchdog::thread_states(),
            metrics,
            records,
        };
        let mut dumps = self.dumps.lock().unwrap_or_else(|e| e.into_inner());
        while dumps.len() >= self.config.max_dumps.max(1) {
            dumps.pop_front();
        }
        dumps.push_back(black_box.clone());
        black_box
    }

    /// The retained black boxes, oldest first.
    pub fn dumps(&self) -> Vec<BlackBox> {
        self.dumps
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect()
    }

    /// The most recent black box, if any dump has fired.
    pub fn last_dump(&self) -> Option<BlackBox> {
        self.dumps
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .back()
            .cloned()
    }
}

/// Fast gate: one relaxed load decides whether capture hooks record.
static RECORDING: AtomicBool = AtomicBool::new(false);
static RECORDER: RwLock<Option<Arc<FlightRecorder>>> = RwLock::new(None);
/// Hot-path copies of the installed recorder's sampling knobs, so the
/// tracing layer reads one relaxed atomic instead of the `RwLock`.
/// The sample rate is stored as a power-of-two mask.
static SAMPLE_MASK: AtomicU64 = AtomicU64::new(127);
static SPAN_THRESHOLD_US: AtomicU64 = AtomicU64::new(100);

/// Whether a global recorder is installed — the hot-path gate every
/// capture hook checks first.
#[inline]
pub fn recording() -> bool {
    RECORDING.load(Ordering::Relaxed)
}

/// Whether `trace` falls in the installed recorder's head sample.
/// `false` when no recorder is live.
#[inline]
pub(crate) fn head_sampled(trace: TraceId) -> bool {
    recording() && trace.0 & SAMPLE_MASK.load(Ordering::Relaxed) == 0
}

/// The installed recorder's slow-span capture threshold (µs).
#[inline]
pub(crate) fn span_threshold_us() -> u64 {
    SPAN_THRESHOLD_US.load(Ordering::Relaxed)
}

/// Install `recorder` as the process-global flight recorder. Capture
/// hooks in the tracing, lockrank and fault layers start feeding it
/// immediately. Replaces any previous recorder (last install wins).
pub fn install_recorder(recorder: Arc<FlightRecorder>) {
    let every = recorder.config.span_sample_every.clamp(1, 1 << 63);
    SAMPLE_MASK.store(every.next_power_of_two() - 1, Ordering::Relaxed);
    SPAN_THRESHOLD_US.store(recorder.config.span_min_elapsed_us, Ordering::Relaxed);
    *RECORDER.write().unwrap_or_else(|e| e.into_inner()) = Some(recorder);
    RECORDING.store(true, Ordering::Release);
}

/// Remove and return the global recorder, stopping capture.
pub fn uninstall_recorder() -> Option<Arc<FlightRecorder>> {
    RECORDING.store(false, Ordering::Release);
    RECORDER.write().unwrap_or_else(|e| e.into_inner()).take()
}

/// The currently installed global recorder, if any.
pub fn recorder() -> Option<Arc<FlightRecorder>> {
    RECORDER
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .as_ref()
        .cloned()
}

/// Fire a dump on the global recorder. Emits an `obs.flight_dump`
/// event (so the trigger itself lands in traces) and returns the
/// captured black box, or `None` when no recorder is installed.
pub fn trigger_dump(trigger: &str, trace: Option<TraceId>) -> Option<BlackBox> {
    let recorder = recorder()?;
    let black_box = recorder.dump(trigger, trace);
    crate::trace::event_with(
        "obs.flight_dump",
        &[("trigger", &trigger), ("seq", &black_box.seq)],
    );
    Some(black_box)
}

fn thread_name() -> String {
    std::thread::current().name().unwrap_or("?").to_string()
}

/// Capture hook for the tracing layer: a span closed and passed the
/// sampling gate. Takes ownership — the caller built the record and
/// hands it over, so admission costs no clone.
pub(crate) fn note_span(record: SpanRecord) {
    if !recording() {
        return;
    }
    if let Some(r) = recorder() {
        r.push(FlightRecord::Span(record));
    }
}

/// Capture hook for the tracing layer: an event fired and passed the
/// sampling gate. Takes ownership like [`note_span`].
pub(crate) fn note_event(record: EventRecord) {
    if !recording() {
        return;
    }
    if let Some(r) = recorder() {
        r.push(FlightRecord::Event(record));
    }
}

/// Capture hook for the fault layer: a failpoint was evaluated.
/// Public because `crates/fault` cannot name `pub(crate)` items; the
/// one-load disabled path makes it safe to call unconditionally.
pub fn note_failpoint(name: &str, fired: bool) {
    if !recording() {
        return;
    }
    if let Some(r) = recorder() {
        r.push(FlightRecord::Failpoint {
            name: name.to_string(),
            fired,
            at_us: monotonic_us(),
            thread: thread_name(),
        });
    }
}

/// Capture hook for the lockrank layer: a ranked lock was acquired or
/// released. Rides the rank-check path, so lock capture shares the
/// rank checks' enablement (on under `debug_assertions` by default).
pub(crate) fn note_lock(name: &'static str, rank: LockRank, acquired: bool) {
    if !recording() {
        return;
    }
    if let Some(r) = recorder() {
        r.push(FlightRecord::Lock {
            name: name.to_string(),
            rank: rank.name().to_string(),
            acquired,
            at_us: monotonic_us(),
            thread: thread_name(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;
    use crate::test_support::tracing_lock;

    #[test]
    fn records_round_trip_through_json() {
        let records = vec![
            FlightRecord::Failpoint {
                name: "serve.execute".into(),
                fired: true,
                at_us: 10,
                thread: "serve-worker-0".into(),
            },
            FlightRecord::Lock {
                name: "serve.warehouse".into(),
                rank: "Warehouse".into(),
                acquired: true,
                at_us: 11,
                thread: "serve-worker-0".into(),
            },
            FlightRecord::Metric {
                name: "serve.serve_hits_total".into(),
                delta: 3,
                at_us: 12,
            },
        ];
        for record in records {
            let text = record.to_json().render();
            assert_eq!(
                FlightRecord::from_json(&Json::parse(&text).unwrap()),
                Some(record)
            );
        }
    }

    #[test]
    fn ring_evicts_oldest_per_shard() {
        let recorder = FlightRecorder::new(RecorderConfig {
            capacity: 0, // clamps to 8 per shard
            ..RecorderConfig::default()
        });
        for i in 0..20u64 {
            recorder.push(FlightRecord::Metric {
                name: "m".into(),
                delta: i,
                at_us: i,
            });
        }
        // This thread maps to one shard, so capacity 8 applies.
        assert_eq!(recorder.records().len(), 8);
        assert_eq!(recorder.dropped(), 12);
    }

    #[test]
    fn dump_windows_and_round_trips() {
        let _guard = tracing_lock();
        let recorder = FlightRecorder::new(RecorderConfig {
            capacity: 1024,
            window: Duration::from_secs(3600),
            max_dumps: 2,
            ..RecorderConfig::default()
        });
        recorder.push(FlightRecord::Metric {
            name: "old".into(),
            delta: 1,
            at_us: 0, // will survive: window is an hour
        });
        recorder.push(FlightRecord::Failpoint {
            name: "wal.append".into(),
            fired: false,
            at_us: monotonic_us(),
            thread: "main".into(),
        });
        let registry = MetricsRegistry::new();
        registry.counter("hits").add(5);
        let snap_owner = Arc::new(registry);
        let weak = Arc::downgrade(&snap_owner);
        recorder.attach_metrics("test", Box::new(move || Some(weak.upgrade()?.snapshot())));
        snap_owner.counter("hits").add(2);
        let black_box = recorder.dump("manual", Some(TraceId(42)));
        assert_eq!(black_box.trigger, "manual");
        assert_eq!(black_box.trace, Some(TraceId(42)));
        assert_eq!(black_box.records.len(), 2);
        assert_eq!(black_box.metrics.len(), 1);
        assert_eq!(black_box.metrics[0].1.counters["hits"], 2);
        let parsed = BlackBox::parse(&black_box.to_jsonl()).expect("parses");
        assert_eq!(parsed, black_box);
        // Retention caps at max_dumps.
        recorder.dump("a", None);
        recorder.dump("b", None);
        let dumps = recorder.dumps();
        assert_eq!(dumps.len(), 2);
        assert_eq!(dumps[1].trigger, "b");
        assert_eq!(recorder.last_dump().map(|d| d.trigger), Some("b".into()));
    }

    #[test]
    fn metric_sampling_records_deltas_and_drops_dead_sources() {
        let recorder = FlightRecorder::new(RecorderConfig::default());
        let registry = Arc::new(MetricsRegistry::new());
        let weak = Arc::downgrade(&registry);
        recorder.attach_metrics("serve", Box::new(move || Some(weak.upgrade()?.snapshot())));
        registry.counter("served_total").add(3);
        recorder.sample_metrics();
        let metrics: Vec<_> = recorder
            .records()
            .into_iter()
            .filter_map(|r| match r {
                FlightRecord::Metric { name, delta, .. } => Some((name, delta)),
                _ => None,
            })
            .collect();
        assert_eq!(metrics, vec![("serve.served_total".to_string(), 3)]);
        // Second sample: no movement, no records.
        recorder.sample_metrics();
        assert_eq!(recorder.records().len(), 1);
        drop(registry);
        recorder.sample_metrics(); // dead source pruned, no panic
        assert!(recorder
            .sources
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_empty());
    }

    #[test]
    fn global_install_gates_capture() {
        let _guard = tracing_lock();
        uninstall_recorder();
        assert!(!recording());
        assert!(trigger_dump("manual", None).is_none());
        let recorder = Arc::new(FlightRecorder::new(RecorderConfig::default()));
        install_recorder(recorder.clone());
        assert!(recording());
        note_failpoint("serve.execute", true);
        let black_box = trigger_dump("manual", None).expect("recorder installed");
        assert!(black_box
            .records
            .iter()
            .any(|r| matches!(r, FlightRecord::Failpoint { name, .. } if name == "serve.execute")));
        uninstall_recorder();
        assert!(!recording());
    }

    #[test]
    fn head_sampling_gates_capture_and_promotion_bypasses_it() {
        let _guard = tracing_lock();
        crate::trace::uninstall(); // recorder-only capture
        let recorder = Arc::new(FlightRecorder::new(RecorderConfig {
            span_sample_every: u64::MAX,   // no trace is head-sampled
            span_min_elapsed_us: u64::MAX, // no slow-outlier capture
            ..RecorderConfig::default()
        }));
        install_recorder(Arc::clone(&recorder));

        // An unsampled healthy trace leaves nothing behind.
        {
            let mut span = crate::trace::span("hot.request");
            span.record("k", "v");
            crate::trace::event("hot.cache_hit");
        }
        assert!(
            recorder.records().is_empty(),
            "unsampled trace must not enter the ring: {:?}",
            recorder.records()
        );

        // Promotion pulls the rest of the trace in; span-less events
        // are always captured.
        {
            let _span = crate::trace::span("hot.request");
            crate::trace::promote_trace();
            crate::trace::event("hot.failure");
        }
        crate::trace::event("standalone.signal");
        let records = recorder.records();
        assert!(records
            .iter()
            .any(|r| matches!(r, FlightRecord::Span(s) if s.name == "hot.request")));
        assert!(records
            .iter()
            .any(|r| matches!(r, FlightRecord::Event(e) if e.name == "hot.failure")));
        assert!(records
            .iter()
            .any(|r| matches!(r, FlightRecord::Event(e) if e.name == "standalone.signal")));
        uninstall_recorder();
    }

    #[test]
    fn registered_threads_capture_slow_outlier_spans() {
        let _guard = tracing_lock();
        crate::trace::uninstall();
        let recorder = Arc::new(FlightRecorder::new(RecorderConfig {
            span_sample_every: u64::MAX,
            span_min_elapsed_us: 0, // every span is a "slow" outlier
            ..RecorderConfig::default()
        }));
        install_recorder(Arc::clone(&recorder));
        {
            // Unregistered thread: not even a zero threshold captures.
            let _span = crate::trace::span("client.wrapper");
        }
        assert!(recorder.records().is_empty());
        let worker = crate::watchdog::register_worker("ring-worker", Duration::ZERO);
        {
            let mut span = crate::trace::span("worker.op");
            span.record("epoch", 7); // registered threads keep fields
        }
        let records = recorder.records();
        assert!(
            records.iter().any(|r| matches!(
                r,
                FlightRecord::Span(s) if s.name == "worker.op" && s.field("epoch") == Some("7")
            )),
            "slow-outlier span must be captured with fields: {records:?}"
        );
        drop(worker);
        uninstall_recorder();
    }

    #[test]
    fn parse_rejects_non_blackbox_and_skips_garbage() {
        assert!(BlackBox::parse("").is_none());
        assert!(BlackBox::parse("{\"kind\":\"span\"}").is_none());
        let black_box = BlackBox {
            seq: 0,
            trigger: "t".into(),
            trace: None,
            at_us: 1,
            threads: Vec::new(),
            metrics: Vec::new(),
            records: Vec::new(),
        };
        let mut text = black_box.to_jsonl();
        text.push_str("not json\n");
        assert_eq!(BlackBox::parse(&text), Some(black_box));
    }
}
