//! A minimal JSON value, encoder and parser.
//!
//! The offline `serde` shim provides inert derive markers only (there
//! is no `serde_json` in the tree), so the exporters carry their own
//! codec. It covers exactly what observability records and bench
//! reports need: objects, arrays, strings, integers, floats, bools and
//! null, with `\uXXXX`-escaped strings. Round-tripping is exact for
//! the value shapes this workspace emits and is property-tested below.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value. Objects use a `BTreeMap` so rendering is
/// deterministic (stable key order) — important for fingerprintable
/// bench reports and reproducible JSONL traces.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer (kept separate from floats so `u64` ids survive).
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with deterministically ordered keys.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// The value at `key`, if this is an object holding one.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// This value as an `i64` (integers only).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// This value as a `u64` (non-negative integers only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// This value as an `f64` (accepts both numeric forms).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// This value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Render to a compact single-line JSON string.
    pub fn render(&self) -> String {
        self.to_string()
    }

    /// Parse a JSON document. Returns `None` on any syntax error or
    /// trailing garbage — observability parsing is best-effort and
    /// never panics.
    pub fn parse(text: &str) -> Option<Json> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos == bytes.len() {
            Some(value)
        } else {
            None
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        // Ids above i64::MAX would lose fidelity as Int; render via
        // string is overkill for this workspace (counters and ids stay
        // far below), so saturate defensively.
        Json::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::from(v as u64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(i) => write!(f, "{i}"),
            Json::Float(x) => {
                if x.is_finite() {
                    // Always keep a decimal point so the parser can
                    // restore the Int/Float distinction.
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        write!(f, "{x:.1}")
                    } else {
                        write!(f, "{x}")
                    }
                } else {
                    // JSON has no Inf/NaN; null is the standard fallback.
                    write!(f, "null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Obj(map) => {
                write!(f, "{{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn eat(bytes: &[u8], pos: &mut usize, expected: u8) -> Option<()> {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&expected) {
        *pos += 1;
        Some(())
    } else {
        None
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Option<Json> {
    skip_ws(bytes, pos);
    match bytes.get(*pos)? {
        b'n' => parse_keyword(bytes, pos, "null", Json::Null),
        b't' => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        b'f' => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        b'"' => parse_string(bytes, pos).map(Json::Str),
        b'[' => parse_array(bytes, pos),
        b'{' => parse_object(bytes, pos),
        _ => parse_number(bytes, pos),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Option<Json> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Some(value)
    } else {
        None
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Option<String> {
    if bytes.get(*pos) != Some(&b'"') {
        return None;
    }
    *pos += 1;
    let mut out = String::new();
    // Collect raw bytes, decoding escapes; input is valid UTF-8 by
    // construction (`&str`), so unescaped runs are copied by char.
    let text = std::str::from_utf8(&bytes[*pos..]).ok()?;
    let mut chars = text.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => {
                *pos += i + 1;
                return Some(out);
            }
            '\\' => {
                let (_, esc) = chars.next()?;
                match esc {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'b' => out.push('\u{8}'),
                    'f' => out.push('\u{c}'),
                    'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let (_, h) = chars.next()?;
                            code = code * 16 + h.to_digit(16)?;
                        }
                        out.push(char::from_u32(code)?);
                    }
                    _ => return None,
                }
            }
            c => out.push(c),
        }
    }
    None
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Option<Json> {
    let start = *pos;
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' | b'-' | b'+' => *pos += 1,
            b'.' | b'e' | b'E' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).ok()?;
    if text.is_empty() {
        return None;
    }
    if is_float {
        text.parse::<f64>().ok().map(Json::Float)
    } else {
        text.parse::<i64>().ok().map(Json::Int)
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Option<Json> {
    eat(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Some(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos)? {
            b',' => *pos += 1,
            b']' => {
                *pos += 1;
                return Some(Json::Arr(items));
            }
            _ => return None,
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Option<Json> {
    eat(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Some(Json::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        eat(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos)? {
            b',' => *pos += 1,
            b'}' => {
                *pos += 1;
                return Some(Json::Obj(map));
            }
            _ => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn scalars_round_trip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Int(-42),
            Json::Int(0),
            Json::Float(1.5),
            Json::Str("hello \"world\"\nline".into()),
        ] {
            assert_eq!(Json::parse(&v.render()), Some(v));
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Json::obj([
            ("name", Json::from("serve.request")),
            ("trace", Json::from(7u64)),
            ("tags", Json::Arr(vec![Json::from("a"), Json::from("b")])),
            ("nested", Json::obj([("x", Json::Float(2.0))])),
        ]);
        let text = v.render();
        assert_eq!(Json::parse(&text), Some(v));
        // Deterministic key order.
        assert!(text.find("\"name\"").unwrap() < text.find("\"nested\"").unwrap());
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "1.2.3", "{}x"] {
            assert_eq!(Json::parse(bad), None, "{bad:?} should not parse");
        }
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(
            Json::parse("\"\\u0041\\u00e9\""),
            Some(Json::Str("Aé".into()))
        );
    }

    proptest! {
        #[test]
        fn arbitrary_strings_round_trip(bytes in proptest::collection::vec(0u8..=255, 0..64)) {
            let v = Json::Str(String::from_utf8_lossy(&bytes).into_owned());
            prop_assert_eq!(Json::parse(&v.render()), Some(v));
        }

        #[test]
        // The rand shim cannot sample a full-width i64 range (the
        // span overflows u64), so probe one bit position at a time.
        fn arbitrary_ints_round_trip(shift in 0u32..63, neg in 0u8..2) {
            let magnitude = 1i64 << shift;
            let i = if neg == 1 { -magnitude } else { magnitude };
            let v = Json::Int(i);
            prop_assert_eq!(Json::parse(&v.render()), Some(v));
        }
    }

    #[test]
    fn extreme_ints_round_trip() {
        for i in [i64::MIN, i64::MIN + 1, -1, 0, 1, i64::MAX - 1, i64::MAX] {
            let v = Json::Int(i);
            assert_eq!(Json::parse(&v.render()), Some(v));
        }
    }
}
