//! The unified metrics registry: counters, gauges and bucketed
//! histograms with Prometheus-style text exposition.
//!
//! All instruments are relaxed atomics behind `Arc` handles — they
//! are observability, not synchronisation — so recording from serving
//! threads is wait-free and handles can be cached outside the
//! registry lock. The histogram generalises the latency histogram
//! that used to live in `serve::metrics`, and adds percentile
//! estimation by linear interpolation within buckets.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A detached counter (not registered anywhere).
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable signed gauge.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A detached gauge (not registered anywhere).
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Overwrite the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A bucketed histogram of `u64` observations (typically µs).
///
/// Buckets are defined by inclusive-exclusive upper bounds; the last
/// bound must be `u64::MAX` (the unbounded bucket). Recording is one
/// linear scan over a handful of bounds plus two relaxed adds.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
}

impl Histogram {
    /// A histogram over `bounds` (ascending upper bounds). A trailing
    /// `u64::MAX` catch-all bucket is appended if missing.
    pub fn new(bounds: &[u64]) -> Histogram {
        let mut bounds: Vec<u64> = bounds.to_vec();
        bounds.sort_unstable();
        bounds.dedup();
        if bounds.last() != Some(&u64::MAX) {
            bounds.push(u64::MAX);
        }
        let counts = bounds.iter().map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds,
            counts,
            sum: AtomicU64::new(0),
        }
    }

    /// The upper bounds, including the trailing catch-all.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Record one observation.
    pub fn record(&self, value: u64) {
        self.sum.fetch_add(value, Ordering::Relaxed);
        let idx = self
            .bounds
            .iter()
            .position(|&bound| value < bound)
            .unwrap_or(self.bounds.len() - 1);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time copy of the per-bucket counts.
    pub fn counts(&self) -> Vec<u64> {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.counts().iter().sum()
    }

    /// Estimated `q`-quantile (`0.0..=1.0`), by linear interpolation
    /// within the bucket containing the target rank. `None` when the
    /// histogram is empty or `q` is out of range.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        percentile_from_buckets(&self.bounds, &self.counts(), q)
    }
}

/// Estimate the `q`-quantile of a bucketed distribution by linear
/// interpolation within the target bucket. `bounds` are ascending
/// exclusive upper bounds (last may be `u64::MAX`, treated as twice
/// the previous bound for interpolation, the usual Prometheus
/// convention for the overflow bucket).
///
/// Returns `None` for an empty distribution, a `q` outside
/// `0.0..=1.0` (including NaN), or mismatched `bounds`/`counts`
/// lengths — never panics, since the SLO engine and serve exposition
/// feed it live histogram state. Degenerate shapes are defined:
/// a single sample interpolates within its bucket, `q == 0.0` lands
/// at the lower edge of the first occupied bucket, `q == 1.0` at the
/// upper edge of the last, and a distribution living entirely in the
/// saturated top (`u64::MAX`) bucket interpolates across that
/// bucket's synthetic `lower..2×lower` range.
pub fn percentile_from_buckets(bounds: &[u64], counts: &[u64], q: f64) -> Option<u64> {
    if !(0.0..=1.0).contains(&q) || bounds.len() != counts.len() {
        return None;
    }
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return None;
    }
    let target = q * total as f64;
    let mut cumulative = 0u64;
    for (i, (&bound, &count)) in bounds.iter().zip(counts).enumerate() {
        if count == 0 {
            continue;
        }
        let before = cumulative as f64;
        cumulative += count;
        if (cumulative as f64) < target {
            continue;
        }
        let lower = if i == 0 { 0 } else { bounds[i - 1] };
        let upper = if bound == u64::MAX {
            lower.saturating_mul(2).max(lower.saturating_add(1))
        } else {
            bound
        };
        let fraction = ((target - before) / count as f64).clamp(0.0, 1.0);
        return Some(lower.saturating_add(((upper - lower) as f64 * fraction) as u64));
    }
    // Rounding residue (f64 cumulative drift on huge counts): the top
    // of the last occupied bucket is the safe answer, including the
    // synthetic top when everything sits in the overflow bucket.
    let last = bounds
        .iter()
        .zip(counts)
        .rev()
        .find(|(_, &count)| count > 0)
        .map(|(&bound, _)| bound)?;
    if last == u64::MAX {
        let lower = bounds
            .iter()
            .rev()
            .find(|&&b| b != u64::MAX)
            .copied()
            .unwrap_or(0);
        Some(lower.saturating_mul(2).max(lower.saturating_add(1)))
    } else {
        Some(last)
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Arc<Histogram>),
}

/// A named registry of instruments with Prometheus-style exposition.
///
/// `counter`/`gauge`/`histogram` are get-or-create: the first call
/// registers, later calls hand back a clone of the same instrument,
/// so call sites need no coordination.
///
/// ```
/// let registry = obs::MetricsRegistry::new();
/// registry.counter("queries_total").inc();
/// registry.counter("queries_total").add(2); // same instrument
/// registry.histogram("latency_us", &[100, 1_000]).record(250);
/// assert_eq!(registry.counter("queries_total").get(), 3);
/// let text = registry.render_prometheus();
/// assert!(text.contains("queries_total 3"));
/// ```
#[derive(Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The counter named `name`, registering it on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut metrics = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::new()))
        {
            Metric::Counter(c) => c.clone(),
            // A name registered as another kind: hand back a detached
            // instrument rather than panicking in a serving path.
            _ => Counter::new(),
        }
    }

    /// The gauge named `name`, registering it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut metrics = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::new()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => Gauge::new(),
        }
    }

    /// The histogram named `name`, registering it (with `bounds`) on
    /// first use. Later calls ignore `bounds` and share the original.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Arc<Histogram> {
        let mut metrics = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new(bounds))))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => Arc::new(Histogram::new(bounds)),
        }
    }

    /// Render every instrument in the Prometheus text exposition
    /// format (sorted by name; histograms as `_bucket`/`_sum`/`_count`
    /// series with cumulative `le` labels).
    pub fn render_prometheus(&self) -> String {
        let metrics = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::new();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "# TYPE {name} counter");
                    let _ = writeln!(out, "{name} {}", c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "# TYPE {name} gauge");
                    let _ = writeln!(out, "{name} {}", g.get());
                }
                Metric::Histogram(h) => {
                    let _ = writeln!(out, "# TYPE {name} histogram");
                    let mut cumulative = 0u64;
                    for (&bound, count) in h.bounds().iter().zip(h.counts()) {
                        cumulative += count;
                        if bound == u64::MAX {
                            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
                        } else {
                            let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
                        }
                    }
                    let _ = writeln!(out, "{name}_sum {}", h.sum());
                    let _ = writeln!(out, "{name}_count {}", h.count());
                }
            }
        }
        out
    }

    /// A point-in-time copy of every instrument's value.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let metrics = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        let mut snap = RegistrySnapshot::default();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => {
                    snap.counters.insert(name.clone(), c.get());
                }
                Metric::Gauge(g) => {
                    snap.gauges.insert(name.clone(), g.get());
                }
                Metric::Histogram(h) => {
                    snap.histograms.insert(
                        name.clone(),
                        HistogramSnapshot {
                            bounds: h.bounds().to_vec(),
                            counts: h.counts(),
                            sum: h.sum(),
                        },
                    );
                }
            }
        }
        snap
    }
}

/// Frozen histogram state inside a [`RegistrySnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds.
    pub bounds: Vec<u64>,
    /// Per-bucket counts.
    pub counts: Vec<u64>,
    /// Sum of observations.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Total observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Estimated quantile (see [`percentile_from_buckets`]).
    pub fn percentile(&self, q: f64) -> Option<u64> {
        percentile_from_buckets(&self.bounds, &self.counts, q)
    }
}

/// A frozen copy of a [`MetricsRegistry`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegistrySnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl RegistrySnapshot {
    /// What changed since `earlier`: counter and histogram-count
    /// increments (saturating at zero) and current gauge values.
    /// Instruments absent from `earlier` diff against zero.
    pub fn diff(&self, earlier: &RegistrySnapshot) -> RegistryDelta {
        let counters = self
            .counters
            .iter()
            .map(|(name, &now)| {
                let before = earlier.counters.get(name).copied().unwrap_or(0);
                (name.clone(), now.saturating_sub(before))
            })
            .collect();
        let observations = self
            .histograms
            .iter()
            .map(|(name, h)| {
                let before = earlier
                    .histograms
                    .get(name)
                    .map(HistogramSnapshot::count)
                    .unwrap_or(0);
                (name.clone(), h.count().saturating_sub(before))
            })
            .collect();
        RegistryDelta {
            counters,
            gauges: self.gauges.clone(),
            observations,
        }
    }
}

/// The difference between two registry snapshots.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegistryDelta {
    /// Counter increments.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values at the later snapshot.
    pub gauges: BTreeMap<String, i64>,
    /// New histogram observations.
    pub observations: BTreeMap<String, u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_register_once() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("hits");
        let b = reg.counter("hits");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("hits").get(), 3);
        let g = reg.gauge("depth");
        g.set(5);
        g.add(-2);
        assert_eq!(reg.gauge("depth").get(), 3);
    }

    #[test]
    fn histogram_buckets_and_sum() {
        let h = Histogram::new(&[10, 100, 1000]);
        assert_eq!(h.bounds(), &[10, 100, 1000, u64::MAX]);
        for v in [5, 50, 500, 5000] {
            h.record(v);
        }
        assert_eq!(h.counts(), vec![1, 1, 1, 1]);
        assert_eq!(h.sum(), 5555);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn percentiles_interpolate_within_buckets() {
        let h = Histogram::new(&[100, 200, u64::MAX]);
        for _ in 0..50 {
            h.record(50); // first bucket
        }
        for _ in 0..50 {
            h.record(150); // second bucket
        }
        // p50 sits at the first/second bucket boundary.
        let p50 = h.percentile(0.5).unwrap();
        assert!((90..=110).contains(&p50), "p50 = {p50}");
        // p75 is halfway through the second bucket.
        let p75 = h.percentile(0.75).unwrap();
        assert!((140..=160).contains(&p75), "p75 = {p75}");
        // p100 tops out at the second bound.
        assert_eq!(h.percentile(1.0), Some(200));
        assert_eq!(h.percentile(1.5), None);
        assert_eq!(Histogram::new(&[10]).percentile(0.5), None);
    }

    #[test]
    fn overflow_bucket_interpolates_past_last_bound() {
        let h = Histogram::new(&[100, u64::MAX]);
        h.record(500);
        let p = h.percentile(0.5).unwrap();
        assert!((100..=200).contains(&p), "p = {p}");
    }

    #[test]
    fn percentile_rejects_empty_and_malformed_inputs() {
        // Empty histogram → None at every quantile.
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(percentile_from_buckets(&[100, u64::MAX], &[0, 0], q), None);
        }
        // Zero-length shape.
        assert_eq!(percentile_from_buckets(&[], &[], 0.5), None);
        // Mismatched lengths.
        assert_eq!(percentile_from_buckets(&[100], &[1, 2], 0.5), None);
        // Out-of-range and NaN quantiles.
        assert_eq!(percentile_from_buckets(&[100], &[1], -0.1), None);
        assert_eq!(percentile_from_buckets(&[100], &[1], 1.1), None);
        assert_eq!(percentile_from_buckets(&[100], &[1], f64::NAN), None);
    }

    #[test]
    fn percentile_boundaries_on_a_single_sample() {
        // One observation in [100, 200).
        let bounds = [100, 200, u64::MAX];
        let counts = [0, 1, 0];
        // p0 → the occupied bucket's lower edge; p100 → its upper.
        assert_eq!(percentile_from_buckets(&bounds, &counts, 0.0), Some(100));
        assert_eq!(percentile_from_buckets(&bounds, &counts, 1.0), Some(200));
        // p50 interpolates halfway through the bucket.
        let p50 = percentile_from_buckets(&bounds, &counts, 0.5).unwrap();
        assert!((140..=160).contains(&p50), "p50 = {p50}");
    }

    #[test]
    fn percentile_boundaries_on_a_populated_histogram() {
        // 100 obs uniformly across [0,100).
        let bounds = [100, u64::MAX];
        let counts = [100, 0];
        assert_eq!(percentile_from_buckets(&bounds, &counts, 0.0), Some(0));
        let p50 = percentile_from_buckets(&bounds, &counts, 0.5).unwrap();
        assert!((45..=55).contains(&p50), "p50 = {p50}");
        assert_eq!(percentile_from_buckets(&bounds, &counts, 1.0), Some(100));
    }

    #[test]
    fn saturated_top_bucket_stays_defined() {
        // Everything in the overflow bucket: interpolate across the
        // synthetic [100, 200) range.
        let bounds = [100, u64::MAX];
        let counts = [0, 10];
        assert_eq!(percentile_from_buckets(&bounds, &counts, 0.0), Some(100));
        assert_eq!(percentile_from_buckets(&bounds, &counts, 1.0), Some(200));
        let p50 = percentile_from_buckets(&bounds, &counts, 0.5).unwrap();
        assert!((140..=160).contains(&p50), "p50 = {p50}");
        // A histogram that is *only* the overflow bucket (no finite
        // bound at all) still produces a value, not None or a panic.
        let only_inf = percentile_from_buckets(&[u64::MAX], &[5], 1.0);
        assert_eq!(only_inf, Some(1));
    }

    #[test]
    fn prometheus_exposition_is_cumulative_and_sorted() {
        let reg = MetricsRegistry::new();
        reg.counter("serve_hits_total").add(3);
        reg.gauge("serve_queue_depth").set(2);
        let h = reg.histogram("serve_latency_us", &[100, 1000]);
        h.record(50);
        h.record(500);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE serve_hits_total counter"));
        assert!(text.contains("serve_hits_total 3"));
        assert!(text.contains("serve_queue_depth 2"));
        assert!(text.contains("serve_latency_us_bucket{le=\"100\"} 1"));
        assert!(text.contains("serve_latency_us_bucket{le=\"1000\"} 2"));
        assert!(text.contains("serve_latency_us_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("serve_latency_us_sum 550"));
        assert!(text.contains("serve_latency_us_count 2"));
        // BTreeMap ordering: hits before latency before queue.
        let hits = text.find("serve_hits_total").unwrap();
        let latency = text.find("serve_latency_us").unwrap();
        let queue = text.find("serve_queue_depth").unwrap();
        assert!(hits < latency && latency < queue);
    }

    #[test]
    fn snapshot_diff_reports_increments() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("served");
        let h = reg.histogram("lat", &[10]);
        c.add(5);
        h.record(1);
        let before = reg.snapshot();
        c.add(2);
        h.record(2);
        h.record(3);
        reg.gauge("depth").set(7);
        let after = reg.snapshot();
        let delta = after.diff(&before);
        assert_eq!(delta.counters["served"], 2);
        assert_eq!(delta.observations["lat"], 2);
        assert_eq!(delta.gauges["depth"], 7);
        // Diff against an empty snapshot is the absolute value.
        assert_eq!(
            after.diff(&RegistrySnapshot::default()).counters["served"],
            7
        );
    }
}
