//! Runtime lock-rank enforcement: the dynamic half of the concurrency
//! auditor.
//!
//! Every long-lived lock in the serving stack carries a [`LockRank`]
//! drawn from one global table that mirrors the interprocedural
//! lock-acquisition graph derived statically by `analyze::locks`
//! (`repo-lint --locks`). A thread may only acquire a lock whose rank
//! is **strictly greater** than every rank it already holds; the
//! wrappers [`RankedMutex`] and [`RankedRwLock`] verify this on every
//! acquisition against a thread-local held-rank stack and abort the
//! acquiring thread with a report naming both locks when the declared
//! order is violated. Since any cycle in a wait-for graph needs at
//! least one thread acquiring against the order, a rank-clean run is a
//! deadlock-free run — and every fault-matrix and serve-bench
//! execution doubles as an order validator.
//!
//! The check follows the same zero-cost-when-disabled discipline as
//! `fault` and the tracing layer: one relaxed atomic load on the
//! disabled path. Checks default to **on under `debug_assertions`**
//! and off in release builds; [`set_rank_checks`] overrides either way
//! (chaos drills can enable them in release binaries).
//!
//! ```
//! use obs::{LockRank, RankedMutex, RankedRwLock};
//!
//! let admission = RankedMutex::new(LockRank::Admission, "doc.admission", 0u32);
//! let warehouse = RankedRwLock::new(LockRank::Warehouse, "doc.warehouse", vec![1, 2]);
//! let a = admission.lock();
//! drop(a);
//! // Ascending acquisition is fine; descending would panic in debug.
//! let w = warehouse.read();
//! assert_eq!(w.len(), 2);
//! ```

use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{self};

/// The global lock hierarchy, in acquisition order: a thread holding a
/// lock of rank *r* may only acquire locks of rank strictly greater
/// than *r*.
///
/// The order mirrors the lock-acquisition graph of the serving stack
/// (outermost, longest-held locks first; innermost leaves last). The
/// static pass (`analyze::locks`) derives the same order from source
/// and a conformance test diffs the two, so this table cannot drift
/// from the code.
#[repr(u8)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LockRank {
    /// `serve` single-flight table — the admission-side registry.
    Admission = 0,
    /// One in-flight execution's result slot (condvar-paired mutex).
    FlightSlot = 1,
    /// `serve` circuit-breaker state.
    Breaker = 2,
    /// The replica-router registry (the set of live replica handles).
    /// Held only to snapshot or mutate the set — never across a
    /// dispatched query.
    Router = 3,
    /// A replica's oplog tail cursor, held across the whole catch-up
    /// replay (which takes the follower's warehouse write lock per
    /// record) so applied epochs advance in log order.
    Replication = 4,
    /// `serve` worker-pool join handles.
    Pool = 5,
    /// The warehouse reader–writer lock (epoch state, segment sets).
    Warehouse = 6,
    /// The per-epoch semantic catalog cache.
    Catalog = 7,
    /// Result-cache shards (acquired under the warehouse read lock
    /// during delta revalidation).
    Cache = 8,
    /// Segment-backend registries (acquired under the warehouse lock
    /// during scans and compaction).
    SegmentSet = 9,
    /// The OLTP heap lock.
    Heap = 10,
    /// OLTP secondary-index maps (filled under the heap read lock).
    Index = 11,
    /// The write-ahead-log writer.
    Wal = 12,
    /// The durable oplog writer — appended to under the primary's
    /// warehouse write lock (and read under a replica's cursor lock),
    /// making it the innermost lock in the stack.
    Oplog = 13,
}

/// Every rank in ascending acquisition order.
pub const ALL_RANKS: [LockRank; 14] = [
    LockRank::Admission,
    LockRank::FlightSlot,
    LockRank::Breaker,
    LockRank::Router,
    LockRank::Replication,
    LockRank::Pool,
    LockRank::Warehouse,
    LockRank::Catalog,
    LockRank::Cache,
    LockRank::SegmentSet,
    LockRank::Heap,
    LockRank::Index,
    LockRank::Wal,
    LockRank::Oplog,
];

impl LockRank {
    /// The rank's name as it appears in source (`LockRank::Warehouse`
    /// → `"Warehouse"`).
    pub fn name(&self) -> &'static str {
        match self {
            LockRank::Admission => "Admission",
            LockRank::FlightSlot => "FlightSlot",
            LockRank::Breaker => "Breaker",
            LockRank::Router => "Router",
            LockRank::Replication => "Replication",
            LockRank::Pool => "Pool",
            LockRank::Warehouse => "Warehouse",
            LockRank::Catalog => "Catalog",
            LockRank::Cache => "Cache",
            LockRank::SegmentSet => "SegmentSet",
            LockRank::Heap => "Heap",
            LockRank::Index => "Index",
            LockRank::Wal => "Wal",
            LockRank::Oplog => "Oplog",
        }
    }

    /// Parse a rank name back into a [`LockRank`] (the static pass
    /// uses this to compare source-extracted ranks with the table).
    pub fn parse(name: &str) -> Option<LockRank> {
        ALL_RANKS.iter().copied().find(|r| r.name() == name)
    }
}

impl fmt::Display for LockRank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.name(), *self as u8)
    }
}

/// Tri-state enforcement flag: 0 = forced off, 1 = forced on,
/// 2 = default (on under `debug_assertions`, off in release).
static CHECKS: AtomicU8 = AtomicU8::new(2);

/// Whether rank checks are currently active. One relaxed load — cheap
/// enough for every acquisition on every hot path.
#[inline]
pub fn rank_checks_enabled() -> bool {
    match CHECKS.load(Ordering::Relaxed) {
        0 => false,
        1 => true,
        _ => cfg!(debug_assertions),
    }
}

/// Force rank checks on or off, overriding the build-profile default.
/// Tests assert violations with `true`; release-mode chaos drills can
/// opt in the same way.
pub fn set_rank_checks(enabled: bool) {
    CHECKS.store(u8::from(enabled), Ordering::Relaxed);
}

/// One held-lock record on the thread-local stack.
#[derive(Clone, Copy)]
struct Held {
    rank: LockRank,
    name: &'static str,
    token: u64,
}

thread_local! {
    static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
    static NEXT_TOKEN: RefCell<u64> = const { RefCell::new(0) };
}

/// The ranks (with lock names) currently held by this thread, in
/// acquisition order. Diagnostic aid for tests and drills.
pub fn held_ranks() -> Vec<(&'static str, LockRank)> {
    HELD.with(|h| h.borrow().iter().map(|e| (e.name, e.rank)).collect())
}

/// Check `rank` against the held stack and push it; returns the token
/// used to pop the entry on release, or `None` when checks are off.
///
/// When checks are live the acquisition is also published to the
/// stall watchdog's active-task slot and the flight recorder (lock
/// capture deliberately rides the rank-check gate: both default on
/// under `debug_assertions`, and chaos drills that
/// [`set_rank_checks`]`(true)` in release get lock timelines too).
fn acquire(rank: LockRank, name: &'static str) -> Option<u64> {
    if !rank_checks_enabled() {
        return None;
    }
    // Hooks run after the `HELD` borrow ends: the watchdog publish
    // re-reads `held_ranks()` on this same thread.
    let token = acquire_inner(rank, name);
    crate::watchdog::on_locks_changed();
    crate::recorder::note_lock(name, rank, true);
    Some(token)
}

fn acquire_inner(rank: LockRank, name: &'static str) -> u64 {
    HELD.with(|h| {
        let mut held = h.borrow_mut();
        if let Some(worst) = held
            .iter()
            .filter(|e| e.rank >= rank)
            .max_by_key(|e| e.rank)
        {
            let held_desc: Vec<String> = held
                .iter()
                .map(|e| format!("'{}' ({})", e.name, e.rank))
                .collect();
            // A rank violation is a latent deadlock: the acquiring
            // thread must die loudly, not limp on.
            let report = format!(
                "lock-rank violation: acquiring '{}' ({}) while holding '{}' ({}); \
                 locks must be acquired in strictly ascending rank order \
                 [held: {}]",
                name,
                rank,
                worst.name,
                worst.rank,
                held_desc.join(", "),
            );
            panic!("{report}"); // lint:allow(no-panic, "a rank violation is a latent deadlock; abort with a report")
        }
        let token = NEXT_TOKEN.with(|t| {
            let mut t = t.borrow_mut();
            *t += 1;
            *t
        });
        held.push(Held { rank, name, token });
        token
    })
}

/// Pop the entry registered under `token` (guards may be dropped out
/// of acquisition order, so the pop searches from the top). Publishes
/// the release to the watchdog and flight recorder.
fn release(token: Option<u64>) {
    let Some(token) = token else { return };
    let removed = HELD.with(|h| {
        let mut held = h.borrow_mut();
        held.iter()
            .rposition(|e| e.token == token)
            .map(|pos| held.remove(pos))
    });
    if let Some(entry) = removed {
        crate::watchdog::on_locks_changed();
        crate::recorder::note_lock(entry.name, entry.rank, false);
    }
}

/// A mutex whose acquisitions are validated against the global
/// [`LockRank`] hierarchy.
///
/// Semantics match the workspace's `parking_lot` shim: `lock()` never
/// fails and a panicking holder does not poison (the inner guard is
/// recovered with `into_inner`).
pub struct RankedMutex<T: ?Sized> {
    rank: LockRank,
    name: &'static str,
    inner: sync::Mutex<T>,
}

impl<T> RankedMutex<T> {
    /// Wrap `value` under `rank`; `name` is the stable identifier used
    /// in violation reports and by the static auditor.
    pub const fn new(rank: LockRank, name: &'static str, value: T) -> Self {
        RankedMutex {
            rank,
            name,
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RankedMutex<T> {
    /// The lock's rank in the global hierarchy.
    pub fn rank(&self) -> LockRank {
        self.rank
    }

    /// The lock's stable name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Acquire, blocking. Panics (debug / when enabled) if this thread
    /// already holds a lock of equal or greater rank.
    pub fn lock(&self) -> RankedMutexGuard<'_, T> {
        let token = acquire(self.rank, self.name);
        RankedMutexGuard {
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
            token,
        }
    }

    /// Acquire only if free right now (still rank-checked: a try-lock
    /// against the order is the same latent deadlock).
    pub fn try_lock(&self) -> Option<RankedMutexGuard<'_, T>> {
        let inner = match self.inner.try_lock() {
            Ok(guard) => guard,
            Err(sync::TryLockError::Poisoned(e)) => e.into_inner(),
            Err(sync::TryLockError::WouldBlock) => return None,
        };
        let token = acquire(self.rank, self.name);
        Some(RankedMutexGuard { inner, token })
    }

    /// Exclusive access through `&mut self` without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RankedMutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RankedMutex")
            .field("name", &self.name)
            .field("rank", &self.rank)
            .finish_non_exhaustive()
    }
}

/// Guard returned by [`RankedMutex::lock`]; releases the held-rank
/// entry on drop.
pub struct RankedMutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
    token: Option<u64>,
}

impl<T: ?Sized> std::ops::Deref for RankedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RankedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for RankedMutexGuard<'_, T> {
    fn drop(&mut self) {
        release(self.token);
    }
}

/// A readers–writer lock whose acquisitions are validated against the
/// global [`LockRank`] hierarchy. Re-acquiring the same rank is
/// forbidden even for shared reads: a reentrant read behind a queued
/// writer is itself a deadlock.
pub struct RankedRwLock<T: ?Sized> {
    rank: LockRank,
    name: &'static str,
    inner: sync::RwLock<T>,
}

impl<T> RankedRwLock<T> {
    /// Wrap `value` under `rank`; `name` is the stable identifier used
    /// in violation reports and by the static auditor.
    pub const fn new(rank: LockRank, name: &'static str, value: T) -> Self {
        RankedRwLock {
            rank,
            name,
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RankedRwLock<T> {
    /// The lock's rank in the global hierarchy.
    pub fn rank(&self) -> LockRank {
        self.rank
    }

    /// The lock's stable name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Acquire shared access, blocking; rank-checked like a write.
    pub fn read(&self) -> RankedReadGuard<'_, T> {
        let token = acquire(self.rank, self.name);
        RankedReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
            token,
        }
    }

    /// Acquire exclusive access, blocking; rank-checked.
    pub fn write(&self) -> RankedWriteGuard<'_, T> {
        let token = acquire(self.rank, self.name);
        RankedWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
            token,
        }
    }

    /// Exclusive access through `&mut self` without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RankedRwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RankedRwLock")
            .field("name", &self.name)
            .field("rank", &self.rank)
            .finish_non_exhaustive()
    }
}

/// Shared guard returned by [`RankedRwLock::read`].
pub struct RankedReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
    token: Option<u64>,
}

impl<T: ?Sized> std::ops::Deref for RankedReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Drop for RankedReadGuard<'_, T> {
    fn drop(&mut self) {
        release(self.token);
    }
}

/// Exclusive guard returned by [`RankedRwLock::write`].
pub struct RankedWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
    token: Option<u64>,
}

impl<T: ?Sized> std::ops::Deref for RankedWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RankedWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for RankedWriteGuard<'_, T> {
    fn drop(&mut self) {
        release(self.token);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Serialises tests that flip the global enforcement flag.
    fn flag_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::OnceLock<std::sync::Mutex<()>> = std::sync::OnceLock::new();
        LOCK.get_or_init(|| std::sync::Mutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn ranks_are_total_ordered_and_parse() {
        let mut prev: Option<LockRank> = None;
        for r in ALL_RANKS {
            if let Some(p) = prev {
                assert!(p < r, "{p} must precede {r}");
            }
            assert_eq!(LockRank::parse(r.name()), Some(r));
            prev = Some(r);
        }
        assert_eq!(LockRank::parse("NoSuchRank"), None);
        assert_eq!(LockRank::Warehouse.to_string(), "Warehouse=6");
    }

    #[test]
    fn ascending_acquisition_is_clean() {
        let _fl = flag_lock();
        set_rank_checks(true);
        let a = RankedMutex::new(LockRank::Admission, "t.a", 1);
        let w = RankedRwLock::new(LockRank::Warehouse, "t.w", 2);
        let c = RankedMutex::new(LockRank::Cache, "t.c", 3);
        {
            let ga = a.lock();
            let gw = w.read();
            let gc = c.lock();
            assert_eq!((*ga, *gw, *gc), (1, 2, 3));
            let held = held_ranks();
            assert_eq!(
                held.iter().map(|(_, r)| *r).collect::<Vec<_>>(),
                vec![LockRank::Admission, LockRank::Warehouse, LockRank::Cache]
            );
        }
        assert!(held_ranks().is_empty(), "guards must pop on drop");
        set_rank_checks(false);
    }

    #[test]
    fn descending_acquisition_panics_naming_both_locks() {
        let _fl = flag_lock();
        set_rank_checks(true);
        let wal = RankedMutex::new(LockRank::Wal, "t.wal", ());
        let wh = RankedRwLock::new(LockRank::Warehouse, "t.warehouse", ());
        let g = wal.lock();
        let err = catch_unwind(AssertUnwindSafe(|| {
            let _bad = wh.write();
        }))
        .expect_err("descending acquisition must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "<non-string payload>".into());
        assert!(msg.contains("t.warehouse"), "{msg}");
        assert!(msg.contains("t.wal"), "{msg}");
        assert!(msg.contains("lock-rank violation"), "{msg}");
        drop(g);
        assert!(held_ranks().is_empty());
        set_rank_checks(false);
    }

    #[test]
    fn equal_rank_reacquisition_is_a_violation() {
        let _fl = flag_lock();
        set_rank_checks(true);
        let s1 = RankedMutex::new(LockRank::Cache, "t.shard1", ());
        let s2 = RankedMutex::new(LockRank::Cache, "t.shard2", ());
        let g = s1.lock();
        assert!(catch_unwind(AssertUnwindSafe(|| {
            let _bad = s2.lock();
        }))
        .is_err());
        drop(g);
        set_rank_checks(false);
    }

    #[test]
    fn disabled_checks_track_nothing() {
        let _fl = flag_lock();
        set_rank_checks(false);
        let wal = RankedMutex::new(LockRank::Wal, "t.wal", ());
        let wh = RankedRwLock::new(LockRank::Warehouse, "t.wh", ());
        let g1 = wal.lock();
        let g2 = wh.write(); // inverted, but checks are off
        assert!(held_ranks().is_empty());
        drop(g2);
        drop(g1);
        set_rank_checks(true);
        assert!(rank_checks_enabled());
        set_rank_checks(false);
    }

    #[test]
    fn out_of_order_release_keeps_the_stack_consistent() {
        let _fl = flag_lock();
        set_rank_checks(true);
        let a = RankedMutex::new(LockRank::Warehouse, "t.a", ());
        let b = RankedMutex::new(LockRank::Cache, "t.b", ());
        let ga = a.lock();
        let gb = b.lock();
        drop(ga); // release the outer lock first
        assert_eq!(held_ranks().len(), 1);
        assert_eq!(held_ranks()[0].1, LockRank::Cache);
        drop(gb);
        assert!(held_ranks().is_empty());
        set_rank_checks(false);
    }

    #[test]
    fn try_lock_is_rank_checked_and_threads_are_independent() {
        let _fl = flag_lock();
        set_rank_checks(true);
        let wal = std::sync::Arc::new(RankedMutex::new(LockRank::Wal, "t.wal", ()));
        let g = wal.try_lock().expect("uncontended try_lock succeeds");
        // Another thread has its own empty held stack.
        let wal2 = std::sync::Arc::clone(&wal);
        let handle = std::thread::spawn(move || {
            assert!(wal2.try_lock().is_none(), "contended try_lock fails");
            held_ranks().len()
        });
        assert_eq!(handle.join().expect("thread joins"), 0);
        drop(g);
        set_rank_checks(false);
    }
}
