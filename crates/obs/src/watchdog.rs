//! The stall watchdog: a shared active-task table plus a sampling
//! thread that turns it into a flamegraph-style profile and fires
//! flight-recorder dumps when a worker stops making progress.
//!
//! Workers opt in by registering a slot ([`register_worker`] for
//! long-lived pool threads, [`task_scope`] for bounded jobs like a
//! compaction or an OLAP execute). From then on the tracing and
//! lockrank layers *passively publish* into the slot: every span
//! open/close updates the thread's current span path and heartbeat,
//! every ranked-lock acquisition updates its held-rank list. The
//! worker never calls the watchdog explicitly on its hot path (though
//! long loops can [`heartbeat`] manually), and the watchdog thread
//! never touches another thread's internals — it only reads what was
//! published, so sampling cannot block serving.
//!
//! Each sample folds every active span path into a cumulative
//! `path → samples` profile (the text form of a flamegraph;
//! [`Watchdog::metrics_text`] exposes it in Prometheus style) and
//! checks each slot's heartbeat age against its budget. A worker past
//! its budget with work in flight is **stalled**: the watchdog fires
//! one `obs.stall` event (edge-triggered — it re-arms when the worker
//! recovers) carrying the span path and held lock ranks, and triggers
//! a `watchdog.stall` flight-recorder dump so the black box shows
//! what every other thread was doing at that moment.

use crate::json::Json;
use crate::trace::{monotonic_us, TraceId};
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};
use std::time::Duration;

/// One registered worker's published state, as read by the watchdog
/// and embedded in black-box dumps.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadState {
    /// The worker's registered name (`serve-worker-0`,
    /// `warehouse.compact`, …).
    pub worker: String,
    /// The current span path, innermost last (`serve.request>serve.execute`),
    /// empty when idle.
    pub path: String,
    /// Names of the lock ranks currently held, acquisition order.
    pub held: Vec<String>,
    /// The trace of the innermost live span, if any.
    pub trace: Option<TraceId>,
    /// Last heartbeat (µs since process start, monotonic).
    pub heartbeat_us: u64,
    /// Stall budget: heartbeat older than this while active = stalled.
    /// Zero disables stall detection for the slot.
    pub budget_us: u64,
    /// Whether the watchdog currently considers the worker stalled.
    pub stalled: bool,
}

impl ThreadState {
    /// Encode as a single-line JSON object (the black-box wire shape).
    pub fn to_json(&self) -> Json {
        let mut obj = vec![
            ("kind", Json::from("thread")),
            ("worker", Json::from(self.worker.as_str())),
            ("path", Json::from(self.path.as_str())),
            (
                "held",
                Json::Arr(self.held.iter().map(|h| Json::from(h.as_str())).collect()),
            ),
            ("heartbeat_us", Json::from(self.heartbeat_us)),
            ("budget_us", Json::from(self.budget_us)),
            ("stalled", Json::from(self.stalled)),
        ];
        if let Some(trace) = self.trace {
            obj.push(("trace", Json::from(trace.0)));
        }
        Json::obj(obj)
    }

    /// Decode the shape produced by [`ThreadState::to_json`].
    pub fn from_json(value: &Json) -> Option<ThreadState> {
        if value.get("kind")?.as_str()? != "thread" {
            return None;
        }
        let held = match value.get("held") {
            Some(Json::Arr(items)) => items
                .iter()
                .filter_map(|i| Some(i.as_str()?.to_string()))
                .collect(),
            _ => Vec::new(),
        };
        Some(ThreadState {
            worker: value.get("worker")?.as_str()?.to_string(),
            path: value.get("path")?.as_str()?.to_string(),
            held,
            trace: value.get("trace").and_then(Json::as_u64).map(TraceId),
            heartbeat_us: value.get("heartbeat_us")?.as_u64()?,
            budget_us: value.get("budget_us")?.as_u64()?,
            stalled: matches!(value.get("stalled"), Some(Json::Bool(true))),
        })
    }
}

#[derive(Default)]
struct SlotState {
    path: String,
    held: Vec<String>,
    trace: Option<TraceId>,
}

struct Slot {
    worker: String,
    budget_us: u64,
    state: Mutex<SlotState>,
    heartbeat_us: AtomicU64,
    stalled: AtomicBool,
}

impl Slot {
    fn snapshot(&self) -> ThreadState {
        let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        ThreadState {
            worker: self.worker.clone(),
            path: state.path.clone(),
            held: state.held.clone(),
            trace: state.trace,
            heartbeat_us: self.heartbeat_us.load(Ordering::Relaxed),
            budget_us: self.budget_us,
            stalled: self.stalled.load(Ordering::Relaxed),
        }
    }
}

/// The global active-task table. Slots are held weakly: a worker
/// leaving (guard drop) lets its slot expire and the next sweep
/// prunes it, so no unregister protocol is needed.
fn table() -> &'static Mutex<Vec<Weak<Slot>>> {
    static TABLE: OnceLock<Mutex<Vec<Weak<Slot>>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    /// The stack of slots registered on this thread, innermost last
    /// (a compaction `task_scope` can nest inside a serve worker's
    /// registration; publishing targets the innermost).
    static SLOTS: RefCell<Vec<Arc<Slot>>> = const { RefCell::new(Vec::new()) };
    /// The live span stack on this thread: (name, trace), innermost
    /// last. Maintained by the tracing layer whenever it is active.
    static SPAN_STACK: RefCell<Vec<(&'static str, TraceId)>> = const { RefCell::new(Vec::new()) };
    /// Mirror of `SLOTS.len()` as a plain `Cell` so the tracing hot
    /// path can test "is this thread registered?" without a `RefCell`
    /// borrow check.
    static SLOT_COUNT: Cell<usize> = const { Cell::new(0) };
}

/// Registers the calling thread in the active-task table until the
/// returned guard drops. See [`register_worker`].
pub struct WorkerGuard {
    slot: Arc<Slot>,
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        let id = Arc::as_ptr(&self.slot);
        SLOTS.with(|s| {
            let mut slots = s.borrow_mut();
            if let Some(pos) = slots.iter().rposition(|slot| Arc::as_ptr(slot) == id) {
                slots.remove(pos);
                SLOT_COUNT.with(|c| c.set(slots.len()));
            }
        });
        // The table's Weak expires once this (last) Arc drops.
    }
}

fn register(worker: &str, budget: Duration) -> WorkerGuard {
    let slot = Arc::new(Slot {
        worker: worker.to_string(),
        budget_us: budget.as_micros().min(u64::MAX as u128) as u64,
        state: Mutex::new(SlotState::default()),
        heartbeat_us: AtomicU64::new(monotonic_us()),
        stalled: AtomicBool::new(false),
    });
    table()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(Arc::downgrade(&slot));
    SLOTS.with(|s| {
        let mut slots = s.borrow_mut();
        slots.push(Arc::clone(&slot));
        SLOT_COUNT.with(|c| c.set(slots.len()));
    });
    publish();
    WorkerGuard { slot }
}

/// Register the calling thread as a long-lived worker. `budget` is the
/// stall budget: a heartbeat older than this while a span is open
/// marks the worker stalled (zero disables detection). Hold the guard
/// for the worker's lifetime.
pub fn register_worker(worker: &str, budget: Duration) -> WorkerGuard {
    register(worker, budget)
}

/// Register a bounded task scope (compaction run, OLAP execute) on the
/// calling thread. Nests inside an enclosing [`register_worker`]
/// registration: publishing targets the innermost scope until the
/// guard drops.
pub fn task_scope(name: &str, budget: Duration) -> WorkerGuard {
    register(name, budget)
}

/// Refresh the calling thread's heartbeat explicitly. Span opens and
/// closes and ranked-lock traffic already count as heartbeats; long
/// compute loops between spans call this to prove liveness.
pub fn heartbeat() {
    SLOTS.with(|s| {
        if let Some(slot) = s.borrow().last() {
            slot.heartbeat_us.store(monotonic_us(), Ordering::Relaxed);
        }
    });
}

/// Publish the current span path + held ranks to this thread's
/// innermost slot, refreshing the heartbeat. No-op (one thread-local
/// read) on unregistered threads.
fn publish() {
    SLOTS.with(|s| {
        let slots = s.borrow();
        let Some(slot) = slots.last() else {
            return;
        };
        let (path, trace) = SPAN_STACK.with(|stack| {
            let stack = stack.borrow();
            let path = stack
                .iter()
                .map(|(name, _)| *name)
                .collect::<Vec<_>>()
                .join(">");
            (path, stack.last().map(|(_, trace)| *trace))
        });
        let held = crate::lockrank::held_ranks()
            .into_iter()
            .map(|(_, rank)| rank.name().to_string())
            .collect();
        {
            let mut state = slot.state.lock().unwrap_or_else(|e| e.into_inner());
            state.path = path;
            state.trace = trace;
            state.held = held;
        }
        slot.heartbeat_us.store(monotonic_us(), Ordering::Relaxed);
    });
}

/// Whether the calling thread has a registered slot — the tracing
/// layer skips span-stack bookkeeping entirely on unregistered
/// threads (client callers), where nothing would ever read it.
#[inline]
pub(crate) fn registered() -> bool {
    SLOT_COUNT.with(Cell::get) > 0
}

/// Tracing hook: a span opened on this thread. Returns the stack
/// depth before the push, which [`span_closed`] uses to restore the
/// stack even if guards drop out of order.
pub(crate) fn span_opened(name: &'static str, trace: TraceId) -> usize {
    let depth = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let depth = stack.len();
        stack.push((name, trace));
        depth
    });
    publish();
    depth
}

/// Tracing hook: the span opened at `depth` closed.
pub(crate) fn span_closed(depth: usize) {
    SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        if stack.len() > depth {
            stack.truncate(depth);
        }
    });
    publish();
}

/// Lockrank hook: this thread's held-rank set changed.
pub(crate) fn on_locks_changed() {
    publish();
}

/// Snapshot every live slot in the active-task table (pruning expired
/// ones). This is what black-box dumps embed as per-thread state.
pub fn thread_states() -> Vec<ThreadState> {
    let mut table = table().lock().unwrap_or_else(|e| e.into_inner());
    table.retain(|weak| weak.strong_count() > 0);
    table
        .iter()
        .filter_map(Weak::upgrade)
        .map(|slot| slot.snapshot())
        .collect()
}

/// Sampling cadence and sizing for a [`Watchdog`].
#[derive(Debug, Clone)]
pub struct WatchdogConfig {
    /// Sample interval. Each sample costs one pass over the (small)
    /// active-task table; the default keeps profile resolution useful
    /// while staying invisible in benchmarks.
    pub interval: Duration,
    /// Cap on distinct span paths retained in the folded profile
    /// (protects against unbounded path cardinality).
    pub max_paths: usize,
}

impl Default for WatchdogConfig {
    fn default() -> WatchdogConfig {
        WatchdogConfig {
            interval: Duration::from_millis(25),
            max_paths: 512,
        }
    }
}

struct WatchdogCore {
    config: WatchdogConfig,
    stop: AtomicBool,
    samples: AtomicU64,
    stalls: AtomicU64,
    profile: Mutex<BTreeMap<String, u64>>,
}

impl WatchdogCore {
    /// One sampling pass: fold active paths into the profile, check
    /// stall budgets, and let the recorder sample its metric sources.
    fn sample(&self) {
        self.samples.fetch_add(1, Ordering::Relaxed);
        let now = monotonic_us();
        let mut table = table().lock().unwrap_or_else(|e| e.into_inner());
        table.retain(|weak| weak.strong_count() > 0);
        let slots: Vec<Arc<Slot>> = table.iter().filter_map(Weak::upgrade).collect();
        drop(table);
        for slot in &slots {
            let state = slot.snapshot();
            if !state.path.is_empty() {
                let mut profile = self.profile.lock().unwrap_or_else(|e| e.into_inner());
                if profile.len() < self.config.max_paths || profile.contains_key(&state.path) {
                    *profile.entry(state.path.clone()).or_insert(0) += 1;
                }
            }
            let age = now.saturating_sub(state.heartbeat_us);
            let over_budget =
                state.budget_us > 0 && !state.path.is_empty() && age > state.budget_us;
            if over_budget {
                if !slot.stalled.swap(true, Ordering::Relaxed) {
                    self.stalls.fetch_add(1, Ordering::Relaxed);
                    let held = state.held.join(",");
                    crate::trace::event_with(
                        "obs.stall",
                        &[
                            ("worker", &state.worker),
                            ("path", &state.path),
                            ("held", &held),
                            ("age_us", &age),
                            ("budget_us", &state.budget_us),
                        ],
                    );
                    crate::recorder::trigger_dump("watchdog.stall", state.trace);
                }
            } else {
                slot.stalled.store(false, Ordering::Relaxed);
            }
        }
        if let Some(recorder) = crate::recorder::recorder() {
            recorder.sample_metrics();
        }
    }
}

/// Handle to the sampling thread. Dropping (or [`Watchdog::shutdown`])
/// stops and joins it; the accumulated profile survives until then
/// via the handle's accessors.
pub struct Watchdog {
    core: Arc<WatchdogCore>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Watchdog {
    /// Spawn the watchdog sampling thread (named `obs-watchdog`).
    pub fn start(config: WatchdogConfig) -> std::io::Result<Watchdog> {
        let core = Arc::new(WatchdogCore {
            stop: AtomicBool::new(false),
            samples: AtomicU64::new(0),
            stalls: AtomicU64::new(0),
            profile: Mutex::new(BTreeMap::new()),
            config,
        });
        let thread_core = Arc::clone(&core);
        let handle = std::thread::Builder::new()
            .name("obs-watchdog".to_string())
            .spawn(move || {
                while !thread_core.stop.load(Ordering::Relaxed) {
                    thread_core.sample();
                    std::thread::sleep(thread_core.config.interval);
                }
            })?;
        Ok(Watchdog {
            core,
            handle: Some(handle),
        })
    }

    /// An unstarted watchdog that only samples when [`sample_once`]
    /// is called — deterministic mode for tests.
    ///
    /// [`sample_once`]: Watchdog::sample_once
    pub fn manual(config: WatchdogConfig) -> Watchdog {
        Watchdog {
            core: Arc::new(WatchdogCore {
                stop: AtomicBool::new(false),
                samples: AtomicU64::new(0),
                stalls: AtomicU64::new(0),
                profile: Mutex::new(BTreeMap::new()),
                config,
            }),
            handle: None,
        }
    }

    /// Run one sampling pass synchronously on the calling thread.
    pub fn sample_once(&self) {
        self.core.sample();
    }

    /// Total sampling passes so far.
    pub fn samples(&self) -> u64 {
        self.core.samples.load(Ordering::Relaxed)
    }

    /// Total stall firings so far (edge-triggered per worker).
    pub fn stalls(&self) -> u64 {
        self.core.stalls.load(Ordering::Relaxed)
    }

    /// The folded-stack profile: `(span path, samples)` pairs, sorted
    /// by path. Feed to any flamegraph renderer (`path N` per line).
    pub fn folded_profile(&self) -> Vec<(String, u64)> {
        self.core
            .profile
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(path, &count)| (path.clone(), count))
            .collect()
    }

    /// Prometheus-style exposition of the watchdog's own state plus
    /// the folded profile as a labelled series.
    pub fn metrics_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "# TYPE obs_watchdog_samples_total counter");
        let _ = writeln!(out, "obs_watchdog_samples_total {}", self.samples());
        let _ = writeln!(out, "# TYPE obs_watchdog_stalls_total counter");
        let _ = writeln!(out, "obs_watchdog_stalls_total {}", self.stalls());
        let _ = writeln!(out, "# TYPE obs_watchdog_workers gauge");
        let _ = writeln!(out, "obs_watchdog_workers {}", thread_states().len());
        let profile = self.folded_profile();
        if !profile.is_empty() {
            let _ = writeln!(out, "# TYPE obs_profile_samples_total counter");
            for (path, count) in profile {
                let path = path.replace('\\', "\\\\").replace('"', "\\\"");
                let _ = writeln!(out, "obs_profile_samples_total{{path=\"{path}\"}} {count}");
            }
        }
        out
    }

    /// Stop and join the sampling thread (also happens on drop).
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.core.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::RingCollector;
    use crate::test_support::tracing_lock;

    #[test]
    fn thread_state_round_trips_through_json() {
        let state = ThreadState {
            worker: "serve-worker-0".into(),
            path: "serve.request>serve.execute".into(),
            held: vec!["Warehouse".into(), "Cache".into()],
            trace: Some(TraceId(7)),
            heartbeat_us: 100,
            budget_us: 2_000_000,
            stalled: true,
        };
        let parsed = ThreadState::from_json(&Json::parse(&state.to_json().render()).unwrap());
        assert_eq!(parsed, Some(state));
    }

    #[test]
    fn registration_publishes_spans_and_locks() {
        let _guard = tracing_lock();
        // Install a subscriber so spans are live and the hooks fire.
        let collector = std::sync::Arc::new(RingCollector::new(64));
        crate::trace::install(collector);
        crate::lockrank::set_rank_checks(true);
        let worker = register_worker("wd-test-worker", Duration::from_secs(1));
        {
            let _outer = crate::trace::span("serve.request");
            let _inner = crate::trace::span("serve.execute");
            let lock = crate::lockrank::RankedMutex::new(
                crate::lockrank::LockRank::Cache,
                "wd.test_cache",
                (),
            );
            let guard = lock.lock();
            let states = thread_states();
            let me = states
                .iter()
                .find(|s| s.worker == "wd-test-worker")
                .expect("registered");
            assert_eq!(me.path, "serve.request>serve.execute");
            assert_eq!(me.held, vec!["Cache".to_string()]);
            assert!(me.trace.is_some());
            drop(guard);
        }
        let states = thread_states();
        let me = states
            .iter()
            .find(|s| s.worker == "wd-test-worker")
            .expect("registered");
        assert_eq!(me.path, "");
        assert!(me.held.is_empty());
        drop(worker);
        assert!(!thread_states().iter().any(|s| s.worker == "wd-test-worker"));
        crate::lockrank::set_rank_checks(false);
        crate::trace::uninstall();
    }

    #[test]
    fn nested_scopes_target_the_innermost() {
        let _guard = tracing_lock();
        let collector = std::sync::Arc::new(RingCollector::new(64));
        crate::trace::install(collector);
        let _outer = register_worker("wd-outer", Duration::ZERO);
        {
            let _inner = task_scope("wd-inner", Duration::ZERO);
            let _span = crate::trace::span("warehouse.compact");
            let states = thread_states();
            let inner = states.iter().find(|s| s.worker == "wd-inner").expect("in");
            assert_eq!(inner.path, "warehouse.compact");
            // The outer slot exists but is not the publish target.
            assert!(states.iter().any(|s| s.worker == "wd-outer"));
        }
        assert!(!thread_states().iter().any(|s| s.worker == "wd-inner"));
        crate::trace::uninstall();
    }

    #[test]
    fn manual_watchdog_profiles_and_detects_stalls() {
        let _guard = tracing_lock();
        let collector = std::sync::Arc::new(RingCollector::new(64));
        crate::trace::install(collector.clone());
        let recorder = std::sync::Arc::new(crate::recorder::FlightRecorder::new(
            crate::recorder::RecorderConfig::default(),
        ));
        crate::recorder::install_recorder(std::sync::Arc::clone(&recorder));
        let watchdog = Watchdog::manual(WatchdogConfig::default());
        let worker = register_worker("wd-stall-worker", Duration::from_micros(1));
        {
            let _span = crate::trace::span("serve.request");
            // Let the 1µs budget lapse.
            std::thread::sleep(Duration::from_millis(2));
            watchdog.sample_once();
            watchdog.sample_once(); // edge-triggered: second sample is silent
        }
        assert_eq!(watchdog.stalls(), 1);
        assert!(watchdog
            .folded_profile()
            .iter()
            .any(|(path, count)| path == "serve.request" && *count >= 1));
        let text = watchdog.metrics_text();
        assert!(text.contains("obs_watchdog_stalls_total 1"));
        assert!(text.contains("obs_profile_samples_total{path=\"serve.request\"}"));
        // The stall fired an event and a dump.
        crate::recorder::uninstall_recorder();
        crate::trace::uninstall();
        assert!(collector.events().iter().any(|e| e.name == "obs.stall"));
        let dump = recorder.last_dump().expect("stall dumped");
        assert_eq!(dump.trigger, "watchdog.stall");
        assert!(dump
            .threads
            .iter()
            .any(|t| t.worker == "wd-stall-worker" && t.path == "serve.request"));
        drop(worker);
    }

    #[test]
    fn started_watchdog_samples_on_its_own() {
        let _guard = tracing_lock();
        let watchdog = Watchdog::start(WatchdogConfig {
            interval: Duration::from_millis(1),
            max_paths: 16,
        })
        .expect("spawns");
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while watchdog.samples() == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(watchdog.samples() > 0, "watchdog thread never sampled");
        watchdog.shutdown();
    }
}
