//! Structured tracing: spans, events, and the global subscriber.
//!
//! The design optimises the *disabled* path: when no subscriber is
//! installed (or tracing is switched off) [`span`] and [`event`] cost
//! one relaxed atomic load and allocate nothing — no `Instant` read,
//! no thread-local access, no field vector. Serving hot paths can
//! therefore stay instrumented unconditionally.
//!
//! When enabled, spans form a tree: a thread-local stack tracks the
//! current span, new spans parent onto it and inherit its trace id.
//! Crossing a thread boundary is explicit — capture
//! [`current_context`] on the sending side and open the child with
//! [`span_child_of`] on the receiving side (the serve worker pool and
//! the parallel cube builder both do this).
//!
//! Completed spans are reported to the installed [`Subscriber`] on
//! drop; children therefore arrive before their parents, and
//! collectors reassemble the tree from `(trace, parent)` links.
//!
//! When only the flight recorder is live (no subscriber), span and
//! event capture is head-sampled per trace — see the recorder module
//! docs for the admission rules. Failure paths call [`promote_trace`]
//! to pull their whole trace into the recorder regardless of the
//! sample; trace ids and context propagation work identically for
//! sampled and unsampled traces, so promotion is always possible.

use crate::json::Json;
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

/// Identifies one end-to-end request across threads and layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

/// Identifies one span within a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

/// The propagatable identity of a live span: enough to parent remote
/// work onto it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanContext {
    /// The trace this span belongs to.
    pub trace: TraceId,
    /// The span itself.
    pub span: SpanId,
}

/// A completed span, as delivered to subscribers.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span name (static, low-cardinality: `serve.request`, …).
    pub name: String,
    /// The owning trace.
    pub trace: TraceId,
    /// This span's id.
    pub id: SpanId,
    /// Parent span within the same trace, if any.
    pub parent: Option<SpanId>,
    /// Start offset from process start (µs, monotonic).
    pub start_us: u64,
    /// Wall duration (µs, monotonic).
    pub elapsed_us: u64,
    /// Name of the thread the span closed on.
    pub thread: String,
    /// Attached key/value fields, in insertion order.
    pub fields: Vec<(String, String)>,
}

/// A point-in-time event, as delivered to subscribers.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Event name (`warehouse.epoch_bump`, …).
    pub name: String,
    /// The enclosing trace, if the event fired inside a span.
    pub trace: Option<TraceId>,
    /// The enclosing span, if any.
    pub span: Option<SpanId>,
    /// Offset from process start (µs, monotonic).
    pub at_us: u64,
    /// Attached key/value fields, in insertion order.
    pub fields: Vec<(String, String)>,
}

/// Fields travel as an array of `[key, value]` pairs, not an object:
/// a JSON object would sort keys and collapse duplicates, losing the
/// insertion order the records promise.
fn fields_to_json(fields: &[(String, String)]) -> Json {
    Json::Arr(
        fields
            .iter()
            .map(|(k, v)| Json::Arr(vec![Json::Str(k.clone()), Json::Str(v.clone())]))
            .collect(),
    )
}

fn fields_from_json(value: Option<&Json>) -> Vec<(String, String)> {
    match value {
        Some(Json::Arr(pairs)) => pairs
            .iter()
            .filter_map(|pair| match pair {
                Json::Arr(kv) if kv.len() == 2 => {
                    Some((kv[0].as_str()?.to_string(), kv[1].as_str()?.to_string()))
                }
                _ => None,
            })
            .collect(),
        _ => Vec::new(),
    }
}

impl SpanRecord {
    /// Encode as a single-line JSON object (the JSONL wire shape).
    pub fn to_json(&self) -> Json {
        let mut obj = vec![
            ("kind", Json::from("span")),
            ("name", Json::from(self.name.as_str())),
            ("trace", Json::from(self.trace.0)),
            ("id", Json::from(self.id.0)),
            ("start_us", Json::from(self.start_us)),
            ("elapsed_us", Json::from(self.elapsed_us)),
            ("thread", Json::from(self.thread.as_str())),
            ("fields", fields_to_json(&self.fields)),
        ];
        if let Some(parent) = self.parent {
            obj.push(("parent", Json::from(parent.0)));
        }
        Json::obj(obj)
    }

    /// Decode the shape produced by [`SpanRecord::to_json`].
    pub fn from_json(value: &Json) -> Option<SpanRecord> {
        if value.get("kind")?.as_str()? != "span" {
            return None;
        }
        Some(SpanRecord {
            name: value.get("name")?.as_str()?.to_string(),
            trace: TraceId(value.get("trace")?.as_u64()?),
            id: SpanId(value.get("id")?.as_u64()?),
            parent: value.get("parent").and_then(Json::as_u64).map(SpanId),
            start_us: value.get("start_us")?.as_u64()?,
            elapsed_us: value.get("elapsed_us")?.as_u64()?,
            thread: value.get("thread")?.as_str()?.to_string(),
            fields: fields_from_json(value.get("fields")),
        })
    }

    /// The value of field `key`, if attached.
    pub fn field(&self, key: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

impl EventRecord {
    /// Encode as a single-line JSON object (the JSONL wire shape).
    pub fn to_json(&self) -> Json {
        let mut obj = vec![
            ("kind", Json::from("event")),
            ("name", Json::from(self.name.as_str())),
            ("at_us", Json::from(self.at_us)),
            ("fields", fields_to_json(&self.fields)),
        ];
        if let Some(trace) = self.trace {
            obj.push(("trace", Json::from(trace.0)));
        }
        if let Some(span) = self.span {
            obj.push(("span", Json::from(span.0)));
        }
        Json::obj(obj)
    }

    /// Decode the shape produced by [`EventRecord::to_json`].
    pub fn from_json(value: &Json) -> Option<EventRecord> {
        if value.get("kind")?.as_str()? != "event" {
            return None;
        }
        Some(EventRecord {
            name: value.get("name")?.as_str()?.to_string(),
            trace: value.get("trace").and_then(Json::as_u64).map(TraceId),
            span: value.get("span").and_then(Json::as_u64).map(SpanId),
            at_us: value.get("at_us")?.as_u64()?,
            fields: fields_from_json(value.get("fields")),
        })
    }

    /// The value of field `key`, if attached.
    pub fn field(&self, key: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Receives completed spans and events. Implementations must be cheap
/// and non-blocking — they run inline on serving threads.
pub trait Subscriber: Send + Sync {
    /// A span closed.
    fn on_span(&self, span: &SpanRecord);
    /// An event fired.
    fn on_event(&self, event: &EventRecord);
}

/// Fast gate: a single relaxed load decides the disabled path.
static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);
static SUBSCRIBER: RwLock<Option<Arc<dyn Subscriber>>> = RwLock::new(None);

fn process_start() -> Instant {
    static START: OnceLock<Instant> = OnceLock::new();
    *START.get_or_init(Instant::now)
}

/// Monotonic microseconds since process start — the timestamp basis
/// of every record. Also the sanctioned clock for code that the
/// `no-raw-timing` lint keeps away from `Instant::now()`.
pub fn monotonic_us() -> u64 {
    process_start().elapsed().as_micros().min(u64::MAX as u128) as u64
}

thread_local! {
    static CURRENT: Cell<Option<SpanContext>> = const { Cell::new(None) };
    /// Whether the innermost live trace on this thread is being
    /// captured by the flight recorder: head-sampled at the root or
    /// promoted mid-flight by [`promote_trace`].
    static TRACE_SAMPLED: Cell<bool> = const { Cell::new(false) };
    /// Thread-local id blocks carved from the global counters:
    /// `(next, end)`. Two plain increments replace two contended
    /// `fetch_add`s per span on the hot path.
    static TRACE_BLOCK: Cell<(u64, u64)> = const { Cell::new((0, 0)) };
    static SPAN_BLOCK: Cell<(u64, u64)> = const { Cell::new((0, 0)) };
}

/// Ids handed to one thread per refill. Head sampling is a modulus of
/// the trace id, so as long as this is a multiple of the sample rate
/// every block carries its exact share of sampled ids.
const ID_BLOCK: u64 = 1024;

#[inline]
fn next_id(block: &'static std::thread::LocalKey<Cell<(u64, u64)>>, global: &AtomicU64) -> u64 {
    block.with(|cell| {
        let (next, end) = cell.get();
        if next < end {
            cell.set((next + 1, end));
            next
        } else {
            let start = global.fetch_add(ID_BLOCK, Ordering::Relaxed);
            cell.set((start + 1, start + ID_BLOCK));
            start
        }
    })
}

/// Mark the current thread's live trace as interesting: from here on,
/// its spans and events bypass the flight recorder's head sampling
/// and are captured unconditionally (until the enclosing root span
/// closes). Failure paths call this at the point an error is detected
/// so the incident's trace is always in the black box. No-op when
/// nothing is being captured or no span is open.
pub fn promote_trace() {
    if !active() {
        return;
    }
    if CURRENT.with(Cell::get).is_some() {
        TRACE_SAMPLED.with(|s| s.set(true));
    }
}

/// Install `subscriber` and enable tracing. Replaces any previous
/// subscriber (last install wins).
pub fn install(subscriber: Arc<dyn Subscriber>) {
    // Touch the clock before enabling so the first span does not pay
    // for OnceLock initialisation.
    let _ = process_start();
    *SUBSCRIBER.write().unwrap_or_else(|e| e.into_inner()) = Some(subscriber);
    ENABLED.store(true, Ordering::Release);
}

/// Disable tracing and drop the subscriber, returning it (so tests
/// and exporters can drain what was collected).
pub fn uninstall() -> Option<Arc<dyn Subscriber>> {
    ENABLED.store(false, Ordering::Release);
    SUBSCRIBER.write().unwrap_or_else(|e| e.into_inner()).take()
}

/// Temporarily pause dispatch without removing the subscriber.
pub fn set_enabled(on: bool) {
    let has_subscriber = SUBSCRIBER
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .is_some();
    ENABLED.store(on && has_subscriber, Ordering::Release);
}

/// Whether tracing is currently live.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Whether span/event machinery must run at all: a subscriber is
/// enabled *or* the flight recorder is capturing. Two relaxed loads on
/// the fully-disabled path.
#[inline]
fn active() -> bool {
    enabled() || crate::recorder::recording()
}

fn dispatch_span(record: &SpanRecord) {
    if let Some(sub) = SUBSCRIBER
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .as_ref()
    {
        sub.on_span(record);
    }
}

fn dispatch_event(record: &EventRecord) {
    if let Some(sub) = SUBSCRIBER
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .as_ref()
    {
        sub.on_event(record);
    }
}

/// The context of the innermost live span on this thread, for
/// propagation across thread (or queue) boundaries.
pub fn current_context() -> Option<SpanContext> {
    if !active() {
        return None;
    }
    CURRENT.with(Cell::get)
}

struct LiveSpan {
    name: &'static str,
    ctx: SpanContext,
    parent: Option<SpanId>,
    /// The thread-local context to restore on drop (this thread's
    /// previous innermost span).
    restore: Option<SpanContext>,
    /// The thread's trace-sampling flag to restore on drop.
    sampled_restore: bool,
    /// This span's depth on the watchdog's span-path stack, or
    /// `usize::MAX` on unregistered threads (stack untouched — nobody
    /// would ever read it there).
    wd_depth: usize,
    start_us: u64,
    fields: Vec<(String, String)>,
}

/// RAII handle for an open span; records to the subscriber on drop.
///
/// A disabled tracer hands out inert guards (`inner == None`): no
/// allocation, no clock read, no thread-local traffic.
pub struct SpanGuard {
    inner: Option<LiveSpan>,
}

impl SpanGuard {
    /// Attach a key/value field (no-op when the span is inert).
    ///
    /// Field capture follows the recorder's sampling decision —
    /// building the strings only pays off when something will keep
    /// them. Watchdog-registered threads always store fields so that
    /// slow-outlier spans surface fully annotated; elsewhere, a span
    /// promoted *after* a `record` call surfaces without that field.
    pub fn record(&mut self, key: &str, value: impl std::fmt::Display) {
        if let Some(live) = self.inner.as_mut() {
            if enabled() || TRACE_SAMPLED.with(Cell::get) || live.wd_depth != usize::MAX {
                live.fields.push((key.to_string(), value.to_string()));
            }
        }
    }

    /// This span's context, for cross-thread propagation. `None` when
    /// tracing was disabled at creation.
    pub fn context(&self) -> Option<SpanContext> {
        self.inner.as_ref().map(|l| l.ctx)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(live) = self.inner.take() else {
            return;
        };
        CURRENT.with(|c| c.set(live.restore));
        let sampled = TRACE_SAMPLED.with(|s| {
            let now = s.get();
            s.set(live.sampled_restore);
            now
        });
        if live.wd_depth != usize::MAX {
            crate::watchdog::span_closed(live.wd_depth);
        }
        if !active() {
            return; // disabled mid-span: restore the stack, skip dispatch
        }
        // Ring admission: sampled (or promoted) traces always enter;
        // unsampled spans on watchdog-registered threads enter when
        // they ran long enough to count as slow outliers. Everything
        // else exits here without building a record — the hot path of
        // recorder-only capture.
        let recording = crate::recorder::recording();
        let mut ring = recording && sampled;
        let mut elapsed_us = None;
        if recording && !ring && live.wd_depth != usize::MAX {
            let e = monotonic_us().saturating_sub(live.start_us);
            ring = e >= crate::recorder::span_threshold_us();
            elapsed_us = Some(e);
        }
        if !enabled() && !ring {
            return;
        }
        // start_us == 0 means the open skipped the clock (unsampled,
        // unregistered, subscriber off) and the trace was promoted
        // mid-span: anchor the span at its close time, duration
        // unknown.
        let (start_us, elapsed_us) = if live.start_us == 0 {
            (monotonic_us(), 0)
        } else {
            (
                live.start_us,
                elapsed_us.unwrap_or_else(|| monotonic_us().saturating_sub(live.start_us)),
            )
        };
        let record = SpanRecord {
            name: live.name.to_string(),
            trace: live.ctx.trace,
            id: live.ctx.span,
            parent: live.parent,
            start_us,
            elapsed_us,
            thread: std::thread::current().name().unwrap_or("?").to_string(),
            fields: live.fields,
        };
        if enabled() {
            dispatch_span(&record);
        }
        if ring {
            crate::recorder::note_span(record);
        }
    }
}

fn open(name: &'static str, parent: Option<SpanContext>, link_current: bool) -> SpanGuard {
    if !active() {
        return SpanGuard { inner: None };
    }
    let inherited = if link_current {
        CURRENT.with(Cell::get)
    } else {
        None
    };
    let parent = parent.or(inherited);
    let ctx = SpanContext {
        trace: parent
            .map(|p| p.trace)
            .unwrap_or_else(|| TraceId(next_id(&TRACE_BLOCK, &NEXT_TRACE))),
        span: SpanId(next_id(&SPAN_BLOCK, &NEXT_SPAN)),
    };
    let restore = CURRENT.with(|c| c.replace(Some(ctx)));
    let (sampled, sampled_restore) = TRACE_SAMPLED.with(|s| {
        let prev = s.get();
        // Nested spans inherit the enclosing decision (which may have
        // been promoted); fresh roots — and cross-thread children,
        // whose decision is a pure function of the trace id — decide
        // by head sample.
        let sampled = (prev && restore.is_some()) || crate::recorder::head_sampled(ctx.trace);
        s.set(sampled);
        (sampled, prev)
    });
    let wd_depth = if crate::watchdog::registered() {
        crate::watchdog::span_opened(name, ctx.trace)
    } else {
        usize::MAX
    };
    // Read the clock only when this span can be captured as-is:
    // subscriber live, trace sampled, or a registered thread (which
    // needs the duration for the slow-outlier threshold). A span that
    // skipped the clock and gets *promoted* later surfaces at its
    // close time with zero duration (start_us == 0 sentinel).
    let start_us = if enabled() || sampled || wd_depth != usize::MAX {
        monotonic_us()
    } else {
        0
    };
    SpanGuard {
        inner: Some(LiveSpan {
            name,
            ctx,
            parent: parent.map(|p| p.span),
            restore,
            sampled_restore,
            wd_depth,
            start_us,
            fields: Vec::new(),
        }),
    }
}

/// Open a span. Parents onto the innermost live span on this thread
/// (inheriting its trace id) or starts a fresh trace at top level.
///
/// The returned [`SpanGuard`] closes the span on drop; fields attach
/// with [`SpanGuard::record`]. With no subscriber installed the guard
/// is inert and costs one atomic load.
///
/// ```
/// use std::sync::Arc;
/// let _guard = obs::test_support::tracing_lock();
/// let collector = Arc::new(obs::RingCollector::new(16));
/// obs::install(collector.clone());
/// {
///     let mut outer = obs::span("serve.request");
///     outer.record("kind", "cube");
///     let _inner = obs::span("olap.cube_build"); // same trace id
/// }
/// obs::uninstall();
/// let spans = collector.spans();
/// assert_eq!(spans.len(), 2);
/// assert_eq!(spans[0].trace, spans[1].trace);
/// ```
pub fn span(name: &'static str) -> SpanGuard {
    open(name, None, true)
}

/// Open a span explicitly parented on `parent` — the cross-thread
/// form. `None` behaves like [`span`] on a fresh thread: a new trace.
pub fn span_child_of(name: &'static str, parent: Option<SpanContext>) -> SpanGuard {
    open(name, parent, false)
}

/// Fire an event with fields, attributed to the innermost live span.
pub fn event_with(name: &'static str, fields: &[(&str, &dyn std::fmt::Display)]) {
    if !active() {
        return;
    }
    let current = CURRENT.with(Cell::get);
    // Ring admission: events outside any span are deliberate,
    // low-rate signals (stalls, breaker trips, dump markers) and
    // always land; in-span events follow their trace's sampling
    // decision and exit here — before any allocation — when it said no.
    let ring = crate::recorder::recording() && (current.is_none() || TRACE_SAMPLED.with(Cell::get));
    if !enabled() && !ring {
        return;
    }
    let record = EventRecord {
        name: name.to_string(),
        trace: current.map(|c| c.trace),
        span: current.map(|c| c.span),
        at_us: monotonic_us(),
        fields: fields
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect(),
    };
    if enabled() {
        dispatch_event(&record);
    }
    if ring {
        crate::recorder::note_event(record);
    }
}

/// Fire a field-less event.
pub fn event(name: &'static str) {
    event_with(name, &[]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::RingCollector;
    use crate::test_support::tracing_lock;

    #[test]
    fn disabled_tracer_is_inert() {
        let _guard = tracing_lock();
        uninstall();
        assert!(!enabled());
        let mut s = span("never.recorded");
        s.record("k", "v");
        assert!(s.context().is_none());
        assert!(current_context().is_none());
        event("never.seen");
    }

    #[test]
    fn spans_nest_and_share_a_trace() {
        let _guard = tracing_lock();
        let collector = Arc::new(RingCollector::new(64));
        install(collector.clone());
        {
            let root = span("root");
            let root_ctx = root.context().unwrap();
            {
                let child = span("child");
                let child_ctx = child.context().unwrap();
                assert_eq!(child_ctx.trace, root_ctx.trace);
                event("inside");
            }
        }
        uninstall();
        let spans = collector.spans();
        assert_eq!(spans.len(), 2);
        // Children close first.
        assert_eq!(spans[0].name, "child");
        assert_eq!(spans[1].name, "root");
        assert_eq!(spans[0].trace, spans[1].trace);
        assert_eq!(spans[0].parent, Some(spans[1].id));
        assert_eq!(spans[1].parent, None);
        let events = collector.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].span, Some(spans[0].id));
    }

    #[test]
    fn cross_thread_context_links_the_trace() {
        let _guard = tracing_lock();
        let collector = Arc::new(RingCollector::new(64));
        install(collector.clone());
        let ctx = {
            let root = span("sender");
            let ctx = root.context();
            std::thread::spawn(move || {
                let remote = span_child_of("receiver", ctx);
                remote.context().unwrap()
            })
            .join()
            .unwrap()
        };
        uninstall();
        let spans = collector.spans();
        let sender = spans.iter().find(|s| s.name == "sender").unwrap();
        let receiver = spans.iter().find(|s| s.name == "receiver").unwrap();
        assert_eq!(ctx.trace, sender.trace);
        assert_eq!(receiver.trace, sender.trace);
        assert_eq!(receiver.parent, Some(sender.id));
    }

    #[test]
    fn records_round_trip_through_json() {
        let span = SpanRecord {
            name: "serve.request".into(),
            trace: TraceId(9),
            id: SpanId(11),
            parent: Some(SpanId(3)),
            start_us: 120,
            elapsed_us: 450,
            thread: "serve-worker-0".into(),
            fields: vec![("kind".into(), "mdx".into())],
        };
        assert_eq!(
            SpanRecord::from_json(&Json::parse(&span.to_json().render()).unwrap()),
            Some(span.clone())
        );
        let event = EventRecord {
            name: "warehouse.epoch_bump".into(),
            trace: None,
            span: None,
            at_us: 77,
            fields: vec![("epoch".into(), "4".into())],
        };
        assert_eq!(
            EventRecord::from_json(&Json::parse(&event.to_json().render()).unwrap()),
            Some(event)
        );
        // Span json never decodes as an event and vice versa.
        assert!(EventRecord::from_json(&span.to_json()).is_none());
    }
}
