//! Subscribers: ring buffer, human-readable writer, JSONL exporter.

use crate::json::Json;
use crate::trace::{EventRecord, SpanId, SpanRecord, Subscriber};
use std::collections::VecDeque;
use std::io::Write;
use std::sync::Mutex;

/// One collected record, in arrival order.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A completed span.
    Span(SpanRecord),
    /// A fired event.
    Event(EventRecord),
}

impl Record {
    /// Encode as a single-line JSON object.
    pub fn to_json(&self) -> Json {
        match self {
            Record::Span(s) => s.to_json(),
            Record::Event(e) => e.to_json(),
        }
    }

    /// Decode either record shape from its JSON form.
    pub fn from_json(value: &Json) -> Option<Record> {
        SpanRecord::from_json(value)
            .map(Record::Span)
            .or_else(|| EventRecord::from_json(value).map(Record::Event))
    }
}

/// A bounded in-memory collector: keeps the most recent `capacity`
/// records, dropping the oldest under pressure (and counting drops).
/// The default collector for tests, examples and live inspection.
pub struct RingCollector {
    capacity: usize,
    inner: Mutex<RingState>,
}

#[derive(Default)]
struct RingState {
    records: VecDeque<Record>,
    dropped: u64,
}

impl RingCollector {
    /// A collector retaining at most `capacity` records.
    pub fn new(capacity: usize) -> RingCollector {
        RingCollector {
            capacity: capacity.max(1),
            inner: Mutex::new(RingState::default()),
        }
    }

    fn push(&self, record: Record) {
        let mut state = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if state.records.len() >= self.capacity {
            state.records.pop_front();
            state.dropped += 1;
        }
        state.records.push_back(record);
    }

    /// Copy of every retained record, in arrival order.
    pub fn records(&self) -> Vec<Record> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .records
            .iter()
            .cloned()
            .collect()
    }

    /// Retained spans only, in arrival (i.e. completion) order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.records()
            .into_iter()
            .filter_map(|r| match r {
                Record::Span(s) => Some(s),
                Record::Event(_) => None,
            })
            .collect()
    }

    /// Retained events only, in arrival order.
    pub fn events(&self) -> Vec<EventRecord> {
        self.records()
            .into_iter()
            .filter_map(|r| match r {
                Record::Event(e) => Some(e),
                Record::Span(_) => None,
            })
            .collect()
    }

    /// Number of records evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).dropped
    }

    /// Number of records currently retained.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .records
            .len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drain the ring, returning everything retained so far.
    pub fn take(&self) -> Vec<Record> {
        std::mem::take(&mut self.inner.lock().unwrap_or_else(|e| e.into_inner()).records)
            .into_iter()
            .collect()
    }

    /// Render every retained record as JSONL (one object per line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for record in self.records() {
            out.push_str(&record.to_json().render());
            out.push('\n');
        }
        out
    }
}

impl Subscriber for RingCollector {
    fn on_span(&self, span: &SpanRecord) {
        self.push(Record::Span(span.clone()));
    }

    fn on_event(&self, event: &EventRecord) {
        self.push(Record::Event(event.clone()));
    }
}

/// Direct children of `parent` among `spans` (same trace, linked
/// parent id) — the reassembly helper collectors and tests use, since
/// spans arrive in completion order, children first.
pub fn children_of<'a>(spans: &'a [SpanRecord], parent: &SpanRecord) -> Vec<&'a SpanRecord> {
    spans
        .iter()
        .filter(|s| s.trace == parent.trace && s.parent == Some(parent.id))
        .collect()
}

/// Render a completed trace as an indented tree (roots first), for
/// humans. Spans from other traces are ignored.
pub fn render_trace(spans: &[SpanRecord], trace: crate::trace::TraceId) -> String {
    fn emit(out: &mut String, spans: &[&SpanRecord], span: &SpanRecord, depth: usize) {
        out.push_str(&"  ".repeat(depth));
        out.push_str(&format!(
            "{} ({}µs, thread {})",
            span.name, span.elapsed_us, span.thread
        ));
        for (k, v) in &span.fields {
            out.push_str(&format!(" {k}={v}"));
        }
        out.push('\n');
        let mut kids: Vec<&&SpanRecord> =
            spans.iter().filter(|s| s.parent == Some(span.id)).collect();
        kids.sort_by_key(|s| s.start_us);
        for kid in kids {
            emit(out, spans, kid, depth + 1);
        }
    }
    let in_trace: Vec<&SpanRecord> = spans.iter().filter(|s| s.trace == trace).collect();
    // Roots: no parent, or a parent that never closed into this set.
    let ids: std::collections::HashSet<SpanId> = in_trace.iter().map(|s| s.id).collect();
    let mut roots: Vec<&&SpanRecord> = in_trace
        .iter()
        .filter(|s| s.parent.map(|p| !ids.contains(&p)).unwrap_or(true))
        .collect();
    roots.sort_by_key(|s| s.start_us);
    let mut out = String::new();
    for root in roots {
        emit(&mut out, &in_trace, root, 0);
    }
    out
}

/// Streams human-readable one-liners to any writer (stderr, a log
/// file). Lines are `<name> trace=<t> span=<s> <dur>µs k=v …`.
pub struct WriterSubscriber<W: Write + Send> {
    writer: Mutex<W>,
}

impl<W: Write + Send> WriterSubscriber<W> {
    /// Subscribe `writer` to the record stream.
    pub fn new(writer: W) -> WriterSubscriber<W> {
        WriterSubscriber {
            writer: Mutex::new(writer),
        }
    }

    /// Consume the subscriber and hand the writer back.
    pub fn into_inner(self) -> W {
        self.writer.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<W: Write + Send> Subscriber for WriterSubscriber<W> {
    fn on_span(&self, span: &SpanRecord) {
        let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        let _ = write!(
            w,
            "span  {} trace={} span={} {}µs thread={}",
            span.name, span.trace.0, span.id.0, span.elapsed_us, span.thread
        );
        if let Some(parent) = span.parent {
            let _ = write!(w, " parent={}", parent.0);
        }
        for (k, v) in &span.fields {
            let _ = write!(w, " {k}={v}");
        }
        let _ = writeln!(w);
    }

    fn on_event(&self, event: &EventRecord) {
        let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        let _ = write!(w, "event {} at={}µs", event.name, event.at_us);
        if let Some(trace) = event.trace {
            let _ = write!(w, " trace={}", trace.0);
        }
        for (k, v) in &event.fields {
            let _ = write!(w, " {k}={v}");
        }
        let _ = writeln!(w);
    }
}

/// Streams records as JSONL — one machine-readable JSON object per
/// line, parseable back into [`Record`]s with [`parse_jsonl`].
///
/// Each record is written under one lock acquisition (whole line +
/// newline), so concurrent subscribers interleave at line granularity
/// and never corrupt a record mid-line. The writer is flushed on drop
/// — a black-box dump or trace export that ends with the exporter
/// going out of scope cannot truncate buffered records.
pub struct JsonlExporter<W: Write + Send> {
    /// `Some` until [`into_inner`](JsonlExporter::into_inner) takes
    /// the writer (the indirection lets `Drop` flush without fighting
    /// the move).
    writer: Mutex<Option<W>>,
}

impl<W: Write + Send> JsonlExporter<W> {
    /// Export the record stream to `writer` as JSONL.
    pub fn new(writer: W) -> JsonlExporter<W> {
        JsonlExporter {
            writer: Mutex::new(Some(writer)),
        }
    }

    /// Flush the underlying writer (also happens on drop).
    pub fn flush(&self) {
        if let Some(w) = self
            .writer
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .as_mut()
        {
            let _ = w.flush();
        }
    }

    /// Consume the exporter and hand the writer back.
    pub fn into_inner(self) -> W {
        self.writer
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .expect("writer is present until into_inner consumes the exporter") // lint:allow(no-panic, "into_inner takes self by value, so the writer can only have been taken once")
    }
}

impl<W: Write + Send> Drop for JsonlExporter<W> {
    fn drop(&mut self) {
        self.flush();
    }
}

impl<W: Write + Send> Subscriber for JsonlExporter<W> {
    fn on_span(&self, span: &SpanRecord) {
        if let Some(w) = self
            .writer
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .as_mut()
        {
            let _ = writeln!(w, "{}", span.to_json().render());
        }
    }

    fn on_event(&self, event: &EventRecord) {
        if let Some(w) = self
            .writer
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .as_mut()
        {
            let _ = writeln!(w, "{}", event.to_json().render());
        }
    }
}

/// Parse a JSONL export back into records. Unparseable lines are
/// skipped (observability reads are best-effort).
pub fn parse_jsonl(text: &str) -> Vec<Record> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .filter_map(|l| Json::parse(l).as_ref().and_then(Record::from_json))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceId;

    fn span(name: &str, trace: u64, id: u64, parent: Option<u64>, start: u64) -> SpanRecord {
        SpanRecord {
            name: name.into(),
            trace: TraceId(trace),
            id: SpanId(id),
            parent: parent.map(SpanId),
            start_us: start,
            elapsed_us: 10,
            thread: "main".into(),
            fields: vec![],
        }
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let ring = RingCollector::new(2);
        for i in 0..4u64 {
            ring.on_span(&span("s", 1, i, None, i));
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped(), 2);
        let spans = ring.spans();
        assert_eq!(spans[0].id, SpanId(2));
        assert_eq!(spans[1].id, SpanId(3));
        assert_eq!(ring.take().len(), 2);
        assert!(ring.is_empty());
    }

    #[test]
    fn jsonl_round_trips_mixed_records() {
        let exporter = JsonlExporter::new(Vec::new());
        let s = span("serve.request", 1, 2, None, 5);
        let e = EventRecord {
            name: "cache.hit".into(),
            trace: Some(TraceId(1)),
            span: Some(SpanId(2)),
            at_us: 9,
            fields: vec![("key".into(), "fp×3".into())],
        };
        exporter.on_span(&s);
        exporter.on_event(&e);
        let text = String::from_utf8(exporter.into_inner()).unwrap();
        let records = parse_jsonl(&text);
        assert_eq!(records, vec![Record::Span(s), Record::Event(e)]);
    }

    #[test]
    fn tree_rendering_indents_children() {
        let spans = vec![
            span("child", 7, 2, Some(1), 3),
            span("grandchild", 7, 3, Some(2), 4),
            span("root", 7, 1, None, 1),
            span("other-trace", 8, 9, None, 0),
        ];
        let tree = render_trace(&spans, TraceId(7));
        assert!(tree.contains("root"));
        assert!(tree.contains("\n  child"));
        assert!(tree.contains("\n    grandchild"));
        assert!(!tree.contains("other-trace"));
        let root = spans.iter().find(|s| s.name == "root").unwrap();
        assert_eq!(children_of(&spans, root).len(), 1);
    }

    /// A writer that remembers whether it was flushed.
    struct FlushProbe {
        flushed: std::sync::Arc<std::sync::atomic::AtomicBool>,
    }

    impl Write for FlushProbe {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            self.flushed
                .store(true, std::sync::atomic::Ordering::Relaxed);
            Ok(())
        }
    }

    #[test]
    fn jsonl_exporter_flushes_on_drop() {
        let flushed = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let exporter = JsonlExporter::new(FlushProbe {
            flushed: flushed.clone(),
        });
        exporter.on_event(&EventRecord {
            name: "e".into(),
            trace: None,
            span: None,
            at_us: 1,
            fields: vec![],
        });
        assert!(!flushed.load(std::sync::atomic::Ordering::Relaxed));
        drop(exporter);
        assert!(
            flushed.load(std::sync::atomic::Ordering::Relaxed),
            "drop must flush buffered records"
        );
    }

    #[test]
    fn concurrent_writers_interleave_at_line_granularity() {
        use std::sync::Arc;
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 50;
        let exporter = Arc::new(JsonlExporter::new(Vec::<u8>::new()));
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let exporter = Arc::clone(&exporter);
                std::thread::Builder::new()
                    .name(format!("jsonl-writer-{t}"))
                    .spawn(move || {
                        for i in 0..PER_THREAD {
                            let id = t * PER_THREAD + i;
                            exporter.on_span(&span("concurrent", t + 1, id, None, i));
                            exporter.on_event(&EventRecord {
                                name: "tick".into(),
                                trace: Some(TraceId(t + 1)),
                                span: Some(SpanId(id)),
                                at_us: i,
                                // Escaped content must survive interleaving too.
                                fields: vec![("payload".into(), format!("line\n\"{id}\""))],
                            });
                        }
                    })
                    .expect("spawns")
            })
            .collect();
        for handle in handles {
            handle.join().expect("writer thread joins");
        }
        let exporter = Arc::try_unwrap(exporter).ok().expect("sole owner");
        let text = String::from_utf8(exporter.into_inner()).expect("utf8");
        let records = parse_jsonl(&text);
        // Lossless: every record from every thread survived intact.
        assert_eq!(records.len() as u64, THREADS * PER_THREAD * 2);
        let mut span_ids: Vec<u64> = records
            .iter()
            .filter_map(|r| match r {
                Record::Span(s) => Some(s.id.0),
                Record::Event(_) => None,
            })
            .collect();
        span_ids.sort_unstable();
        assert_eq!(span_ids, (0..THREADS * PER_THREAD).collect::<Vec<_>>());
        for record in &records {
            if let Record::Event(e) = record {
                let payload = e.field("payload").expect("payload field");
                assert!(payload.starts_with("line\n\""), "corrupted: {payload:?}");
            }
        }
    }

    #[test]
    fn writer_subscriber_formats_lines() {
        let w = WriterSubscriber::new(Vec::new());
        w.on_span(&span("s", 1, 2, Some(1), 0));
        w.on_event(&EventRecord {
            name: "e".into(),
            trace: None,
            span: None,
            at_us: 1,
            fields: vec![("k".into(), "v".into())],
        });
        let text = String::from_utf8(w.into_inner()).unwrap();
        assert!(text.contains("span  s trace=1 span=2"));
        assert!(text.contains("parent=1"));
        assert!(text.contains("event e at=1µs k=v"));
    }
}
