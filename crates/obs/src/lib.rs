//! Observability for the DD-DGMS stack: structured tracing, a unified
//! metrics registry, and per-query execution profiles.
//!
//! Four concerns, one crate, zero dependencies:
//!
//! * [`trace`] — spans and events with trace ids that survive thread
//!   boundaries (serve worker pool, parallel cube builds). The
//!   disabled path is a single relaxed atomic load, so instrumentation
//!   stays compiled into hot paths unconditionally.
//! * [`metrics`] — named counters, gauges and histograms in a
//!   process-wide or per-subsystem [`MetricsRegistry`], with
//!   Prometheus-style text exposition and snapshot diffing.
//! * [`profile`] — [`QueryProfile`] phase breakdowns (parse → analyze
//!   → cache lookup → queue → execute → aggregate) attached to query
//!   outcomes, the stack's `EXPLAIN ANALYZE`.
//! * [`lockrank`] — the global [`LockRank`] hierarchy plus
//!   [`RankedMutex`]/[`RankedRwLock`] wrappers that assert ascending
//!   acquisition order in debug builds (the dynamic half of the
//!   concurrency auditor; `repo-lint --locks` is the static half).
//! * [`recorder`] — the always-on flight recorder: a thread-sharded
//!   ring of recent spans, events, failpoint hits, lock acquisitions
//!   and metric deltas that snapshots into a JSONL [`BlackBox`] when
//!   an incident trigger fires.
//! * [`watchdog`] — the shared active-task table (span path + held
//!   lock ranks + heartbeat per worker), a sampling thread that folds
//!   paths into a flamegraph-style profile, and stall detection that
//!   fires `obs.stall` events and recorder dumps.
//! * [`slo`] — declarative latency/error-rate objectives evaluated
//!   from [`MetricsRegistry`] snapshots with multi-window (5 m / 1 h)
//!   burn-rate alerting.
//!
//! Records serialise to JSONL through the crate's own minimal
//! [`json::Json`] codec (the workspace serde shim is derive-only), so
//! exports round-trip without external dependencies.
//!
//! # Quick start
//!
//! ```
//! use std::sync::Arc;
//! let _guard = obs::test_support::tracing_lock();
//! let collector = Arc::new(obs::RingCollector::new(1024));
//! obs::install(collector.clone());
//! {
//!     let mut root = obs::span("serve.request");
//!     root.record("kind", "mdx");
//!     obs::event("cache.miss");
//! }
//! obs::uninstall();
//! assert_eq!(collector.spans().len(), 1);
//! assert_eq!(collector.events().len(), 1);
//! ```

#![deny(missing_docs)]

pub mod collect;
pub mod json;
pub mod lockrank;
pub mod metrics;
pub mod profile;
pub mod recorder;
pub mod slo;
pub mod trace;
pub mod watchdog;

pub use collect::{
    children_of, parse_jsonl, render_trace, JsonlExporter, Record, RingCollector, WriterSubscriber,
};
pub use json::Json;
pub use lockrank::{
    held_ranks, rank_checks_enabled, set_rank_checks, LockRank, RankedMutex, RankedMutexGuard,
    RankedReadGuard, RankedRwLock, RankedWriteGuard, ALL_RANKS,
};
pub use metrics::{
    percentile_from_buckets, Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry,
    RegistryDelta, RegistrySnapshot,
};
pub use profile::{Phase, ProfileBuilder, QueryProfile};
pub use recorder::{
    install_recorder, recorder, recording, trigger_dump, uninstall_recorder, BlackBox,
    FlightRecord, FlightRecorder, RecorderConfig,
};
pub use slo::{render_status, SloEngine, SloKind, SloSpec, SloStatus, SloWindows};
pub use trace::{
    current_context, enabled, event, event_with, install, monotonic_us, promote_trace, set_enabled,
    span, span_child_of, uninstall, EventRecord, SpanContext, SpanGuard, SpanId, SpanRecord,
    Subscriber, TraceId,
};
pub use watchdog::{
    heartbeat, register_worker, task_scope, thread_states, ThreadState, Watchdog, WatchdogConfig,
    WorkerGuard,
};

/// Helpers for tests that exercise the process-global subscriber.
pub mod test_support {
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// Serialises tests (and doctests/examples) that install a global
    /// subscriber: hold the returned guard for the duration of the
    /// test so concurrent tests cannot swap subscribers mid-flight.
    pub fn tracing_lock() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }
}
