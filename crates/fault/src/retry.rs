//! Bounded retry with deterministic jittered exponential backoff.
//!
//! Transient faults (an injected I/O hiccup, a briefly unavailable
//! warehouse, a replica that has not caught up yet) should not fail an
//! operation that a second attempt would complete. The policy here is
//! deliberately small: a fixed number of attempts, exponential backoff
//! between them, and *deterministic* jitter — the jitter sequence is
//! derived from a seed with an xorshift generator, so a test (or a
//! replayed incident) sees the exact same sleep schedule every run.
//!
//! The one implementation is shared by the serve request paths and the
//! oplog replication catch-up loop, so both back off identically.

use std::time::Duration;

/// Retry schedule for transient failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (`1` = no retries).
    pub attempts: u32,
    /// Backoff before the first retry; doubled each further retry.
    pub base_delay: Duration,
    /// Seed for the deterministic jitter sequence.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 3,
            base_delay: Duration::from_micros(200),
            jitter_seed: 0x5EED_CAFE,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (single attempt, no sleeps).
    pub fn none() -> Self {
        RetryPolicy {
            attempts: 1,
            base_delay: Duration::ZERO,
            jitter_seed: 0,
        }
    }

    /// Backoff before retry `retry` (0-based): `base * 2^retry` plus
    /// up to 50% deterministic jitter.
    pub fn backoff(&self, retry: u32) -> Duration {
        let base = self.base_delay.saturating_mul(1u32 << retry.min(16));
        if base.is_zero() {
            return base;
        }
        let mut x = self
            .jitter_seed
            .wrapping_add(u64::from(retry))
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            | 1;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let jitter_nanos = (base.as_nanos() as u64 / 2)
            .checked_rem(u64::MAX)
            .unwrap_or(0);
        let jitter = if jitter_nanos == 0 {
            0
        } else {
            x % jitter_nanos
        };
        base + Duration::from_nanos(jitter)
    }

    /// Run `op` under this policy. Returns the first success, or the
    /// last error once attempts are exhausted, together with the
    /// number of retries actually performed (for metrics).
    pub fn run<T, E>(&self, mut op: impl FnMut() -> Result<T, E>) -> (Result<T, E>, u32) {
        let attempts = self.attempts.max(1);
        let mut retries = 0;
        loop {
            match op() {
                Ok(v) => return (Ok(v), retries),
                Err(e) if retries + 1 >= attempts => return (Err(e), retries),
                Err(_) => {
                    std::thread::sleep(self.backoff(retries));
                    retries += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_success_means_no_retries() {
        let policy = RetryPolicy::default();
        let (result, retries) = policy.run(|| Ok::<_, ()>(42));
        assert_eq!(result, Ok(42));
        assert_eq!(retries, 0);
    }

    #[test]
    fn transient_failure_is_retried_to_success() {
        let policy = RetryPolicy {
            base_delay: Duration::from_micros(1),
            ..RetryPolicy::default()
        };
        let mut calls = 0;
        let (result, retries) = policy.run(|| {
            calls += 1;
            if calls < 3 {
                Err("transient")
            } else {
                Ok(calls)
            }
        });
        assert_eq!(result, Ok(3));
        assert_eq!(retries, 2);
    }

    #[test]
    fn exhausted_attempts_return_last_error() {
        let policy = RetryPolicy {
            attempts: 2,
            base_delay: Duration::from_micros(1),
            ..RetryPolicy::default()
        };
        let mut calls = 0;
        let (result, retries) = policy.run(|| -> Result<(), _> {
            calls += 1;
            Err(calls)
        });
        assert_eq!(result, Err(2));
        assert_eq!(retries, 1);
        assert_eq!(calls, 2);
    }

    #[test]
    fn backoff_is_exponential_and_deterministic() {
        let policy = RetryPolicy::default();
        let again = RetryPolicy::default();
        for retry in 0..4 {
            assert_eq!(policy.backoff(retry), again.backoff(retry));
            let floor = policy.base_delay * (1 << retry);
            assert!(policy.backoff(retry) >= floor);
            // Jitter is bounded by 50% of the exponential base.
            assert!(policy.backoff(retry) < floor + floor / 2 + Duration::from_nanos(1));
        }
        let reseeded = RetryPolicy {
            jitter_seed: 7,
            ..RetryPolicy::default()
        };
        assert_ne!(reseeded.backoff(1), policy.backoff(1));
    }

    #[test]
    fn none_policy_never_sleeps() {
        let policy = RetryPolicy::none();
        assert_eq!(policy.backoff(0), Duration::ZERO);
        let mut calls = 0;
        let (result, retries) = policy.run(|| -> Result<(), _> {
            calls += 1;
            Err("hard")
        });
        assert!(result.is_err());
        assert_eq!(retries, 0);
        assert_eq!(calls, 1);
    }
}
