//! Deterministic fault injection for the DD-DGMS stack.
//!
//! Production resource code calls [`point`] at every place an I/O or
//! scheduling operation can genuinely fail — a WAL append, a warehouse
//! load, a cube-build worker body, the serve queue hand-off. In normal
//! operation nothing is armed and the call is a single relaxed atomic
//! load (the same zero-cost-when-disabled discipline as `obs`
//! tracing). Tests and chaos drills [`arm`] a point with a scripted
//! [`Trigger`] and a [`FaultKind`], and the next matching evaluation
//! returns a [`FaultError`] (or panics, for panic-containment drills)
//! exactly where a real fault would surface.
//!
//! Triggers are deterministic: fail-once, fail-every-Nth, fail-after-K
//! and seeded-probabilistic all derive from per-point hit counters and
//! a fixed-seed xorshift, never from wall-clock entropy, so a failing
//! chaos run replays byte-for-byte.
//!
//! ```
//! let _lock = fault::test_support::fault_lock();
//! assert!(fault::point("demo.io").is_ok()); // nothing armed: no-op
//! {
//!     let _guard = fault::arm("demo.io", fault::Trigger::Once, fault::FaultKind::Error);
//!     assert!(fault::point("demo.io").is_err()); // fires once…
//!     assert!(fault::point("demo.io").is_ok()); // …then stands down
//! }
//! assert!(fault::point("demo.io").is_ok()); // guard dropped: disarmed
//! ```
//!
//! Per-point hit/fire counters survive disarming and can be exported
//! into an [`obs::MetricsRegistry`] via [`export_into`] for the same
//! Prometheus exposition the rest of the stack uses.

#![deny(missing_docs)]

use obs::MetricsRegistry;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Number of currently armed failpoints. The [`point`] fast path is a
/// single relaxed load of this counter; everything else lives behind
/// it on the cold path.
static ARMED: AtomicUsize = AtomicUsize::new(0);

/// An injected fault, surfaced where a real resource failure would be.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultError {
    point: String,
}

impl FaultError {
    /// The failpoint that fired.
    pub fn point(&self) -> &str {
        &self.point
    }
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "injected fault at {}", self.point)
    }
}

impl std::error::Error for FaultError {}

/// When an armed failpoint fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// Fire on every hit.
    Always,
    /// Fire on the first hit after arming, then stand down.
    Once,
    /// Fire on every `n`th hit after arming (1st, `n+1`th, …); `n` is
    /// floored at 1.
    EveryNth(u64),
    /// Pass the first `k` hits after arming, then fire on every later
    /// hit — "the resource degrades after k successes".
    AfterK(u64),
    /// Fire each hit independently with probability `permille`/1000,
    /// driven by a seeded xorshift over the hit index — deterministic
    /// across runs, no wall-clock entropy.
    Probability {
        /// Fixed RNG seed; the same seed replays the same decisions.
        seed: u64,
        /// Fire probability in thousandths (0–1000).
        permille: u32,
    },
}

/// How a firing failpoint manifests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// [`point`] returns a [`FaultError`] — models an I/O error the
    /// caller must propagate or absorb.
    Error,
    /// [`point`] panics — models a crash inside the instrumented code,
    /// for `catch_unwind` containment drills.
    Panic,
}

struct PointState {
    trigger: Trigger,
    kind: FaultKind,
    /// Hits observed since arming (trigger arithmetic).
    armed_hits: u64,
    /// `Once` already consumed.
    spent: bool,
}

#[derive(Default, Clone, Copy)]
struct PointTotals {
    hits: u64,
    fires: u64,
}

#[derive(Default)]
struct Registry {
    points: BTreeMap<String, PointState>,
    /// Cumulative per-point counters; survive disarming.
    totals: BTreeMap<String, PointTotals>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

fn lock_registry() -> MutexGuard<'static, Registry> {
    registry().lock().unwrap_or_else(|e| e.into_inner())
}

fn xorshift(mut x: u64) -> u64 {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x
}

/// Evaluate the failpoint `name`.
///
/// With nothing armed anywhere this is one relaxed atomic load and an
/// immediate `Ok(())`, cheap enough to sit on every hot path. While
/// any point is armed, evaluations take the cold path: the hit counter
/// advances and the armed trigger (if this point is the armed one)
/// decides whether to fail.
#[inline]
pub fn point(name: &str) -> Result<(), FaultError> {
    if ARMED.load(Ordering::Relaxed) == 0 {
        return Ok(());
    }
    point_slow(name)
}

#[cold]
fn point_slow(name: &str) -> Result<(), FaultError> {
    let mut reg = lock_registry();
    reg.totals.entry(name.to_string()).or_default().hits += 1;
    let Some(state) = reg.points.get_mut(name) else {
        return Ok(());
    };
    state.armed_hits += 1;
    let hit = state.armed_hits;
    let fires = match state.trigger {
        Trigger::Always => true,
        Trigger::Once => {
            if state.spent {
                false
            } else {
                state.spent = true;
                true
            }
        }
        Trigger::EveryNth(n) => (hit - 1) % n.max(1) == 0,
        Trigger::AfterK(k) => hit > k,
        Trigger::Probability { seed, permille } => {
            let r = xorshift(seed.wrapping_add(hit).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
            r % 1000 < u64::from(permille.min(1000))
        }
    };
    if !fires {
        drop(reg);
        // Evaluations on the cold path feed the flight recorder (one
        // relaxed load when no recorder is installed), so a black box
        // shows which failpoints the incident window touched.
        obs::recorder::note_failpoint(name, false);
        return Ok(());
    }
    let kind = state.kind;
    if let Some(t) = reg.totals.get_mut(name) {
        t.fires += 1;
    }
    drop(reg);
    obs::recorder::note_failpoint(name, true);
    match kind {
        FaultKind::Error => Err(FaultError {
            point: name.to_string(),
        }),
        FaultKind::Panic => panic!("injected fault (panic) at {name}"),
    }
}

/// Scoped arming of one failpoint; dropping the guard disarms it.
///
/// Hold [`test_support::fault_lock`] around any test that arms points:
/// the registry is process-global and concurrent tests would otherwise
/// inject faults into each other.
#[must_use = "the failpoint disarms when the guard drops"]
pub struct FaultGuard {
    name: String,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        let mut reg = lock_registry();
        if reg.points.remove(&self.name).is_some() {
            ARMED.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// Arm failpoint `name` with `trigger` and `kind`, returning the guard
/// that disarms it. Re-arming an already-armed point replaces its
/// script (and the first guard dropped disarms it — scope one guard
/// per point).
pub fn arm(name: &str, trigger: Trigger, kind: FaultKind) -> FaultGuard {
    let mut reg = lock_registry();
    let fresh = reg
        .points
        .insert(
            name.to_string(),
            PointState {
                trigger,
                kind,
                armed_hits: 0,
                spent: false,
            },
        )
        .is_none();
    drop(reg);
    if fresh {
        ARMED.fetch_add(1, Ordering::SeqCst);
    }
    FaultGuard {
        name: name.to_string(),
    }
}

/// Whether any failpoint is currently armed.
pub fn any_armed() -> bool {
    ARMED.load(Ordering::Relaxed) > 0
}

/// Cumulative evaluations of `name` observed on the cold path (i.e.
/// while the subsystem had at least one point armed).
pub fn hits(name: &str) -> u64 {
    lock_registry().totals.get(name).map_or(0, |t| t.hits)
}

/// Cumulative times `name` actually fired a fault.
pub fn fires(name: &str) -> u64 {
    lock_registry().totals.get(name).map_or(0, |t| t.fires)
}

/// Export every point's cumulative hit/fire counters into `registry`
/// as `fault_hits_total{...}`-style counters (dots in point names
/// become underscores). Idempotent: repeated exports advance each
/// counter by the delta since the last export, not the full total.
pub fn export_into(registry: &MetricsRegistry) {
    let reg = lock_registry();
    for (name, totals) in &reg.totals {
        let base = name.replace('.', "_");
        let hits = registry.counter(&format!("fault_{base}_hits_total"));
        hits.add(totals.hits.saturating_sub(hits.get()));
        let fires = registry.counter(&format!("fault_{base}_fires_total"));
        fires.add(totals.fires.saturating_sub(fires.get()));
    }
}

pub mod retry;

pub use retry::RetryPolicy;

/// Helpers for tests that arm process-global failpoints.
pub mod test_support {
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// Serialises tests that arm failpoints: the registry is
    /// process-global, so hold the returned guard for the duration of
    /// any test that arms a point (mirrors
    /// `obs::test_support::tracing_lock`).
    pub fn fault_lock() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use test_support::fault_lock;

    #[test]
    fn disabled_points_are_noops() {
        let _lock = fault_lock();
        assert!(!any_armed());
        assert!(point("t.nothing").is_ok());
    }

    #[test]
    fn once_fires_exactly_once() {
        let _lock = fault_lock();
        let guard = arm("t.once", Trigger::Once, FaultKind::Error);
        assert!(any_armed());
        let err = point("t.once").unwrap_err();
        assert_eq!(err.point(), "t.once");
        assert!(err.to_string().contains("t.once"));
        assert!(point("t.once").is_ok());
        assert!(point("t.once").is_ok());
        drop(guard);
        assert!(!any_armed());
    }

    #[test]
    fn every_nth_fires_periodically() {
        let _lock = fault_lock();
        let _guard = arm("t.nth", Trigger::EveryNth(3), FaultKind::Error);
        let pattern: Vec<bool> = (0..9).map(|_| point("t.nth").is_err()).collect();
        assert_eq!(
            pattern,
            [true, false, false, true, false, false, true, false, false]
        );
    }

    #[test]
    fn after_k_passes_then_fails_forever() {
        let _lock = fault_lock();
        let _guard = arm("t.afterk", Trigger::AfterK(2), FaultKind::Error);
        assert!(point("t.afterk").is_ok());
        assert!(point("t.afterk").is_ok());
        assert!(point("t.afterk").is_err());
        assert!(point("t.afterk").is_err());
    }

    #[test]
    fn probability_is_deterministic_across_runs() {
        let _lock = fault_lock();
        let run = || -> Vec<bool> {
            let _guard = arm(
                "t.prob",
                Trigger::Probability {
                    seed: 42,
                    permille: 500,
                },
                FaultKind::Error,
            );
            (0..32).map(|_| point("t.prob").is_err()).collect()
        };
        let first = run();
        let second = run();
        assert_eq!(first, second, "same seed must replay the same faults");
        assert!(first.iter().any(|&f| f), "p=0.5 over 32 draws must fire");
        assert!(!first.iter().all(|&f| f), "…and must also pass sometimes");
    }

    #[test]
    fn panic_kind_panics_and_is_containable() {
        let _lock = fault_lock();
        let _guard = arm("t.panic", Trigger::Once, FaultKind::Panic);
        let caught = std::panic::catch_unwind(|| point("t.panic"));
        assert!(caught.is_err(), "panic kind must unwind");
        assert!(point("t.panic").is_ok(), "Once is spent by the panic");
    }

    #[test]
    fn counters_accumulate_and_export() {
        let _lock = fault_lock();
        let before_hits = hits("t.count");
        let before_fires = fires("t.count");
        {
            let _guard = arm("t.count", Trigger::EveryNth(2), FaultKind::Error);
            for _ in 0..4 {
                let _ = point("t.count");
            }
        }
        assert_eq!(hits("t.count"), before_hits + 4);
        assert_eq!(fires("t.count"), before_fires + 2);

        let registry = MetricsRegistry::new();
        export_into(&registry);
        export_into(&registry); // idempotent
        let text = registry.render_prometheus();
        assert!(
            text.contains(&format!("fault_t_count_hits_total {}", before_hits + 4)),
            "{text}"
        );
        assert!(
            text.contains(&format!("fault_t_count_fires_total {}", before_fires + 2)),
            "{text}"
        );
    }

    #[test]
    fn unarmed_points_pass_while_another_is_armed() {
        let _lock = fault_lock();
        let _guard = arm("t.armed", Trigger::Always, FaultKind::Error);
        assert!(point("t.other").is_ok());
        assert!(point("t.armed").is_err());
        // The bystander's traffic is still counted.
        assert!(hits("t.other") >= 1);
    }
}
