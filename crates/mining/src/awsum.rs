//! AWSum — the classifier of Quinn, Stranieri, Yearwood, Hafen &
//! Jelinek, *"AWSum: Combining Classification with Knowledge
//! Acquisition"* (paper reference [9]).
//!
//! AWSum assigns every feature *value* an influence towards each class
//! (the conditional class distribution given that value) and
//! classifies by summing influences across features. Its accuracy is
//! ordinary; its purpose is *knowledge acquisition*: the influence
//! table is directly readable by clinicians, and comparing the joint
//! influence of value **pairs** against their individual influences
//! surfaces unexpected interactions. The paper's §II motivating
//! example — "absence of reflex in the knees and ankles together with
//! a mid-range glucose reading was unexpectedly highly predictive of
//! diabetes" — is exactly the output of [`AwSum::top_interactions`].

use crate::dataset::Dataset;
use clinical_types::{Error, Result};

/// A trained AWSum model.
#[derive(Debug, Clone)]
pub struct AwSum {
    /// `influence[f][category][class]` = P(class | feature f has category).
    influence: Vec<Vec<Vec<f64>>>,
    /// Class priors P(class) (used for values unseen at training).
    priors: Vec<f64>,
    feature_names: Vec<String>,
    value_labels: Vec<Vec<String>>,
    class_labels: Vec<String>,
}

/// A surprising feature-value pair: its joint class confidence exceeds
/// what either value achieves alone.
#[derive(Debug, Clone, PartialEq)]
pub struct Interaction {
    /// First feature name and value label.
    pub feature_a: String,
    /// Value of the first feature.
    pub value_a: String,
    /// Second feature name.
    pub feature_b: String,
    /// Value of the second feature.
    pub value_b: String,
    /// Target class label.
    pub class: String,
    /// Rows exhibiting both values.
    pub support: usize,
    /// P(class | value_a ∧ value_b).
    pub joint_confidence: f64,
    /// max(P(class | value_a), P(class | value_b)).
    pub best_single_confidence: f64,
}

impl Interaction {
    /// How much the pair beats its best single value.
    pub fn surprise(&self) -> f64 {
        self.joint_confidence - self.best_single_confidence
    }
}

impl AwSum {
    /// Fit the influence table.
    pub fn fit(data: &Dataset) -> Result<AwSum> {
        if data.is_empty() {
            return Err(Error::invalid("cannot fit AWSum to an empty dataset"));
        }
        let n_classes = data.n_classes();
        let class_counts = data.class_counts();
        let n = data.len() as f64;
        let priors: Vec<f64> = class_counts.iter().map(|&c| c as f64 / n).collect();

        let mut influence = Vec::with_capacity(data.n_features());
        for (fi, feature) in data.features.iter().enumerate() {
            let k = feature.cardinality();
            let mut counts = vec![vec![0usize; n_classes]; k];
            for (row, &class) in data.cells.iter().zip(&data.classes) {
                counts[row[fi]][class] += 1;
            }
            // Laplace-smoothed P(class | value).
            let table: Vec<Vec<f64>> = counts
                .iter()
                .map(|per_class| {
                    let total: usize = per_class.iter().sum();
                    per_class
                        .iter()
                        .map(|&c| (c as f64 + 1.0) / (total as f64 + n_classes as f64))
                        .collect()
                })
                .collect();
            influence.push(table);
        }
        Ok(AwSum {
            influence,
            priors,
            feature_names: data.features.iter().map(|f| f.name.clone()).collect(),
            value_labels: data.features.iter().map(|f| f.labels.clone()).collect(),
            class_labels: data.class_labels.clone(),
        })
    }

    /// Influence vector P(class | value) of one feature value.
    pub fn influence_of(&self, feature: usize, category: usize) -> Result<&[f64]> {
        self.influence
            .get(feature)
            .and_then(|f| f.get(category))
            .map(Vec::as_slice)
            .ok_or_else(|| {
                Error::invalid(format!(
                    "no influence for feature {feature} value {category}"
                ))
            })
    }

    /// Class scores: sum of influences across features.
    pub fn scores(&self, row: &[usize]) -> Result<Vec<f64>> {
        if row.len() != self.influence.len() {
            return Err(Error::invalid(format!(
                "row has {} features, model expects {}",
                row.len(),
                self.influence.len()
            )));
        }
        let mut scores = vec![0.0; self.priors.len()];
        for (fi, &cat) in row.iter().enumerate() {
            let contrib = self.influence[fi]
                .get(cat)
                .map(Vec::as_slice)
                .unwrap_or(&self.priors);
            for (s, c) in scores.iter_mut().zip(contrib) {
                *s += c;
            }
        }
        Ok(scores)
    }

    /// Predicted class for one row.
    pub fn predict(&self, row: &[usize]) -> Result<usize> {
        let scores = self.scores(row)?;
        Ok(scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("scores are finite"))
            .map(|(i, _)| i)
            .unwrap_or(0))
    }

    /// Predictions for every row of a dataset.
    pub fn predict_all(&self, data: &Dataset) -> Result<Vec<usize>> {
        data.cells.iter().map(|row| self.predict(row)).collect()
    }

    /// The `k` single values with the strongest influence toward
    /// `class`, as `(feature, value, P(class | value))`.
    pub fn top_influences(&self, class: usize, k: usize) -> Vec<(String, String, f64)> {
        let mut all: Vec<(String, String, f64)> = Vec::new();
        for (fi, table) in self.influence.iter().enumerate() {
            for (vi, per_class) in table.iter().enumerate() {
                if let Some(&p) = per_class.get(class) {
                    all.push((
                        self.feature_names[fi].clone(),
                        self.value_labels[fi]
                            .get(vi)
                            .cloned()
                            .unwrap_or_else(|| format!("#{vi}")),
                        p,
                    ));
                }
            }
        }
        all.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("finite"));
        all.truncate(k);
        all
    }

    /// Knowledge acquisition: scan all cross-feature value pairs and
    /// return those whose joint confidence toward some class exceeds
    /// the best single-value confidence, ranked by surprise. `data`
    /// must be the (or a compatible) dataset the model was fitted on.
    pub fn top_interactions(
        &self,
        data: &Dataset,
        class: usize,
        min_support: usize,
        k: usize,
    ) -> Result<Vec<Interaction>> {
        if class >= self.class_labels.len() {
            return Err(Error::invalid(format!("class {class} out of range")));
        }
        let n_features = data.n_features();
        let mut out: Vec<Interaction> = Vec::new();
        for fa in 0..n_features {
            for fb in fa + 1..n_features {
                let ka = data.features[fa].cardinality();
                let kb = data.features[fb].cardinality();
                // Joint counts: (value_a, value_b) → (class hits, rows).
                let mut hits = vec![vec![0usize; kb]; ka];
                let mut totals = vec![vec![0usize; kb]; ka];
                for (row, &c) in data.cells.iter().zip(&data.classes) {
                    totals[row[fa]][row[fb]] += 1;
                    if c == class {
                        hits[row[fa]][row[fb]] += 1;
                    }
                }
                for va in 0..ka {
                    for vb in 0..kb {
                        let support = totals[va][vb];
                        if support < min_support {
                            continue;
                        }
                        let joint = hits[va][vb] as f64 / support as f64;
                        let single_a = self.influence[fa][va][class];
                        let single_b = self.influence[fb][vb][class];
                        let best_single = single_a.max(single_b);
                        if joint > best_single {
                            out.push(Interaction {
                                feature_a: self.feature_names[fa].clone(),
                                value_a: data.features[fa].labels[va].clone(),
                                feature_b: self.feature_names[fb].clone(),
                                value_b: data.features[fb].labels[vb].clone(),
                                class: self.class_labels[class].clone(),
                                support,
                                joint_confidence: joint,
                                best_single_confidence: best_single,
                            });
                        }
                    }
                }
            }
        }
        out.sort_by(|a, b| b.surprise().partial_cmp(&a.surprise()).expect("finite"));
        out.truncate(k);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Feature;

    /// Neither feature alone predicts class 1 strongly, but the
    /// combination (a=1, b=1) does — an interaction.
    fn interaction_dataset() -> Dataset {
        let mut cells = Vec::new();
        let mut classes = Vec::new();
        // 25% of rows in each (a,b) quadrant; class 1 iff a=1 and b=1
        // (with slight leakage to keep singles uninformative but not
        // degenerate).
        for a in 0..2usize {
            for b in 0..2usize {
                for i in 0..50usize {
                    cells.push(vec![a, b]);
                    let class = if a == 1 && b == 1 {
                        usize::from(i < 45) // 90% class 1
                    } else {
                        usize::from(i < 10) // 20% class 1
                    };
                    classes.push(class);
                }
            }
        }
        Dataset {
            features: vec![
                Feature {
                    name: "Reflex".into(),
                    labels: vec!["present".into(), "absent".into()],
                },
                Feature {
                    name: "FBG_Band".into(),
                    labels: vec!["other".into(), "mid".into()],
                },
            ],
            class_labels: vec!["no".into(), "yes".into()],
            cells,
            classes,
        }
    }

    #[test]
    fn influence_is_conditional_class_distribution() {
        let ds = interaction_dataset();
        let model = AwSum::fit(&ds).unwrap();
        // P(yes | reflex absent) ≈ (45 + 10) / 100 = 0.55.
        let inf = model.influence_of(0, 1).unwrap();
        assert!((inf[1] - 0.55).abs() < 0.05, "influence {inf:?}");
        // Rows sum to ~1.
        assert!((inf[0] + inf[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn prediction_sums_influences() {
        let ds = interaction_dataset();
        let model = AwSum::fit(&ds).unwrap();
        assert_eq!(model.predict(&[1, 1]).unwrap(), 1);
        assert_eq!(model.predict(&[0, 0]).unwrap(), 0);
    }

    #[test]
    fn finds_the_reflex_glucose_style_interaction() {
        let ds = interaction_dataset();
        let model = AwSum::fit(&ds).unwrap();
        let interactions = model.top_interactions(&ds, 1, 20, 5).unwrap();
        assert!(!interactions.is_empty(), "no interaction surfaced");
        let top = &interactions[0];
        assert_eq!(top.value_a, "absent");
        assert_eq!(top.value_b, "mid");
        assert!(top.joint_confidence > 0.85);
        assert!(top.surprise() > 0.3, "surprise {}", top.surprise());
    }

    #[test]
    fn min_support_filters_rare_pairs() {
        let ds = interaction_dataset();
        let model = AwSum::fit(&ds).unwrap();
        let none = model.top_interactions(&ds, 1, 1000, 5).unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn top_influences_ranked_descending() {
        let ds = interaction_dataset();
        let model = AwSum::fit(&ds).unwrap();
        let top = model.top_influences(1, 4);
        assert_eq!(top.len(), 4);
        for w in top.windows(2) {
            assert!(w[0].2 >= w[1].2);
        }
    }

    #[test]
    fn bad_inputs_error() {
        let ds = interaction_dataset();
        let model = AwSum::fit(&ds).unwrap();
        assert!(model.predict(&[0]).is_err());
        assert!(model.top_interactions(&ds, 9, 1, 5).is_err());
        assert!(model.influence_of(5, 0).is_err());
    }
}
