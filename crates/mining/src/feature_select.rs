//! Wrapper–filter hybrid feature selection.
//!
//! Paper reference [21] (Huda, Jelinek, Ray, Stranieri & Yearwood)
//! identifies cardiovascular autonomic neuropathy features with a
//! hybrid of filter ranking and wrapper search. We implement the same
//! shape: a mutual-information **filter** ranks all features cheaply,
//! then a greedy forward **wrapper** adds features (in filter order)
//! only when they improve held-out naive-Bayes accuracy.

use crate::dataset::Dataset;
use crate::metrics::accuracy;
use crate::naive_bayes::NaiveBayes;
use clinical_types::{Error, Result};

/// Mutual information I(feature; class) in bits for every feature,
/// returned as `(feature index, MI)` sorted descending.
pub fn mutual_information_ranking(data: &Dataset) -> Result<Vec<(usize, f64)>> {
    if data.is_empty() {
        return Err(Error::invalid("cannot rank features of an empty dataset"));
    }
    let n = data.len() as f64;
    let class_counts = data.class_counts();
    let mut ranking = Vec::with_capacity(data.n_features());
    for fi in 0..data.n_features() {
        let k = data.features[fi].cardinality();
        let mut joint = vec![vec![0usize; data.n_classes()]; k];
        let mut value_counts = vec![0usize; k];
        for (row, &class) in data.cells.iter().zip(&data.classes) {
            joint[row[fi]][class] += 1;
            value_counts[row[fi]] += 1;
        }
        let mut mi = 0.0;
        for v in 0..k {
            for c in 0..data.n_classes() {
                let pxy = joint[v][c] as f64 / n;
                if pxy == 0.0 {
                    continue;
                }
                let px = value_counts[v] as f64 / n;
                let py = class_counts[c] as f64 / n;
                mi += pxy * (pxy / (px * py)).log2();
            }
        }
        ranking.push((fi, mi));
    }
    ranking.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("MI is finite"));
    Ok(ranking)
}

/// Greedy forward wrapper over the filter ranking: walk features in
/// MI order, keep each one only if it improves validation accuracy.
/// Returns the selected feature indices (in selection order) and the
/// final validation accuracy.
pub fn forward_select(data: &Dataset, max_features: usize, seed: u64) -> Result<(Vec<usize>, f64)> {
    if max_features == 0 {
        return Err(Error::invalid("max_features must be positive"));
    }
    let (train, valid) = data.split(0.3, seed)?;
    if train.is_empty() || valid.is_empty() {
        return Err(Error::invalid("dataset too small for a wrapper split"));
    }
    let ranking = mutual_information_ranking(&train)?;

    let evaluate = |selected: &[usize]| -> Result<f64> {
        let t = train.select_features(selected)?;
        let v = valid.select_features(selected)?;
        let model = NaiveBayes::fit(&t)?;
        accuracy(&v.classes, &model.predict_all(&v)?)
    };

    let mut selected: Vec<usize> = Vec::new();
    let mut best_acc = 0.0;
    for &(fi, _) in &ranking {
        if selected.len() >= max_features {
            break;
        }
        let mut candidate = selected.clone();
        candidate.push(fi);
        let acc = evaluate(&candidate)?;
        if acc > best_acc {
            best_acc = acc;
            selected = candidate;
        }
    }
    if selected.is_empty() {
        // Even a single feature never beat 0.0 — degenerate, keep the
        // top-ranked feature so downstream models have something.
        let top = ranking.first().map(|&(fi, _)| fi).unwrap_or(0);
        selected.push(top);
        best_acc = evaluate(&selected)?;
    }
    Ok((selected, best_acc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Feature;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// Feature 0 strongly predicts the class, feature 1 weakly,
    /// feature 2 is pure noise.
    fn graded() -> Dataset {
        let mut rng = StdRng::seed_from_u64(17);
        let mut cells = Vec::new();
        let mut classes = Vec::new();
        for _ in 0..400 {
            let class = usize::from(rng.random::<f64>() < 0.5);
            let strong = if rng.random::<f64>() < 0.95 {
                class
            } else {
                1 - class
            };
            let weak = if rng.random::<f64>() < 0.65 {
                class
            } else {
                1 - class
            };
            let noise = usize::from(rng.random::<f64>() < 0.5);
            cells.push(vec![strong, weak, noise]);
            classes.push(class);
        }
        Dataset {
            features: ["Strong", "Weak", "Noise"]
                .iter()
                .map(|n| Feature {
                    name: (*n).into(),
                    labels: vec!["0".into(), "1".into()],
                })
                .collect(),
            class_labels: vec!["no".into(), "yes".into()],
            cells,
            classes,
        }
    }

    #[test]
    fn mi_ranking_orders_by_informativeness() {
        let ranking = mutual_information_ranking(&graded()).unwrap();
        let order: Vec<usize> = ranking.iter().map(|&(f, _)| f).collect();
        assert_eq!(order[0], 0, "strong feature must rank first");
        assert_eq!(order[2], 2, "noise must rank last");
        assert!(ranking[0].1 > ranking[1].1);
        assert!(ranking[1].1 > ranking[2].1);
        // Noise MI near zero.
        assert!(ranking[2].1 < 0.05);
    }

    #[test]
    fn mi_of_perfect_predictor_is_class_entropy() {
        let mut ds = graded();
        // Make feature 0 a perfect copy of the class.
        for (row, &c) in ds.cells.iter_mut().zip(&ds.classes) {
            row[0] = c;
        }
        let ranking = mutual_information_ranking(&ds).unwrap();
        let (fi, mi) = ranking[0];
        assert_eq!(fi, 0);
        assert!(mi > 0.9, "MI {mi} should approach 1 bit");
    }

    #[test]
    fn forward_selection_keeps_signal_drops_noise() {
        let (selected, acc) = forward_select(&graded(), 3, 5).unwrap();
        assert!(selected.contains(&0), "strong feature must be selected");
        assert!(acc > 0.85, "validation accuracy {acc}");
        // Noise should rarely help; tolerate but verify the strong
        // feature is first.
        assert_eq!(selected[0], 0);
    }

    #[test]
    fn max_features_is_respected() {
        let (selected, _) = forward_select(&graded(), 1, 5).unwrap();
        assert_eq!(selected.len(), 1);
        assert!(forward_select(&graded(), 0, 5).is_err());
    }

    #[test]
    fn empty_dataset_errors() {
        let empty = Dataset {
            features: vec![],
            class_labels: vec![],
            cells: vec![],
            classes: vec![],
        };
        assert!(mutual_information_ranking(&empty).is_err());
    }
}
