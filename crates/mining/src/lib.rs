#![warn(missing_docs)]

//! Data analytics over isolated warehouse cubes — the paper's §IV
//! "Data Analytics" component.
//!
//! *"Cubes of data that are of interest to the clinical scientist can
//! be isolated using OLAP and further analysed using data mining
//! algorithms. There are a variety of data mining algorithms to
//! address different requirements such as classification, association
//! and clustering."*
//!
//! * [`dataset`] — categorical datasets extracted from tables, with
//!   seeded train/test splitting.
//! * [`metrics`] — accuracy, confusion matrices, precision/recall/F1.
//! * [`naive_bayes`] — categorical naive Bayes with Laplace smoothing.
//! * [`decision_tree`] — information-gain decision tree induction.
//! * [`awsum`] — the AWSum classifier of Quinn, Stranieri, Yearwood,
//!   Hafen & Jelinek [9]: interpretable per-value influence weights
//!   plus the feature-*pair* interaction mining that surfaced the
//!   paper's "absent reflexes + mid-range glucose → diabetes" insight.
//! * [`knn`] — k-nearest-neighbour over categorical features.
//! * [`apriori`] — frequent itemsets and association rules
//!   (support / confidence / lift).
//! * [`kmeans`] — k-means clustering of numeric measure vectors.
//! * [`feature_select`] — the wrapper–filter hybrid of Huda et al.
//!   [21]: mutual-information filter ranking followed by greedy
//!   forward wrapper selection.

pub mod apriori;
pub mod awsum;
pub mod cross_validation;
pub mod dataset;
pub mod decision_tree;
pub mod feature_select;
pub mod kmeans;
pub mod knn;
pub mod metrics;
pub mod naive_bayes;

pub use apriori::{Apriori, AssociationRule, ItemSet};
pub use awsum::{AwSum, Interaction};
pub use cross_validation::{cross_validate, CvReport};
pub use dataset::{Dataset, DatasetBuilder};
pub use decision_tree::DecisionTree;
pub use feature_select::{forward_select, mutual_information_ranking};
pub use kmeans::{KMeans, KMeansResult};
pub use knn::Knn;
pub use metrics::{accuracy, confusion_matrix, f1_scores, ClassMetrics};
pub use naive_bayes::NaiveBayes;
