//! k-means clustering of numeric measure vectors.
//!
//! The "clustering" member of the Data Analytics triad: cluster
//! patients by their fact-table measures (BMI, FBG, blood pressure …)
//! to find sub-populations. k-means++ seeding, Lloyd iterations,
//! deterministic under a seed.

use clinical_types::{Error, Result};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// k-means configuration.
#[derive(Debug, Clone)]
pub struct KMeans {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iter: usize,
    /// RNG seed (k-means++ init).
    pub seed: u64,
}

/// Clustering outcome.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Cluster centroids, `k × dims`.
    pub centroids: Vec<Vec<f64>>,
    /// Cluster assignment per input row.
    pub assignments: Vec<usize>,
    /// Sum of squared distances to assigned centroids.
    pub inertia: f64,
    /// Iterations executed.
    pub iterations: usize,
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

impl KMeans {
    /// k-means with `k` clusters and a seed.
    pub fn new(k: usize, seed: u64) -> Self {
        KMeans {
            k,
            max_iter: 100,
            seed,
        }
    }

    /// Cluster `points` (rows of equal dimension, no NaNs).
    pub fn fit(&self, points: &[Vec<f64>]) -> Result<KMeansResult> {
        if self.k == 0 {
            return Err(Error::invalid("k must be at least 1"));
        }
        if points.len() < self.k {
            return Err(Error::invalid(format!(
                "{} points cannot form {} clusters",
                points.len(),
                self.k
            )));
        }
        let dims = points[0].len();
        if dims == 0 {
            return Err(Error::invalid("points must have at least one dimension"));
        }
        for (i, p) in points.iter().enumerate() {
            if p.len() != dims {
                return Err(Error::invalid(format!(
                    "point {i} has {} dims, expected {dims}",
                    p.len()
                )));
            }
            if p.iter().any(|x| !x.is_finite()) {
                return Err(Error::invalid(format!("point {i} has a non-finite value")));
            }
        }

        let mut rng = StdRng::seed_from_u64(self.seed);
        // k-means++ seeding.
        let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(self.k);
        centroids.push(points[rng.random_range(0..points.len())].clone());
        while centroids.len() < self.k {
            let weights: Vec<f64> = points
                .iter()
                .map(|p| {
                    centroids
                        .iter()
                        .map(|c| sq_dist(p, c))
                        .fold(f64::INFINITY, f64::min)
                })
                .collect();
            let total: f64 = weights.iter().sum();
            if total <= 0.0 {
                // All points coincide with existing centroids; duplicate one.
                centroids.push(points[rng.random_range(0..points.len())].clone());
                continue;
            }
            let mut x = rng.random::<f64>() * total;
            let mut chosen = points.len() - 1;
            for (i, w) in weights.iter().enumerate() {
                if x < *w {
                    chosen = i;
                    break;
                }
                x -= w;
            }
            centroids.push(points[chosen].clone());
        }

        let mut assignments = vec![0usize; points.len()];
        let mut iterations = 0;
        for iter in 0..self.max_iter {
            iterations = iter + 1;
            // Assignment step.
            let mut changed = false;
            for (i, p) in points.iter().enumerate() {
                let best = centroids
                    .iter()
                    .enumerate()
                    .min_by(|a, b| {
                        sq_dist(p, a.1)
                            .partial_cmp(&sq_dist(p, b.1))
                            .expect("finite distances")
                    })
                    .map(|(j, _)| j)
                    .unwrap_or(0);
                if assignments[i] != best {
                    assignments[i] = best;
                    changed = true;
                }
            }
            // Update step.
            let mut sums = vec![vec![0.0; dims]; self.k];
            let mut counts = vec![0usize; self.k];
            for (p, &a) in points.iter().zip(&assignments) {
                counts[a] += 1;
                for (s, x) in sums[a].iter_mut().zip(p) {
                    *s += x;
                }
            }
            for (c, (sum, count)) in centroids.iter_mut().zip(sums.iter().zip(&counts)) {
                if *count > 0 {
                    for (ci, si) in c.iter_mut().zip(sum) {
                        *ci = si / *count as f64;
                    }
                }
            }
            if !changed && iter > 0 {
                break;
            }
        }

        let inertia = points
            .iter()
            .zip(&assignments)
            .map(|(p, &a)| sq_dist(p, &centroids[a]))
            .sum();
        Ok(KMeansResult {
            centroids,
            assignments,
            inertia,
            iterations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Vec<Vec<f64>> {
        let mut points = Vec::new();
        for i in 0..30 {
            let jitter = (i % 7) as f64 * 0.05;
            points.push(vec![0.0 + jitter, 0.0 - jitter]);
            points.push(vec![10.0 - jitter, 10.0 + jitter]);
        }
        points
    }

    #[test]
    fn separates_two_blobs() {
        let points = two_blobs();
        let result = KMeans::new(2, 3).fit(&points).unwrap();
        // Points alternate blob membership; assignments must too.
        let a0 = result.assignments[0];
        let a1 = result.assignments[1];
        assert_ne!(a0, a1);
        for (i, &a) in result.assignments.iter().enumerate() {
            assert_eq!(a, if i % 2 == 0 { a0 } else { a1 });
        }
        // Centroids near (0,0) and (10,10).
        let mut cs = result.centroids.clone();
        cs.sort_by(|a, b| a[0].partial_cmp(&b[0]).unwrap());
        assert!(cs[0][0].abs() < 1.0);
        assert!((cs[1][0] - 10.0).abs() < 1.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let points = two_blobs();
        let a = KMeans::new(2, 9).fit(&points).unwrap();
        let b = KMeans::new(2, 9).fit(&points).unwrap();
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.centroids, b.centroids);
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let points = vec![vec![0.0], vec![5.0], vec![9.0]];
        let result = KMeans::new(3, 1).fit(&points).unwrap();
        assert!(result.inertia < 1e-9);
    }

    #[test]
    fn more_clusters_never_increase_inertia() {
        let points = two_blobs();
        let i2 = KMeans::new(2, 5).fit(&points).unwrap().inertia;
        let i4 = KMeans::new(4, 5).fit(&points).unwrap().inertia;
        assert!(i4 <= i2 + 1e-9);
    }

    #[test]
    fn invalid_inputs() {
        assert!(KMeans::new(0, 1).fit(&[vec![1.0]]).is_err());
        assert!(KMeans::new(3, 1).fit(&[vec![1.0]]).is_err());
        assert!(KMeans::new(1, 1).fit(&[vec![]]).is_err());
        assert!(KMeans::new(1, 1).fit(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(KMeans::new(1, 1).fit(&[vec![f64::NAN]]).is_err());
    }

    #[test]
    fn identical_points_converge() {
        let points = vec![vec![2.0, 2.0]; 10];
        let result = KMeans::new(3, 1).fit(&points).unwrap();
        assert!(result.inertia < 1e-9);
    }
}
