//! k-nearest-neighbour classification over categorical features
//! (Hamming distance).

use crate::dataset::Dataset;
use clinical_types::{Error, Result};

/// A lazy k-NN classifier holding its training data.
#[derive(Debug, Clone)]
pub struct Knn {
    k: usize,
    train: Dataset,
}

impl Knn {
    /// k-NN with `k` neighbours over `train`.
    pub fn fit(train: Dataset, k: usize) -> Result<Knn> {
        if k == 0 {
            return Err(Error::invalid("k must be at least 1"));
        }
        if train.is_empty() {
            return Err(Error::invalid("cannot fit k-NN to an empty dataset"));
        }
        Ok(Knn { k, train })
    }

    /// Hamming distance between two category rows.
    fn distance(a: &[usize], b: &[usize]) -> usize {
        a.iter().zip(b).filter(|(x, y)| x != y).count()
    }

    /// Predicted class by majority vote of the `k` nearest training
    /// rows (ties broken by smaller class index, then training order).
    pub fn predict(&self, row: &[usize]) -> Result<usize> {
        if row.len() != self.train.n_features() {
            return Err(Error::invalid(format!(
                "row has {} features, model expects {}",
                row.len(),
                self.train.n_features()
            )));
        }
        let mut dists: Vec<(usize, usize)> = self
            .train
            .cells
            .iter()
            .enumerate()
            .map(|(i, r)| (Self::distance(row, r), i))
            .collect();
        dists.sort();
        let mut votes = vec![0usize; self.train.n_classes()];
        for &(_, i) in dists.iter().take(self.k) {
            votes[self.train.classes[i]] += 1;
        }
        Ok(crate::dataset::first_max(&votes))
    }

    /// Predictions for every row of a dataset.
    pub fn predict_all(&self, data: &Dataset) -> Result<Vec<usize>> {
        data.cells.iter().map(|row| self.predict(row)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Feature;

    fn clustered() -> Dataset {
        // Class 0 rows look like [0,0,0]; class 1 rows like [1,1,1],
        // with one flipped coordinate of noise each.
        let mut cells = Vec::new();
        let mut classes = Vec::new();
        for i in 0..30 {
            let mut row = vec![0, 0, 0];
            row[i % 3] = usize::from(i % 5 == 0);
            cells.push(row);
            classes.push(0);
        }
        for i in 0..30 {
            let mut row = vec![1, 1, 1];
            row[i % 3] = usize::from(i % 5 != 0);
            cells.push(row);
            classes.push(1);
        }
        Dataset {
            features: (0..3)
                .map(|i| Feature {
                    name: format!("f{i}"),
                    labels: vec!["0".into(), "1".into()],
                })
                .collect(),
            class_labels: vec!["a".into(), "b".into()],
            cells,
            classes,
        }
    }

    #[test]
    fn classifies_clustered_data() {
        let ds = clustered();
        let knn = Knn::fit(ds.clone(), 5).unwrap();
        assert_eq!(knn.predict(&[0, 0, 0]).unwrap(), 0);
        assert_eq!(knn.predict(&[1, 1, 1]).unwrap(), 1);
        let acc = crate::metrics::accuracy(&ds.classes, &knn.predict_all(&ds).unwrap()).unwrap();
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn k_one_memorises_training_rows() {
        let ds = clustered();
        let knn = Knn::fit(ds.clone(), 1).unwrap();
        let preds = knn.predict_all(&ds).unwrap();
        assert_eq!(preds, ds.classes);
    }

    #[test]
    fn k_larger_than_dataset_votes_over_everything() {
        let ds = clustered();
        let knn = Knn::fit(ds, 10_000).unwrap();
        // Balanced classes → tie → class 0 by deterministic tie-break.
        assert_eq!(knn.predict(&[0, 1, 0]).unwrap(), 0);
    }

    #[test]
    fn invalid_construction() {
        assert!(Knn::fit(clustered(), 0).is_err());
        let empty = Dataset {
            features: vec![],
            class_labels: vec![],
            cells: vec![],
            classes: vec![],
        };
        assert!(Knn::fit(empty, 1).is_err());
    }

    #[test]
    fn arity_checked() {
        let knn = Knn::fit(clustered(), 3).unwrap();
        assert!(knn.predict(&[0]).is_err());
    }
}
