//! Apriori frequent-itemset mining and association rules.
//!
//! Items are `(feature, category)` pairs over a categorical
//! [`Dataset`]; transactions are rows. Rules are ranked by lift.
//! This is the "association" member of the paper's Data Analytics
//! triad, and the second discovery channel (besides AWSum) for the
//! reflex + glucose insight: `{AnkleReflex=absent, FBG_Band=high}
//! → {DiabetesStatus=yes}`.

use crate::dataset::Dataset;
use clinical_types::{Error, Result};
use std::collections::{HashMap, HashSet};

/// An item: `(feature index, category index)`.
pub type Item = (usize, usize);

/// A frequent itemset with its support count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ItemSet {
    /// Sorted items.
    pub items: Vec<Item>,
    /// Number of transactions containing all items.
    pub support: usize,
}

/// An association rule `antecedent → consequent`.
#[derive(Debug, Clone, PartialEq)]
pub struct AssociationRule {
    /// Left-hand side items.
    pub antecedent: Vec<Item>,
    /// Right-hand side items.
    pub consequent: Vec<Item>,
    /// Transactions containing antecedent ∪ consequent.
    pub support: usize,
    /// support(A ∪ C) / support(A).
    pub confidence: f64,
    /// confidence / P(C) — > 1 means positive association.
    pub lift: f64,
}

impl AssociationRule {
    /// Render a rule with human-readable labels from `data`.
    pub fn describe(&self, data: &Dataset) -> String {
        let fmt = |items: &[Item]| {
            items
                .iter()
                .map(|&(f, v)| {
                    format!(
                        "{}={}",
                        data.features[f].name,
                        data.features[f]
                            .labels
                            .get(v)
                            .map(String::as_str)
                            .unwrap_or("?")
                    )
                })
                .collect::<Vec<_>>()
                .join(" & ")
        };
        format!(
            "{} => {} (support={}, confidence={:.2}, lift={:.2})",
            fmt(&self.antecedent),
            fmt(&self.consequent),
            self.support,
            self.confidence,
            self.lift
        )
    }
}

/// Apriori miner configuration.
#[derive(Debug, Clone)]
pub struct Apriori {
    /// Minimum absolute support (transactions).
    pub min_support: usize,
    /// Minimum rule confidence.
    pub min_confidence: f64,
    /// Maximum itemset size explored.
    pub max_len: usize,
}

impl Apriori {
    /// Miner with the given thresholds.
    pub fn new(min_support: usize, min_confidence: f64, max_len: usize) -> Self {
        Apriori {
            min_support,
            min_confidence,
            max_len,
        }
    }

    /// Mine all frequent itemsets (levelwise candidate generation with
    /// the Apriori pruning property).
    pub fn frequent_itemsets(&self, data: &Dataset) -> Result<Vec<ItemSet>> {
        if self.min_support == 0 {
            return Err(Error::invalid("min_support must be positive"));
        }
        if data.is_empty() {
            return Ok(Vec::new());
        }
        // Transactions as item sets (every row has one item per feature).
        let transactions: Vec<Vec<Item>> = data
            .cells
            .iter()
            .map(|row| row.iter().enumerate().map(|(f, &v)| (f, v)).collect())
            .collect();

        // L1.
        let mut counts: HashMap<Vec<Item>, usize> = HashMap::new();
        for t in &transactions {
            for &item in t {
                *counts.entry(vec![item]).or_insert(0) += 1;
            }
        }
        let mut frequent: Vec<ItemSet> = Vec::new();
        let mut current: Vec<Vec<Item>> = counts
            .into_iter()
            .filter(|(_, c)| *c >= self.min_support)
            .map(|(items, support)| {
                frequent.push(ItemSet {
                    items: items.clone(),
                    support,
                });
                items
            })
            .collect();
        current.sort();

        let mut k = 1;
        while !current.is_empty() && k < self.max_len {
            // Candidate generation: join sets sharing a (k-1)-prefix.
            let prev: HashSet<Vec<Item>> = current.iter().cloned().collect();
            let mut candidates: HashSet<Vec<Item>> = HashSet::new();
            for i in 0..current.len() {
                for j in i + 1..current.len() {
                    let (a, b) = (&current[i], &current[j]);
                    if a[..k - 1] != b[..k - 1] {
                        continue;
                    }
                    let mut cand = a.clone();
                    cand.push(b[k - 1]);
                    cand.sort();
                    cand.dedup();
                    if cand.len() != k + 1 {
                        continue;
                    }
                    // An itemset cannot contain two values of one feature.
                    let features: HashSet<usize> = cand.iter().map(|&(f, _)| f).collect();
                    if features.len() != cand.len() {
                        continue;
                    }
                    // Apriori property: all k-subsets must be frequent.
                    let all_subsets_frequent = (0..cand.len()).all(|skip| {
                        let mut sub = cand.clone();
                        sub.remove(skip);
                        prev.contains(&sub)
                    });
                    if all_subsets_frequent {
                        candidates.insert(cand);
                    }
                }
            }
            // Count candidates.
            let mut counts: HashMap<&Vec<Item>, usize> = HashMap::new();
            for t in &transactions {
                let t_set: HashSet<Item> = t.iter().copied().collect();
                for cand in &candidates {
                    if cand.iter().all(|item| t_set.contains(item)) {
                        *counts.entry(cand).or_insert(0) += 1;
                    }
                }
            }
            let mut next: Vec<Vec<Item>> = Vec::new();
            for (cand, count) in counts {
                if count >= self.min_support {
                    frequent.push(ItemSet {
                        items: cand.clone(),
                        support: count,
                    });
                    next.push(cand.clone());
                }
            }
            next.sort();
            current = next;
            k += 1;
        }
        frequent.sort_by(|a, b| (a.items.len(), &a.items).cmp(&(b.items.len(), &b.items)));
        Ok(frequent)
    }

    /// Derive association rules with single-item consequents,
    /// restricted to `consequent_feature` when given (e.g. only rules
    /// predicting `DiabetesStatus`). Ranked by lift descending.
    pub fn rules(
        &self,
        data: &Dataset,
        consequent_feature: Option<usize>,
    ) -> Result<Vec<AssociationRule>> {
        let frequent = self.frequent_itemsets(data)?;
        let support_of: HashMap<&Vec<Item>, usize> =
            frequent.iter().map(|s| (&s.items, s.support)).collect();
        let n = data.len() as f64;
        let mut rules = Vec::new();
        for set in frequent.iter().filter(|s| s.items.len() >= 2) {
            for (ci, &consequent) in set.items.iter().enumerate() {
                if let Some(cf) = consequent_feature {
                    if consequent.0 != cf {
                        continue;
                    }
                }
                let mut antecedent = set.items.clone();
                antecedent.remove(ci);
                let Some(&ante_support) = support_of.get(&antecedent) else {
                    continue;
                };
                let confidence = set.support as f64 / ante_support as f64;
                if confidence < self.min_confidence {
                    continue;
                }
                let cons_support = support_of.get(&vec![consequent]).copied().unwrap_or(0) as f64;
                let lift = if cons_support > 0.0 {
                    confidence / (cons_support / n)
                } else {
                    f64::INFINITY
                };
                rules.push(AssociationRule {
                    antecedent,
                    consequent: vec![consequent],
                    support: set.support,
                    confidence,
                    lift,
                });
            }
        }
        rules.sort_by(|a, b| b.lift.partial_cmp(&a.lift).expect("lift is finite or inf"));
        Ok(rules)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Feature;

    /// f0=1 and f1=1 co-occur and imply class=1 (feature 2).
    fn demo() -> Dataset {
        let mut cells = Vec::new();
        for _ in 0..40 {
            cells.push(vec![1, 1, 1]);
        }
        for _ in 0..40 {
            cells.push(vec![0, 0, 0]);
        }
        for _ in 0..10 {
            cells.push(vec![1, 0, 0]);
        }
        for _ in 0..10 {
            cells.push(vec![0, 1, 0]);
        }
        let classes = cells.iter().map(|r| r[2]).collect();
        Dataset {
            features: (0..3)
                .map(|i| Feature {
                    name: format!("f{i}"),
                    labels: vec!["0".into(), "1".into()],
                })
                .collect(),
            class_labels: vec!["0".into(), "1".into()],
            cells,
            classes,
        }
    }

    #[test]
    fn finds_frequent_itemsets_with_antimonotone_support() {
        let sets = Apriori::new(30, 0.5, 3).frequent_itemsets(&demo()).unwrap();
        assert!(!sets.is_empty());
        // Support is anti-monotone: any superset has ≤ support.
        let support_of = |items: &[Item]| sets.iter().find(|s| s.items == items).map(|s| s.support);
        let single = support_of(&[(0, 1)]).unwrap();
        let pair = support_of(&[(0, 1), (1, 1)]).unwrap();
        assert!(pair <= single);
        assert_eq!(pair, 40);
        assert_eq!(single, 50);
    }

    #[test]
    fn itemsets_never_mix_values_of_one_feature() {
        let sets = Apriori::new(5, 0.5, 3).frequent_itemsets(&demo()).unwrap();
        for s in &sets {
            let features: HashSet<usize> = s.items.iter().map(|&(f, _)| f).collect();
            assert_eq!(features.len(), s.items.len(), "mixed itemset {:?}", s.items);
        }
    }

    #[test]
    fn rule_confidence_and_lift() {
        let rules = Apriori::new(30, 0.8, 3).rules(&demo(), Some(2)).unwrap();
        let rule = rules
            .iter()
            .find(|r| r.antecedent == vec![(0, 1), (1, 1)] && r.consequent == vec![(2, 1)])
            .expect("the planted rule must be found");
        // {f0=1, f1=1} appears 40 times, always with f2=1.
        assert!((rule.confidence - 1.0).abs() < 1e-9);
        // P(f2=1) = 0.4 → lift = 2.5.
        assert!((rule.lift - 2.5).abs() < 1e-9);
    }

    #[test]
    fn consequent_feature_restriction() {
        let rules = Apriori::new(30, 0.5, 3).rules(&demo(), Some(2)).unwrap();
        for r in &rules {
            assert!(r.consequent.iter().all(|&(f, _)| f == 2));
        }
    }

    #[test]
    fn min_support_prunes() {
        let sets = Apriori::new(1000, 0.5, 3)
            .frequent_itemsets(&demo())
            .unwrap();
        assert!(sets.is_empty());
        assert!(Apriori::new(0, 0.5, 3).frequent_itemsets(&demo()).is_err());
    }

    #[test]
    fn max_len_caps_itemset_size() {
        let sets = Apriori::new(10, 0.5, 1).frequent_itemsets(&demo()).unwrap();
        assert!(sets.iter().all(|s| s.items.len() == 1));
    }

    #[test]
    fn describe_renders_labels() {
        let rules = Apriori::new(30, 0.8, 3).rules(&demo(), Some(2)).unwrap();
        let text = rules[0].describe(&demo());
        assert!(text.contains("=>"));
        assert!(text.contains("lift"));
    }

    #[test]
    fn empty_dataset_yields_no_sets() {
        let empty = Dataset {
            features: vec![],
            class_labels: vec![],
            cells: vec![],
            classes: vec![],
        };
        assert!(Apriori::new(1, 0.5, 2)
            .frequent_itemsets(&empty)
            .unwrap()
            .is_empty());
    }
}
