//! k-fold cross-validation for the classifiers.
//!
//! The paper's analytics component hands mined models to clinicians;
//! a model's headline accuracy must be an out-of-sample estimate, not
//! a training-set artefact. This module provides seeded, stratified
//! k-fold evaluation for any classifier expressible as
//! `fit(train) → predict(test)`.

use crate::dataset::Dataset;
use crate::metrics::accuracy;
use clinical_types::{Error, Result};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Per-fold and aggregate accuracy.
#[derive(Debug, Clone, PartialEq)]
pub struct CvReport {
    /// Accuracy of each fold's held-out predictions.
    pub fold_accuracies: Vec<f64>,
    /// Mean of the fold accuracies.
    pub mean_accuracy: f64,
    /// Population standard deviation across folds.
    pub std_accuracy: f64,
}

/// Stratified fold assignment: each class's rows are distributed
/// round-robin across folds, so every fold sees the class balance.
fn fold_assignments(data: &Dataset, k: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); data.n_classes()];
    for (i, &c) in data.classes.iter().enumerate() {
        per_class[c].push(i);
    }
    let mut fold = vec![0usize; data.len()];
    for rows in per_class.iter_mut() {
        rows.shuffle(&mut rng);
        for (j, &row) in rows.iter().enumerate() {
            fold[row] = j % k;
        }
    }
    fold
}

/// Run `k`-fold cross-validation: `fit` builds a model from a training
/// dataset; `predict` labels a test dataset with it.
pub fn cross_validate<M>(
    data: &Dataset,
    k: usize,
    seed: u64,
    fit: impl Fn(&Dataset) -> Result<M>,
    predict: impl Fn(&M, &Dataset) -> Result<Vec<usize>>,
) -> Result<CvReport> {
    if k < 2 {
        return Err(Error::invalid("cross-validation needs k >= 2 folds"));
    }
    if data.len() < k {
        return Err(Error::invalid(format!(
            "{} rows cannot fill {k} folds",
            data.len()
        )));
    }
    let folds = fold_assignments(data, k, seed);
    let subset = |rows: Vec<usize>| Dataset {
        features: data.features.clone(),
        class_labels: data.class_labels.clone(),
        cells: rows.iter().map(|&r| data.cells[r].clone()).collect(),
        classes: rows.iter().map(|&r| data.classes[r]).collect(),
    };

    let mut fold_accuracies = Vec::with_capacity(k);
    for f in 0..k {
        let train_rows: Vec<usize> = (0..data.len()).filter(|&i| folds[i] != f).collect();
        let test_rows: Vec<usize> = (0..data.len()).filter(|&i| folds[i] == f).collect();
        if test_rows.is_empty() {
            continue; // tiny class counts can leave a fold empty
        }
        let train = subset(train_rows);
        let test = subset(test_rows);
        let model = fit(&train)?;
        let predictions = predict(&model, &test)?;
        fold_accuracies.push(accuracy(&test.classes, &predictions)?);
    }
    if fold_accuracies.is_empty() {
        return Err(Error::invalid("every fold came out empty"));
    }
    let mean = fold_accuracies.iter().sum::<f64>() / fold_accuracies.len() as f64;
    let variance = fold_accuracies
        .iter()
        .map(|a| (a - mean) * (a - mean))
        .sum::<f64>()
        / fold_accuracies.len() as f64;
    Ok(CvReport {
        fold_accuracies,
        mean_accuracy: mean,
        std_accuracy: variance.sqrt(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Feature;
    use crate::naive_bayes::NaiveBayes;

    fn dataset(n: usize, signal: bool) -> Dataset {
        let mut cells = Vec::new();
        let mut classes = Vec::new();
        for i in 0..n {
            let class = i % 2;
            let feature = if signal { class } else { (i / 2) % 2 };
            cells.push(vec![feature]);
            classes.push(class);
        }
        Dataset {
            features: vec![Feature {
                name: "F".into(),
                labels: vec!["0".into(), "1".into()],
            }],
            class_labels: vec!["no".into(), "yes".into()],
            cells,
            classes,
        }
    }

    fn nb_cv(data: &Dataset, k: usize) -> CvReport {
        cross_validate(data, k, 7, NaiveBayes::fit, |model, test| {
            model.predict_all(test)
        })
        .unwrap()
    }

    #[test]
    fn perfect_signal_scores_near_one() {
        let report = nb_cv(&dataset(200, true), 5);
        assert_eq!(report.fold_accuracies.len(), 5);
        assert!(report.mean_accuracy > 0.98, "{report:?}");
        assert!(report.std_accuracy < 0.05);
    }

    #[test]
    fn pure_noise_scores_near_chance() {
        let report = nb_cv(&dataset(400, false), 5);
        assert!(
            (report.mean_accuracy - 0.5).abs() < 0.15,
            "noise CV accuracy {}",
            report.mean_accuracy
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let data = dataset(100, true);
        let a = nb_cv(&data, 4);
        let b = nb_cv(&data, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn stratification_keeps_every_fold_mixed() {
        let data = dataset(100, true);
        let folds = fold_assignments(&data, 5, 3);
        for f in 0..5 {
            let classes: Vec<usize> = (0..data.len())
                .filter(|&i| folds[i] == f)
                .map(|i| data.classes[i])
                .collect();
            assert!(
                classes.contains(&0) && classes.contains(&1),
                "fold {f} unmixed"
            );
        }
    }

    #[test]
    fn invalid_parameters_error() {
        let data = dataset(10, true);
        assert!(cross_validate(&data, 1, 0, NaiveBayes::fit, |m, t| m.predict_all(t)).is_err());
        let tiny = dataset(2, true);
        assert!(cross_validate(&tiny, 5, 0, NaiveBayes::fit, |m, t| m.predict_all(t)).is_err());
    }
}
