//! Categorical naive Bayes with Laplace smoothing.

use crate::dataset::Dataset;
use clinical_types::{Error, Result};

/// A trained naive Bayes model.
#[derive(Debug, Clone)]
pub struct NaiveBayes {
    /// Log prior per class.
    log_priors: Vec<f64>,
    /// `log_likelihood[f][class][category]` = log P(category | class),
    /// Laplace-smoothed.
    log_likelihood: Vec<Vec<Vec<f64>>>,
}

impl NaiveBayes {
    /// Fit the model to a dataset.
    pub fn fit(data: &Dataset) -> Result<NaiveBayes> {
        if data.is_empty() {
            return Err(Error::invalid("cannot fit naive Bayes to an empty dataset"));
        }
        let n = data.len() as f64;
        let n_classes = data.n_classes();
        let class_counts = data.class_counts();
        let log_priors: Vec<f64> = class_counts
            .iter()
            .map(|&c| ((c as f64 + 1.0) / (n + n_classes as f64)).ln())
            .collect();

        let mut log_likelihood = Vec::with_capacity(data.n_features());
        for (fi, feature) in data.features.iter().enumerate() {
            let k = feature.cardinality();
            let mut counts = vec![vec![0usize; k]; n_classes];
            for (row, &class) in data.cells.iter().zip(&data.classes) {
                counts[class][row[fi]] += 1;
            }
            let table: Vec<Vec<f64>> = counts
                .iter()
                .enumerate()
                .map(|(class, row)| {
                    let total = class_counts[class] as f64 + k as f64;
                    row.iter()
                        .map(|&c| ((c as f64 + 1.0) / total).ln())
                        .collect()
                })
                .collect();
            log_likelihood.push(table);
        }
        Ok(NaiveBayes {
            log_priors,
            log_likelihood,
        })
    }

    /// Log-posterior (unnormalised) per class for one row.
    pub fn log_scores(&self, row: &[usize]) -> Result<Vec<f64>> {
        if row.len() != self.log_likelihood.len() {
            return Err(Error::invalid(format!(
                "row has {} features, model expects {}",
                row.len(),
                self.log_likelihood.len()
            )));
        }
        let mut scores = self.log_priors.clone();
        for (fi, &cat) in row.iter().enumerate() {
            for (class, score) in scores.iter_mut().enumerate() {
                let table = &self.log_likelihood[fi][class];
                // An unseen category (interned only in the test split)
                // contributes the uniform smoothed mass.
                let ll = table
                    .get(cat)
                    .copied()
                    .unwrap_or_else(|| (1.0 / (table.len() as f64 + 1.0)).ln());
                *score += ll;
            }
        }
        Ok(scores)
    }

    /// Predicted class for one row.
    pub fn predict(&self, row: &[usize]) -> Result<usize> {
        let scores = self.log_scores(row)?;
        Ok(scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("scores are finite"))
            .map(|(i, _)| i)
            .unwrap_or(0))
    }

    /// Predictions for every row of a dataset.
    pub fn predict_all(&self, data: &Dataset) -> Result<Vec<usize>> {
        data.cells.iter().map(|row| self.predict(row)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Feature;

    /// A dataset where feature 0 perfectly determines the class and
    /// feature 1 is noise.
    fn separable() -> Dataset {
        let rows = 40;
        let cells: Vec<Vec<usize>> = (0..rows).map(|i| vec![i % 2, i % 3]).collect();
        let classes: Vec<usize> = (0..rows).map(|i| i % 2).collect();
        Dataset {
            features: vec![
                Feature {
                    name: "Signal".into(),
                    labels: vec!["a".into(), "b".into()],
                },
                Feature {
                    name: "Noise".into(),
                    labels: vec!["x".into(), "y".into(), "z".into()],
                },
            ],
            class_labels: vec!["no".into(), "yes".into()],
            cells,
            classes,
        }
    }

    #[test]
    fn learns_a_separable_concept() {
        let ds = separable();
        let nb = NaiveBayes::fit(&ds).unwrap();
        let preds = nb.predict_all(&ds).unwrap();
        let acc = crate::metrics::accuracy(&ds.classes, &preds).unwrap();
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn prior_dominates_with_no_features() {
        let mut ds = separable();
        // Make class 1 dominant and erase features.
        ds.classes = vec![1; ds.len()];
        let empty = ds.select_features(&[]).unwrap();
        let nb = NaiveBayes::fit(&empty).unwrap();
        assert_eq!(nb.predict(&[]).unwrap(), 1);
    }

    #[test]
    fn unseen_category_does_not_panic() {
        let ds = separable();
        let nb = NaiveBayes::fit(&ds).unwrap();
        // Category index 9 was never interned during training.
        let p = nb.predict(&[9, 0]).unwrap();
        assert!(p < ds.n_classes());
    }

    #[test]
    fn wrong_arity_is_an_error() {
        let nb = NaiveBayes::fit(&separable()).unwrap();
        assert!(nb.predict(&[0]).is_err());
        assert!(nb.predict(&[0, 0, 0]).is_err());
    }

    #[test]
    fn empty_dataset_rejected() {
        let ds = Dataset {
            features: vec![],
            class_labels: vec![],
            cells: vec![],
            classes: vec![],
        };
        assert!(NaiveBayes::fit(&ds).is_err());
    }

    #[test]
    fn smoothing_keeps_probabilities_finite() {
        let ds = separable();
        let nb = NaiveBayes::fit(&ds).unwrap();
        for scores in ds.cells.iter().map(|r| nb.log_scores(r).unwrap()) {
            for s in scores {
                assert!(s.is_finite());
            }
        }
    }
}
