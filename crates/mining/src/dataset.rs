//! Categorical datasets for the mining algorithms.
//!
//! The miners run over *discretised* clinical attributes (the ETL
//! stage's band/trend columns), so a dataset is a dense matrix of
//! small category indices plus interned label vocabularies. Missing
//! measurements become an explicit `"?"` category — in screening data
//! missingness itself is informative (the hand-grip test is missing
//! *because* the patient is elderly).

use clinical_types::{Error, Result, Table, Value};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Category vocabulary of one feature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Feature {
    /// Feature (column) name.
    pub name: String,
    /// Category labels; a cell value of `k` means `labels[k]`.
    pub labels: Vec<String>,
}

impl Feature {
    /// Number of categories.
    pub fn cardinality(&self) -> usize {
        self.labels.len()
    }

    /// Index of a label.
    pub fn index_of(&self, label: &str) -> Option<usize> {
        self.labels.iter().position(|l| l == label)
    }
}

/// A dense categorical dataset: `cells[row][feature]` is a category
/// index into the feature's vocabulary; `classes[row]` indexes
/// `class_labels`.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Feature vocabularies, fixing column order.
    pub features: Vec<Feature>,
    /// Class vocabulary.
    pub class_labels: Vec<String>,
    /// Feature matrix.
    pub cells: Vec<Vec<usize>>,
    /// Class vector.
    pub classes: Vec<usize>,
}

impl Dataset {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.features.len()
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.class_labels.len()
    }

    /// Deterministic shuffled split into (train, test) with `test_fraction`
    /// of rows in the test set.
    pub fn split(&self, test_fraction: f64, seed: u64) -> Result<(Dataset, Dataset)> {
        if !(0.0..1.0).contains(&test_fraction) {
            return Err(Error::invalid("test fraction must be in [0, 1)"));
        }
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.shuffle(&mut StdRng::seed_from_u64(seed));
        let n_test = (self.len() as f64 * test_fraction).round() as usize;
        let take = |rows: &[usize]| Dataset {
            features: self.features.clone(),
            class_labels: self.class_labels.clone(),
            cells: rows.iter().map(|&r| self.cells[r].clone()).collect(),
            classes: rows.iter().map(|&r| self.classes[r]).collect(),
        };
        Ok((take(&order[n_test..]), take(&order[..n_test])))
    }

    /// Restrict to a subset of feature columns (by index).
    pub fn select_features(&self, keep: &[usize]) -> Result<Dataset> {
        for &k in keep {
            if k >= self.n_features() {
                return Err(Error::invalid(format!("feature index {k} out of range")));
            }
        }
        Ok(Dataset {
            features: keep.iter().map(|&k| self.features[k].clone()).collect(),
            class_labels: self.class_labels.clone(),
            cells: self
                .cells
                .iter()
                .map(|row| keep.iter().map(|&k| row[k]).collect())
                .collect(),
            classes: self.classes.clone(),
        })
    }

    /// Class frequency vector.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes()];
        for &c in &self.classes {
            counts[c] += 1;
        }
        counts
    }

    /// Index of the majority class (ties break toward the smaller
    /// class index, deterministically).
    pub fn majority_class(&self) -> usize {
        first_max(&self.class_counts())
    }
}

/// Index of the first maximum in a count vector — the shared
/// deterministic tie-break for majority votes across the miners.
pub fn first_max(counts: &[usize]) -> usize {
    let mut best = 0usize;
    for (i, &c) in counts.iter().enumerate() {
        if c > counts[best] {
            best = i;
        }
    }
    best
}

/// Builds a [`Dataset`] from a [`Table`] by interning the listed
/// categorical columns.
#[derive(Debug, Clone)]
pub struct DatasetBuilder {
    feature_columns: Vec<String>,
    class_column: String,
    /// Label used for missing cells (default `"?"`).
    pub missing_label: String,
    /// Drop rows whose class is missing (default true — a row with no
    /// diagnosis cannot supervise anything).
    pub drop_unlabelled: bool,
}

impl DatasetBuilder {
    /// Builder over the given feature columns and class column.
    pub fn new(feature_columns: Vec<&str>, class_column: &str) -> Self {
        DatasetBuilder {
            feature_columns: feature_columns.into_iter().map(String::from).collect(),
            class_column: class_column.to_string(),
            missing_label: "?".to_string(),
            drop_unlabelled: true,
        }
    }

    /// Extract the dataset.
    pub fn build(&self, table: &Table) -> Result<Dataset> {
        let schema = table.schema();
        let feature_idx: Vec<usize> = self
            .feature_columns
            .iter()
            .map(|c| schema.index_of(c))
            .collect::<Result<_>>()?;
        let class_idx = schema.index_of(&self.class_column)?;

        let mut features: Vec<Feature> = self
            .feature_columns
            .iter()
            .map(|name| Feature {
                name: name.clone(),
                labels: Vec::new(),
            })
            .collect();
        let mut class_labels: Vec<String> = Vec::new();
        let mut cells = Vec::with_capacity(table.len());
        let mut classes = Vec::with_capacity(table.len());

        let intern = |labels: &mut Vec<String>, text: String| -> usize {
            match labels.iter().position(|l| *l == text) {
                Some(i) => i,
                None => {
                    labels.push(text);
                    labels.len() - 1
                }
            }
        };

        for row in table.rows() {
            let class_value = &row[class_idx];
            if class_value.is_null() {
                if self.drop_unlabelled {
                    continue;
                }
                return Err(Error::invalid(format!(
                    "NULL class in `{}` with drop_unlabelled = false",
                    self.class_column
                )));
            }
            let class = intern(&mut class_labels, class_value.to_string());
            let mut row_cells = Vec::with_capacity(feature_idx.len());
            for (fi, &idx) in feature_idx.iter().enumerate() {
                let text = match &row[idx] {
                    Value::Null => self.missing_label.clone(),
                    other => other.to_string(),
                };
                row_cells.push(intern(&mut features[fi].labels, text));
            }
            cells.push(row_cells);
            classes.push(class);
        }
        Ok(Dataset {
            features,
            class_labels,
            cells,
            classes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clinical_types::{DataType, FieldDef, Record, Schema};

    fn table() -> Table {
        let schema = Schema::new(vec![
            FieldDef::nullable("Reflex", DataType::Text),
            FieldDef::nullable("FBG_Band", DataType::Text),
            FieldDef::nullable("DiabetesStatus", DataType::Text),
        ])
        .unwrap();
        let rows: Vec<Vec<Value>> = vec![
            vec!["absent".into(), "high".into(), "yes".into()],
            vec!["present".into(), "very good".into(), "no".into()],
            vec![Value::Null, "high".into(), "no".into()],
            vec!["absent".into(), "Diabetic".into(), "yes".into()],
            vec!["present".into(), "very good".into(), Value::Null],
        ];
        Table::from_rows(schema, rows.into_iter().map(Record::new).collect()).unwrap()
    }

    #[test]
    fn builds_interned_matrix() {
        let ds = DatasetBuilder::new(vec!["Reflex", "FBG_Band"], "DiabetesStatus")
            .build(&table())
            .unwrap();
        assert_eq!(ds.len(), 4); // the unlabelled row is dropped
        assert_eq!(ds.n_features(), 2);
        assert_eq!(ds.class_labels, vec!["yes", "no"]);
        // Missing reflex becomes the "?" category.
        assert!(ds.features[0].labels.contains(&"?".to_string()));
    }

    #[test]
    fn class_counts_and_majority() {
        let ds = DatasetBuilder::new(vec!["Reflex"], "DiabetesStatus")
            .build(&table())
            .unwrap();
        assert_eq!(ds.class_counts(), vec![2, 2]);
        // Tie → first max wins deterministically.
        assert_eq!(ds.majority_class(), 0);
    }

    #[test]
    fn split_partitions_rows() {
        let ds = DatasetBuilder::new(vec!["Reflex", "FBG_Band"], "DiabetesStatus")
            .build(&table())
            .unwrap();
        let (train, test) = ds.split(0.25, 7).unwrap();
        assert_eq!(train.len() + test.len(), ds.len());
        assert_eq!(test.len(), 1);
        // Deterministic in the seed.
        let (train2, test2) = ds.split(0.25, 7).unwrap();
        assert_eq!(train, train2);
        assert_eq!(test, test2);
        assert!(ds.split(1.0, 7).is_err());
    }

    #[test]
    fn select_features_projects_columns() {
        let ds = DatasetBuilder::new(vec!["Reflex", "FBG_Band"], "DiabetesStatus")
            .build(&table())
            .unwrap();
        let sub = ds.select_features(&[1]).unwrap();
        assert_eq!(sub.n_features(), 1);
        assert_eq!(sub.features[0].name, "FBG_Band");
        assert_eq!(sub.classes, ds.classes);
        assert!(ds.select_features(&[5]).is_err());
    }

    #[test]
    fn unknown_columns_error() {
        assert!(DatasetBuilder::new(vec!["Nope"], "DiabetesStatus")
            .build(&table())
            .is_err());
        assert!(DatasetBuilder::new(vec!["Reflex"], "Nope")
            .build(&table())
            .is_err());
    }
}
