//! Information-gain decision tree induction (ID3-style with gain
//! ratio, depth and support limits).

use crate::dataset::Dataset;
use clinical_types::{Error, Result};

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        class: usize,
    },
    Split {
        feature: usize,
        /// Child per category index; categories unseen in this branch
        /// fall back to `default`.
        children: Vec<Option<Box<Node>>>,
        default: usize,
    },
}

/// Tree induction hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct TreeConfig {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum rows required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum information gain required to accept a split (bits).
    pub min_gain: f64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 8,
            min_samples_split: 8,
            min_gain: 1e-3,
        }
    }
}

/// A fitted decision tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    root: Node,
    n_features: usize,
}

fn entropy_of(counts: &[usize]) -> f64 {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / total as f64;
            -p * p.log2()
        })
        .sum()
}

impl DecisionTree {
    /// Fit a tree with default hyper-parameters.
    pub fn fit(data: &Dataset) -> Result<DecisionTree> {
        Self::fit_with(data, TreeConfig::default())
    }

    /// Fit a tree.
    pub fn fit_with(data: &Dataset, config: TreeConfig) -> Result<DecisionTree> {
        if data.is_empty() {
            return Err(Error::invalid("cannot fit a tree to an empty dataset"));
        }
        let rows: Vec<usize> = (0..data.len()).collect();
        let root = grow(data, &rows, 0, &config);
        Ok(DecisionTree {
            root,
            n_features: data.n_features(),
        })
    }

    /// Predicted class for one row.
    pub fn predict(&self, row: &[usize]) -> Result<usize> {
        if row.len() != self.n_features {
            return Err(Error::invalid(format!(
                "row has {} features, tree expects {}",
                row.len(),
                self.n_features
            )));
        }
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { class } => return Ok(*class),
                Node::Split {
                    feature,
                    children,
                    default,
                } => match children.get(row[*feature]).and_then(Option::as_ref) {
                    Some(child) => node = child,
                    None => return Ok(*default),
                },
            }
        }
    }

    /// Predictions for every row of a dataset.
    pub fn predict_all(&self, data: &Dataset) -> Result<Vec<usize>> {
        data.cells.iter().map(|row| self.predict(row)).collect()
    }

    /// Number of decision (split) nodes.
    pub fn n_splits(&self) -> usize {
        fn count(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 0,
                Node::Split { children, .. } => {
                    1 + children.iter().flatten().map(|c| count(c)).sum::<usize>()
                }
            }
        }
        count(&self.root)
    }
}

fn class_counts(data: &Dataset, rows: &[usize]) -> Vec<usize> {
    let mut counts = vec![0usize; data.n_classes()];
    for &r in rows {
        counts[data.classes[r]] += 1;
    }
    counts
}

fn majority(counts: &[usize]) -> usize {
    crate::dataset::first_max(counts)
}

fn grow(data: &Dataset, rows: &[usize], depth: usize, config: &TreeConfig) -> Node {
    let counts = class_counts(data, rows);
    let parent_entropy = entropy_of(&counts);
    let default = majority(&counts);
    if parent_entropy == 0.0 || depth >= config.max_depth || rows.len() < config.min_samples_split {
        return Node::Leaf { class: default };
    }

    // Best feature by gain ratio.
    let mut best: Option<(usize, f64, Vec<Vec<usize>>)> = None;
    for fi in 0..data.n_features() {
        let k = data.features[fi].cardinality();
        if k < 2 {
            continue;
        }
        let mut partitions: Vec<Vec<usize>> = vec![Vec::new(); k];
        for &r in rows {
            partitions[data.cells[r][fi]].push(r);
        }
        let mut children_entropy = 0.0;
        let mut split_info = 0.0;
        for part in &partitions {
            if part.is_empty() {
                continue;
            }
            let w = part.len() as f64 / rows.len() as f64;
            children_entropy += w * entropy_of(&class_counts(data, part));
            split_info -= w * w.log2();
        }
        let gain = parent_entropy - children_entropy;
        if gain < config.min_gain || split_info <= 0.0 {
            continue;
        }
        let ratio = gain / split_info;
        if best.as_ref().is_none_or(|(_, b, _)| ratio > *b) {
            best = Some((fi, ratio, partitions));
        }
    }

    match best {
        None => Node::Leaf { class: default },
        Some((feature, _, partitions)) => {
            let children = partitions
                .into_iter()
                .map(|part| {
                    if part.is_empty() {
                        None
                    } else {
                        Some(Box::new(grow(data, &part, depth + 1, config)))
                    }
                })
                .collect();
            Node::Split {
                feature,
                children,
                default,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Feature;

    fn and_dataset() -> Dataset {
        // Class = A AND B: needs two levels of splits (the first
        // split already carries gain, unlike XOR — see the dedicated
        // xor test below for that greedy limitation).
        let mut cells = Vec::new();
        let mut classes = Vec::new();
        for a in 0..2 {
            for b in 0..2 {
                for _ in 0..20 {
                    cells.push(vec![a, b]);
                    classes.push(a & b);
                }
            }
        }
        Dataset {
            features: vec![
                Feature {
                    name: "A".into(),
                    labels: vec!["0".into(), "1".into()],
                },
                Feature {
                    name: "B".into(),
                    labels: vec!["0".into(), "1".into()],
                },
            ],
            class_labels: vec!["0".into(), "1".into()],
            cells,
            classes,
        }
    }

    #[test]
    fn learns_conjunction() {
        let ds = and_dataset();
        let tree = DecisionTree::fit(&ds).unwrap();
        let preds = tree.predict_all(&ds).unwrap();
        let acc = crate::metrics::accuracy(&ds.classes, &preds).unwrap();
        assert!(acc > 0.99, "accuracy {acc}");
        assert!(tree.n_splits() >= 2);
    }

    #[test]
    fn greedy_induction_cannot_split_pure_xor() {
        // Documented limitation shared with C4.5: on perfectly
        // balanced XOR every single-feature split has zero gain, so
        // the greedy criterion refuses to split and the tree falls
        // back to the majority leaf.
        let mut ds = and_dataset();
        for (row, class) in ds.cells.iter().zip(ds.classes.iter_mut()) {
            *class = row[0] ^ row[1];
        }
        let tree = DecisionTree::fit(&ds).unwrap();
        assert_eq!(tree.n_splits(), 0);
    }

    #[test]
    fn depth_zero_gives_majority_leaf() {
        let ds = and_dataset();
        let tree = DecisionTree::fit_with(
            &ds,
            TreeConfig {
                max_depth: 0,
                ..TreeConfig::default()
            },
        )
        .unwrap();
        assert_eq!(tree.n_splits(), 0);
        let p = tree.predict(&[0, 0]).unwrap();
        assert_eq!(p, ds.majority_class());
    }

    #[test]
    fn min_samples_stops_splitting() {
        let ds = and_dataset();
        let tree = DecisionTree::fit_with(
            &ds,
            TreeConfig {
                min_samples_split: 1000,
                ..TreeConfig::default()
            },
        )
        .unwrap();
        assert_eq!(tree.n_splits(), 0);
    }

    #[test]
    fn pure_dataset_is_a_leaf() {
        let mut ds = and_dataset();
        ds.classes = vec![1; ds.len()];
        let tree = DecisionTree::fit(&ds).unwrap();
        assert_eq!(tree.n_splits(), 0);
        assert_eq!(tree.predict(&[0, 1]).unwrap(), 1);
    }

    #[test]
    fn unseen_category_falls_back_to_branch_majority() {
        let ds = and_dataset();
        let tree = DecisionTree::fit(&ds).unwrap();
        let p = tree.predict(&[7, 0]).unwrap();
        assert!(p < 2);
    }

    #[test]
    fn arity_checked() {
        let tree = DecisionTree::fit(&and_dataset()).unwrap();
        assert!(tree.predict(&[0]).is_err());
    }
}
