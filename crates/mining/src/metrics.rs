//! Evaluation metrics for the classifiers.

use clinical_types::{Error, Result};

/// Fraction of predictions equal to the truth.
pub fn accuracy(truth: &[usize], predicted: &[usize]) -> Result<f64> {
    if truth.len() != predicted.len() {
        return Err(Error::invalid(format!(
            "{} truth labels vs {} predictions",
            truth.len(),
            predicted.len()
        )));
    }
    if truth.is_empty() {
        return Err(Error::invalid("cannot score an empty prediction set"));
    }
    let hits = truth.iter().zip(predicted).filter(|(t, p)| t == p).count();
    Ok(hits as f64 / truth.len() as f64)
}

/// `matrix[t][p]` = number of rows with truth `t` predicted as `p`.
pub fn confusion_matrix(
    truth: &[usize],
    predicted: &[usize],
    n_classes: usize,
) -> Result<Vec<Vec<usize>>> {
    if truth.len() != predicted.len() {
        return Err(Error::invalid("label/prediction length mismatch"));
    }
    let mut m = vec![vec![0usize; n_classes]; n_classes];
    for (&t, &p) in truth.iter().zip(predicted) {
        if t >= n_classes || p >= n_classes {
            return Err(Error::invalid(format!(
                "label out of range: truth {t}, predicted {p}, classes {n_classes}"
            )));
        }
        m[t][p] += 1;
    }
    Ok(m)
}

/// Per-class precision / recall / F1.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassMetrics {
    /// Class index the metrics describe.
    pub class: usize,
    /// Precision (NaN-free: 0 when the class is never predicted).
    pub precision: f64,
    /// Recall (0 when the class never occurs).
    pub recall: f64,
    /// Harmonic mean of precision and recall (0 when both are 0).
    pub f1: f64,
}

/// Per-class F1 summary from a confusion matrix.
pub fn f1_scores(matrix: &[Vec<usize>]) -> Vec<ClassMetrics> {
    let n = matrix.len();
    (0..n)
        .map(|c| {
            let tp = matrix[c][c] as f64;
            let predicted: f64 = (0..n).map(|t| matrix[t][c] as f64).sum();
            let actual: f64 = matrix[c].iter().map(|&x| x as f64).sum();
            let precision = if predicted > 0.0 { tp / predicted } else { 0.0 };
            let recall = if actual > 0.0 { tp / actual } else { 0.0 };
            let f1 = if precision + recall > 0.0 {
                2.0 * precision * recall / (precision + recall)
            } else {
                0.0
            };
            ClassMetrics {
                class: c,
                precision,
                recall,
                f1,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_hits() {
        let acc = accuracy(&[0, 1, 1, 0], &[0, 1, 0, 0]).unwrap();
        assert!((acc - 0.75).abs() < 1e-12);
        assert!(accuracy(&[0], &[0, 1]).is_err());
        assert!(accuracy(&[], &[]).is_err());
    }

    #[test]
    fn confusion_matrix_layout() {
        let m = confusion_matrix(&[0, 0, 1, 1], &[0, 1, 1, 1], 2).unwrap();
        assert_eq!(m, vec![vec![1, 1], vec![0, 2]]);
        assert!(confusion_matrix(&[5], &[0], 2).is_err());
    }

    #[test]
    fn f1_perfect_classifier() {
        let m = confusion_matrix(&[0, 1, 0, 1], &[0, 1, 0, 1], 2).unwrap();
        for s in f1_scores(&m) {
            assert!((s.f1 - 1.0).abs() < 1e-12);
        }
    }

    mod properties {
        use super::super::*;
        use proptest::prelude::*;

        proptest! {
            /// Confusion-matrix row sums equal per-class truth counts,
            /// and the diagonal sum over n equals the accuracy.
            #[test]
            fn matrix_is_consistent_with_accuracy(
                labels in proptest::collection::vec((0usize..4, 0usize..4), 1..200)
            ) {
                let truth: Vec<usize> = labels.iter().map(|(t, _)| *t).collect();
                let predicted: Vec<usize> = labels.iter().map(|(_, p)| *p).collect();
                let m = confusion_matrix(&truth, &predicted, 4).unwrap();
                for (c, row) in m.iter().enumerate() {
                    let row_sum: usize = row.iter().sum();
                    let count = truth.iter().filter(|&&t| t == c).count();
                    prop_assert_eq!(row_sum, count);
                }
                let diag: usize = (0..4).map(|c| m[c][c]).sum();
                let acc = accuracy(&truth, &predicted).unwrap();
                prop_assert!((acc - diag as f64 / truth.len() as f64).abs() < 1e-12);
            }

            /// Precision and recall stay in [0, 1] for any matrix.
            #[test]
            fn f1_components_bounded(
                cells in proptest::collection::vec(0usize..50, 9)
            ) {
                let m: Vec<Vec<usize>> = cells.chunks(3).map(|c| c.to_vec()).collect();
                for s in f1_scores(&m) {
                    prop_assert!((0.0..=1.0).contains(&s.precision));
                    prop_assert!((0.0..=1.0).contains(&s.recall));
                    prop_assert!((0.0..=1.0).contains(&s.f1));
                }
            }
        }
    }

    #[test]
    fn f1_handles_never_predicted_class() {
        // Class 1 never predicted.
        let m = confusion_matrix(&[0, 1, 1], &[0, 0, 0], 2).unwrap();
        let scores = f1_scores(&m);
        assert_eq!(scores[1].precision, 0.0);
        assert_eq!(scores[1].recall, 0.0);
        assert_eq!(scores[1].f1, 0.0);
        assert!(scores[0].recall > 0.99);
    }
}
