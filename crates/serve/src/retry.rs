//! Bounded retry with deterministic jittered exponential backoff.
//!
//! The implementation lives in [`fault::retry`] so the serve request
//! paths and the oplog replication catch-up loop share one policy
//! (one jitter generator, one backoff curve) instead of drifting
//! copies; this module re-exports it under the historical path.

pub use fault::RetryPolicy;
