//! Typed failures of the serving layer.

use analyze::Diagnostics;
use std::fmt;
use std::time::Duration;

/// `Result` specialised to [`ServeError`].
pub type ServeResult<T> = std::result::Result<T, ServeError>;

/// Why a request was not served.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Admission control rejected the request: the bounded work queue
    /// was full. The caller should back off and retry; nothing was
    /// executed on its behalf.
    Overloaded {
        /// Configured queue depth that was exhausted.
        queue_depth: usize,
    },
    /// The request was admitted but its result did not arrive within
    /// the deadline. The underlying execution may still complete and
    /// populate the cache for later callers.
    DeadlineExceeded {
        /// The deadline that elapsed.
        deadline: Duration,
    },
    /// The service is draining and no longer accepts work.
    ShuttingDown,
    /// The semantic analyzer rejected the request at admission:
    /// unknown names, type mismatches or illegal aggregations. Nothing
    /// was queued or executed; the diagnostics carry stable codes
    /// (`A0xx`/`A1xx`/`A2xx`) and did-you-mean suggestions.
    Invalid(Diagnostics),
    /// The query itself failed (parse error, unknown attribute, …).
    Query(clinical_types::Error),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { queue_depth } => {
                write!(f, "overloaded: work queue at capacity ({queue_depth})")
            }
            ServeError::DeadlineExceeded { deadline } => {
                write!(f, "deadline of {deadline:?} exceeded")
            }
            ServeError::ShuttingDown => write!(f, "service is shutting down"),
            ServeError::Invalid(diags) => {
                write!(f, "invalid query rejected at admission:\n{diags}")
            }
            ServeError::Query(e) => write!(f, "query failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<clinical_types::Error> for ServeError {
    fn from(e: clinical_types::Error) -> Self {
        ServeError::Query(e)
    }
}
