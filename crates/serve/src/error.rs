//! Typed failures of the serving layer.
//!
//! Failures raised on a request path carry the [`TraceId`] of the
//! request's `serve.request` span (when tracing captured one), so an
//! operator can jump from an error report straight to the trace that
//! produced it.

use analyze::Diagnostics;
use obs::TraceId;
use std::fmt;
use std::time::Duration;

/// `Result` specialised to [`ServeError`].
pub type ServeResult<T> = std::result::Result<T, ServeError>;

/// Why a request was not served.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Admission control rejected the request: the bounded work queue
    /// was full. The caller should back off and retry; nothing was
    /// executed on its behalf.
    Overloaded {
        /// Configured queue depth that was exhausted.
        queue_depth: usize,
        /// Trace of the rejected request, when one was recorded.
        trace: Option<TraceId>,
    },
    /// The request was admitted but its result did not arrive within
    /// the deadline. The underlying execution may still complete and
    /// populate the cache for later callers.
    DeadlineExceeded {
        /// The deadline that elapsed.
        deadline: Duration,
        /// Trace of the abandoned request, when one was recorded.
        trace: Option<TraceId>,
    },
    /// The per-user admission quota rejected the request: this
    /// session's token bucket is empty. Other sessions are unaffected
    /// (distinct from [`ServeError::Overloaded`], which is aggregate
    /// back-pressure). Nothing was executed; the caller should pace
    /// itself and retry.
    QuotaExceeded {
        /// The session key whose bucket ran dry.
        session: String,
        /// Trace of the rejected request, when one was recorded.
        trace: Option<TraceId>,
    },
    /// The service is draining and no longer accepts work.
    ShuttingDown,
    /// The semantic analyzer rejected the request at admission:
    /// unknown names, type mismatches or illegal aggregations. Nothing
    /// was queued or executed; the diagnostics carry stable codes
    /// (`A0xx`/`A1xx`/`A2xx`) and did-you-mean suggestions.
    Invalid {
        /// The analyzer's findings.
        diagnostics: Diagnostics,
        /// Trace of the rejected request, when one was recorded.
        trace: Option<TraceId>,
    },
    /// The query itself failed (parse error, unknown attribute, …).
    Query(clinical_types::Error),
    /// The serving layer itself failed: a worker panicked while
    /// executing the request, an injected fault exhausted its retries,
    /// or the circuit breaker deflected the request with no cached
    /// result to degrade to. The request may be retried; the service
    /// survives (workers are respawned, breakers recover via probes).
    Internal {
        /// Human-readable cause (panic payload, fault point, …).
        detail: String,
        /// Trace of the failed request, when one was recorded.
        trace: Option<TraceId>,
    },
}

impl ServeError {
    /// The trace id of the request that raised this error, when the
    /// failing path recorded one. `ShuttingDown` and `Query` failures
    /// carry none (the former precedes span creation, the latter is
    /// raised below the serving layer).
    pub fn trace(&self) -> Option<TraceId> {
        match self {
            ServeError::Overloaded { trace, .. }
            | ServeError::DeadlineExceeded { trace, .. }
            | ServeError::QuotaExceeded { trace, .. }
            | ServeError::Invalid { trace, .. }
            | ServeError::Internal { trace, .. } => *trace,
            ServeError::ShuttingDown | ServeError::Query(_) => None,
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let trace_suffix = |t: &Option<TraceId>| match t {
            Some(id) => format!(" [trace {}]", id.0),
            None => String::new(),
        };
        match self {
            ServeError::Overloaded { queue_depth, trace } => {
                write!(
                    f,
                    "overloaded: work queue at capacity ({queue_depth}){}",
                    trace_suffix(trace)
                )
            }
            ServeError::DeadlineExceeded { deadline, trace } => {
                write!(
                    f,
                    "deadline of {deadline:?} exceeded{}",
                    trace_suffix(trace)
                )
            }
            ServeError::QuotaExceeded { session, trace } => {
                write!(
                    f,
                    "per-user quota exceeded for session `{session}`{}",
                    trace_suffix(trace)
                )
            }
            ServeError::ShuttingDown => write!(f, "service is shutting down"),
            ServeError::Invalid { diagnostics, trace } => {
                write!(
                    f,
                    "invalid query rejected at admission{}:\n{diagnostics}",
                    trace_suffix(trace)
                )
            }
            ServeError::Query(e) => write!(f, "query failed: {e}"),
            ServeError::Internal { detail, trace } => {
                write!(
                    f,
                    "internal serving failure: {detail}{}",
                    trace_suffix(trace)
                )
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<clinical_types::Error> for ServeError {
    fn from(e: clinical_types::Error) -> Self {
        ServeError::Query(e)
    }
}
