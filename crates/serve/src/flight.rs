//! Single-flight deduplication.
//!
//! When N callers ask for the same `(fingerprint, epoch)` at once,
//! exactly one — the *leader* — enqueues an execution; the rest park on
//! the leader's [`Flight`] and share its result. This bounds worker
//! work under query storms: a popular dashboard query costs one
//! execution no matter how many clinicians refresh it.
//!
//! The per-flight result slot uses `std::sync` directly because
//! waiters need a `Condvar`, which the `parking_lot` shim does not
//! provide; its place in the lock hierarchy is declared with a
//! `lock:rank` annotation instead of a ranked wrapper.

use crate::cache::CacheKey;
use crate::error::{ServeError, ServeResult};
use crate::request::QueryOutcome;
use obs::{LockRank, RankedMutex, SpanContext};
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// One in-flight execution that any number of waiters may join.
pub struct Flight {
    result: Mutex<Option<ServeResult<Arc<QueryOutcome>>>>, // lock:rank(FlightSlot)
    done: Condvar,
    /// The leader's request span, so coalesced followers can link their
    /// own trace to the execution that actually serves them.
    leader: Option<SpanContext>,
}

impl Flight {
    fn new(leader: Option<SpanContext>) -> Flight {
        Flight {
            result: Mutex::new(None),
            done: Condvar::new(),
            leader,
        }
    }

    /// The span context of the leader that owns this execution, when
    /// tracing was enabled at creation.
    pub fn leader_context(&self) -> Option<SpanContext> {
        self.leader
    }

    /// Publish the outcome and wake every waiter. Later calls are
    /// ignored (first writer wins).
    pub fn complete(&self, outcome: ServeResult<Arc<QueryOutcome>>) {
        let mut slot = self.result.lock().unwrap_or_else(|e| e.into_inner());
        if slot.is_none() {
            *slot = Some(outcome);
        }
        drop(slot);
        self.done.notify_all();
    }

    /// Block until the flight completes or `deadline` elapses.
    pub fn wait(&self, deadline: Duration) -> ServeResult<Arc<QueryOutcome>> {
        let start = Instant::now(); // lint:allow(no-raw-timing, "deadline arithmetic needs a local monotonic clock, not a traced span")
        let mut slot = self.result.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(outcome) = slot.as_ref() {
                return outcome.clone();
            }
            let elapsed = start.elapsed();
            if elapsed >= deadline {
                return Err(ServeError::DeadlineExceeded {
                    deadline,
                    trace: None,
                });
            }
            let (guard, timeout) = self
                .done
                .wait_timeout(slot, deadline - elapsed) // lint:allow(A301, "condvar wait atomically releases the slot lock while parked; the pairing is the point")
                .unwrap_or_else(|e| e.into_inner());
            slot = guard;
            if timeout.timed_out() && slot.is_none() {
                return Err(ServeError::DeadlineExceeded {
                    deadline,
                    trace: None,
                });
            }
        }
    }
}

/// Whether a caller leads or joins an execution.
pub enum FlightRole {
    /// This caller must enqueue the execution (and then wait).
    Leader(Arc<Flight>),
    /// An identical execution is already in flight; just wait.
    Follower(Arc<Flight>),
}

/// The table of in-flight executions, keyed like the cache.
pub struct FlightTable {
    flights: RankedMutex<HashMap<CacheKey, Arc<Flight>>>,
}

impl Default for FlightTable {
    fn default() -> FlightTable {
        FlightTable {
            flights: RankedMutex::new(LockRank::Admission, "serve.flights", HashMap::new()),
        }
    }
}

impl FlightTable {
    /// Join the flight for `key`, creating it (as leader) if absent.
    /// `ctx` is the joining request's span context: it becomes the
    /// flight's leader context when this caller creates the flight.
    pub fn join(&self, key: &CacheKey, ctx: Option<SpanContext>) -> FlightRole {
        let mut flights = self.flights.lock();
        if let Some(flight) = flights.get(key) {
            FlightRole::Follower(Arc::clone(flight))
        } else {
            let flight = Arc::new(Flight::new(ctx));
            flights.insert(key.clone(), Arc::clone(&flight));
            FlightRole::Leader(flight)
        }
    }

    /// Retire the flight for `key` so later callers start a fresh one.
    /// Publish to the cache first, then retire, then complete the
    /// flight — so no caller can join an already-completed flight.
    pub fn retire(&self, key: &CacheKey) {
        self.flights.lock().remove(key);
    }

    /// Number of executions currently in flight.
    pub fn in_flight(&self) -> usize {
        self.flights.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olap::PivotTable;
    use std::thread;

    fn outcome() -> Arc<QueryOutcome> {
        Arc::new(QueryOutcome::pivot(PivotTable {
            row_axis: "r".into(),
            col_axis: String::new(),
            row_headers: vec![],
            col_headers: vec![],
            cells: vec![],
        }))
    }

    #[test]
    fn second_joiner_is_a_follower() {
        let table = FlightTable::default();
        let key = ("q".to_string(), 1);
        assert!(matches!(table.join(&key, None), FlightRole::Leader(_)));
        assert!(matches!(table.join(&key, None), FlightRole::Follower(_)));
        assert_eq!(table.in_flight(), 1);
        table.retire(&key);
        assert!(matches!(table.join(&key, None), FlightRole::Leader(_)));
    }

    #[test]
    fn leader_context_is_visible_to_followers() {
        let table = FlightTable::default();
        let key = ("q".to_string(), 1);
        let ctx = SpanContext {
            trace: obs::TraceId(7),
            span: obs::SpanId(9),
        };
        let FlightRole::Leader(led) = table.join(&key, Some(ctx)) else {
            panic!("first joiner must lead");
        };
        assert_eq!(led.leader_context(), Some(ctx));
        let FlightRole::Follower(followed) = table.join(&key, None) else {
            panic!("second joiner must follow");
        };
        assert_eq!(followed.leader_context(), Some(ctx));
    }

    #[test]
    fn waiters_receive_the_completed_result() {
        let flight = Arc::new(Flight::new(None));
        let value = outcome();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let f = Arc::clone(&flight);
                thread::spawn(move || f.wait(Duration::from_secs(5)))
            })
            .collect();
        flight.complete(Ok(Arc::clone(&value)));
        for h in handles {
            let got = h.join().unwrap().unwrap();
            assert!(Arc::ptr_eq(&got, &value));
        }
    }

    #[test]
    fn wait_times_out_without_completion() {
        let flight = Flight::new(None);
        let err = flight.wait(Duration::from_millis(20)).unwrap_err();
        assert!(matches!(err, ServeError::DeadlineExceeded { .. }));
    }

    #[test]
    fn first_completion_wins() {
        let flight = Flight::new(None);
        flight.complete(Err(ServeError::ShuttingDown));
        flight.complete(Ok(outcome()));
        assert_eq!(
            flight.wait(Duration::from_secs(1)).unwrap_err(),
            ServeError::ShuttingDown
        );
    }
}
