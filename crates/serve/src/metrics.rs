//! Service counters and latency histogram, backed by the unified
//! `obs` metrics registry.
//!
//! All instruments are relaxed atomics — they are observability, not
//! synchronisation; the serving data structures carry their own locks.
//! Registering through [`obs::MetricsRegistry`] buys Prometheus-style
//! text exposition ([`ServeMetrics::render_prometheus`]) and snapshot
//! diffing for free, while [`MetricsSnapshot`] keeps its original
//! field-for-field shape for existing consumers.

use obs::{percentile_from_buckets, Counter, Gauge, Histogram, MetricsRegistry};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Upper bounds (µs) of the latency histogram buckets; the last bucket
/// is unbounded.
const BUCKET_BOUNDS_US: [u64; 6] = [100, 1_000, 10_000, 100_000, 1_000_000, u64::MAX];

/// Live counters maintained by the service.
pub struct ServeMetrics {
    registry: MetricsRegistry,
    hits: Counter,
    reused_cross_epoch: Counter,
    patched_incremental: Counter,
    delta_log_aged_out: Counter,
    misses: Counter,
    coalesced: Counter,
    rejected: Counter,
    rejected_invalid: Counter,
    quota_rejected: Counter,
    executed: Counter,
    deadline_exceeded: Counter,
    failed: Counter,
    worker_panics: Counter,
    worker_respawned: Counter,
    worker_respawn_failed: Counter,
    served_stale: Counter,
    breaker_open: Counter,
    retries: Counter,
    rows_scanned: Counter,
    segments_pruned: Counter,
    morsels_executed: Counter,
    workers_alive: Gauge,
    latency: Arc<Histogram>,
}

impl Default for ServeMetrics {
    fn default() -> ServeMetrics {
        ServeMetrics::new()
    }
}

impl ServeMetrics {
    /// A fresh metrics set with every instrument registered.
    pub fn new() -> ServeMetrics {
        let registry = MetricsRegistry::new();
        ServeMetrics {
            hits: registry.counter("serve_cache_hits_total"),
            reused_cross_epoch: registry.counter("serve_cache_reused_cross_epoch_total"),
            patched_incremental: registry.counter("serve_cache_patched_incremental_total"),
            delta_log_aged_out: registry.counter("serve_delta_log_aged_out_total"),
            misses: registry.counter("serve_cache_misses_total"),
            coalesced: registry.counter("serve_coalesced_total"),
            rejected: registry.counter("serve_rejected_total"),
            rejected_invalid: registry.counter("serve_rejected_invalid_total"),
            quota_rejected: registry.counter("serve_quota_rejected_total"),
            executed: registry.counter("serve_executed_total"),
            deadline_exceeded: registry.counter("serve_deadline_exceeded_total"),
            failed: registry.counter("serve_failed_total"),
            worker_panics: registry.counter("serve_worker_panics_total"),
            worker_respawned: registry.counter("serve_worker_respawned_total"),
            worker_respawn_failed: registry.counter("serve_worker_respawn_failed_total"),
            served_stale: registry.counter("serve_served_stale_total"),
            breaker_open: registry.counter("serve_breaker_open_total"),
            retries: registry.counter("serve_retries_total"),
            rows_scanned: registry.counter("serve_rows_scanned_total"),
            segments_pruned: registry.counter("serve_segments_pruned_total"),
            morsels_executed: registry.counter("serve_morsels_executed_total"),
            workers_alive: registry.gauge("serve_workers_alive"),
            latency: registry.histogram("serve_latency_us", &BUCKET_BOUNDS_US),
            registry,
        }
    }

    /// Record a cache hit.
    pub fn record_hit(&self) {
        self.hits.inc();
    }

    /// Record a cache hit that was served across an epoch boundary:
    /// delta revalidation proved the stale entry untouched by the
    /// intervening mutations. (Also counted as a hit.)
    pub fn record_reused_cross_epoch(&self) {
        self.reused_cross_epoch.inc();
    }

    /// Record a cache hit produced by incrementally patching a
    /// retained cube with a delta's appended rows instead of
    /// rebuilding. (Also counted as a hit.)
    pub fn record_patched_incremental(&self) {
        self.patched_incremental.inc();
    }

    /// Record a revalidation attempt that found the delta log aged
    /// out: the cached entry's epoch predates the oldest retained
    /// delta, so reuse cannot be proven and the entry is dropped.
    pub fn record_delta_log_aged_out(&self) {
        self.delta_log_aged_out.inc();
    }

    /// Record a cache miss (the caller became a flight leader).
    pub fn record_miss(&self) {
        self.misses.inc();
    }

    /// Record a request coalesced onto an in-flight execution.
    pub fn record_coalesced(&self) {
        self.coalesced.inc();
    }

    /// Record an admission-control rejection.
    pub fn record_rejected(&self) {
        self.rejected.inc();
    }

    /// Record a semantic-analysis rejection at admission (distinct
    /// from load shedding: the request was wrong, not unlucky).
    pub fn record_rejected_invalid(&self) {
        self.rejected_invalid.inc();
    }

    /// Record a request rejected by a per-user admission quota (the
    /// session's token bucket ran dry; other sessions unaffected).
    pub fn record_quota_rejected(&self) {
        self.quota_rejected.inc();
    }

    /// Record a worker-side execution.
    pub fn record_executed(&self) {
        self.executed.inc();
    }

    /// Record a caller giving up on its deadline.
    pub fn record_deadline_exceeded(&self) {
        self.deadline_exceeded.inc();
    }

    /// Record a query-level failure.
    pub fn record_failed(&self) {
        self.failed.inc();
    }

    /// Record a worker thread (or a job inside one) panicking.
    pub fn record_worker_panic(&self) {
        self.worker_panics.inc();
    }

    /// Record a lost worker successfully respawned.
    pub fn record_worker_respawned(&self) {
        self.worker_respawned.inc();
    }

    /// Record a failed respawn attempt: the pool keeps serving with
    /// fewer workers (degraded) instead of aborting.
    pub fn record_worker_respawn_failed(&self) {
        self.worker_respawn_failed.inc();
    }

    /// Record a request answered from a stale cache entry while the
    /// circuit breaker deflected execution. (Also counted as a hit.)
    pub fn record_served_stale(&self) {
        self.served_stale.inc();
    }

    /// Record a request deflected by an open circuit breaker.
    pub fn record_breaker_open(&self) {
        self.breaker_open.inc();
    }

    /// Record `n` transient-fault retries performed on a request path.
    pub fn record_retries(&self, n: u64) {
        self.retries.add(n);
    }

    /// Record the rows scanned by one worker-side execution (from its
    /// query profile), so scan volume is visible on the scrape surface
    /// and in flight-recorder metric deltas.
    pub fn record_rows_scanned(&self, n: u64) {
        self.rows_scanned.add(n);
    }

    /// Record the zone-map-pruned segments of one execution (from its
    /// query profile).
    pub fn record_segments_pruned(&self, n: u64) {
        self.segments_pruned.add(n);
    }

    /// Record the morsels one execution's vectorized scan claimed
    /// (from its query profile; 0 for scalar/legacy scans).
    pub fn record_morsels_executed(&self, n: u64) {
        self.morsels_executed.add(n);
    }

    /// Set the live-worker gauge.
    pub fn set_workers_alive(&self, n: i64) {
        self.workers_alive.set(n);
    }

    /// Adjust the live-worker gauge by `delta`.
    pub fn add_workers_alive(&self, delta: i64) {
        self.workers_alive.add(delta);
    }

    /// Record the end-to-end latency of one served request.
    pub fn record_latency(&self, latency: Duration) {
        self.latency
            .record(latency.as_micros().min(u64::MAX as u128) as u64);
    }

    /// The backing registry (for exposition or snapshot diffing).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Every instrument in Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        self.registry.render_prometheus()
    }

    /// A consistent-enough point-in-time copy of every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counts = self.latency.counts();
        MetricsSnapshot {
            hits: self.hits.get(),
            reused_cross_epoch: self.reused_cross_epoch.get(),
            patched_incremental: self.patched_incremental.get(),
            delta_log_aged_out: self.delta_log_aged_out.get(),
            misses: self.misses.get(),
            coalesced: self.coalesced.get(),
            rejected: self.rejected.get(),
            rejected_invalid: self.rejected_invalid.get(),
            quota_rejected: self.quota_rejected.get(),
            executed: self.executed.get(),
            deadline_exceeded: self.deadline_exceeded.get(),
            failed: self.failed.get(),
            worker_panics: self.worker_panics.get(),
            worker_respawned: self.worker_respawned.get(),
            worker_respawn_failed: self.worker_respawn_failed.get(),
            served_stale: self.served_stale.get(),
            breaker_open: self.breaker_open.get(),
            retries: self.retries.get(),
            rows_scanned: self.rows_scanned.get(),
            segments_pruned: self.segments_pruned.get(),
            morsels_executed: self.morsels_executed.get(),
            workers_alive: self.workers_alive.get(),
            latency_us_sum: self.latency.sum(),
            latency_buckets: std::array::from_fn(|i| counts.get(i).copied().unwrap_or(0)),
        }
    }
}

/// A frozen copy of [`ServeMetrics`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Requests answered from the result cache.
    pub hits: u64,
    /// Hits served across an epoch boundary after delta revalidation
    /// (subset of `hits`).
    pub reused_cross_epoch: u64,
    /// Hits served by incrementally patching a retained cube
    /// (subset of `hits`).
    pub patched_incremental: u64,
    /// Revalidations that found the delta log aged out (the cached
    /// epoch predates the oldest retained delta; entry dropped).
    pub delta_log_aged_out: u64,
    /// Requests that found no cached result and led an execution.
    pub misses: u64,
    /// Requests coalesced onto an identical in-flight execution.
    pub coalesced: u64,
    /// Requests rejected by admission control.
    pub rejected: u64,
    /// Requests the semantic analyzer rejected at admission.
    pub rejected_invalid: u64,
    /// Requests rejected by per-user admission quotas.
    pub quota_rejected: u64,
    /// Executions performed by the worker pool.
    pub executed: u64,
    /// Requests whose caller gave up on its deadline.
    pub deadline_exceeded: u64,
    /// Executions that failed at the query layer.
    pub failed: u64,
    /// Worker panics contained by the pool (thread- or job-level).
    pub worker_panics: u64,
    /// Lost workers successfully respawned.
    pub worker_respawned: u64,
    /// Respawn attempts that failed (pool degraded, not aborted).
    pub worker_respawn_failed: u64,
    /// Requests served from stale cache while a breaker was open
    /// (subset of `hits`).
    pub served_stale: u64,
    /// Requests deflected by an open circuit breaker.
    pub breaker_open: u64,
    /// Transient-fault retries performed across request paths.
    pub retries: u64,
    /// Rows scanned by worker-side executions (profile-attributed).
    pub rows_scanned: u64,
    /// Segments skipped by zone-map pruning across executions.
    pub segments_pruned: u64,
    /// Morsels claimed by vectorized scans across executions.
    pub morsels_executed: u64,
    /// Worker threads currently alive.
    pub workers_alive: i64,
    /// Sum of recorded latencies (µs).
    pub latency_us_sum: u64,
    /// Latency histogram counts, aligned with the bucket bounds.
    pub latency_buckets: [u64; 6],
}

impl MetricsSnapshot {
    /// Total requests that received an answer (hit, miss or coalesced).
    pub fn served(&self) -> u64 {
        self.hits + self.misses + self.coalesced
    }

    /// Fraction of answered requests that never executed a query
    /// themselves (cache hits + coalesced waits).
    pub fn amortised_rate(&self) -> f64 {
        let served = self.served();
        if served == 0 {
            0.0
        } else {
            (self.hits + self.coalesced) as f64 / served as f64
        }
    }

    /// Mean recorded latency, if any latencies were recorded.
    pub fn mean_latency(&self) -> Option<Duration> {
        let n: u64 = self.latency_buckets.iter().sum();
        self.latency_us_sum
            .checked_div(n)
            .map(Duration::from_micros)
    }

    /// Estimated latency quantile by linear interpolation within the
    /// histogram buckets (`None` when no latencies were recorded).
    pub fn latency_percentile(&self, q: f64) -> Option<Duration> {
        percentile_from_buckets(&BUCKET_BOUNDS_US, &self.latency_buckets, q)
            .map(Duration::from_micros)
    }

    /// Estimated median latency.
    pub fn p50(&self) -> Option<Duration> {
        self.latency_percentile(0.50)
    }

    /// Estimated 95th-percentile latency.
    pub fn p95(&self) -> Option<Duration> {
        self.latency_percentile(0.95)
    }

    /// Estimated 99th-percentile latency.
    pub fn p99(&self) -> Option<Duration> {
        self.latency_percentile(0.99)
    }

    /// Counter-wise difference against an earlier snapshot of the
    /// same service: what happened *between* the two snapshots.
    ///
    /// This is how the serve bench isolates one measurement block —
    /// snapshot before, run the block, subtract — so percentiles and
    /// rates come from that block's histogram alone instead of
    /// carrying every warm-up and prior thread level along.
    /// `workers_alive` is a gauge, not a counter, and is taken from
    /// `self` unchanged.
    pub fn since(&self, baseline: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            hits: self.hits.saturating_sub(baseline.hits),
            reused_cross_epoch: self
                .reused_cross_epoch
                .saturating_sub(baseline.reused_cross_epoch),
            patched_incremental: self
                .patched_incremental
                .saturating_sub(baseline.patched_incremental),
            delta_log_aged_out: self
                .delta_log_aged_out
                .saturating_sub(baseline.delta_log_aged_out),
            misses: self.misses.saturating_sub(baseline.misses),
            coalesced: self.coalesced.saturating_sub(baseline.coalesced),
            rejected: self.rejected.saturating_sub(baseline.rejected),
            rejected_invalid: self
                .rejected_invalid
                .saturating_sub(baseline.rejected_invalid),
            quota_rejected: self.quota_rejected.saturating_sub(baseline.quota_rejected),
            executed: self.executed.saturating_sub(baseline.executed),
            deadline_exceeded: self
                .deadline_exceeded
                .saturating_sub(baseline.deadline_exceeded),
            failed: self.failed.saturating_sub(baseline.failed),
            worker_panics: self.worker_panics.saturating_sub(baseline.worker_panics),
            worker_respawned: self
                .worker_respawned
                .saturating_sub(baseline.worker_respawned),
            worker_respawn_failed: self
                .worker_respawn_failed
                .saturating_sub(baseline.worker_respawn_failed),
            served_stale: self.served_stale.saturating_sub(baseline.served_stale),
            breaker_open: self.breaker_open.saturating_sub(baseline.breaker_open),
            retries: self.retries.saturating_sub(baseline.retries),
            rows_scanned: self.rows_scanned.saturating_sub(baseline.rows_scanned),
            segments_pruned: self
                .segments_pruned
                .saturating_sub(baseline.segments_pruned),
            morsels_executed: self
                .morsels_executed
                .saturating_sub(baseline.morsels_executed),
            workers_alive: self.workers_alive,
            latency_us_sum: self.latency_us_sum.saturating_sub(baseline.latency_us_sum),
            latency_buckets: std::array::from_fn(|i| {
                self.latency_buckets[i].saturating_sub(baseline.latency_buckets[i])
            }),
        }
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "served {} (hits {} [reused x-epoch {} | patched {}] | misses {} | \
             coalesced {}), rejected {}, rejected-invalid {}, executed {}, \
             deadline-exceeded {}, failed {}",
            self.served(),
            self.hits,
            self.reused_cross_epoch,
            self.patched_incremental,
            self.misses,
            self.coalesced,
            self.rejected,
            self.rejected_invalid,
            self.executed,
            self.deadline_exceeded,
            self.failed,
        )?;
        if self.worker_panics + self.breaker_open + self.served_stale + self.retries > 0
            || self.worker_respawn_failed > 0
        {
            writeln!(
                f,
                "robustness: worker-panics {} (respawned {}, respawn-failed {}), \
                 breaker-open {}, served-stale {}, retries {}, workers-alive {}",
                self.worker_panics,
                self.worker_respawned,
                self.worker_respawn_failed,
                self.breaker_open,
                self.served_stale,
                self.retries,
                self.workers_alive,
            )?;
        }
        if let Some(mean) = self.mean_latency() {
            writeln!(f, "mean latency {mean:?}")?;
        }
        if let (Some(p50), Some(p95), Some(p99)) = (self.p50(), self.p95(), self.p99()) {
            writeln!(
                f,
                "latency estimate p50 {p50:?} | p95 {p95:?} | p99 {p99:?}"
            )?;
        }
        write!(f, "latency histogram:")?;
        let labels = ["<100µs", "<1ms", "<10ms", "<100ms", "<1s", "≥1s"];
        for (label, count) in labels.iter().zip(self.latency_buckets.iter()) {
            write!(f, "  {label}: {count}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_lands_in_the_right_bucket() {
        let m = ServeMetrics::default();
        m.record_latency(Duration::from_micros(50));
        m.record_latency(Duration::from_micros(500));
        m.record_latency(Duration::from_millis(5));
        m.record_latency(Duration::from_secs(2));
        let s = m.snapshot();
        assert_eq!(s.latency_buckets, [1, 1, 1, 0, 0, 1]);
        assert!(s.mean_latency().is_some());
    }

    #[test]
    fn amortised_rate_counts_hits_and_coalesced() {
        let m = ServeMetrics::default();
        m.record_miss();
        m.record_hit();
        m.record_hit();
        m.record_coalesced();
        let s = m.snapshot();
        assert_eq!(s.served(), 4);
        assert!((s.amortised_rate() - 0.75).abs() < 1e-12);
        assert!(s.to_string().contains("hits 2"));
    }

    #[test]
    fn percentiles_come_from_the_histogram() {
        let m = ServeMetrics::default();
        assert_eq!(m.snapshot().p50(), None);
        for _ in 0..99 {
            m.record_latency(Duration::from_micros(500));
        }
        m.record_latency(Duration::from_millis(500));
        let s = m.snapshot();
        let p50 = s.p50().unwrap();
        assert!(p50 < Duration::from_millis(1), "p50 = {p50:?}");
        let p99 = s.p99().unwrap();
        assert!(p99 >= Duration::from_micros(900), "p99 = {p99:?}");
        assert!(s.to_string().contains("latency estimate p50"));
    }

    #[test]
    fn scan_counters_reach_the_scrape_surface() {
        let m = ServeMetrics::default();
        m.record_rows_scanned(2500);
        m.record_segments_pruned(3);
        m.record_delta_log_aged_out();
        let text = m.render_prometheus();
        assert!(text.contains("serve_rows_scanned_total 2500"));
        assert!(text.contains("serve_segments_pruned_total 3"));
        assert!(text.contains("serve_delta_log_aged_out_total 1"));
        let s = m.snapshot();
        assert_eq!((s.rows_scanned, s.segments_pruned), (2500, 3));
    }

    #[test]
    fn since_isolates_one_measurement_block() {
        let m = ServeMetrics::default();
        // Warm-up traffic that must not leak into the block.
        m.record_miss();
        m.record_executed();
        m.record_latency(Duration::from_millis(500));
        let baseline = m.snapshot();

        m.record_hit();
        m.record_hit();
        m.record_morsels_executed(6);
        m.record_latency(Duration::from_micros(50));
        m.record_latency(Duration::from_micros(60));
        let block = m.snapshot().since(&baseline);

        assert_eq!(block.hits, 2);
        assert_eq!(block.misses, 0, "warm-up miss excluded");
        assert_eq!(block.morsels_executed, 6);
        assert_eq!(block.latency_buckets, [2, 0, 0, 0, 0, 0]);
        let p95 = block.p95().unwrap();
        assert!(
            p95 < Duration::from_millis(1),
            "warm-up 500ms excluded: {p95:?}"
        );
    }

    #[test]
    fn prometheus_exposition_covers_the_counters() {
        let m = ServeMetrics::default();
        m.record_hit();
        m.record_executed();
        m.record_latency(Duration::from_micros(50));
        let text = m.render_prometheus();
        assert!(text.contains("serve_cache_hits_total 1"));
        assert!(text.contains("serve_executed_total 1"));
        assert!(text.contains("serve_latency_us_bucket{le=\"100\"} 1"));
        assert!(text.contains("serve_latency_us_count 1"));
    }
}
