//! Service counters and latency histogram.
//!
//! All counters are relaxed atomics — they are observability, not
//! synchronisation; the serving data structures carry their own locks.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Upper bounds (µs) of the latency histogram buckets; the last bucket
/// is unbounded.
const BUCKET_BOUNDS_US: [u64; 6] = [100, 1_000, 10_000, 100_000, 1_000_000, u64::MAX];

/// Live counters maintained by the service.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    rejected: AtomicU64,
    rejected_invalid: AtomicU64,
    executed: AtomicU64,
    deadline_exceeded: AtomicU64,
    failed: AtomicU64,
    latency_us_sum: AtomicU64,
    latency_buckets: [AtomicU64; 6],
}

impl ServeMetrics {
    /// Record a cache hit.
    pub fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a cache miss (the caller became a flight leader).
    pub fn record_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a request coalesced onto an in-flight execution.
    pub fn record_coalesced(&self) {
        self.coalesced.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an admission-control rejection.
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a semantic-analysis rejection at admission (distinct
    /// from load shedding: the request was wrong, not unlucky).
    pub fn record_rejected_invalid(&self) {
        self.rejected_invalid.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a worker-side execution.
    pub fn record_executed(&self) {
        self.executed.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a caller giving up on its deadline.
    pub fn record_deadline_exceeded(&self) {
        self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a query-level failure.
    pub fn record_failed(&self) {
        self.failed.fetch_add(1, Ordering::Relaxed);
    }

    /// Record the end-to-end latency of one served request.
    pub fn record_latency(&self, latency: Duration) {
        let us = latency.as_micros().min(u64::MAX as u128) as u64;
        self.latency_us_sum.fetch_add(us, Ordering::Relaxed);
        let idx = BUCKET_BOUNDS_US
            .iter()
            .position(|&bound| us < bound)
            .unwrap_or(BUCKET_BOUNDS_US.len() - 1);
        self.latency_buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent-enough point-in-time copy of every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            rejected_invalid: self.rejected_invalid.load(Ordering::Relaxed),
            executed: self.executed.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            latency_us_sum: self.latency_us_sum.load(Ordering::Relaxed),
            latency_buckets: std::array::from_fn(|i| {
                self.latency_buckets[i].load(Ordering::Relaxed)
            }),
        }
    }
}

/// A frozen copy of [`ServeMetrics`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Requests answered from the result cache.
    pub hits: u64,
    /// Requests that found no cached result and led an execution.
    pub misses: u64,
    /// Requests coalesced onto an identical in-flight execution.
    pub coalesced: u64,
    /// Requests rejected by admission control.
    pub rejected: u64,
    /// Requests the semantic analyzer rejected at admission.
    pub rejected_invalid: u64,
    /// Executions performed by the worker pool.
    pub executed: u64,
    /// Requests whose caller gave up on its deadline.
    pub deadline_exceeded: u64,
    /// Executions that failed at the query layer.
    pub failed: u64,
    /// Sum of recorded latencies (µs).
    pub latency_us_sum: u64,
    /// Latency histogram counts, aligned with the bucket bounds.
    pub latency_buckets: [u64; 6],
}

impl MetricsSnapshot {
    /// Total requests that received an answer (hit, miss or coalesced).
    pub fn served(&self) -> u64 {
        self.hits + self.misses + self.coalesced
    }

    /// Fraction of answered requests that never executed a query
    /// themselves (cache hits + coalesced waits).
    pub fn amortised_rate(&self) -> f64 {
        let served = self.served();
        if served == 0 {
            0.0
        } else {
            (self.hits + self.coalesced) as f64 / served as f64
        }
    }

    /// Mean recorded latency, if any latencies were recorded.
    pub fn mean_latency(&self) -> Option<Duration> {
        let n: u64 = self.latency_buckets.iter().sum();
        self.latency_us_sum
            .checked_div(n)
            .map(Duration::from_micros)
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "served {} (hits {} | misses {} | coalesced {}), rejected {}, \
             rejected-invalid {}, executed {}, deadline-exceeded {}, failed {}",
            self.served(),
            self.hits,
            self.misses,
            self.coalesced,
            self.rejected,
            self.rejected_invalid,
            self.executed,
            self.deadline_exceeded,
            self.failed,
        )?;
        if let Some(mean) = self.mean_latency() {
            writeln!(f, "mean latency {mean:?}")?;
        }
        write!(f, "latency histogram:")?;
        let labels = ["<100µs", "<1ms", "<10ms", "<100ms", "<1s", "≥1s"];
        for (label, count) in labels.iter().zip(self.latency_buckets.iter()) {
            write!(f, "  {label}: {count}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_lands_in_the_right_bucket() {
        let m = ServeMetrics::default();
        m.record_latency(Duration::from_micros(50));
        m.record_latency(Duration::from_micros(500));
        m.record_latency(Duration::from_millis(5));
        m.record_latency(Duration::from_secs(2));
        let s = m.snapshot();
        assert_eq!(s.latency_buckets, [1, 1, 1, 0, 0, 1]);
        assert!(s.mean_latency().is_some());
    }

    #[test]
    fn amortised_rate_counts_hits_and_coalesced() {
        let m = ServeMetrics::default();
        m.record_miss();
        m.record_hit();
        m.record_hit();
        m.record_coalesced();
        let s = m.snapshot();
        assert_eq!(s.served(), 4);
        assert!((s.amortised_rate() - 0.75).abs() < 1e-12);
        assert!(s.to_string().contains("hits 2"));
    }
}
