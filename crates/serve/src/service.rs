//! The query service: worker pool, admission control, and the
//! cache / single-flight fast paths.
//!
//! Request lifecycle:
//!
//! ```text
//! execute(request)
//!   ├─ fingerprint → cache key; read current data epoch
//!   ├─ semantic analysis fails? → Invalid (nothing queued or cached)
//!   ├─ cache entry, current epoch? ───────────────▶ Served (Cache)
//!   ├─ cache entry, older epoch? revalidate via the delta log:
//!   │    ├─ deltas outside the query's footprint → promote entry
//!   │    │                                       ▶ Served (Cache, reused)
//!   │    ├─ appended rows + retained cube → patch ▶ Served (Cache, patched)
//!   │    └─ otherwise fall through to execute
//!   ├─ identical query in flight? → park on it ───▶ Served (Coalesced)
//!   └─ lead a new flight
//!        ├─ queue full? → Overloaded (nothing ran)
//!        └─ worker executes under a read snapshot,
//!           publishes to cache, wakes all waiters ▶ Served (Executed)
//! ```
//!
//! Mutations (`append`, feedback dimensions) take the write lock and
//! bump the warehouse epoch; in-flight reads finish against the
//! snapshot they started with. Cached results are *not* purged: the
//! warehouse delta log lets the next lookup decide per query whether
//! a stale entry is provably still valid (`reused_cross_epoch`),
//! incrementally patchable (`patched_incremental`) or dead.

use crate::breaker::{Admission, BreakerState, CircuitBreaker};
use crate::cache::{CacheKey, ResultCache};
use crate::error::{ServeError, ServeResult};
use crate::flight::{Flight, FlightRole, FlightTable};
use crate::metrics::{MetricsSnapshot, ServeMetrics};
use crate::quota::{AdmissionQuotas, QuotaConfig};
use crate::request::{CubeResult, OutcomePayload, QueryOutcome, QueryRequest, ReportSpec};
use crate::retry::RetryPolicy;
use analyze::Catalog;
use clinical_types::{Table, Value};
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use obs::{
    LockRank, Phase, ProfileBuilder, RankedMutex, RankedRwLock, SloEngine, SloSpec, SloStatus,
    SpanContext, Watchdog, WatchdogConfig,
};
use olap::{Cube, CubeSpec};
use oplog::Oplog;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};
use warehouse::{ChangeSet, CompactionConfig, DeltaSummary, Warehouse, WarehouseChange};

/// Tuning knobs for [`QueryService`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing queries.
    pub workers: usize,
    /// Bounded depth of the admission queue; a full queue rejects with
    /// [`ServeError::Overloaded`] instead of blocking callers.
    pub queue_depth: usize,
    /// Total results held by the cache.
    pub cache_capacity: usize,
    /// Cache shard count (lock-contention bound).
    pub cache_shards: usize,
    /// Deadline applied by [`QueryService::execute`].
    pub default_deadline: Duration,
    /// Artificial per-execution delay, applied by workers before
    /// running the query. A deterministic aid for tests and benches
    /// that need executions to overlap; `None` in production.
    pub execution_delay: Option<Duration>,
    /// Consecutive execution failures that trip the circuit breaker
    /// into degraded mode.
    pub breaker_threshold: u32,
    /// How long the breaker stays open before letting a half-open
    /// probe through.
    pub breaker_cooldown: Duration,
    /// Retry schedule for transient faults on the revalidation and
    /// warehouse-read paths.
    pub retry: RetryPolicy,
    /// Run the stall watchdog sampling thread alongside the pool. It
    /// folds worker span paths into a flamegraph-style profile
    /// (surfaced by [`QueryService::metrics_text`]) and fires a flight
    /// recorder dump when a worker exceeds its stall budget.
    pub watchdog: bool,
    /// Sampling cadence of the watchdog thread.
    pub watchdog_interval: Duration,
    /// Per-worker stall budget: a worker with a query in flight whose
    /// heartbeat is older than this is declared stalled (one `obs.stall`
    /// event + one `watchdog.stall` black-box dump per episode). Zero
    /// disables stall detection.
    pub worker_stall_budget: Duration,
    /// Service-level objectives evaluated from the serve metrics
    /// registry on every [`QueryService::metrics_text`] /
    /// [`QueryService::slo_status`] call (scrape-driven, like
    /// Prometheus recording rules).
    pub slos: Vec<SloSpec>,
    /// Per-user admission quota enforced by
    /// [`QueryService::execute_for`] ahead of the bounded queue;
    /// `None` disables per-session limiting (the aggregate queue bound
    /// still applies).
    pub quota: Option<QuotaConfig>,
    /// Failure-domain label for this service instance, attributed on
    /// breaker-trip events and flight-recorder dumps. The write head
    /// is conventionally `"primary"`; the replica router labels each
    /// follower `"replica-N"`.
    pub domain: String,
}

/// The stock objectives: 99% of requests under 100 ms, and a 99.9%
/// execution success rate. Both use the default 5 m / 1 h burn-rate
/// windows.
pub fn default_slos() -> Vec<SloSpec> {
    vec![
        SloSpec::latency("serve_latency", "serve_latency_us", 100_000, 0.99),
        SloSpec::error_rate(
            "serve_errors",
            &["serve_failed_total"],
            &["serve_executed_total", "serve_failed_total"],
            0.999,
        ),
    ]
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue_depth: 64,
            cache_capacity: 256,
            cache_shards: 8,
            default_deadline: Duration::from_secs(5),
            execution_delay: None,
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_millis(250),
            retry: RetryPolicy::default(),
            watchdog: true,
            watchdog_interval: Duration::from_millis(25),
            worker_stall_budget: Duration::from_secs(10),
            slos: default_slos(),
            quota: None,
            domain: "primary".to_string(),
        }
    }
}

/// How a cache lookup was satisfied.
enum CacheHit {
    /// The entry was produced at the current epoch.
    Fresh,
    /// The entry predates the current epoch but the delta chain never
    /// intersects the query's footprint — served as-is and promoted.
    Reused,
    /// The entry's retained cube absorbed the delta chain's appended
    /// rows; the patched result was published at the current epoch.
    Patched,
}

/// How a [`Served`] answer was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedSource {
    /// This request led the execution on a worker.
    Executed,
    /// Answered straight from the result cache.
    Cache,
    /// Coalesced onto another caller's identical in-flight execution.
    Coalesced,
}

/// A successfully served request.
#[derive(Debug, Clone)]
pub struct Served {
    /// The query result (shared — cache hits alias the same allocation).
    pub value: Arc<QueryOutcome>,
    /// The data epoch the request was admitted under.
    pub epoch: u64,
    /// How the answer was produced.
    pub source: ServedSource,
    /// End-to-end latency observed by this caller.
    pub latency: Duration,
}

struct Job {
    request: QueryRequest,
    key: CacheKey,
    flight: Arc<Flight>,
    /// The admitting request's span, so the worker's execution span
    /// joins the caller's trace across the thread boundary.
    ctx: Option<SpanContext>,
    /// Caller-side phases (parse / analyze / cache lookup) already
    /// recorded; the worker adds queue + execution phases and attaches
    /// the finished profile to the outcome.
    profile: ProfileBuilder,
    /// Monotonic enqueue timestamp (µs) for the queue-wait phase.
    queued_us: u64,
}

struct Shared {
    warehouse: RankedRwLock<Warehouse>,
    /// Semantic catalog for the admission gate, keyed by the epoch it
    /// was built at. Mutations (appends, feedback dimensions) bump the
    /// epoch, so the first admission under a new epoch rebuilds it.
    /// Ranked *after* the warehouse: `catalog_for` runs under the
    /// warehouse read lock.
    catalog: RankedRwLock<(u64, Arc<Catalog>)>,
    cache: ResultCache,
    flights: FlightTable,
    metrics: ServeMetrics,
    accepting: AtomicBool,
    execution_delay: Option<Duration>,
    /// The job queue's consume side, held here so a dying worker's
    /// replacement can subscribe to the same queue.
    receiver: Receiver<Job>,
    /// Execution-failure breaker; open = degraded mode.
    breaker: CircuitBreaker,
    /// Transient-fault retry schedule for request paths.
    retry: RetryPolicy,
    /// Join handles of every live worker, including respawns. Workers
    /// register their replacements here; `drain` joins until empty.
    worker_handles: RankedMutex<Vec<JoinHandle<()>>>,
    /// Live worker count (kept alongside the metrics gauge so tests
    /// can spin-wait on pool recovery without a snapshot).
    workers_alive: AtomicUsize,
    /// Monotonic worker-name counter across spawns and respawns.
    worker_seq: AtomicUsize,
    /// Burn-rate engine over this service's metrics registry.
    slo: SloEngine,
    /// Stall budget handed to each worker's watchdog registration.
    stall_budget: Duration,
    /// Per-session token buckets, when the config asked for them.
    /// Checked by `execute_for` before any other shared state.
    quotas: Option<AdmissionQuotas>,
    /// Failure-domain label attributed on breaker-trip telemetry.
    domain: String,
    /// Durable change feed this service publishes mutations to, when
    /// it is the write head of a replica set.
    oplog: Option<Arc<Oplog>>,
}

impl Shared {
    /// The catalog for `epoch`, rebuilding from `wh` on epoch change.
    fn catalog_for(&self, epoch: u64, wh: &Warehouse) -> Arc<Catalog> {
        {
            let cached = self.catalog.read();
            if cached.0 == epoch {
                return Arc::clone(&cached.1);
            }
        }
        let fresh = Arc::new(Catalog::from_warehouse(wh));
        *self.catalog.write() = (epoch, Arc::clone(&fresh));
        fresh
    }
}

/// A concurrent query front-end over one warehouse.
///
/// Multi-user serving is intrinsic to the paper's setting — DiScRi's
/// warehouse is queried by clinicians, researchers and students at
/// once (§IV) — and this type provides the serving discipline: a
/// bounded worker pool, an epoch-keyed result cache, single-flight
/// deduplication and typed overload rejection.
pub struct QueryService {
    shared: Arc<Shared>,
    sender: Option<Sender<Job>>,
    queue_depth: usize,
    default_deadline: Duration,
    /// The sampling thread, when `ServeConfig::watchdog` asked for
    /// one; joined on drain so shutdown leaves no thread behind.
    watchdog: Option<Watchdog>,
}

impl QueryService {
    /// Start a service over `warehouse` with `config`.
    ///
    /// Fails with [`ServeError::Internal`] when a worker thread cannot
    /// be spawned (OS resource exhaustion); any workers already started
    /// are joined before returning, so a failed construction leaks
    /// nothing.
    pub fn new(warehouse: Warehouse, config: ServeConfig) -> ServeResult<QueryService> {
        Self::build(warehouse, config, None)
    }

    /// Start a service that additionally publishes every mutation to
    /// `log` as a replicated change feed — the write head of a replica
    /// set. Followers tail the log (see `oplog::Replica` and the
    /// replica router) and re-derive the same warehouse state at the
    /// same epochs. Failure behaviour is that of [`Self::new`].
    pub fn new_with_oplog(
        warehouse: Warehouse,
        config: ServeConfig,
        log: Arc<Oplog>,
    ) -> ServeResult<QueryService> {
        Self::build(warehouse, config, Some(log))
    }

    fn build(
        warehouse: Warehouse,
        config: ServeConfig,
        oplog: Option<Arc<Oplog>>,
    ) -> ServeResult<QueryService> {
        let catalog = (
            warehouse.epoch(),
            Arc::new(Catalog::from_warehouse(&warehouse)),
        );
        let (sender, receiver) = bounded::<Job>(config.queue_depth.max(1));
        let shared = Arc::new(Shared {
            warehouse: RankedRwLock::new(LockRank::Warehouse, "serve.warehouse", warehouse),
            catalog: RankedRwLock::new(LockRank::Catalog, "serve.catalog", catalog),
            cache: ResultCache::new(config.cache_capacity, config.cache_shards),
            flights: FlightTable::default(),
            metrics: ServeMetrics::default(),
            accepting: AtomicBool::new(true),
            execution_delay: config.execution_delay,
            receiver,
            breaker: CircuitBreaker::new(config.breaker_threshold, config.breaker_cooldown),
            retry: config.retry,
            worker_handles: RankedMutex::new(LockRank::Pool, "serve.worker_handles", Vec::new()),
            workers_alive: AtomicUsize::new(0),
            worker_seq: AtomicUsize::new(0),
            slo: SloEngine::new(config.slos.clone()),
            stall_budget: config.worker_stall_budget,
            quotas: config.quota.clone().map(AdmissionQuotas::new),
            domain: config.domain.clone(),
            oplog,
        });
        // Feed this service's counters into the global flight recorder
        // (if one is installed): the watchdog polls the source and the
        // ring accumulates metric deltas alongside spans and events.
        // The Weak keeps the recorder from pinning a shut-down service;
        // a dead source is pruned on the next poll.
        if let Some(recorder) = obs::recorder() {
            let weak = Arc::downgrade(&shared);
            recorder.attach_metrics(
                "serve",
                Box::new(move || weak.upgrade().map(|s| s.metrics.registry().snapshot())),
            );
        }
        for _ in 0..config.workers.max(1) {
            match spawn_worker(&shared) {
                Ok(handle) => shared.worker_handles.lock().push(handle),
                Err(e) => {
                    // Unwind cleanly: no accepting flag, no sender, no
                    // threads left behind.
                    shared.accepting.store(false, Ordering::Release);
                    drop(sender);
                    join_workers(&shared);
                    return Err(ServeError::Internal {
                        detail: format!("failed to spawn worker thread: {e}"),
                        trace: None,
                    });
                }
            }
        }
        // The watchdog is observability, not serving: a failed spawn
        // degrades to no stall detection instead of failing the pool.
        let watchdog = if config.watchdog {
            Watchdog::start(WatchdogConfig {
                interval: config.watchdog_interval,
                ..WatchdogConfig::default()
            })
            .map_err(|e| {
                obs::event_with(
                    "serve.watchdog_spawn_failed",
                    &[("error", &e.to_string().as_str())],
                );
            })
            .ok()
        } else {
            None
        };
        Ok(QueryService {
            shared,
            sender: Some(sender),
            queue_depth: config.queue_depth.max(1),
            default_deadline: config.default_deadline,
            watchdog,
        })
    }

    /// Serve `request` under the configured default deadline.
    ///
    /// ```
    /// use serve::{QueryRequest, QueryService, ReportSpec, ServeConfig, ServedSource};
    /// use warehouse::{DimensionDef, FactDef, LoadPlan, StarSchema, Warehouse};
    /// use clinical_types::{DataType, FieldDef, Record, Schema, Table};
    ///
    /// let star = StarSchema::new(
    ///     FactDef::new("Facts", vec!["FBG"], vec![]),
    ///     vec![DimensionDef::new("Bloods", vec!["FBG_Band"])],
    /// )?;
    /// let schema = Schema::new(vec![
    ///     FieldDef::nullable("FBG", DataType::Float),
    ///     FieldDef::nullable("FBG_Band", DataType::Text),
    /// ])?;
    /// let rows = vec![Record::new(vec![5.0.into(), "very good".into()])];
    /// let wh = Warehouse::load(&LoadPlan::from_star(star), &Table::from_rows(schema, rows)?)?;
    ///
    /// let service = QueryService::new(wh, ServeConfig::default()).expect("workers spawn");
    /// let request = QueryRequest::Report(ReportSpec::new().on_rows("FBG_Band").count());
    /// let served = service.execute(&request).unwrap();
    /// assert_eq!(served.source, ServedSource::Executed);
    /// // The same request again is a cache hit sharing the allocation.
    /// assert_eq!(service.execute(&request).unwrap().source, ServedSource::Cache);
    /// # Ok::<(), clinical_types::Error>(())
    /// ```
    pub fn execute(&self, request: &QueryRequest) -> ServeResult<Served> {
        self.execute_with_deadline(request, self.default_deadline)
    }

    /// Serve `request` on behalf of `session`, spending one token from
    /// the session's admission quota first. An empty bucket rejects
    /// with [`ServeError::QuotaExceeded`] before the request touches
    /// the cache, the single-flight table or the queue — one chatty
    /// session cannot convert its excess into [`ServeError::Overloaded`]
    /// for everyone else. Without a configured quota this is exactly
    /// [`Self::execute`].
    pub fn execute_for(&self, session: &str, request: &QueryRequest) -> ServeResult<Served> {
        if let Some(quotas) = &self.shared.quotas {
            if !quotas.try_admit(session) {
                self.shared.metrics.record_quota_rejected();
                obs::event_with("serve.quota_rejected", &[("session", &session)]);
                return Err(ServeError::QuotaExceeded {
                    session: session.to_string(),
                    trace: None,
                });
            }
        }
        self.execute(request)
    }

    /// Serve `request`, giving up (with
    /// [`ServeError::DeadlineExceeded`]) once `deadline` elapses. An
    /// abandoned execution still completes on its worker and populates
    /// the cache for later callers.
    pub fn execute_with_deadline(
        &self,
        request: &QueryRequest,
        deadline: Duration,
    ) -> ServeResult<Served> {
        let start = Instant::now(); // lint:allow(no-raw-timing, "deadline arithmetic needs a local monotonic clock, not a traced span")
        let mut span = obs::span("serve.request");
        let trace = span.context().map(|c| c.trace);
        let mut profile = ProfileBuilder::start();
        if !self.shared.accepting.load(Ordering::Acquire) {
            return Err(ServeError::ShuttingDown);
        }
        let fingerprint = profile
            .time(Phase::Parse, || request.fingerprint())
            .map_err(|e| {
                self.shared.metrics.record_failed();
                ServeError::Query(e)
            })?;
        let (epoch, catalog) = {
            let wh = self.shared.warehouse.read();
            let epoch = wh.epoch();
            (epoch, self.shared.catalog_for(epoch, &wh))
        };
        span.record("epoch", epoch);

        // Semantic admission gate: an invalid request never reaches
        // the cache, the single-flight table or the worker queue.
        let diags = profile.time(Phase::Analyze, || request.analyze(&catalog));
        if diags.has_errors() {
            self.shared.metrics.record_rejected_invalid();
            span.record("outcome", "rejected_invalid");
            obs::event("serve.rejected_invalid");
            return Err(ServeError::Invalid {
                diagnostics: diags,
                trace,
            });
        }

        if let Some((value, hit, valid_epoch)) = profile.time(Phase::CacheLookup, || {
            self.lookup_or_revalidate(&fingerprint, request)
        }) {
            self.shared.metrics.record_hit();
            match hit {
                CacheHit::Fresh => {}
                CacheHit::Reused => self.shared.metrics.record_reused_cross_epoch(),
                CacheHit::Patched => self.shared.metrics.record_patched_incremental(),
            }
            let latency = start.elapsed();
            self.shared.metrics.record_latency(latency);
            span.record("source", "cache");
            obs::event_with("serve.cache_hit", &[("epoch", &valid_epoch)]);
            return Ok(Served {
                value,
                epoch: valid_epoch,
                source: ServedSource::Cache,
                latency,
            });
        }

        // Circuit breaker: an open breaker deflects execution and
        // serves whatever the cache still holds, explicitly marked
        // degraded. Fresh cache hits above never reach this point —
        // degraded mode only gates work that would hit the failing
        // execution path.
        match self.shared.breaker.admit() {
            Admission::Allow => {}
            Admission::Probe => {
                span.record("breaker", "probe");
                obs::event("serve.breaker_probe");
            }
            Admission::Deflect => {
                self.shared.metrics.record_breaker_open();
                if let Some(entry) = self.shared.cache.get(&fingerprint) {
                    let mut degrade_span = obs::span("serve.degrade");
                    degrade_span.record("epoch", entry.epoch);
                    let mut outcome = (*entry.value).clone();
                    outcome.degraded = true;
                    let value = Arc::new(outcome);
                    self.shared.metrics.record_hit();
                    self.shared.metrics.record_served_stale();
                    let latency = start.elapsed();
                    self.shared.metrics.record_latency(latency);
                    span.record("source", "degraded");
                    obs::event_with("serve.served_stale", &[("epoch", &entry.epoch)]);
                    return Ok(Served {
                        value,
                        epoch: entry.epoch,
                        source: ServedSource::Cache,
                        latency,
                    });
                }
                span.record("outcome", "breaker_deflected");
                obs::event("serve.breaker_deflected");
                return Err(ServeError::Internal {
                    detail: "circuit breaker open; no cached result to degrade to".into(),
                    trace,
                });
            }
        }

        let key: CacheKey = (fingerprint, epoch);

        let (flight, source) = match self.shared.flights.join(&key, span.context()) {
            FlightRole::Follower(flight) => {
                self.shared.metrics.record_coalesced();
                span.record("source", "coalesced");
                // Link this request's trace to the leader's execution.
                if let Some(leader) = flight.leader_context() {
                    span.record("link_trace", leader.trace.0);
                    span.record("link_span", leader.span.0);
                }
                obs::event("serve.coalesced");
                (flight, ServedSource::Coalesced)
            }
            FlightRole::Leader(flight) => {
                self.shared.metrics.record_miss();
                span.record("source", "executed");
                let job = Job {
                    request: request.clone(),
                    key: key.clone(),
                    flight: Arc::clone(&flight),
                    ctx: span.context(),
                    profile,
                    queued_us: obs::monotonic_us(),
                };
                let sender = self.sender.as_ref().ok_or(ServeError::ShuttingDown)?;
                // A faulted hand-off behaves exactly like a full
                // queue: typed rejection, nothing executed.
                let sent = match fault::point("serve.enqueue") {
                    Ok(()) => sender.try_send(job),
                    Err(_) => Err(TrySendError::Full(job)),
                };
                if let Err(e) = sent {
                    let error = match e {
                        TrySendError::Full(_) => {
                            self.shared.metrics.record_rejected();
                            obs::event("serve.rejected_overload");
                            ServeError::Overloaded {
                                queue_depth: self.queue_depth,
                                trace,
                            }
                        }
                        TrySendError::Disconnected(_) => ServeError::ShuttingDown,
                    };
                    // Wake anyone who joined between insert and now,
                    // then retire so the next caller starts fresh.
                    flight.complete(Err(error.clone()));
                    self.shared.flights.retire(&key);
                    return Err(error);
                }
                (flight, ServedSource::Executed)
            }
        };

        let remaining = deadline.saturating_sub(start.elapsed());
        let value = flight.wait(remaining).map_err(|e| {
            if matches!(e, ServeError::DeadlineExceeded { .. }) {
                self.shared.metrics.record_deadline_exceeded();
                // A blown deadline is an incident: promote the trace
                // past the recorder's head sampling and capture what
                // every worker was doing when this caller gave up.
                obs::promote_trace();
                obs::trigger_dump("serve.deadline_exceeded", trace);
                // Report the caller's full deadline, not the residue
                // the flight waited on.
                ServeError::DeadlineExceeded { deadline, trace }
            } else {
                e
            }
        })?;
        let latency = start.elapsed();
        self.shared.metrics.record_latency(latency);
        Ok(Served {
            value,
            epoch,
            source,
            latency,
        })
    }

    /// Look up `fingerprint`, revalidating a stale entry against the
    /// warehouse delta log. Returns the value, how the hit was
    /// produced, and the epoch the value is valid at; `None` means the
    /// caller must execute (any unrecoverable entry has been removed).
    ///
    /// Runs under the warehouse read lock so the delta chain and the
    /// patched rows come from one consistent snapshot. Lock order is
    /// warehouse → cache shard, the same as every other path.
    fn lookup_or_revalidate(
        &self,
        fingerprint: &str,
        request: &QueryRequest,
    ) -> Option<(Arc<QueryOutcome>, CacheHit, u64)> {
        let entry = self.shared.cache.get(fingerprint)?;
        // Transient revalidation faults are retried with backoff;
        // exhausted retries fall back to execution, leaving the entry
        // cached so an open breaker can still serve it stale.
        let (revalidate, retries) = self.shared.retry.run(|| fault::point("serve.revalidate"));
        if retries > 0 {
            self.shared.metrics.record_retries(u64::from(retries));
        }
        if revalidate.is_err() {
            obs::event("serve.revalidate_failed");
            return None;
        }
        let wh = self.shared.warehouse.read();
        let current = wh.epoch();
        if entry.epoch >= current {
            return Some((entry.value, CacheHit::Fresh, current));
        }
        let mut span = obs::span("cache.revalidate");
        span.record("from_epoch", entry.epoch);
        span.record("to_epoch", current);
        let deltas = match wh.deltas_since(entry.epoch) {
            Some(d) => d,
            None => {
                // Foreign or aged-out epoch: nothing provable, drop it.
                span.record("outcome", "unknown_epoch");
                self.shared.metrics.record_delta_log_aged_out();
                obs::event_with(
                    "serve.delta_log_aged_out",
                    &[("from_epoch", &entry.epoch), ("to_epoch", &current)],
                );
                self.shared.cache.remove(fingerprint);
                return None;
            }
        };
        let change = ChangeSet::fold(&deltas);
        if change.rewrote_existing {
            span.record("outcome", "rewritten");
            self.shared.cache.remove(fingerprint);
            return None;
        }
        let catalog = self.shared.catalog_for(current, &wh);
        let footprint = request.footprint(&catalog);
        if footprint.touches_any(&change.structural_dimensions) {
            // The stale entry stays: the re-execution below publishes
            // over it at the current epoch.
            span.record("outcome", "footprint_touched");
            return None;
        }
        if change.appended.is_empty() {
            // Every intervening mutation is outside the query's
            // footprint: the stale bytes are the current answer.
            self.shared.cache.promote(fingerprint, current);
            span.record("outcome", "reused");
            obs::event_with(
                "serve.cache_reused_cross_epoch",
                &[("from_epoch", &entry.epoch), ("to_epoch", &current)],
            );
            return Some((entry.value, CacheHit::Reused, current));
        }
        if let (QueryRequest::Cube(spec), Some(cube)) = (request, entry.cube.as_ref()) {
            if let Some((outcome, patched)) = patch_cube(&wh, spec, cube, &deltas) {
                let value = Arc::new(outcome);
                self.shared.cache.insert(
                    fingerprint.to_string(),
                    current,
                    Arc::clone(&value),
                    Some(Arc::new(patched)),
                );
                span.record("outcome", "patched");
                obs::event_with(
                    "serve.cache_patched_incremental",
                    &[("from_epoch", &entry.epoch), ("to_epoch", &current)],
                );
                return Some((value, CacheHit::Patched, current));
            }
        }
        span.record("outcome", "rebuild");
        None
    }

    /// Serve an MDX statement.
    pub fn mdx(&self, text: &str) -> ServeResult<Served> {
        self.execute(&QueryRequest::Mdx(text.to_string()))
    }

    /// Serve a cube materialisation.
    pub fn cube(&self, spec: CubeSpec) -> ServeResult<Served> {
        self.execute(&QueryRequest::Cube(spec))
    }

    /// Serve a declarative report.
    pub fn report(&self, spec: ReportSpec) -> ServeResult<Served> {
        self.execute(&QueryRequest::Report(spec))
    }

    /// Append transformed attendance rows, advancing the data epoch.
    /// Cached results are left in place: the delta log lets later
    /// lookups patch or reuse them instead of re-executing.
    pub fn append(&self, table: &Table) -> ServeResult<usize> {
        let mut wh = self.shared.warehouse.write();
        let appended = wh.append(table)?;
        publish_change(
            &self.shared,
            &WarehouseChange::Append(table.clone()),
            wh.epoch(),
        );
        Ok(appended)
    }

    /// Add a clinician-feedback dimension (§IV), advancing the data
    /// epoch. Cached results are left in place: queries that never
    /// read the new dimension revalidate against the delta log and
    /// keep hitting.
    pub fn add_feedback_dimension(
        &self,
        dimension: &str,
        attribute: &str,
        labels: Vec<Value>,
    ) -> ServeResult<()> {
        let mut wh = self.shared.warehouse.write();
        wh.add_feedback_dimension(dimension, attribute, labels.clone())?;
        publish_change(
            &self.shared,
            &WarehouseChange::Feedback {
                dimension: dimension.to_string(),
                attribute: attribute.to_string(),
                labels,
            },
            wh.epoch(),
        );
        Ok(())
    }

    /// Conservatively invalidate every cached result and advance the
    /// epoch — the escape hatch for out-of-band mutations the delta
    /// log cannot describe more precisely.
    pub fn invalidate_all(&self) {
        let mut wh = self.shared.warehouse.write();
        wh.bump_epoch();
        let epoch = wh.epoch();
        publish_change(&self.shared, &WarehouseChange::Rewrite, epoch);
        drop(wh);
        self.shared.cache.purge_older_than(epoch);
    }

    /// Fold rows appended since the last compaction into fresh sealed
    /// segments using the default [`CompactionConfig`].
    ///
    /// See [`Service::compact_now_with`] for the locking contract.
    pub fn compact_now(&self) -> ServeResult<bool> {
        self.compact_now_with(&CompactionConfig::default())
    }

    /// Fold rows appended since the last compaction into fresh sealed
    /// segments, then vacuum replaced ones from the backend.
    ///
    /// The expensive build runs under the warehouse **read** lock, so
    /// concurrent queries keep executing against the previous segment
    /// view while segments are encoded and written. Only the install —
    /// an in-memory pointer swap — takes the write lock, which is the
    /// same lock queries execute under: a query sees either the old
    /// segment set or the new one, never a mixture. Returns `false`
    /// when there was nothing to compact, or when the warehouse moved
    /// between plan and install (the stale plan is discarded and its
    /// orphaned segments vacuumed; callers may simply retry).
    pub fn compact_now_with(&self, config: &CompactionConfig) -> ServeResult<bool> {
        // Compaction registers as a bounded watchdog task: its span
        // path shows up in the folded profile and a wedged build (or
        // an install stuck behind the write lock) trips the stall
        // detector like any worker.
        let _watchdog_scope = obs::task_scope("warehouse.compact", Duration::from_secs(60));
        let mut span = obs::span("warehouse.compact");
        let plan = {
            let wh = self.shared.warehouse.read();
            wh.plan_compaction(config)?
        };
        let Some(plan) = plan else {
            span.record("outcome", "nothing_to_compact");
            return Ok(false);
        };
        let mut wh = self.shared.warehouse.write();
        let installed = wh.install_compaction(plan)?;
        wh.vacuum_segments()?;
        if installed {
            // A compaction preserves logical content, so followers may
            // replay it as a bare epoch bump (`Rewrite`) over their own
            // row store — same rows, same epoch, same answers.
            publish_change(&self.shared, &WarehouseChange::Rewrite, wh.epoch());
        }
        span.record(
            "outcome",
            if installed { "installed" } else { "stale_plan" },
        );
        Ok(installed)
    }

    /// Apply a replicated change tailed from the oplog, advancing this
    /// follower's epoch to exactly `to_epoch`. The follower-side half
    /// of replication: the router's pump applies records in log order,
    /// and the warehouse rejects stale or out-of-order epochs, so a
    /// replica can never expose an epoch it has not fully applied.
    pub fn apply_change(&self, change: &WarehouseChange, to_epoch: u64) -> ServeResult<()> {
        let mut wh = self.shared.warehouse.write();
        wh.apply_change(change, to_epoch)?;
        Ok(())
    }

    /// Replace this follower's warehouse with `snapshot` (a clone of
    /// the primary) after falling behind the oplog truncation horizon.
    /// Cached results older than the snapshot's epoch are purged:
    /// nothing provable connects them to the re-seeded state.
    pub fn reseed(&self, snapshot: Warehouse) {
        let epoch = snapshot.epoch();
        {
            let mut wh = self.shared.warehouse.write();
            *wh = snapshot;
        }
        self.shared.cache.purge_older_than(epoch);
        obs::event_with("serve.reseeded", &[("epoch", &epoch)]);
    }

    /// Jobs currently waiting in the admission queue — the router's
    /// load signal for power-of-two-choices replica placement.
    pub fn queue_len(&self) -> usize {
        self.shared.receiver.len()
    }

    /// Run `f` against the live warehouse under the read lock.
    pub fn with_warehouse<R>(&self, f: impl FnOnce(&Warehouse) -> R) -> R {
        f(&self.shared.warehouse.read())
    }

    /// The current data epoch.
    pub fn epoch(&self) -> u64 {
        self.shared.warehouse.read().epoch()
    }

    /// A point-in-time copy of the service counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Every service instrument in Prometheus text exposition format,
    /// followed by the watchdog's folded span-path profile (when one
    /// is running) and the SLO burn-rate gauges and alert lines. Each
    /// call feeds a fresh registry snapshot to the SLO engine, so
    /// scraping this endpoint *is* the SLO evaluation cadence.
    pub fn metrics_text(&self) -> String {
        let mut out = self.shared.metrics.render_prometheus();
        if let Some(watchdog) = &self.watchdog {
            out.push_str(&watchdog.metrics_text());
        }
        out.push_str(&obs::render_status(&self.evaluate_slos()));
        out
    }

    /// Evaluate the configured SLOs against the current counters and
    /// return per-objective burn-rate status. A newly-firing objective
    /// emits one `slo.burn_alert` event and a flight-recorder dump.
    pub fn slo_status(&self) -> Vec<SloStatus> {
        self.evaluate_slos()
    }

    fn evaluate_slos(&self) -> Vec<SloStatus> {
        self.shared.slo.observe_and_evaluate(
            obs::monotonic_us(),
            self.shared.metrics.registry().snapshot(),
        )
    }

    /// Force a flight-recorder dump (operator escape hatch: "grab the
    /// black box now"). `None` when no global recorder is installed.
    pub fn flight_dump(&self, reason: &str) -> Option<obs::BlackBox> {
        obs::trigger_dump(reason, None)
    }

    /// Number of cached results.
    pub fn cache_len(&self) -> usize {
        self.shared.cache.len()
    }

    /// Worker threads currently alive. The pool respawns lost workers,
    /// so after a contained panic this returns to the configured size.
    pub fn workers_alive(&self) -> usize {
        self.shared.workers_alive.load(Ordering::Acquire)
    }

    /// The circuit breaker's current state.
    pub fn breaker_state(&self) -> BreakerState {
        self.shared.breaker.state()
    }

    /// Drop every cached result (benchmarking aid — cold-path timing).
    pub fn clear_cache(&self) {
        self.shared.cache.clear();
    }

    /// Stop accepting work, drain the queue, join the workers and
    /// return the final counters.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.drain();
        self.shared.metrics.snapshot()
    }

    fn drain(&mut self) {
        self.shared.accepting.store(false, Ordering::Release);
        // Dropping the sender disconnects the channel; workers finish
        // the queued jobs, then exit on the disconnect.
        self.sender = None;
        join_workers(&self.shared);
        // Stop the sampler last so worker wind-down is still observed.
        if let Some(watchdog) = self.watchdog.take() {
            watchdog.shutdown();
        }
    }
}

/// Join every registered worker, including replacements registered
/// while joining (a dying worker pushes its replacement's handle
/// before exiting, so the loop always converges).
fn join_workers(shared: &Arc<Shared>) {
    loop {
        let handle = shared.worker_handles.lock().pop();
        match handle {
            Some(handle) => {
                let _ = handle.join();
            }
            None => break,
        }
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        self.drain();
    }
}

/// Spawn one pool worker (fallibly — the `serve.spawn` failpoint
/// stands in for OS thread exhaustion in tests).
fn spawn_worker(shared: &Arc<Shared>) -> std::io::Result<JoinHandle<()>> {
    fault::point("serve.spawn").map_err(|e| std::io::Error::other(e.to_string()))?;
    let index = shared.worker_seq.fetch_add(1, Ordering::Relaxed);
    let shared = Arc::clone(shared);
    thread::Builder::new()
        .name(format!("serve-worker-{index}"))
        .spawn(move || run_worker(&shared))
}

/// Worker thread body: run the job loop, contain any panic that
/// escapes it, and self-heal by spawning a replacement. The pool
/// only shrinks when a respawn itself fails — and even then the
/// service degrades instead of aborting.
fn run_worker(shared: &Arc<Shared>) {
    shared.workers_alive.fetch_add(1, Ordering::AcqRel);
    shared.metrics.add_workers_alive(1);
    // Publish this worker into the watchdog's active-task table for
    // the thread's lifetime: span opens/closes and ranked-lock traffic
    // update the slot passively from here on.
    let worker_name = thread::current()
        .name()
        .map(str::to_string)
        .unwrap_or_else(|| "serve-worker".to_string());
    let _watchdog_slot = obs::register_worker(&worker_name, shared.stall_budget);
    let outcome = catch_unwind(AssertUnwindSafe(|| worker_loop(shared)));
    if outcome.is_err() {
        shared.metrics.record_worker_panic();
        obs::event("serve.worker_panicked");
        // A thread-level panic (not job containment) is an incident:
        // snapshot the ring before the respawn muddies the water.
        obs::trigger_dump("serve.worker_panic", None);
        if shared.accepting.load(Ordering::Acquire) {
            match spawn_worker(shared) {
                Ok(handle) => {
                    shared.metrics.record_worker_respawned();
                    obs::event("serve.worker_respawned");
                    shared.worker_handles.lock().push(handle);
                }
                Err(e) => {
                    shared.metrics.record_worker_respawn_failed();
                    obs::event_with(
                        "serve.worker_respawn_failed",
                        &[("error", &e.to_string().as_str())],
                    );
                }
            }
        }
    }
    shared.workers_alive.fetch_sub(1, Ordering::AcqRel);
    shared.metrics.add_workers_alive(-1);
}

fn worker_loop(shared: &Shared) {
    loop {
        // Thread-death drill: a panic-mode `serve.worker` fault kills
        // the thread *between* jobs, so the queued job survives in the
        // channel and the respawned worker picks it up — the caller is
        // still served. (Error mode is meaningless here; ignore it.)
        let _ = fault::point("serve.worker");
        let Ok(job) = shared.receiver.recv() else {
            break;
        };
        // Queue waits between spans count as liveness, not a stall.
        obs::heartbeat();
        // A panic inside one job is contained to that job: the caller
        // gets a typed Internal error carrying the trace id, the
        // worker thread lives on. The flight handle is cloned out
        // first — the job itself is consumed by the unwound closure.
        let key = job.key.clone();
        let flight = Arc::clone(&job.flight);
        let trace = job.ctx.map(|c| c.trace);
        let done = catch_unwind(AssertUnwindSafe(move || process_job(shared, job)));
        if let Err(payload) = done {
            let detail = panic_detail(payload.as_ref());
            shared.metrics.record_worker_panic();
            obs::event_with("serve.job_panicked", &[("detail", &detail.as_str())]);
            record_breaker_failure(shared, trace);
            shared.flights.retire(&key);
            flight.complete(Err(ServeError::Internal { detail, trace }));
        }
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("worker panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("worker panicked: {s}")
    } else {
        "worker panicked".to_string()
    }
}

fn process_job(shared: &Shared, mut job: Job) {
    // The execution span is a child of the admitting request's
    // span: the trace id crosses the worker-thread boundary.
    let mut exec_span = obs::span_child_of("serve.execute", job.ctx);
    if let Some(delay) = shared.execution_delay {
        thread::sleep(delay);
    }
    // Queue wait is measured after any artificial delay so that
    // deliberate stalls are attributed to queueing, not execution.
    job.profile.record_us(
        Phase::Queue,
        obs::monotonic_us().saturating_sub(job.queued_us),
    );
    // Transient warehouse-read faults retry with backoff before the
    // request fails (and counts against the breaker).
    let (read_ok, read_retries) = shared.retry.run(|| fault::point("serve.warehouse_read"));
    if read_retries > 0 {
        shared.metrics.record_retries(u64::from(read_retries));
    }
    if let Err(e) = read_ok {
        fail_job_internal(shared, &job, &mut exec_span, e.to_string());
        return;
    }
    // An error-mode execution fault fails this request; panic mode
    // exercises the per-job containment in `worker_loop`.
    if let Err(e) = fault::point("serve.execute") {
        fail_job_internal(shared, &job, &mut exec_span, e.to_string());
        return;
    }
    let wh = shared.warehouse.read();
    // A mutation may have landed since admission: execute against
    // (and publish under) the epoch actually visible now.
    let exec_epoch = wh.epoch();
    exec_span.record("epoch", exec_epoch);
    let outcome = job
        .request
        .execute_profiled_retaining(&wh, &mut job.profile);
    drop(wh);
    // Publish to the cache, then retire the flight, then wake the
    // waiters — in that order. New arrivals after the retire must
    // find the result in the cache (or lead a fresh flight); they
    // must never join a flight that has already completed.
    match outcome {
        Ok((payload, retained_cube)) => {
            let profile = job.profile.finish();
            exec_span.record("rows_scanned", profile.rows_scanned);
            exec_span.record("cells_emitted", profile.cells_emitted);
            exec_span.record("morsels", profile.morsels_executed);
            shared.metrics.record_rows_scanned(profile.rows_scanned);
            shared
                .metrics
                .record_segments_pruned(profile.segments_pruned);
            shared
                .metrics
                .record_morsels_executed(profile.morsels_executed);
            let value = Arc::new(QueryOutcome {
                payload,
                profile,
                degraded: false,
            });
            shared.metrics.record_executed();
            shared.cache.insert(
                job.key.0.clone(),
                exec_epoch,
                Arc::clone(&value),
                retained_cube.map(Arc::new),
            );
            shared.breaker.record_success();
            shared.flights.retire(&job.key);
            job.flight.complete(Ok(value));
        }
        Err(e) => {
            // A query-level failure is the query's own problem, not a
            // failure of the serving backend: it does not count
            // against the breaker — but it is still worth keeping in
            // the flight ring.
            obs::promote_trace();
            shared.metrics.record_failed();
            exec_span.record("outcome", "failed");
            shared.flights.retire(&job.key);
            job.flight.complete(Err(ServeError::Query(e)));
        }
    }
}

/// Count one execution failure against the breaker; on the trip edge
/// (this failure opened it) fire the breaker-opened event and snapshot
/// the flight recorder with the triggering request's trace front and
/// center.
fn record_breaker_failure(shared: &Shared, trace: Option<obs::TraceId>) {
    if shared.breaker.record_failure() {
        // Attribute the trip to this failure domain at the epoch it
        // had applied when it tripped: the event lands in the ring
        // just before the dump is cut, so the black box answers
        // "which replica, how far behind" on its own.
        let applied_epoch = shared.warehouse.read().epoch();
        obs::event_with(
            "serve.breaker_opened",
            &[
                ("replica", &shared.domain.as_str()),
                ("applied_epoch", &applied_epoch),
            ],
        );
        obs::trigger_dump("serve.breaker_open", trace);
    }
}

/// Publish a replicated change to the oplog at `epoch` — the epoch the
/// primary just minted for it, while still holding the warehouse write
/// lock so log order equals epoch order. Transient append faults are
/// retried; exhausted retries record the epoch as a *gap* instead: the
/// log's horizon advances past it, so followers observe `Truncated`
/// and re-seed from a primary snapshot rather than silently diverging.
fn publish_change(shared: &Shared, change: &WarehouseChange, epoch: u64) {
    let Some(log) = shared.oplog.as_ref() else {
        return;
    };
    let (appended, retries) = shared.retry.run(|| log.append(change, epoch));
    if retries > 0 {
        shared.metrics.record_retries(u64::from(retries));
    }
    if let Err(e) = appended {
        obs::event_with(
            "serve.oplog_publish_failed",
            &[("epoch", &epoch), ("error", &e.to_string().as_str())],
        );
        if let Err(gap) = log.mark_gap(epoch) {
            obs::event_with(
                "serve.oplog_gap_failed",
                &[("epoch", &epoch), ("error", &gap.to_string().as_str())],
            );
        }
    }
}

/// Fail `job` with a typed internal error and count the failure
/// against the circuit breaker.
fn fail_job_internal(shared: &Shared, job: &Job, exec_span: &mut obs::SpanGuard, detail: String) {
    // Promote before anything else so the execution span, the failure
    // event, and any breaker-trip dump all carry this trace.
    obs::promote_trace();
    shared.metrics.record_failed();
    exec_span.record("outcome", "internal_failure");
    obs::event_with("serve.internal_failure", &[("detail", &detail.as_str())]);
    // Breaker first, completion last: a caller woken by `complete`
    // must observe the failure it was just handed already counted.
    record_breaker_failure(shared, job.ctx.map(|c| c.trace));
    shared.flights.retire(&job.key);
    job.flight.complete(Err(ServeError::Internal {
        detail,
        trace: job.ctx.map(|c| c.trace),
    }));
}

/// Clone `cube` and fold the delta chain's appended rows into it,
/// producing a fresh outcome (with its own patch profile) and the
/// patched cube to retain. `None` when any delta refuses incremental
/// application — the caller falls back to a full execution.
fn patch_cube(
    wh: &Warehouse,
    spec: &CubeSpec,
    cube: &Cube,
    deltas: &[DeltaSummary],
) -> Option<(QueryOutcome, Cube)> {
    let mut patched = cube.clone();
    let mut profile = ProfileBuilder::start();
    let applied = profile.time(Phase::Execute, || -> clinical_types::Result<bool> {
        for delta in deltas {
            if !patched.apply_delta(wh, spec, delta)? {
                return Ok(false);
            }
        }
        Ok(true)
    });
    if !matches!(applied, Ok(true)) {
        return None;
    }
    profile.rows_scanned(deltas.iter().map(|d| d.appended.len() as u64).sum());
    let result = profile.time(Phase::Aggregate, || CubeResult::from_cube(&patched));
    profile.cells_emitted(result.cells.len() as u64);
    Some((
        QueryOutcome {
            payload: OutcomePayload::Cube(result),
            profile: profile.finish(),
            degraded: false,
        },
        patched,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use clinical_types::{DataType, FieldDef, Record, Schema};
    use warehouse::LoadPlan;

    fn small_warehouse() -> Warehouse {
        let star = warehouse::StarSchema::new(
            warehouse::FactDef::new("Facts", vec!["FBG"], vec![]),
            vec![warehouse::DimensionDef::new(
                "Bloods",
                vec!["FBG_Band", "Gender"],
            )],
        )
        .unwrap();
        let schema = Schema::new(vec![
            FieldDef::nullable("FBG", DataType::Float),
            FieldDef::nullable("FBG_Band", DataType::Text),
            FieldDef::nullable("Gender", DataType::Text),
        ])
        .unwrap();
        let rows = vec![
            vec![5.0.into(), "very good".into(), "F".into()],
            vec![6.5.into(), "preDiabetic".into(), "M".into()],
            vec![8.0.into(), "Diabetic".into(), "F".into()],
        ];
        let table = Table::from_rows(schema, rows.into_iter().map(Record::new).collect()).unwrap();
        Warehouse::load(&LoadPlan::from_star(star), &table).unwrap()
    }

    fn fbg_by_band() -> QueryRequest {
        QueryRequest::Report(ReportSpec::new().on_rows("FBG_Band").count())
    }

    #[test]
    fn executes_then_serves_from_cache() {
        let svc = QueryService::new(small_warehouse(), ServeConfig::default()).unwrap();
        let first = svc.execute(&fbg_by_band()).unwrap();
        assert_eq!(first.source, ServedSource::Executed);
        let second = svc.execute(&fbg_by_band()).unwrap();
        assert_eq!(second.source, ServedSource::Cache);
        // The cached answer is the same allocation, hence identical.
        assert!(Arc::ptr_eq(&first.value, &second.value));
        let m = svc.shutdown();
        assert_eq!((m.hits, m.misses, m.executed), (1, 1, 1));
    }

    #[test]
    fn out_of_footprint_mutation_reuses_across_epochs() {
        let svc = QueryService::new(small_warehouse(), ServeConfig::default()).unwrap();
        let before = svc.execute(&fbg_by_band()).unwrap();
        // The feedback dimension is outside the query's footprint:
        // delta revalidation serves the identical bytes at the new
        // epoch instead of re-executing.
        svc.add_feedback_dimension("Review", "Flag", vec!["a".into(), "b".into(), "c".into()])
            .unwrap();
        let after = svc.execute(&fbg_by_band()).unwrap();
        assert_eq!(after.source, ServedSource::Cache, "delta reuse must apply");
        assert!(Arc::ptr_eq(&before.value, &after.value));
        assert!(after.epoch > before.epoch);
        let m = svc.metrics();
        assert_eq!((m.misses, m.hits, m.reused_cross_epoch), (1, 1, 1));
        // A query that *reads* the new dimension executes fresh.
        let reads_it = QueryRequest::Report(ReportSpec::new().on_rows("Flag").count());
        assert_eq!(
            svc.execute(&reads_it).unwrap().source,
            ServedSource::Executed
        );
    }

    #[test]
    fn conservative_invalidation_forces_re_execution() {
        let svc = QueryService::new(small_warehouse(), ServeConfig::default()).unwrap();
        let before = svc.execute(&fbg_by_band()).unwrap();
        svc.invalidate_all();
        let after = svc.execute(&fbg_by_band()).unwrap();
        assert_eq!(after.source, ServedSource::Executed, "cache must not apply");
        assert!(after.epoch > before.epoch);
        assert_eq!(svc.metrics().misses, 2);
        assert_eq!(svc.metrics().reused_cross_epoch, 0);
    }

    #[test]
    fn append_patches_retained_cubes_in_place() {
        let svc = QueryService::new(small_warehouse(), ServeConfig::default()).unwrap();
        let spec = CubeSpec::count(vec!["FBG_Band"]);
        let cold = svc.cube(spec.clone()).unwrap();
        assert_eq!(cold.source, ServedSource::Executed);

        let schema = Schema::new(vec![
            FieldDef::nullable("FBG", DataType::Float),
            FieldDef::nullable("FBG_Band", DataType::Text),
            FieldDef::nullable("Gender", DataType::Text),
        ])
        .unwrap();
        let rows = vec![vec![9.0.into(), "Diabetic".into(), "M".into()]];
        let table = Table::from_rows(schema, rows.into_iter().map(Record::new).collect()).unwrap();
        svc.append(&table).unwrap();

        let warm = svc.cube(spec.clone()).unwrap();
        assert_eq!(warm.source, ServedSource::Cache, "patched, not rebuilt");
        assert!(warm.epoch > cold.epoch);
        assert_eq!(svc.metrics().patched_incremental, 1);
        // The patched cell list matches a from-scratch execution.
        svc.clear_cache();
        let rebuilt = svc.cube(spec).unwrap();
        assert_eq!(rebuilt.source, ServedSource::Executed);
        assert_eq!(
            warm.value.as_cube().unwrap(),
            rebuilt.value.as_cube().unwrap()
        );
    }

    #[test]
    fn invalid_queries_are_rejected_at_admission() {
        let svc = QueryService::new(small_warehouse(), ServeConfig::default()).unwrap();
        let err = svc
            .execute(&QueryRequest::Report(
                ReportSpec::new().on_rows("NoSuchAttr").count(),
            ))
            .unwrap_err();
        match err {
            ServeError::Invalid { diagnostics, .. } => {
                assert_eq!(diagnostics.codes(), vec!["A002"]);
            }
            other => panic!("expected Invalid, got {other:?}"),
        }
        // Nothing was queued, executed or cached; the service still
        // works afterwards.
        assert!(svc.execute(&fbg_by_band()).is_ok());
        let m = svc.metrics();
        assert_eq!(m.rejected_invalid, 1);
        assert_eq!(m.failed, 0);
        assert_eq!(m.executed, 1);
    }

    #[test]
    fn per_user_quota_rejects_with_typed_error() {
        let svc = QueryService::new(
            small_warehouse(),
            ServeConfig {
                quota: Some(QuotaConfig {
                    capacity: 1.0,
                    refill_per_sec: 0.0,
                }),
                ..ServeConfig::default()
            },
        )
        .unwrap();
        assert!(svc.execute_for("alice", &fbg_by_band()).is_ok());
        let err = svc.execute_for("alice", &fbg_by_band()).unwrap_err();
        match err {
            ServeError::QuotaExceeded { session, .. } => assert_eq!(session, "alice"),
            other => panic!("expected QuotaExceeded, got {other:?}"),
        }
        // Only alice is throttled; the rejection is counted.
        assert!(svc.execute_for("bob", &fbg_by_band()).is_ok());
        assert_eq!(svc.metrics().quota_rejected, 1);
    }

    #[test]
    fn primary_publishes_every_mutation_kind_to_the_oplog() {
        let log = Arc::new(Oplog::in_memory());
        let svc = QueryService::new_with_oplog(
            small_warehouse(),
            ServeConfig::default(),
            Arc::clone(&log),
        )
        .unwrap();
        let schema = Schema::new(vec![
            FieldDef::nullable("FBG", DataType::Float),
            FieldDef::nullable("FBG_Band", DataType::Text),
            FieldDef::nullable("Gender", DataType::Text),
        ])
        .unwrap();
        let rows = vec![vec![7.0.into(), "preDiabetic".into(), "F".into()]];
        let table = Table::from_rows(schema, rows.into_iter().map(Record::new).collect()).unwrap();
        svc.append(&table).unwrap();
        svc.add_feedback_dimension(
            "Review",
            "Flag",
            vec!["a".into(), "b".into(), "c".into(), "d".into()],
        )
        .unwrap();
        svc.invalidate_all();
        assert_eq!(log.len(), 3);
        let tail = log.tail_from(oplog::LogPos::start()).unwrap();
        assert_eq!(
            tail.iter()
                .map(|r| r.change.kind_name())
                .collect::<Vec<_>>(),
            vec!["append", "feedback", "rewrite"]
        );
        // Log order is epoch order, ending at the primary's epoch.
        assert_eq!(tail.last().unwrap().pos.epoch, svc.epoch());
    }

    #[test]
    fn shutdown_rejects_new_work() {
        let svc = QueryService::new(small_warehouse(), ServeConfig::default()).unwrap();
        svc.execute(&fbg_by_band()).unwrap();
        let m = svc.shutdown();
        assert_eq!(m.executed, 1);
    }

    #[test]
    fn all_request_kinds_serve() {
        let svc = QueryService::new(small_warehouse(), ServeConfig::default()).unwrap();
        let mdx = svc
            .mdx(
                "SELECT [Gender].MEMBERS ON COLUMNS, [FBG_Band].MEMBERS ON ROWS \
                 FROM [Facts] MEASURE COUNT(*)",
            )
            .unwrap();
        assert!(mdx.value.as_pivot().is_some());
        let cube = svc
            .cube(CubeSpec::count(vec!["FBG_Band", "Gender"]))
            .unwrap();
        let cube = cube.value.as_cube().unwrap();
        assert_eq!(cube.cells.iter().map(|(_, v)| *v).sum::<f64>(), 3.0);
        let report = svc
            .report(
                ReportSpec::new()
                    .on_rows("FBG_Band")
                    .on_columns("Gender")
                    .count(),
            )
            .unwrap();
        assert!(report.value.as_pivot().is_some());
    }
}
