//! Sharded LRU result cache.
//!
//! Keys are `(fingerprint, epoch)`: the canonical query string plus
//! the warehouse's monotonic data epoch. A mutation bumps the epoch,
//! so stale results are never *returned* — they simply stop being
//! addressable — and [`ResultCache::purge_older_than`] reclaims their
//! memory eagerly after each mutation.

use crate::request::QueryOutcome;
use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Cache key: canonical fingerprint × data epoch.
pub type CacheKey = (String, u64);

struct Entry {
    value: Arc<QueryOutcome>,
    epoch: u64,
    last_used: u64,
}

/// One shard: a capacity-bounded map with least-recently-used
/// eviction driven by a per-shard use counter.
struct Shard {
    entries: HashMap<CacheKey, Entry>,
    capacity: usize,
    tick: u64,
}

impl Shard {
    fn get(&mut self, key: &CacheKey) -> Option<Arc<QueryOutcome>> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(key).map(|e| {
            e.last_used = tick;
            Arc::clone(&e.value)
        })
    }

    fn insert(&mut self, key: CacheKey, value: Arc<QueryOutcome>) {
        self.tick += 1;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            if let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&victim);
            }
        }
        let epoch = key.1;
        self.entries.insert(
            key,
            Entry {
                value,
                epoch,
                last_used: self.tick,
            },
        );
    }
}

/// The sharded cache. Sharding by key hash keeps lock contention
/// bounded when many worker threads publish results concurrently.
pub struct ResultCache {
    shards: Vec<Mutex<Shard>>,
}

impl ResultCache {
    /// A cache holding up to `capacity` results across `shards` shards
    /// (both floored at 1).
    pub fn new(capacity: usize, shards: usize) -> ResultCache {
        let shards = shards.max(1);
        let per_shard = (capacity.max(1)).div_ceil(shards);
        ResultCache {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        entries: HashMap::new(),
                        capacity: per_shard,
                        tick: 0,
                    })
                })
                .collect(),
        }
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<Shard> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Look up a result, refreshing its recency on hit.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<QueryOutcome>> {
        self.shard(key).lock().get(key)
    }

    /// Publish a result, evicting the least-recently-used entry of the
    /// target shard if it is full.
    pub fn insert(&self, key: CacheKey, value: Arc<QueryOutcome>) {
        self.shard(&key).lock().insert(key, value);
    }

    /// Drop every entry produced under an epoch older than `epoch` —
    /// called after a warehouse mutation to reclaim stale results.
    pub fn purge_older_than(&self, epoch: u64) {
        for shard in &self.shards {
            shard.lock().entries.retain(|_, e| e.epoch >= epoch);
        }
    }

    /// Drop everything (benchmarking aid).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().entries.clear();
        }
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().entries.len()).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olap::PivotTable;

    fn outcome(tag: &str) -> Arc<QueryOutcome> {
        Arc::new(QueryOutcome::pivot(PivotTable {
            row_axis: tag.to_string(),
            col_axis: String::new(),
            row_headers: vec![],
            col_headers: vec![],
            cells: vec![],
        }))
    }

    fn key(s: &str, epoch: u64) -> CacheKey {
        (s.to_string(), epoch)
    }

    #[test]
    fn round_trips_and_counts() {
        let cache = ResultCache::new(8, 2);
        assert!(cache.is_empty());
        cache.insert(key("q1", 1), outcome("a"));
        assert_eq!(cache.len(), 1);
        assert!(Arc::ptr_eq(
            &cache.get(&key("q1", 1)).unwrap(),
            &cache.get(&key("q1", 1)).unwrap()
        ));
        assert!(
            cache.get(&key("q1", 2)).is_none(),
            "epoch is part of the key"
        );
    }

    #[test]
    fn evicts_least_recently_used_within_a_shard() {
        // One shard, capacity 2: touching `a` makes `b` the victim.
        let cache = ResultCache::new(2, 1);
        cache.insert(key("a", 1), outcome("a"));
        cache.insert(key("b", 1), outcome("b"));
        cache.get(&key("a", 1));
        cache.insert(key("c", 1), outcome("c"));
        assert!(cache.get(&key("a", 1)).is_some());
        assert!(cache.get(&key("b", 1)).is_none());
        assert!(cache.get(&key("c", 1)).is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn purge_drops_only_stale_epochs() {
        let cache = ResultCache::new(8, 4);
        cache.insert(key("q1", 1), outcome("a"));
        cache.insert(key("q2", 2), outcome("b"));
        cache.purge_older_than(2);
        assert!(cache.get(&key("q1", 1)).is_none());
        assert!(cache.get(&key("q2", 2)).is_some());
        cache.clear();
        assert!(cache.is_empty());
    }
}
