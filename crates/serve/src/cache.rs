//! Sharded LRU result cache with cross-epoch revalidation support.
//!
//! Entries are keyed by the query's canonical **fingerprint** alone;
//! the data epoch the result was produced under travels *inside* the
//! entry. A lookup therefore finds results from older epochs instead
//! of missing them, and the service decides — by consulting the
//! warehouse delta log — whether a stale entry is provably still
//! valid ([`ResultCache::promote`]), incrementally patchable (the
//! entry's retained [`Cube`]), or genuinely dead
//! ([`ResultCache::remove`]). [`ResultCache::purge_older_than`]
//! remains for wholesale invalidation after a rewrite.

use crate::request::QueryOutcome;
use obs::{LockRank, RankedMutex};
use olap::Cube;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Flight-table key: canonical fingerprint × admission epoch. (The
/// cache itself keys by fingerprint only; single-flight deduplication
/// still scopes leaders to the epoch they were admitted under.)
pub type CacheKey = (String, u64);

/// What a cache lookup returns: the result, the epoch it is valid at,
/// and — for incrementally-maintainable cube queries — the live cube
/// whose accumulators can absorb later deltas.
#[derive(Clone)]
pub struct CachedEntry {
    /// The cached result.
    pub value: Arc<QueryOutcome>,
    /// Epoch the result is known valid at.
    pub epoch: u64,
    /// Retained cube for incremental patching, when the request shape
    /// supports it.
    pub cube: Option<Arc<Cube>>,
}

struct Entry {
    value: Arc<QueryOutcome>,
    epoch: u64,
    cube: Option<Arc<Cube>>,
    last_used: u64,
}

/// One shard: a capacity-bounded map with least-recently-used
/// eviction driven by a per-shard use counter.
struct Shard {
    entries: HashMap<String, Entry>,
    capacity: usize,
    tick: u64,
}

impl Shard {
    fn get(&mut self, fingerprint: &str) -> Option<CachedEntry> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(fingerprint).map(|e| {
            e.last_used = tick;
            CachedEntry {
                value: Arc::clone(&e.value),
                epoch: e.epoch,
                cube: e.cube.clone(),
            }
        })
    }

    fn insert(
        &mut self,
        fingerprint: String,
        epoch: u64,
        value: Arc<QueryOutcome>,
        cube: Option<Arc<Cube>>,
    ) {
        self.tick += 1;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&fingerprint) {
            if let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&victim);
            }
        }
        self.entries.insert(
            fingerprint,
            Entry {
                value,
                epoch,
                cube,
                last_used: self.tick,
            },
        );
    }
}

/// The sharded cache. Sharding by key hash keeps lock contention
/// bounded when many worker threads publish results concurrently.
pub struct ResultCache {
    shards: Vec<RankedMutex<Shard>>,
}

impl ResultCache {
    /// A cache holding up to `capacity` results across `shards` shards
    /// (both floored at 1).
    pub fn new(capacity: usize, shards: usize) -> ResultCache {
        let shards = shards.max(1);
        let per_shard = (capacity.max(1)).div_ceil(shards);
        ResultCache {
            shards: (0..shards)
                .map(|_| {
                    RankedMutex::new(
                        LockRank::Cache,
                        "serve.cache.shards",
                        Shard {
                            entries: HashMap::new(),
                            capacity: per_shard,
                            tick: 0,
                        },
                    )
                })
                .collect(),
        }
    }

    fn shard(&self, fingerprint: &str) -> &RankedMutex<Shard> {
        let mut h = DefaultHasher::new();
        fingerprint.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Look up a result by fingerprint (any epoch), refreshing its
    /// recency on hit. The caller inspects [`CachedEntry::epoch`] to
    /// decide whether revalidation is needed.
    pub fn get(&self, fingerprint: &str) -> Option<CachedEntry> {
        self.shard(fingerprint).lock().get(fingerprint)
    }

    /// Publish a result valid at `epoch`, evicting the
    /// least-recently-used entry of the target shard if it is full.
    /// `cube` retains the live accumulators for incremental patching.
    pub fn insert(
        &self,
        fingerprint: String,
        epoch: u64,
        value: Arc<QueryOutcome>,
        cube: Option<Arc<Cube>>,
    ) {
        self.shard(&fingerprint)
            .lock()
            .insert(fingerprint, epoch, value, cube);
    }

    /// Mark an entry as provably valid at `epoch` (delta revalidation
    /// showed no intersection with the query's footprint). Never moves
    /// an entry backwards in time.
    pub fn promote(&self, fingerprint: &str, epoch: u64) {
        if let Some(e) = self.shard(fingerprint).lock().entries.get_mut(fingerprint) {
            if e.epoch < epoch {
                e.epoch = epoch;
            }
        }
    }

    /// Drop one entry (revalidation found it unrecoverable).
    pub fn remove(&self, fingerprint: &str) {
        self.shard(fingerprint).lock().entries.remove(fingerprint);
    }

    /// Drop every entry produced under an epoch older than `epoch` —
    /// wholesale invalidation after a rewrite-style mutation.
    pub fn purge_older_than(&self, epoch: u64) {
        for shard in &self.shards {
            shard.lock().entries.retain(|_, e| e.epoch >= epoch);
        }
    }

    /// Drop everything (benchmarking aid).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().entries.clear();
        }
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().entries.len()).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olap::PivotTable;

    fn outcome(tag: &str) -> Arc<QueryOutcome> {
        Arc::new(QueryOutcome::pivot(PivotTable {
            row_axis: tag.to_string(),
            col_axis: String::new(),
            row_headers: vec![],
            col_headers: vec![],
            cells: vec![],
        }))
    }

    #[test]
    fn round_trips_and_counts() {
        let cache = ResultCache::new(8, 2);
        assert!(cache.is_empty());
        cache.insert("q1".into(), 1, outcome("a"), None);
        assert_eq!(cache.len(), 1);
        let hit = cache.get("q1").unwrap();
        assert_eq!(hit.epoch, 1);
        assert!(hit.cube.is_none());
        assert!(Arc::ptr_eq(&hit.value, &cache.get("q1").unwrap().value));
        assert!(cache.get("q2").is_none());
    }

    #[test]
    fn stale_entries_stay_addressable_until_promoted_or_removed() {
        let cache = ResultCache::new(8, 2);
        cache.insert("q".into(), 1, outcome("a"), None);
        // A later epoch does not hide the entry — that is the point.
        assert_eq!(cache.get("q").unwrap().epoch, 1);
        cache.promote("q", 5);
        assert_eq!(cache.get("q").unwrap().epoch, 5);
        // Promotion never rewinds.
        cache.promote("q", 3);
        assert_eq!(cache.get("q").unwrap().epoch, 5);
        cache.remove("q");
        assert!(cache.get("q").is_none());
    }

    #[test]
    fn evicts_least_recently_used_within_a_shard() {
        // One shard, capacity 2: touching `a` makes `b` the victim.
        let cache = ResultCache::new(2, 1);
        cache.insert("a".into(), 1, outcome("a"), None);
        cache.insert("b".into(), 1, outcome("b"), None);
        cache.get("a");
        cache.insert("c".into(), 1, outcome("c"), None);
        assert!(cache.get("a").is_some());
        assert!(cache.get("b").is_none());
        assert!(cache.get("c").is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn purge_drops_only_stale_epochs() {
        let cache = ResultCache::new(8, 4);
        cache.insert("q1".into(), 1, outcome("a"), None);
        cache.insert("q2".into(), 2, outcome("b"), None);
        cache.purge_older_than(2);
        assert!(cache.get("q1").is_none());
        assert!(cache.get("q2").is_some());
        cache.clear();
        assert!(cache.is_empty());
    }
}
