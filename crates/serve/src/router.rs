//! Epoch-aware routing across read replicas.
//!
//! The replicated serve tier: one primary [`QueryService`] owns the
//! writes and publishes every mutation to a shared [`Oplog`]; a fan
//! of follower services tails the log and re-derives the same
//! warehouse state at the same epochs. The router in between upholds
//! one invariant — **a replica never serves an epoch it has not fully
//! applied**:
//!
//! ```text
//! execute(request)
//!   ├─ required epoch ← primary's current epoch
//!   ├─ fresh replicas = alive ∧ applied_epoch ≥ required
//!   ├─ pick by power-of-two-choices on queue depth, dispatch
//!   │    ├─ served ──────────────────────────────▶ Served
//!   │    ├─ request's own fault (Invalid/Query) ──▶ returned as-is
//!   │    └─ replica failure → failover to the next fresh replica
//!   ├─ no fresh replica? most-caught-up live one, result marked
//!   │  degraded (stale is explicit, never silent)
//!   └─ no live replica at all ───────────────────▶ Internal
//! ```
//!
//! Catch-up is pull-based: [`ReplicaRouter::tick`] (or the background
//! pump when [`RouterConfig::pump_interval`] is set) tails the log per
//! replica and applies records in order, advancing each cursor only
//! after its record is fully applied. A replica whose cursor falls
//! behind the log's truncation horizon observes a typed `Truncated`
//! error and re-seeds from a primary snapshot — it never replays
//! across a gap, so it can never serve a partially-applied epoch.
//!
//! Each replica keeps its own circuit breaker (inherited from
//! [`QueryService`]); the router adds placement, failover and the
//! optional router-level per-user quota.

use crate::error::{ServeError, ServeResult};
use crate::quota::{AdmissionQuotas, QuotaConfig};
use crate::request::QueryRequest;
use crate::service::{QueryService, ServeConfig, Served};
use clinical_types::{Table, Value};
use obs::{Counter, Gauge, LockRank, MetricsRegistry, RankedMutex, RankedRwLock};
use oplog::{LogPos, Oplog, OplogError};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;
use warehouse::Warehouse;

/// Tuning knobs for [`ReplicaRouter`].
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Read replicas to run (at least one).
    pub replicas: usize,
    /// Per-service configuration applied to the primary and every
    /// replica (domains and quotas are overridden per instance).
    pub serve: ServeConfig,
    /// Router-level per-user quota, checked once at routing time so a
    /// session cannot dodge its budget by landing on different
    /// replicas. `None` disables it.
    pub quota: Option<QuotaConfig>,
    /// Back the oplog with a durable file at this path; `None` keeps
    /// the feed in memory (single-process serving, tests).
    pub oplog_path: Option<PathBuf>,
    /// Run a background pump thread calling [`ReplicaRouter::tick`] at
    /// this cadence. `None` leaves catch-up to explicit ticks
    /// (deterministic tests and drills).
    pub pump_interval: Option<Duration>,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            replicas: 2,
            serve: ServeConfig {
                // One watchdog per process is plenty; routers run many
                // services.
                watchdog: false,
                ..ServeConfig::default()
            },
            quota: None,
            oplog_path: None,
            pump_interval: None,
        }
    }
}

/// One follower service plus its replication cursor.
struct ReplicaHandle {
    id: usize,
    service: QueryService,
    /// Position of the last log record fully applied. Advanced only
    /// after `apply_change` succeeds, so the routing freshness check
    /// (`service.epoch() >= required`) can never observe a
    /// half-applied epoch.
    cursor: RankedMutex<LogPos>,
    /// Cleared by [`ReplicaRouter::fail_replica`] (chaos drills) and
    /// by dispatch-time routing faults.
    alive: AtomicBool,
    epoch_gauge: Gauge,
    lag_gauge: Gauge,
}

/// Router counters, one registry per router.
struct RouterMetrics {
    registry: MetricsRegistry,
    routed: Counter,
    failover: Counter,
    degraded: Counter,
    quota_rejected: Counter,
    reseeds: Counter,
    applied: Counter,
}

impl RouterMetrics {
    fn new() -> RouterMetrics {
        let registry = MetricsRegistry::new();
        RouterMetrics {
            routed: registry.counter("router_routed_total"),
            failover: registry.counter("router_failover_total"),
            degraded: registry.counter("router_degraded_total"),
            quota_rejected: registry.counter("router_quota_rejected_total"),
            reseeds: registry.counter("router_reseeds_total"),
            applied: registry.counter("router_applied_records_total"),
            registry,
        }
    }
}

/// Point-in-time router counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterSnapshot {
    /// Requests served through a replica (fresh or degraded).
    pub routed: u64,
    /// Dispatches that failed over to another fresh replica.
    pub failover: u64,
    /// Requests served stale-marked because no fresh replica existed.
    pub degraded: u64,
    /// Requests rejected by the router-level per-user quota.
    pub quota_rejected: u64,
    /// Replica re-seeds from a primary snapshot (behind the horizon).
    pub reseeds: u64,
    /// Log records applied to replicas.
    pub applied: u64,
}

/// Health and progress of one replica, as seen by the router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaStatus {
    /// Replica index (`replica-{id}` failure domain).
    pub id: usize,
    /// Whether the router considers it routable.
    pub alive: bool,
    /// The epoch it has fully applied.
    pub applied_epoch: u64,
    /// Jobs waiting in its admission queue.
    pub queued: usize,
}

struct RouterShared {
    log: Arc<Oplog>,
    primary: QueryService,
    /// Rank `Router`: taken briefly to snapshot the handle list; the
    /// replication cursor (`Replication`) and every service lock rank
    /// strictly above it.
    replicas: RankedRwLock<Vec<Arc<ReplicaHandle>>>,
    quotas: Option<AdmissionQuotas>,
    metrics: RouterMetrics,
    /// splitmix64 state for power-of-two-choices placement —
    /// deterministic from a fixed seed, like every other jitter source
    /// in the repo.
    rng: AtomicU64,
}

/// A replicated query front-end: primary write head, oplog change
/// feed, and epoch-aware read replicas with failover.
pub struct ReplicaRouter {
    shared: Arc<RouterShared>,
    pump: Option<(Arc<AtomicBool>, JoinHandle<()>)>,
}

impl ReplicaRouter {
    /// Start a primary over `warehouse`, seed `config.replicas`
    /// followers from it, and wire them all to one oplog.
    pub fn new(warehouse: Warehouse, config: RouterConfig) -> ServeResult<ReplicaRouter> {
        let log = Arc::new(match &config.oplog_path {
            Some(path) => {
                Oplog::open(path)
                    .map_err(|e| ServeError::Internal {
                        detail: format!("failed to open oplog: {e}"),
                        trace: None,
                    })?
                    .0
            }
            None => Oplog::in_memory(),
        });
        let primary = QueryService::new_with_oplog(
            warehouse,
            ServeConfig {
                domain: "primary".to_string(),
                quota: None,
                ..config.serve.clone()
            },
            Arc::clone(&log),
        )?;
        let metrics = RouterMetrics::new();
        let mut handles = Vec::new();
        for id in 0..config.replicas.max(1) {
            let snapshot = primary.with_warehouse(|wh| wh.clone());
            let cursor = log
                .cursor_at(snapshot.epoch())
                .map_err(|e| ServeError::Internal {
                    detail: format!("seeding replica {id}: {e}"),
                    trace: None,
                })?;
            let service = QueryService::new(
                snapshot,
                ServeConfig {
                    domain: format!("replica-{id}"),
                    quota: None,
                    watchdog: false,
                    ..config.serve.clone()
                },
            )?;
            let epoch_gauge = metrics
                .registry
                .gauge(&format!("router_replica_{id}_epoch"));
            let lag_gauge = metrics.registry.gauge(&format!("router_replica_{id}_lag"));
            epoch_gauge.set(service.epoch() as i64);
            handles.push(Arc::new(ReplicaHandle {
                id,
                service,
                cursor: RankedMutex::new(LockRank::Replication, "serve.router.cursor", cursor),
                alive: AtomicBool::new(true),
                epoch_gauge,
                lag_gauge,
            }));
        }
        let shared = Arc::new(RouterShared {
            log,
            primary,
            replicas: RankedRwLock::new(LockRank::Router, "serve.router.replicas", handles),
            quotas: config.quota.map(AdmissionQuotas::new),
            metrics,
            rng: AtomicU64::new(0x9E37_79B9_7F4A_7C15),
        });
        // The pump is replication plumbing, not serving: a failed
        // spawn degrades to explicit ticks instead of failing the
        // router (mirroring the watchdog's spawn policy).
        let pump = config.pump_interval.and_then(|interval| {
            let stop = Arc::new(AtomicBool::new(false));
            let stop_flag = Arc::clone(&stop);
            let pump_shared = Arc::clone(&shared);
            match thread::Builder::new()
                .name("serve-replication-pump".to_string())
                .spawn(move || {
                    while !stop_flag.load(Ordering::Acquire) {
                        pump_shared.tick();
                        thread::sleep(interval);
                    }
                }) {
                Ok(handle) => Some((stop, handle)),
                Err(e) => {
                    obs::event_with(
                        "router.pump_spawn_failed",
                        &[("error", &e.to_string().as_str())],
                    );
                    None
                }
            }
        });
        Ok(ReplicaRouter { shared, pump })
    }

    /// Route `request` to a fresh replica (see the module doc for the
    /// full decision tree).
    pub fn execute(&self, request: &QueryRequest) -> ServeResult<Served> {
        self.shared.execute(request)
    }

    /// [`Self::execute`] behind the router-level per-user quota.
    pub fn execute_for(&self, session: &str, request: &QueryRequest) -> ServeResult<Served> {
        if let Some(quotas) = &self.shared.quotas {
            if !quotas.try_admit(session) {
                self.shared.metrics.quota_rejected.inc();
                obs::event_with("router.quota_rejected", &[("session", &session)]);
                return Err(ServeError::QuotaExceeded {
                    session: session.to_string(),
                    trace: None,
                });
            }
        }
        self.shared.execute(request)
    }

    /// Append rows through the primary; the mutation lands in the
    /// oplog for replicas to replay.
    pub fn append(&self, table: &Table) -> ServeResult<usize> {
        self.shared.primary.append(table)
    }

    /// Add a feedback dimension through the primary.
    pub fn add_feedback_dimension(
        &self,
        dimension: &str,
        attribute: &str,
        labels: Vec<Value>,
    ) -> ServeResult<()> {
        self.shared
            .primary
            .add_feedback_dimension(dimension, attribute, labels)
    }

    /// Tail the oplog on behalf of every live replica, applying
    /// records in order. Returns the number of records applied across
    /// the fleet. Idempotent and safe to call concurrently with
    /// routing (each replica's cursor serialises its own catch-up).
    pub fn tick(&self) -> usize {
        self.shared.tick()
    }

    /// The primary (write head) service.
    pub fn primary(&self) -> &QueryService {
        &self.shared.primary
    }

    /// The shared change feed.
    pub fn oplog(&self) -> &Arc<Oplog> {
        &self.shared.log
    }

    /// The primary's current epoch — the epoch a query routed now is
    /// required to be served at (or above).
    pub fn epoch(&self) -> u64 {
        self.shared.primary.epoch()
    }

    /// Health and applied epoch of every replica.
    pub fn replica_status(&self) -> Vec<ReplicaStatus> {
        self.shared
            .replicas
            .read()
            .iter()
            .map(|h| ReplicaStatus {
                id: h.id,
                alive: h.alive.load(Ordering::Acquire),
                applied_epoch: h.service.epoch(),
                queued: h.service.queue_len(),
            })
            .collect()
    }

    /// Kill replica `id` (chaos drills): it stops receiving queries
    /// and catch-up until revived. Returns whether the id exists.
    pub fn fail_replica(&self, id: usize) -> bool {
        self.set_alive(id, false)
    }

    /// Revive a previously failed replica; the next tick catches it
    /// up (or re-seeds it past a truncation horizon).
    pub fn revive_replica(&self, id: usize) -> bool {
        self.set_alive(id, true)
    }

    fn set_alive(&self, id: usize, alive: bool) -> bool {
        let found = self
            .shared
            .replicas
            .read()
            .iter()
            .find(|h| h.id == id)
            .map(|h| h.alive.store(alive, Ordering::Release))
            .is_some();
        if found {
            obs::event_with(
                "router.replica_alive",
                &[("replica", &id), ("alive", &alive)],
            );
        }
        found
    }

    /// Point-in-time router counters.
    pub fn metrics(&self) -> RouterSnapshot {
        let m = &self.shared.metrics;
        RouterSnapshot {
            routed: m.routed.get(),
            failover: m.failover.get(),
            degraded: m.degraded.get(),
            quota_rejected: m.quota_rejected.get(),
            reseeds: m.reseeds.get(),
            applied: m.applied.get(),
        }
    }

    /// Router instruments in Prometheus text exposition format
    /// (replica epoch/lag gauges included).
    pub fn metrics_text(&self) -> String {
        self.shared.metrics.registry.render_prometheus()
    }
}

impl Drop for ReplicaRouter {
    fn drop(&mut self) {
        if let Some((stop, handle)) = self.pump.take() {
            stop.store(true, Ordering::Release);
            let _ = handle.join();
        }
    }
}

impl RouterShared {
    /// splitmix64 step — placement jitter with no global RNG.
    fn next_rand(&self) -> u64 {
        let mut z = self
            .rng
            .fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Power-of-two-choices: sample two distinct candidates, keep the
    /// one with the shorter admission queue.
    fn pick_p2c(&self, candidates: &[Arc<ReplicaHandle>]) -> usize {
        if candidates.len() == 1 {
            return 0;
        }
        let a = (self.next_rand() as usize) % candidates.len();
        let mut b = (self.next_rand() as usize) % (candidates.len() - 1);
        if b >= a {
            b += 1;
        }
        if candidates[b].service.queue_len() < candidates[a].service.queue_len() {
            b
        } else {
            a
        }
    }

    fn execute(&self, request: &QueryRequest) -> ServeResult<Served> {
        let required = self.primary.epoch();
        let handles: Vec<Arc<ReplicaHandle>> = self.replicas.read().clone();
        let live: Vec<Arc<ReplicaHandle>> = handles
            .iter()
            .filter(|h| h.alive.load(Ordering::Acquire))
            .cloned()
            .collect();
        let mut fresh: Vec<Arc<ReplicaHandle>> = live
            .iter()
            .filter(|h| h.service.epoch() >= required)
            .cloned()
            .collect();

        // Fresh replicas first, failing over on replica faults.
        let mut last_failure: Option<ServeError> = None;
        while !fresh.is_empty() {
            let at = self.pick_p2c(&fresh);
            let handle = fresh.swap_remove(at);
            match self.dispatch(&handle, request, required, false) {
                Dispatch::Served(served) => return Ok(served),
                Dispatch::RequestFault(err) => return Err(err),
                Dispatch::ReplicaFault(err) => {
                    self.metrics.failover.inc();
                    obs::event_with(
                        "router.failover",
                        &[
                            ("replica", &handle.id),
                            ("error", &err.to_string().as_str()),
                        ],
                    );
                    last_failure = Some(err);
                }
            }
        }

        // No fresh replica left: serve from the most-caught-up live
        // one, explicitly stale-marked. Staleness is visible, never
        // silent — and a lagging replica still only answers with the
        // epochs it has fully applied.
        let mut stale: Vec<Arc<ReplicaHandle>> = live;
        stale.sort_by_key(|h| std::cmp::Reverse(h.service.epoch()));
        for handle in stale {
            match self.dispatch(&handle, request, required, true) {
                Dispatch::Served(served) => {
                    self.metrics.degraded.inc();
                    obs::event_with(
                        "router.degraded",
                        &[
                            ("replica", &handle.id),
                            ("required_epoch", &required),
                            ("applied_epoch", &served.epoch),
                        ],
                    );
                    return Ok(served);
                }
                Dispatch::RequestFault(err) => return Err(err),
                Dispatch::ReplicaFault(err) => {
                    self.metrics.failover.inc();
                    obs::event_with(
                        "router.failover",
                        &[
                            ("replica", &handle.id),
                            ("error", &err.to_string().as_str()),
                        ],
                    );
                    last_failure = Some(err);
                }
            }
        }

        Err(last_failure.unwrap_or(ServeError::Internal {
            detail: "no live replica to route to".into(),
            trace: None,
        }))
    }

    /// One dispatch attempt against one replica, classified for the
    /// failover loop.
    fn dispatch(
        &self,
        handle: &ReplicaHandle,
        request: &QueryRequest,
        required: u64,
        degrade: bool,
    ) -> Dispatch {
        if let Err(e) = fault::point("router.route") {
            return Dispatch::ReplicaFault(ServeError::Internal {
                detail: e.to_string(),
                trace: None,
            });
        }
        match handle.service.execute(request) {
            Ok(mut served) => {
                self.metrics.routed.inc();
                if degrade && served.epoch < required {
                    let mut outcome = (*served.value).clone();
                    outcome.degraded = true;
                    served.value = Arc::new(outcome);
                }
                Dispatch::Served(served)
            }
            // The request's own fault follows it to any replica:
            // failing over would just fail N times.
            Err(err @ (ServeError::Invalid { .. } | ServeError::Query(_))) => {
                Dispatch::RequestFault(err)
            }
            Err(err) => Dispatch::ReplicaFault(err),
        }
    }

    fn tick(&self) -> usize {
        let handles: Vec<Arc<ReplicaHandle>> = self.replicas.read().clone();
        let last_seq = self.log.last_pos().map(|p| p.seq).unwrap_or(0);
        let mut applied_total = 0usize;
        for handle in handles {
            if !handle.alive.load(Ordering::Acquire) {
                continue;
            }
            let mut cursor = handle.cursor.lock();
            match self.log.tail_from(*cursor) {
                Ok(records) => {
                    for record in records {
                        // The drill failpoint kills catch-up *between*
                        // records: the cursor stays on the last fully
                        // applied one, so a crashed-and-resumed pump
                        // replays from a record boundary, never inside
                        // an epoch.
                        let crashed = fault::point("replica.apply").is_err(); // lint:allow(A301, "the cursor lock must cover the fault check: a drill-injected crash leaves the cursor on the last fully applied record")
                        if crashed {
                            break;
                        }
                        match handle
                            .service
                            .apply_change(&record.change, record.pos.epoch)
                        {
                            Ok(()) => {
                                *cursor = record.pos;
                                applied_total += 1;
                                self.metrics.applied.inc();
                            }
                            Err(e) => {
                                obs::event_with(
                                    "router.apply_failed",
                                    &[
                                        ("replica", &handle.id),
                                        ("pos", &record.pos),
                                        ("error", &e.to_string().as_str()),
                                    ],
                                );
                                break;
                            }
                        }
                    }
                }
                Err(OplogError::Truncated { .. }) => {
                    // Behind the horizon: replay cannot reach the
                    // present. Re-seed from a primary snapshot and
                    // resume tailing from the snapshot's position.
                    let snapshot = self.primary.with_warehouse(|wh| wh.clone());
                    match self.log.cursor_at(snapshot.epoch()) {
                        Ok(pos) => {
                            handle.service.reseed(snapshot);
                            *cursor = pos;
                            self.metrics.reseeds.inc();
                            obs::event_with(
                                "router.reseed",
                                &[("replica", &handle.id), ("epoch", &pos.epoch)],
                            );
                        }
                        // The log moved again mid-reseed; the next
                        // tick retries with a fresher snapshot.
                        Err(_) => continue,
                    }
                }
                Err(e) => {
                    obs::event_with(
                        "router.tail_failed",
                        &[("replica", &handle.id), ("error", &e.to_string().as_str())],
                    );
                }
            }
            handle.epoch_gauge.set(handle.service.epoch() as i64);
            handle
                .lag_gauge
                .set(last_seq.saturating_sub(cursor.seq) as i64);
        }
        applied_total
    }
}

/// Outcome classification for one routing attempt.
enum Dispatch {
    Served(Served),
    /// The request itself is at fault — same answer everywhere.
    RequestFault(ServeError),
    /// The replica failed the request — try another.
    ReplicaFault(ServeError),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ReportSpec;
    use clinical_types::{DataType, FieldDef, Record, Schema};
    use warehouse::LoadPlan;

    fn small_warehouse() -> Warehouse {
        let star = warehouse::StarSchema::new(
            warehouse::FactDef::new("Facts", vec!["FBG"], vec![]),
            vec![warehouse::DimensionDef::new(
                "Bloods",
                vec!["FBG_Band", "Gender"],
            )],
        )
        .unwrap();
        let schema = Schema::new(vec![
            FieldDef::nullable("FBG", DataType::Float),
            FieldDef::nullable("FBG_Band", DataType::Text),
            FieldDef::nullable("Gender", DataType::Text),
        ])
        .unwrap();
        let rows = vec![
            vec![5.0.into(), "very good".into(), "F".into()],
            vec![6.5.into(), "preDiabetic".into(), "M".into()],
            vec![8.0.into(), "Diabetic".into(), "F".into()],
        ];
        let table = Table::from_rows(schema, rows.into_iter().map(Record::new).collect()).unwrap();
        Warehouse::load(&LoadPlan::from_star(star), &table).unwrap()
    }

    fn one_more_row() -> Table {
        let schema = Schema::new(vec![
            FieldDef::nullable("FBG", DataType::Float),
            FieldDef::nullable("FBG_Band", DataType::Text),
            FieldDef::nullable("Gender", DataType::Text),
        ])
        .unwrap();
        Table::from_rows(
            schema,
            vec![Record::new(vec![9.0.into(), "Diabetic".into(), "M".into()])],
        )
        .unwrap()
    }

    fn fbg_by_band() -> QueryRequest {
        QueryRequest::Report(ReportSpec::new().on_rows("FBG_Band").count())
    }

    #[test]
    fn routes_to_replicas_and_replays_mutations() {
        let router = ReplicaRouter::new(small_warehouse(), RouterConfig::default()).unwrap();
        let before = router.execute(&fbg_by_band()).unwrap();
        assert!(!before.value.degraded);

        router.append(&one_more_row()).unwrap();
        assert_eq!(router.oplog().len(), 1);
        // Replicas are now behind: the only fresh source of the new
        // epoch is catch-up, and until it runs results are degraded.
        let stale = router.execute(&fbg_by_band()).unwrap();
        assert!(stale.value.degraded, "stale service must be marked");
        assert!(stale.epoch < router.epoch());

        assert_eq!(router.tick(), 2, "one record applied per replica");
        let fresh = router.execute(&fbg_by_band()).unwrap();
        assert!(!fresh.value.degraded);
        assert_eq!(fresh.epoch, router.epoch());
        for status in router.replica_status() {
            assert_eq!(status.applied_epoch, router.epoch());
        }
        assert!(router.metrics().degraded >= 1);
    }

    #[test]
    fn killing_one_replica_fails_over_transparently() {
        let router = ReplicaRouter::new(small_warehouse(), RouterConfig::default()).unwrap();
        assert!(router.fail_replica(0));
        for _ in 0..8 {
            let served = router.execute(&fbg_by_band()).unwrap();
            assert!(!served.value.degraded);
        }
        assert!(!router.fail_replica(99), "unknown replica id");
        // The dead replica never applies while down, then catches up.
        router.append(&one_more_row()).unwrap();
        assert_eq!(router.tick(), 1, "only the live replica applies");
        assert!(router.revive_replica(0));
        assert_eq!(router.tick(), 1, "the revived one catches up");
    }

    #[test]
    fn request_faults_do_not_fail_over() {
        let router = ReplicaRouter::new(small_warehouse(), RouterConfig::default()).unwrap();
        let err = router
            .execute(&QueryRequest::Report(
                ReportSpec::new().on_rows("NoSuchAttr").count(),
            ))
            .unwrap_err();
        assert!(matches!(err, ServeError::Invalid { .. }));
        assert_eq!(router.metrics().failover, 0);
    }

    #[test]
    fn router_quota_rejects_across_replicas() {
        let router = ReplicaRouter::new(
            small_warehouse(),
            RouterConfig {
                quota: Some(QuotaConfig {
                    capacity: 2.0,
                    refill_per_sec: 0.0,
                }),
                ..RouterConfig::default()
            },
        )
        .unwrap();
        assert!(router.execute_for("alice", &fbg_by_band()).is_ok());
        assert!(router.execute_for("alice", &fbg_by_band()).is_ok());
        let err = router.execute_for("alice", &fbg_by_band()).unwrap_err();
        assert!(matches!(err, ServeError::QuotaExceeded { .. }));
        assert_eq!(router.metrics().quota_rejected, 1);
        assert!(router.execute_for("bob", &fbg_by_band()).is_ok());
    }

    #[test]
    fn truncated_log_forces_reseed() {
        let router = ReplicaRouter::new(small_warehouse(), RouterConfig::default()).unwrap();
        router.append(&one_more_row()).unwrap();
        router.append(&one_more_row()).unwrap();
        // Age the whole feed out before any replica caught up.
        router.oplog().truncate_before(u64::MAX).unwrap();
        router.tick();
        assert_eq!(router.metrics().reseeds, 2);
        for status in router.replica_status() {
            assert_eq!(status.applied_epoch, router.epoch());
        }
        let served = router.execute(&fbg_by_band()).unwrap();
        assert!(!served.value.degraded);
    }

    #[test]
    fn background_pump_catches_replicas_up() {
        let router = ReplicaRouter::new(
            small_warehouse(),
            RouterConfig {
                pump_interval: Some(Duration::from_millis(5)),
                ..RouterConfig::default()
            },
        )
        .unwrap();
        router.append(&one_more_row()).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5); // lint:allow(no-raw-timing, "test deadline polling, not a traced measurement")
        loop {
            let all_fresh = router
                .replica_status()
                .iter()
                .all(|s| s.applied_epoch == router.epoch());
            if all_fresh {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline, // lint:allow(no-raw-timing, "test deadline polling, not a traced measurement")
                "pump never caught replicas up"
            );
            thread::sleep(Duration::from_millis(2));
        }
    }
}
