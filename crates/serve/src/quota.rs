//! Per-user admission quotas: token buckets ahead of the queue.
//!
//! The bounded work queue protects the service from *aggregate*
//! overload, but one chatty session (a runaway dashboard, a student
//! script in a loop) can starve everyone else while staying inside the
//! queue bound. A token bucket per session key caps each user's
//! sustained rate before their requests ever touch the cache, the
//! single-flight table or the queue, turning per-user abuse into a
//! typed [`crate::ServeError::QuotaExceeded`] instead of collateral
//! [`crate::ServeError::Overloaded`] for innocent bystanders.
//!
//! Buckets refill continuously from the `obs` monotonic clock, so
//! admission is deterministic given the clock — no background refill
//! thread to schedule or drain.

use obs::{LockRank, RankedMutex};
use std::collections::HashMap;

/// Token-bucket parameters applied to every session key.
#[derive(Debug, Clone, PartialEq)]
pub struct QuotaConfig {
    /// Bucket capacity: the burst a session may spend at once.
    pub capacity: f64,
    /// Sustained refill rate, tokens per second.
    pub refill_per_sec: f64,
}

impl Default for QuotaConfig {
    fn default() -> Self {
        QuotaConfig {
            capacity: 32.0,
            refill_per_sec: 16.0,
        }
    }
}

struct Bucket {
    tokens: f64,
    last_us: u64,
}

/// Per-session token buckets, keyed by an opaque session string.
pub struct AdmissionQuotas {
    config: QuotaConfig,
    /// Rank `Admission`: taken first on the request path and released
    /// before any other serving lock.
    buckets: RankedMutex<HashMap<String, Bucket>>,
}

impl AdmissionQuotas {
    /// Fresh quota table under `config`.
    pub fn new(config: QuotaConfig) -> AdmissionQuotas {
        AdmissionQuotas {
            config,
            buckets: RankedMutex::new(LockRank::Admission, "serve.quota.buckets", HashMap::new()),
        }
    }

    /// Spend one token from `session`'s bucket; `false` means the
    /// session is over quota and the request must be rejected.
    pub fn try_admit(&self, session: &str) -> bool {
        self.try_admit_at(session, obs::monotonic_us())
    }

    /// [`Self::try_admit`] with the clock supplied (deterministic
    /// tests).
    pub fn try_admit_at(&self, session: &str, now_us: u64) -> bool {
        let mut buckets = self.buckets.lock();
        let bucket = buckets.entry(session.to_string()).or_insert(Bucket {
            tokens: self.config.capacity,
            last_us: now_us,
        });
        let elapsed_s = now_us.saturating_sub(bucket.last_us) as f64 / 1_000_000.0;
        bucket.tokens =
            (bucket.tokens + elapsed_s * self.config.refill_per_sec).min(self.config.capacity);
        bucket.last_us = now_us;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Number of sessions currently tracked.
    pub fn sessions(&self) -> usize {
        self.buckets.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quotas(capacity: f64, refill: f64) -> AdmissionQuotas {
        AdmissionQuotas::new(QuotaConfig {
            capacity,
            refill_per_sec: refill,
        })
    }

    #[test]
    fn burst_up_to_capacity_then_rejected() {
        let q = quotas(3.0, 1.0);
        assert!(q.try_admit_at("alice", 0));
        assert!(q.try_admit_at("alice", 0));
        assert!(q.try_admit_at("alice", 0));
        assert!(!q.try_admit_at("alice", 0), "burst spent");
    }

    #[test]
    fn refill_restores_admission() {
        let q = quotas(1.0, 2.0);
        assert!(q.try_admit_at("alice", 0));
        assert!(!q.try_admit_at("alice", 100_000), "0.2 tokens < 1");
        assert!(q.try_admit_at("alice", 600_000), "1.2 tokens refilled");
    }

    #[test]
    fn sessions_are_isolated() {
        let q = quotas(1.0, 0.0);
        assert!(q.try_admit_at("alice", 0));
        assert!(!q.try_admit_at("alice", 0));
        assert!(q.try_admit_at("bob", 0), "bob has his own bucket");
        assert_eq!(q.sessions(), 2);
    }

    #[test]
    fn refill_never_exceeds_capacity() {
        let q = quotas(2.0, 100.0);
        assert!(q.try_admit_at("alice", 0));
        // A long idle refills to capacity, not beyond.
        assert!(q.try_admit_at("alice", 60_000_000));
        assert!(q.try_admit_at("alice", 60_000_000));
        assert!(!q.try_admit_at("alice", 60_000_000));
    }
}
