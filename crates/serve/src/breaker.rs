//! Circuit breaker: explicit degraded mode for a failing backend.
//!
//! When query execution fails repeatedly the service stops hammering
//! the failure domain and flips the breaker **open**: requests are
//! deflected and — when a stale cache entry exists — served from it,
//! marked degraded. After a cooldown the breaker lets a single
//! **half-open probe** through; the probe's outcome decides whether
//! the breaker closes (recovered) or re-opens (still down).
//!
//! Time comes from [`obs::monotonic_us`] so the state machine is
//! steady-clock driven and plays by the repo's no-raw-timing rule.

use obs::{LockRank, RankedMutex};
use std::time::Duration;

/// Breaker states, exposed for metrics and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: all requests pass, consecutive failures are counted.
    Closed,
    /// Tripped: requests are deflected until the cooldown elapses.
    Open,
    /// Cooldown elapsed: one probe is in flight, the rest deflect.
    HalfOpen,
}

#[derive(Debug)]
struct Inner {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at_us: u64,
    probing: bool,
}

/// What the breaker decided for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Breaker closed: execute normally.
    Allow,
    /// Breaker half-open and this request won the probe slot: execute,
    /// and the outcome decides the breaker's next state.
    Probe,
    /// Breaker open (or half-open with a probe already out): do not
    /// execute; serve stale or fail fast.
    Deflect,
}

/// A consecutive-failure circuit breaker with half-open recovery.
#[derive(Debug)]
pub struct CircuitBreaker {
    inner: RankedMutex<Inner>,
    /// Consecutive failures that trip the breaker.
    threshold: u32,
    /// How long the breaker stays open before probing.
    cooldown: Duration,
}

impl CircuitBreaker {
    /// Breaker tripping after `threshold` consecutive failures and
    /// probing again `cooldown` after opening.
    pub fn new(threshold: u32, cooldown: Duration) -> Self {
        CircuitBreaker {
            inner: RankedMutex::new(
                LockRank::Breaker,
                "serve.breaker",
                Inner {
                    state: BreakerState::Closed,
                    consecutive_failures: 0,
                    opened_at_us: 0,
                    probing: false,
                },
            ),
            threshold: threshold.max(1),
            cooldown,
        }
    }

    /// Decide whether a request may execute right now.
    pub fn admit(&self) -> Admission {
        let mut inner = self.inner.lock();
        match inner.state {
            BreakerState::Closed => Admission::Allow,
            BreakerState::Open => {
                let elapsed_us = obs::monotonic_us().saturating_sub(inner.opened_at_us);
                if Duration::from_micros(elapsed_us) >= self.cooldown {
                    inner.state = BreakerState::HalfOpen;
                    inner.probing = true;
                    Admission::Probe
                } else {
                    Admission::Deflect
                }
            }
            BreakerState::HalfOpen => {
                if inner.probing {
                    Admission::Deflect
                } else {
                    inner.probing = true;
                    Admission::Probe
                }
            }
        }
    }

    /// Record a successful execution (closes a half-open breaker).
    pub fn record_success(&self) {
        let mut inner = self.inner.lock();
        inner.state = BreakerState::Closed;
        inner.consecutive_failures = 0;
        inner.probing = false;
    }

    /// Record a failed execution. A half-open breaker re-opens
    /// immediately; a closed one opens after `threshold` consecutive
    /// failures. Returns `true` when *this* failure transitioned the
    /// breaker into [`BreakerState::Open`] — the edge callers use to
    /// fire a single breaker-opened incident dump per trip.
    pub fn record_failure(&self) -> bool {
        let mut inner = self.inner.lock();
        match inner.state {
            BreakerState::HalfOpen => {
                inner.state = BreakerState::Open;
                inner.opened_at_us = obs::monotonic_us();
                inner.probing = false;
                true
            }
            BreakerState::Open => false,
            BreakerState::Closed => {
                inner.consecutive_failures += 1;
                if inner.consecutive_failures >= self.threshold {
                    inner.state = BreakerState::Open;
                    inner.opened_at_us = obs::monotonic_us();
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Current state (for metrics and tests).
    pub fn state(&self) -> BreakerState {
        self.inner.lock().state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tripped(cooldown: Duration) -> CircuitBreaker {
        let breaker = CircuitBreaker::new(3, cooldown);
        for _ in 0..3 {
            breaker.record_failure();
        }
        breaker
    }

    #[test]
    fn stays_closed_below_threshold() {
        let breaker = CircuitBreaker::new(3, Duration::from_millis(10));
        breaker.record_failure();
        breaker.record_failure();
        assert_eq!(breaker.state(), BreakerState::Closed);
        assert_eq!(breaker.admit(), Admission::Allow);
        // A success resets the consecutive count.
        breaker.record_success();
        breaker.record_failure();
        breaker.record_failure();
        assert_eq!(breaker.state(), BreakerState::Closed);
    }

    #[test]
    fn trips_open_at_threshold_and_deflects() {
        let breaker = tripped(Duration::from_secs(60));
        assert_eq!(breaker.state(), BreakerState::Open);
        assert_eq!(breaker.admit(), Admission::Deflect);
        assert_eq!(breaker.admit(), Admission::Deflect);
    }

    #[test]
    fn cooldown_grants_a_single_probe() {
        let breaker = tripped(Duration::from_micros(1));
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(breaker.admit(), Admission::Probe);
        assert_eq!(breaker.state(), BreakerState::HalfOpen);
        // Only one probe until its outcome lands.
        assert_eq!(breaker.admit(), Admission::Deflect);
    }

    #[test]
    fn probe_success_closes_probe_failure_reopens() {
        let breaker = tripped(Duration::from_micros(1));
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(breaker.admit(), Admission::Probe);
        breaker.record_failure();
        assert_eq!(breaker.state(), BreakerState::Open);

        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(breaker.admit(), Admission::Probe);
        breaker.record_success();
        assert_eq!(breaker.state(), BreakerState::Closed);
        assert_eq!(breaker.admit(), Admission::Allow);
    }
}
