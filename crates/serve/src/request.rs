//! Owned query requests and their canonical fingerprints.
//!
//! A request must live independently of the warehouse it will run
//! against (it sits in a queue, possibly outliving the snapshot it was
//! admitted under), so every variant is a self-contained description:
//! an MDX string, a [`CubeSpec`], or a declarative [`ReportSpec`] that
//! is translated into an `olap::QueryBuilder` chain at execution time.

use analyze::{Catalog, Diagnostics, QueryFootprint};
use clinical_types::{Result, Value};
use obs::{Phase, ProfileBuilder, QueryProfile};
use olap::mdx::{execute_query_profiled, parse_mdx_spanned};
use olap::{
    analyze_cube, analyze_mdx, analyze_report, footprint_cube, footprint_mdx, footprint_report,
    parse_mdx, Cube, CubeSpec, PivotTable,
};
use warehouse::Warehouse;

pub use olap::{ReportMeasure, ReportSpec};

/// A query accepted by the serving layer.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryRequest {
    /// An MDX statement (§V "Reporting Services"), parsed on admission.
    Mdx(String),
    /// A cube materialisation request.
    Cube(CubeSpec),
    /// A declarative report — the owned equivalent of a
    /// `QueryBuilder` chain.
    Report(ReportSpec),
}

impl QueryRequest {
    /// Canonical fingerprint: semantically equivalent requests map to
    /// the same string, so the cache and single-flight table coalesce
    /// them. Parse failures surface here, before the request queues.
    pub fn fingerprint(&self) -> Result<String> {
        match self {
            QueryRequest::Mdx(text) => Ok(parse_mdx(text)?.canonical()),
            QueryRequest::Cube(spec) => Ok(spec.fingerprint()),
            QueryRequest::Report(spec) => Ok(spec.fingerprint()),
        }
    }

    /// Run the semantic analyzer against `catalog`.
    ///
    /// Used by the service at admission: an MDX request gets its query
    /// text attached so diagnostics render caret snippets. Unparseable
    /// MDX never reaches this point — [`QueryRequest::fingerprint`]
    /// fails first.
    pub fn analyze(&self, catalog: &Catalog) -> Diagnostics {
        match self {
            QueryRequest::Mdx(text) => match parse_mdx_spanned(text) {
                Ok((query, spans)) => {
                    let mut diags = analyze_mdx(catalog, &query, &spans);
                    diags.query = Some(text.clone());
                    diags
                }
                Err(_) => Diagnostics::default(),
            },
            QueryRequest::Cube(spec) => analyze_cube(catalog, spec),
            QueryRequest::Report(spec) => analyze_report(catalog, spec),
        }
    }

    /// Execute against a warehouse snapshot.
    ///
    /// Skips the semantic pre-pass: the service has already analyzed
    /// the request at admission, so workers go straight to execution.
    /// The returned outcome carries the [`QueryProfile`] of this run.
    pub fn execute(&self, warehouse: &Warehouse) -> Result<QueryOutcome> {
        let mut profile = ProfileBuilder::start();
        let payload = self.execute_profiled(warehouse, &mut profile)?;
        Ok(QueryOutcome {
            payload,
            profile: profile.finish(),
            degraded: false,
        })
    }

    /// Execute against a warehouse snapshot, attributing the work to
    /// an ongoing `profile` (the worker-pool path: the builder already
    /// holds the caller-side parse/analyze/queue phases).
    pub fn execute_profiled(
        &self,
        warehouse: &Warehouse,
        profile: &mut ProfileBuilder,
    ) -> Result<OutcomePayload> {
        self.execute_profiled_retaining(warehouse, profile)
            .map(|(payload, _)| payload)
    }

    /// Like [`QueryRequest::execute_profiled`], but also returns the
    /// live [`Cube`] for cube requests whose aggregates are
    /// incrementally maintainable — the cache retains it so a later
    /// epoch's appended rows can be folded in instead of rebuilding.
    pub(crate) fn execute_profiled_retaining(
        &self,
        warehouse: &Warehouse,
        profile: &mut ProfileBuilder,
    ) -> Result<(OutcomePayload, Option<Cube>)> {
        match self {
            QueryRequest::Mdx(text) => {
                let query = profile.time(Phase::Parse, || parse_mdx(text))?;
                Ok((
                    OutcomePayload::Pivot(execute_query_profiled(warehouse, &query, profile)?),
                    None,
                ))
            }
            QueryRequest::Cube(spec) => {
                let (cube, stats) =
                    profile.time(Phase::Execute, || Cube::build_with_stats(warehouse, spec))?;
                profile.rows_scanned(stats.rows_scanned);
                profile.segments_pruned(stats.segments_pruned);
                profile.morsels(stats.morsels_executed, stats.rows_scanned);
                let result = profile.time(Phase::Aggregate, || CubeResult::from_cube(&cube));
                profile.cells_emitted(result.cells.len() as u64);
                let retained = Cube::supports_incremental(spec).then_some(cube);
                Ok((OutcomePayload::Cube(result), retained))
            }
            QueryRequest::Report(spec) => {
                let pivot =
                    profile.time(Phase::Execute, || spec.to_builder(warehouse).execute())?;
                profile.rows_scanned(warehouse.n_facts() as u64);
                let cells = pivot.cells.iter().flatten().filter(|c| c.is_some()).count() as u64;
                profile.cells_emitted(cells);
                Ok((OutcomePayload::Pivot(pivot), None))
            }
        }
    }

    /// The set of dimension tables this request reads, resolved
    /// through `catalog` — the query side of cross-epoch cache
    /// revalidation. Unparseable MDX yields a conservative footprint
    /// (it would be rejected before caching anyway).
    pub fn footprint(&self, catalog: &Catalog) -> QueryFootprint {
        match self {
            QueryRequest::Mdx(text) => match parse_mdx(text) {
                Ok(query) => footprint_mdx(catalog, &query),
                Err(_) => QueryFootprint::conservative(),
            },
            QueryRequest::Cube(spec) => footprint_cube(catalog, spec),
            QueryRequest::Report(spec) => footprint_report(catalog, spec),
        }
    }
}

/// The result payload of a request.
#[derive(Debug, Clone, PartialEq)]
pub enum OutcomePayload {
    /// A two-axis pivot (MDX and report requests).
    Pivot(PivotTable),
    /// A materialised cube, flattened to a deterministic cell list.
    Cube(CubeResult),
}

/// What a request produced: the payload plus the execution profile of
/// the run that computed it.
///
/// Equality (and therefore cache-correctness assertions) considers the
/// payload only: a cache hit shares the *producing* execution's
/// profile, which legitimately differs from what a fresh run would
/// record.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The result payload.
    pub payload: OutcomePayload,
    /// Profile of the execution that produced the payload. Default
    /// (empty) when the outcome was constructed without profiling.
    pub profile: QueryProfile,
    /// True when the service answered from a stale cache entry while
    /// its circuit breaker deflected execution: the payload reflects
    /// an older epoch than the live warehouse. Fresh executions and
    /// revalidated cache hits are never degraded.
    pub degraded: bool,
}

impl PartialEq for QueryOutcome {
    fn eq(&self, other: &QueryOutcome) -> bool {
        self.payload == other.payload
    }
}

impl QueryOutcome {
    /// A pivot outcome with no profile (tests, ad-hoc construction).
    pub fn pivot(pivot: PivotTable) -> QueryOutcome {
        QueryOutcome {
            payload: OutcomePayload::Pivot(pivot),
            profile: QueryProfile::default(),
            degraded: false,
        }
    }

    /// A cube outcome with no profile (tests, ad-hoc construction).
    pub fn cube(result: CubeResult) -> QueryOutcome {
        QueryOutcome {
            payload: OutcomePayload::Cube(result),
            profile: QueryProfile::default(),
            degraded: false,
        }
    }

    /// The pivot table, if this outcome is one.
    pub fn as_pivot(&self) -> Option<&PivotTable> {
        match &self.payload {
            OutcomePayload::Pivot(p) => Some(p),
            OutcomePayload::Cube(_) => None,
        }
    }

    /// The cube cell list, if this outcome is one.
    pub fn as_cube(&self) -> Option<&CubeResult> {
        match &self.payload {
            OutcomePayload::Cube(c) => Some(c),
            OutcomePayload::Pivot(_) => None,
        }
    }
}

/// A cube flattened into sorted `(coords, value)` cells — a stable,
/// comparable shape for caching (the live `Cube` hash map has no
/// deterministic order).
#[derive(Debug, Clone, PartialEq)]
pub struct CubeResult {
    /// Axis attribute names, fixing coordinate order.
    pub axes: Vec<String>,
    /// Populated cells, sorted by coordinate.
    pub cells: Vec<(Vec<Value>, f64)>,
}

impl CubeResult {
    /// Flatten `cube`, sorting cells into a canonical order.
    pub fn from_cube(cube: &Cube) -> CubeResult {
        let mut cells: Vec<(Vec<Value>, f64)> = cube
            .iter()
            .map(|(coords, value)| (coords.clone(), value))
            .collect();
        cells.sort_by(|a, b| format!("{:?}", a.0).cmp(&format!("{:?}", b.0)));
        CubeResult {
            axes: cube.axes.clone(),
            cells,
        }
    }

    /// Value at `coords`, if populated.
    pub fn value(&self, coords: &[Value]) -> Option<f64> {
        self.cells
            .iter()
            .find(|(c, _)| c.as_slice() == coords)
            .map(|(_, v)| *v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_fingerprint_ignores_filter_order() {
        let a = ReportSpec::new()
            .on_rows("FBG_Band")
            .where_equals("Gender", "F")
            .where_measure_between("FBG", 5.5, 7.0)
            .count();
        let b = ReportSpec::new()
            .on_rows("FBG_Band")
            .where_measure_between("FBG", 5.5, 7.0)
            .where_equals("Gender", "F")
            .count();
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn report_fingerprint_keeps_axes_significant() {
        let rows = ReportSpec::new().on_rows("FBG_Band").count();
        let cols = ReportSpec::new().on_columns("FBG_Band").count();
        assert_ne!(rows.fingerprint(), cols.fingerprint());
    }

    #[test]
    fn mdx_fingerprint_is_canonical() {
        let a = QueryRequest::Mdx(
            "SELECT [Gender].MEMBERS ON COLUMNS, [FBG_Band].MEMBERS ON ROWS \
             FROM [Medical Measures] WHERE [DiabetesStatus] = 'yes' \
             MEASURE COUNT(*)"
                .into(),
        );
        let b = QueryRequest::Mdx(
            "select [Gender].MEMBERS on columns, [FBG_Band].MEMBERS on rows \
             from [Medical Measures] where [DiabetesStatus] = 'yes' \
             measure count(*)"
                .into(),
        );
        assert_eq!(a.fingerprint().unwrap(), b.fingerprint().unwrap());
    }

    #[test]
    fn bad_mdx_fails_fingerprinting() {
        assert!(QueryRequest::Mdx("SELECT nonsense".into())
            .fingerprint()
            .is_err());
    }
}
