//! Owned query requests and their canonical fingerprints.
//!
//! A request must live independently of the warehouse it will run
//! against (it sits in a queue, possibly outliving the snapshot it was
//! admitted under), so every variant is a self-contained description:
//! an MDX string, a [`CubeSpec`], or a declarative [`ReportSpec`] that
//! is translated into an `olap::QueryBuilder` chain at execution time.

use clinical_types::{Result, Value};
use olap::mdx::execute_query;
use olap::{parse_mdx, Aggregate, Cube, CubeSpec, PivotTable, QueryBuilder};
use warehouse::Warehouse;

/// A query accepted by the serving layer.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryRequest {
    /// An MDX statement (§V "Reporting Services"), parsed on admission.
    Mdx(String),
    /// A cube materialisation request.
    Cube(CubeSpec),
    /// A declarative report — the owned equivalent of a
    /// `QueryBuilder` chain.
    Report(ReportSpec),
}

impl QueryRequest {
    /// Canonical fingerprint: semantically equivalent requests map to
    /// the same string, so the cache and single-flight table coalesce
    /// them. Parse failures surface here, before the request queues.
    pub fn fingerprint(&self) -> Result<String> {
        match self {
            QueryRequest::Mdx(text) => Ok(parse_mdx(text)?.canonical()),
            QueryRequest::Cube(spec) => Ok(spec.fingerprint()),
            QueryRequest::Report(spec) => Ok(spec.fingerprint()),
        }
    }

    /// Execute against a warehouse snapshot.
    pub fn execute(&self, warehouse: &Warehouse) -> Result<QueryOutcome> {
        match self {
            QueryRequest::Mdx(text) => {
                let query = parse_mdx(text)?;
                Ok(QueryOutcome::Pivot(execute_query(warehouse, &query)?))
            }
            QueryRequest::Cube(spec) => {
                let cube = Cube::build(warehouse, spec)?;
                Ok(QueryOutcome::Cube(CubeResult::from_cube(&cube)))
            }
            QueryRequest::Report(spec) => {
                Ok(QueryOutcome::Pivot(spec.to_builder(warehouse).execute()?))
            }
        }
    }
}

/// The measure clause of a [`ReportSpec`].
#[derive(Debug, Clone, PartialEq)]
pub enum ReportMeasure {
    /// `COUNT(*)` — attendance counts.
    Count,
    /// `COUNT(DISTINCT column)` — e.g. distinct patients.
    CountDistinct(String),
    /// An aggregate over a numeric measure.
    Aggregate(Aggregate, String),
}

/// An owned, declarative report request mirroring the
/// `olap::QueryBuilder` surface. Unlike the builder it does not borrow
/// the warehouse, so it can queue and travel between threads.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportSpec {
    rows: Vec<String>,
    cols: Vec<String>,
    equals: Vec<(String, Value)>,
    between: Vec<(String, f64, f64)>,
    measure: ReportMeasure,
}

impl Default for ReportSpec {
    fn default() -> Self {
        ReportSpec::new()
    }
}

impl ReportSpec {
    /// An empty report counting attendances; add axes and filters.
    pub fn new() -> Self {
        ReportSpec {
            rows: Vec::new(),
            cols: Vec::new(),
            equals: Vec::new(),
            between: Vec::new(),
            measure: ReportMeasure::Count,
        }
    }

    /// Add a row-axis attribute.
    pub fn on_rows(mut self, attribute: impl Into<String>) -> Self {
        self.rows.push(attribute.into());
        self
    }

    /// Add a column-axis attribute.
    pub fn on_columns(mut self, attribute: impl Into<String>) -> Self {
        self.cols.push(attribute.into());
        self
    }

    /// Keep only facts where `attribute == value`.
    pub fn where_equals(mut self, attribute: impl Into<String>, value: impl Into<Value>) -> Self {
        self.equals.push((attribute.into(), value.into()));
        self
    }

    /// Keep only facts with `measure` in `[lo, hi)`.
    pub fn where_measure_between(mut self, measure: impl Into<String>, lo: f64, hi: f64) -> Self {
        self.between.push((measure.into(), lo, hi));
        self
    }

    /// Count attendances per cell.
    pub fn count(mut self) -> Self {
        self.measure = ReportMeasure::Count;
        self
    }

    /// Count distinct `degenerate` values per cell.
    pub fn count_distinct(mut self, degenerate: impl Into<String>) -> Self {
        self.measure = ReportMeasure::CountDistinct(degenerate.into());
        self
    }

    /// Aggregate `measure` with `agg` per cell.
    pub fn aggregate(mut self, agg: Aggregate, measure: impl Into<String>) -> Self {
        self.measure = ReportMeasure::Aggregate(agg, measure.into());
        self
    }

    /// Canonical fingerprint. Axis order stays significant (it fixes
    /// the pivot layout); filter conjunct order does not.
    pub fn fingerprint(&self) -> String {
        let mut conds: Vec<String> = self
            .equals
            .iter()
            .map(|(a, v)| format!("{a}={v:?}"))
            .collect();
        conds.extend(
            self.between
                .iter()
                .map(|(m, lo, hi)| format!("{m} in [{lo:?},{hi:?})")),
        );
        conds.sort();
        conds.dedup();
        format!(
            "report|rows={}|cols={}|where=[{}]|measure={:?}",
            self.rows.join(","),
            self.cols.join(","),
            conds.join(" && "),
            self.measure
        )
    }

    /// Translate into a `QueryBuilder` chain over `warehouse`.
    pub fn to_builder<'w>(&self, warehouse: &'w Warehouse) -> QueryBuilder<'w> {
        let mut qb = QueryBuilder::new(warehouse);
        for r in &self.rows {
            qb = qb.on_rows(r.clone());
        }
        for c in &self.cols {
            qb = qb.on_columns(c.clone());
        }
        for (a, v) in &self.equals {
            qb = qb.where_equals(a.clone(), v.clone());
        }
        for (m, lo, hi) in &self.between {
            qb = qb.where_measure_between(m.clone(), *lo, *hi);
        }
        match &self.measure {
            ReportMeasure::Count => qb.count(),
            ReportMeasure::CountDistinct(d) => qb.count_distinct(d.clone()),
            ReportMeasure::Aggregate(agg, m) => qb.aggregate(*agg, m.clone()),
        }
    }
}

/// What a request produced.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutcome {
    /// A two-axis pivot (MDX and report requests).
    Pivot(PivotTable),
    /// A materialised cube, flattened to a deterministic cell list.
    Cube(CubeResult),
}

impl QueryOutcome {
    /// The pivot table, if this outcome is one.
    pub fn as_pivot(&self) -> Option<&PivotTable> {
        match self {
            QueryOutcome::Pivot(p) => Some(p),
            QueryOutcome::Cube(_) => None,
        }
    }

    /// The cube cell list, if this outcome is one.
    pub fn as_cube(&self) -> Option<&CubeResult> {
        match self {
            QueryOutcome::Cube(c) => Some(c),
            QueryOutcome::Pivot(_) => None,
        }
    }
}

/// A cube flattened into sorted `(coords, value)` cells — a stable,
/// comparable shape for caching (the live `Cube` hash map has no
/// deterministic order).
#[derive(Debug, Clone, PartialEq)]
pub struct CubeResult {
    /// Axis attribute names, fixing coordinate order.
    pub axes: Vec<String>,
    /// Populated cells, sorted by coordinate.
    pub cells: Vec<(Vec<Value>, f64)>,
}

impl CubeResult {
    /// Flatten `cube`, sorting cells into a canonical order.
    pub fn from_cube(cube: &Cube) -> CubeResult {
        let mut cells: Vec<(Vec<Value>, f64)> = cube
            .iter()
            .map(|(coords, value)| (coords.clone(), value))
            .collect();
        cells.sort_by(|a, b| format!("{:?}", a.0).cmp(&format!("{:?}", b.0)));
        CubeResult {
            axes: cube.axes.clone(),
            cells,
        }
    }

    /// Value at `coords`, if populated.
    pub fn value(&self, coords: &[Value]) -> Option<f64> {
        self.cells
            .iter()
            .find(|(c, _)| c.as_slice() == coords)
            .map(|(_, v)| *v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_fingerprint_ignores_filter_order() {
        let a = ReportSpec::new()
            .on_rows("FBG_Band")
            .where_equals("Gender", "F")
            .where_measure_between("FBG", 5.5, 7.0)
            .count();
        let b = ReportSpec::new()
            .on_rows("FBG_Band")
            .where_measure_between("FBG", 5.5, 7.0)
            .where_equals("Gender", "F")
            .count();
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn report_fingerprint_keeps_axes_significant() {
        let rows = ReportSpec::new().on_rows("FBG_Band").count();
        let cols = ReportSpec::new().on_columns("FBG_Band").count();
        assert_ne!(rows.fingerprint(), cols.fingerprint());
    }

    #[test]
    fn mdx_fingerprint_is_canonical() {
        let a = QueryRequest::Mdx(
            "SELECT [Gender].MEMBERS ON COLUMNS, [FBG_Band].MEMBERS ON ROWS \
             FROM [Medical Measures] WHERE [DiabetesStatus] = 'yes' \
             MEASURE COUNT(*)"
                .into(),
        );
        let b = QueryRequest::Mdx(
            "select [Gender].MEMBERS on columns, [FBG_Band].MEMBERS on rows \
             from [Medical Measures] where [DiabetesStatus] = 'yes' \
             measure count(*)"
                .into(),
        );
        assert_eq!(a.fingerprint().unwrap(), b.fingerprint().unwrap());
    }

    #[test]
    fn bad_mdx_fails_fingerprinting() {
        assert!(QueryRequest::Mdx("SELECT nonsense".into())
            .fingerprint()
            .is_err());
    }
}
