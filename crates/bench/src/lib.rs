//! Shared fixtures for the DD-DGMS benchmark suite.
//!
//! Every bench target regenerates one of the paper's tables/figures
//! (printed before measurement, so `cargo bench` output doubles as the
//! EXPERIMENTS.md evidence) and then measures the query paths that
//! produce it. Fixtures are seeded and cached per process.

use clinical_types::Table;
use discri::{generate, Cohort, CohortConfig};
use etl::TransformPipeline;
use std::sync::OnceLock;
use warehouse::{LoadPlan, Warehouse};

/// The paper-scale cohort (default seed: 900 patients / ~2500
/// attendances).
pub fn cohort() -> &'static Cohort {
    static COHORT: OnceLock<Cohort> = OnceLock::new();
    COHORT.get_or_init(|| generate(&CohortConfig::default()))
}

/// The transformed attendance table for the paper-scale cohort.
pub fn transformed() -> &'static Table {
    static TABLE: OnceLock<Table> = OnceLock::new();
    TABLE.get_or_init(|| {
        TransformPipeline::discri_default()
            .run(&cohort().attendances)
            .expect("pipeline runs")
            .0
    })
}

/// The loaded Fig. 3 warehouse for the paper-scale cohort.
pub fn warehouse() -> &'static Warehouse {
    static WH: OnceLock<Warehouse> = OnceLock::new();
    WH.get_or_init(|| {
        Warehouse::load(&LoadPlan::discri_default(), transformed()).expect("warehouse loads")
    })
}

/// A transformed table scaled to roughly `n` attendances (for scaling
/// sweeps). Not cached — callers cache per scale as needed.
pub fn transformed_at_scale(n: usize) -> Table {
    let cohort = generate(&CohortConfig::scaled_to_visits(42, n));
    TransformPipeline::discri_default()
        .run(&cohort.attendances)
        .expect("pipeline runs")
        .0
}

/// Load a transformed table into the Fig. 3 warehouse.
pub fn load(table: &Table) -> Warehouse {
    Warehouse::load(&LoadPlan::discri_default(), table).expect("warehouse loads")
}

/// Write a machine-readable bench result as `<workspace root>/<name>`
/// (the format EXPERIMENTS.md documents). Best-effort: bench summaries
/// must never fail the run over an unwritable checkout.
pub fn write_bench_json(name: &str, json: &obs::Json) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(name);
    match std::fs::write(&path, json.render() + "\n") {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
