//! P10 — segmented scan throughput: the zone-map / footprint pruning
//! ablation over both segment backends.
//!
//! A 72k-row warehouse whose `Year` attribute is correlated with
//! arrival order is sealed into 24 one-year segments. A selective
//! query (`Year = one value`) is then answered three ways:
//!
//! * **full** — the legacy whole-column scan (segments disabled);
//! * **zone** — segmented scan with zone-map pruning, but every
//!   column materialised;
//! * **footprint** — zone-map pruning plus footprint-driven column
//!   pruning (the production default).
//!
//! P12 — vectorized scan scaling: a grouped-aggregate query (SUM FBG
//! by Gender × Age_Band, no filter, so all 24 segments survive) is
//! answered by the scalar row-at-a-time loop and by the vectorized
//! kernels at 1/2/4/8 workers, plus a morsel-size sweep at fixed
//! workers (methodology in EXPERIMENTS.md P12).
//!
//! Prints the summaries, writes `BENCH_scan.json` (formats in
//! EXPERIMENTS.md P10/P12), asserts the ≥5× pruning win and the ≥2×
//! kernel win the design promises, then hands the same closures to
//! criterion.

use bench::write_bench_json;
use clinical_types::{DataType, FieldDef, Record, Schema, Table, Value};
use criterion::{criterion_group, criterion_main, Criterion};
use obs::Json;
use olap::{Aggregate, BuildStrategy, Cube, CubeFilter, CubeSpec, ScanOptions};
use segstore::{DiskBackend, MemoryBackend, SegmentBackend};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;
use warehouse::{CompactionConfig, DimensionDef, FactDef, LoadPlan, StarSchema, Warehouse};

const YEARS: usize = 24;
const ROWS_PER_YEAR: usize = 3_000;
const SELECTIVE_YEAR: &str = "2016";

/// Morsel size used by the pruning-ablation modes (the production
/// default, spelled out because const items cannot call
/// `ScanOptions::default`).
const MORSEL_ROWS: usize = 64 * 1024;

/// Scan modes under test: (name, options).
const MODES: [(&str, ScanOptions); 3] = [
    (
        "full",
        ScanOptions {
            zone_pruning: false,
            column_pruning: false,
            segments: false,
            vectorized: true,
            morsel_rows: MORSEL_ROWS,
            workers: None,
        },
    ),
    (
        "zone",
        ScanOptions {
            zone_pruning: true,
            column_pruning: false,
            segments: true,
            vectorized: true,
            morsel_rows: MORSEL_ROWS,
            workers: None,
        },
    ),
    (
        "footprint",
        ScanOptions {
            zone_pruning: true,
            column_pruning: true,
            segments: true,
            vectorized: true,
            morsel_rows: MORSEL_ROWS,
            workers: None,
        },
    ),
];

/// Attendances arriving in year order: sealing clusters each segment
/// around one year, so the zone maps discriminate sharply.
fn year_ordered_warehouse() -> Warehouse {
    let star = StarSchema::new(
        FactDef::new("Facts", vec!["FBG"], vec!["PatientId"]),
        vec![
            DimensionDef::new("Visit", vec!["Year"]),
            DimensionDef::new("Personal", vec!["Gender", "Age_Band"]),
        ],
    )
    .expect("star");
    let schema = Schema::new(vec![
        FieldDef::nullable("Year", DataType::Text),
        FieldDef::nullable("Gender", DataType::Text),
        FieldDef::nullable("Age_Band", DataType::Text),
        FieldDef::nullable("FBG", DataType::Float),
        FieldDef::required("PatientId", DataType::Int),
    ])
    .expect("schema");
    let bands = ["20-40", "40-60", "60-80"];
    let mut records = Vec::with_capacity(YEARS * ROWS_PER_YEAR);
    for y in 0..YEARS {
        let year = (2010 + y).to_string();
        for i in 0..ROWS_PER_YEAR {
            records.push(Record::new(vec![
                Value::from(year.as_str()),
                if i % 2 == 0 { "F".into() } else { "M".into() },
                bands[i % bands.len()].into(),
                Value::Float(4.0 + (i % 24) as f64 * 0.25),
                Value::Int((y * ROWS_PER_YEAR + i) as i64),
            ]));
        }
    }
    let table = Table::from_rows(schema, records).expect("table");
    Warehouse::load(&LoadPlan::from_star(star), &table).expect("load")
}

fn selective_spec() -> CubeSpec {
    CubeSpec::count(vec!["Gender"]).with_filter(CubeFilter::all().equals("Year", SELECTIVE_YEAR))
}

/// The P12 grouped-aggregate query: no filter, so every segment
/// survives pruning and the scan itself — filter, group, aggregate —
/// is what gets measured.
fn grouped_spec() -> CubeSpec {
    CubeSpec::measure(vec!["Gender", "Age_Band"], Aggregate::Sum, "FBG")
        .with_strategy(BuildStrategy::ParallelHash)
}

fn sealed(backend: Arc<dyn SegmentBackend>) -> Warehouse {
    let mut wh = year_ordered_warehouse();
    wh.set_segment_backend(backend).expect("backend");
    wh.compact_with(&CompactionConfig {
        target_rows_per_segment: ROWS_PER_YEAR,
        sort: true,
    })
    .expect("compact");
    wh
}

fn disk_dir() -> std::path::PathBuf {
    std::env::temp_dir().join(format!("bench_scan_{}", std::process::id()))
}

/// Best-of-`runs` seconds per query: the minimum is the standard
/// noise-robust estimator — scheduler preemption and frequency shifts
/// only ever make a run slower, never faster.
fn time_mode(wh: &Warehouse, spec: &CubeSpec, options: &ScanOptions, runs: u32) -> f64 {
    for _ in 0..2 {
        black_box(Cube::build_with_options(wh, spec, options).expect("cube"));
    }
    (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            black_box(Cube::build_with_options(wh, spec, options).expect("cube"));
            t0.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn regenerate_summary() -> Vec<(&'static str, Warehouse)> {
    println!("\n=== P10: segmented scan — full vs zone-pruned vs footprint-pruned ===");
    let dir = disk_dir();
    std::fs::remove_dir_all(&dir).ok();
    let backends: Vec<(&'static str, Warehouse)> = vec![
        ("memory", sealed(Arc::new(MemoryBackend::new()))),
        (
            "disk",
            sealed(Arc::new(DiskBackend::create(&dir).expect("disk backend"))),
        ),
    ];
    let spec = selective_spec();
    let n_rows = (YEARS * ROWS_PER_YEAR) as f64;
    const RUNS: u32 = 20;

    let mut backend_objs = Vec::new();
    for (kind, wh) in &backends {
        let (_, stats) =
            Cube::build_with_options(wh, &spec, &ScanOptions::default()).expect("cube");
        assert_eq!(stats.segments_total, YEARS as u64);
        assert_eq!(
            stats.segments_pruned,
            (YEARS - 1) as u64,
            "selective query must keep exactly one segment"
        );

        let mut per_mode = Vec::new();
        for (mode, options) in &MODES {
            let secs = time_mode(wh, &spec, options, RUNS);
            let rows_per_sec = n_rows / secs;
            per_mode.push((*mode, rows_per_sec));
            println!(
                "{kind:>6}/{mode:<9} {rows_per_sec:>14.0} rows/s  ({:.1}µs/query)",
                secs * 1e6
            );
        }
        let full = per_mode[0].1;
        let zone_speedup = per_mode[1].1 / full;
        let footprint_speedup = per_mode[2].1 / full;
        println!("{kind:>6} speedup: zone {zone_speedup:.1}x | footprint {footprint_speedup:.1}x");
        // The acceptance bar: pruning must buy at least 5× effective
        // row throughput on selective queries, on every backend.
        assert!(
            zone_speedup >= 5.0 && footprint_speedup >= 5.0,
            "{kind}: pruning speedup below 5x (zone {zone_speedup:.1}x, \
             footprint {footprint_speedup:.1}x)"
        );
        backend_objs.push((
            *kind,
            Json::obj([
                ("full_rows_per_sec", Json::Float(per_mode[0].1)),
                ("zone_rows_per_sec", Json::Float(per_mode[1].1)),
                ("footprint_rows_per_sec", Json::Float(per_mode[2].1)),
                ("zone_speedup", Json::Float(zone_speedup)),
                ("footprint_speedup", Json::Float(footprint_speedup)),
                ("segments_total", Json::Int(stats.segments_total as i64)),
                ("segments_pruned", Json::Int(stats.segments_pruned as i64)),
                ("rows_scanned_pruned", Json::Int(stats.rows_scanned as i64)),
            ]),
        ));
    }

    let scaling = scaling_summary(&backends[0].1);

    write_bench_json(
        "BENCH_scan.json",
        &Json::obj([
            ("bench", Json::Str("scan".into())),
            ("rows", Json::Int((YEARS * ROWS_PER_YEAR) as i64)),
            ("segments", Json::Int(YEARS as i64)),
            (
                "selective_filter",
                Json::Str(format!("Year = {SELECTIVE_YEAR}")),
            ),
            ("runs", Json::Int(i64::from(RUNS))),
            (
                "backends",
                Json::obj(backend_objs.iter().map(|(k, v)| (*k, v.clone()))),
            ),
            ("scaling", scaling),
        ]),
    );
    backends
}

/// P12 — grouped-aggregate scan scaling: scalar loop vs vectorized
/// kernels at matched worker counts, plus a morsel-size sweep.
/// Returns the JSON object stored under `scaling` in BENCH_scan.json.
fn scaling_summary(wh: &Warehouse) -> Json {
    println!("\n=== P12: grouped-aggregate scan — scalar loop vs vectorized kernels ===");
    let spec = grouped_spec();
    let n_rows = (YEARS * ROWS_PER_YEAR) as f64;
    const RUNS: u32 = 20;

    let mut thread_objs = Vec::new();
    let mut min_speedup = f64::INFINITY;
    for threads in [1usize, 2, 4, 8] {
        let scalar_opts = ScanOptions {
            vectorized: false,
            workers: Some(threads),
            ..ScanOptions::default()
        };
        let kernel_opts = ScanOptions {
            vectorized: true,
            workers: Some(threads),
            ..ScanOptions::default()
        };
        let scalar = n_rows / time_mode(wh, &spec, &scalar_opts, RUNS);
        let kernel = n_rows / time_mode(wh, &spec, &kernel_opts, RUNS);
        let speedup = kernel / scalar;
        min_speedup = min_speedup.min(speedup);
        println!(
            "{threads:>2} workers  scalar {scalar:>14.0} rows/s | kernel {kernel:>14.0} rows/s \
             | {speedup:.1}x"
        );
        thread_objs.push(Json::obj([
            ("threads", Json::Int(threads as i64)),
            ("scalar_rows_per_sec", Json::Float(scalar)),
            ("kernel_rows_per_sec", Json::Float(kernel)),
            ("kernel_speedup", Json::Float(speedup)),
        ]));
    }
    // The acceptance bar: the kernels must at least double grouped
    // scan throughput over the pre-kernel scalar loop at every
    // matched worker count (the check.sh gate re-reads this from
    // BENCH_scan.json).
    assert!(
        min_speedup >= 2.0,
        "vectorized kernels below 2x the scalar loop (min {min_speedup:.2}x)"
    );

    // Morsel-size sweep at fixed workers: segments hold 3 000 rows,
    // so sizes ≥ 3 000 collapse to one morsel per segment and the
    // sweep exposes pure scheduling overhead below that.
    let mut morsel_objs = Vec::new();
    for morsel_rows in [375usize, 750, 1_500, 3_000, MORSEL_ROWS] {
        let options = ScanOptions {
            vectorized: true,
            morsel_rows,
            workers: Some(4),
            ..ScanOptions::default()
        };
        let rows_per_sec = n_rows / time_mode(wh, &spec, &options, RUNS);
        let (_, stats) = Cube::build_with_options(wh, &spec, &options).expect("cube");
        println!(
            "morsel {morsel_rows:>6} rows  {rows_per_sec:>14.0} rows/s  \
             ({} morsels)",
            stats.morsels_executed
        );
        morsel_objs.push(Json::obj([
            ("morsel_rows", Json::Int(morsel_rows as i64)),
            ("rows_per_sec", Json::Float(rows_per_sec)),
            ("morsels_executed", Json::Int(stats.morsels_executed as i64)),
        ]));
    }

    Json::obj([
        (
            "spec",
            Json::Str("SUM(FBG) by Gender x Age_Band, ParallelHash".into()),
        ),
        ("runs", Json::Int(i64::from(RUNS))),
        ("min_kernel_speedup", Json::Float(min_speedup)),
        ("threads", Json::Arr(thread_objs)),
        ("morsel_sweep", Json::Arr(morsel_objs)),
    ])
}

fn bench_scan(c: &mut Criterion) {
    let backends = regenerate_summary();
    let spec = selective_spec();
    for (kind, wh) in &backends {
        for (mode, options) in &MODES {
            c.bench_function(&format!("scan/{kind}/{mode}"), |b| {
                b.iter(|| {
                    black_box(
                        Cube::build_with_options(wh, black_box(&spec), options).expect("cube"),
                    )
                })
            });
        }
    }
    let grouped = grouped_spec();
    for (name, vectorized) in [("scalar", false), ("kernel", true)] {
        let options = ScanOptions {
            vectorized,
            workers: Some(4),
            ..ScanOptions::default()
        };
        c.bench_function(&format!("scan/scaling/{name}_w4"), |b| {
            b.iter(|| {
                black_box(
                    Cube::build_with_options(&backends[0].1, black_box(&grouped), &options)
                        .expect("cube"),
                )
            })
        });
    }
    std::fs::remove_dir_all(disk_dir()).ok();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_scan
}
criterion_main!(benches);
