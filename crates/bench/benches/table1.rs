//! T1 — the paper's Table I: clinical discretisation schemes.
//!
//! Regenerates the table (scheme definitions + band populations over
//! the synthetic cohort), then benchmarks scheme application.

use bench::{cohort, transformed};
use clinical_types::Value;
use criterion::{criterion_group, criterion_main, Criterion};
use etl::{table1_schemes, Discretiser};
use std::collections::BTreeMap;
use std::hint::black_box;

fn regenerate_table1() {
    println!("\n=== TABLE I: clinical discretisation schemes ===");
    println!("{:<18} {:<44} scheme", "Attribute", "Description");
    for s in table1_schemes() {
        println!(
            "{:<18} {:<44} {}",
            s.attribute,
            s.description,
            s.bins.labels().join(" | ")
        );
    }
    println!("\nBand populations (synthetic DiScRi, seed 42):");
    let table = &cohort().attendances;
    for s in table1_schemes() {
        let mut counts: BTreeMap<usize, usize> = BTreeMap::new();
        for v in table.column(&s.attribute).expect("attribute exists") {
            if let Some(x) = v.as_f64() {
                if x >= 0.0 {
                    *counts.entry(s.bins.assign(x)).or_insert(0) += 1;
                }
            }
        }
        let rendered: Vec<String> = counts
            .iter()
            .map(|(bin, n)| format!("{}={n}", s.bins.labels()[*bin]))
            .collect();
        println!("  {:<18} {}", s.attribute, rendered.join("  "));
    }
    println!();
}

fn bench_table1(c: &mut Criterion) {
    regenerate_table1();
    let fbg: Vec<f64> = transformed()
        .column("FBG")
        .expect("FBG exists")
        .filter_map(Value::as_f64)
        .collect();
    let schemes = table1_schemes();
    let fbg_scheme = &schemes[2];

    c.bench_function("table1/assign_fbg_band_per_value", |b| {
        b.iter(|| {
            let mut counts = [0usize; 4];
            for x in &fbg {
                counts[fbg_scheme.bins.assign(black_box(*x))] += 1;
            }
            black_box(counts)
        })
    });

    c.bench_function("table1/apply_all_schemes_to_cohort", |b| {
        let table = &cohort().attendances;
        b.iter(|| {
            let mut total = 0usize;
            for s in &schemes {
                for v in table.column(&s.attribute).expect("attribute exists") {
                    if let Some(x) = v.as_f64() {
                        total += s.bins.assign(x);
                    }
                }
            }
            black_box(total)
        })
    });

    c.bench_function("table1/clinical_scheme_fit_is_constant", |b| {
        b.iter(|| black_box(fbg_scheme.fit(&fbg, None).expect("fit")))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_table1
}
criterion_main!(benches);
