//! F6 — the paper's Fig. 6: years-since-hypertension-diagnosis bands
//! by age group, with the drill-down that exposes the 5–10-year dip in
//! the 70–75 and 75–80 sub-groups.

use bench::warehouse;
use clinical_types::Value;
use criterion::{criterion_group, criterion_main, Criterion};
use olap::{execute_mdx, Cube, CubeFilter, CubeSpec};
use std::hint::black_box;

const COARSE: &str = "SELECT [DiagnosticHTYears_Band].MEMBERS ON COLUMNS, \
                      [Age_Band].MEMBERS ON ROWS \
                      FROM [Medical Measures] WHERE [HypertensionStatus] = 'yes' \
                      MEASURE COUNT(*)";
const FINE: &str = "SELECT [DiagnosticHTYears_Band].MEMBERS ON COLUMNS, \
                    [Age_SubGroup].MEMBERS ON ROWS \
                    FROM [Medical Measures] WHERE [HypertensionStatus] = 'yes' \
                    MEASURE COUNT(*)";

fn regenerate_fig6() {
    println!("\n=== FIG 6: years since hypertension diagnosis by age group ===");
    let fine = execute_mdx(warehouse(), FINE).expect("fine query");
    print!("{}", fine.render());
    let share = |age: &str| {
        let five_ten = fine
            .get(&Value::from(age), &Value::from("5-10"))
            .unwrap_or(0.0);
        let total: f64 = ["<2", "2-5", "5-10", "10-20", ">20"]
            .iter()
            .filter_map(|b| fine.get(&Value::from(age), &Value::from(*b)))
            .sum();
        if total > 0.0 {
            five_ten / total
        } else {
            0.0
        }
    };
    println!(
        "5-10 band share: 65-70 {:.2} | 70-75 {:.2} | 75-80 {:.2}  (dip reproduced: {})",
        share("65-70"),
        share("70-75"),
        share("75-80"),
        share("70-75") < share("65-70") * 0.75 && share("75-80") < share("65-70") * 0.75
    );
    println!();
}

fn bench_fig6(c: &mut Criterion) {
    regenerate_fig6();
    let wh = warehouse();

    c.bench_function("fig6/coarse_query", |b| {
        b.iter(|| black_box(execute_mdx(wh, black_box(COARSE)).expect("query")))
    });

    c.bench_function("fig6/drilldown_query", |b| {
        b.iter(|| black_box(execute_mdx(wh, black_box(FINE)).expect("query")))
    });

    // The same figure via the cube API directly (no MDX overhead).
    c.bench_function("fig6/cube_api_direct", |b| {
        let spec = CubeSpec::count(vec!["Age_SubGroup", "DiagnosticHTYears_Band"])
            .with_filter(CubeFilter::all().equals("HypertensionStatus", "yes"));
        b.iter(|| black_box(Cube::build(wh, black_box(&spec)).expect("cube")))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_fig6
}
criterion_main!(benches);
