//! P3 — warehouse load and cube build scaling, plus two DESIGN.md
//! ablations:
//!
//! * **group-by strategy** — hash vs sort vs parallel-hash cube build;
//! * **surrogate keys** — dictionary-encoded dimension keys vs
//!   grouping directly on materialised string keys (what a star schema
//!   without surrogate keys would do).

use bench::{load, transformed, transformed_at_scale};
use clinical_types::Table;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use olap::{BuildStrategy, Cube, CubeSpec};
use std::collections::HashMap;
use std::hint::black_box;
use warehouse::LoadPlan;

fn bench_load_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("load_and_cube/warehouse_load");
    group.sample_size(10);
    for scale in [2_500usize, 10_000, 40_000] {
        let table = if scale == 2_500 {
            transformed().clone()
        } else {
            transformed_at_scale(scale)
        };
        group.bench_with_input(BenchmarkId::from_parameter(scale), &table, |b, t| {
            let plan = LoadPlan::discri_default();
            b.iter(|| black_box(warehouse::Warehouse::load(&plan, black_box(t)).expect("load")))
        });
    }
    group.finish();
}

fn bench_strategies(c: &mut Criterion) {
    let table = transformed_at_scale(40_000);
    let wh = load(&table);
    let mut group = c.benchmark_group("load_and_cube/strategy_40k");
    group.sample_size(10);
    for (name, strategy) in [
        ("hash", BuildStrategy::Hash),
        ("sort", BuildStrategy::Sort),
        ("parallel_hash", BuildStrategy::ParallelHash),
    ] {
        group.bench_function(name, |b| {
            let spec =
                CubeSpec::count(vec!["Gender", "Age_SubGroup", "FBG_Band"]).with_strategy(strategy);
            b.iter(|| black_box(Cube::build(&wh, black_box(&spec)).expect("cube")))
        });
    }
    group.finish();
}

/// The no-surrogate-keys baseline: group the raw table rows on string
/// keys assembled per row.
fn string_key_group_by(table: &Table, columns: &[&str]) -> HashMap<String, usize> {
    let idx: Vec<usize> = columns
        .iter()
        .map(|c| table.schema().index_of(c).expect("column"))
        .collect();
    let mut groups: HashMap<String, usize> = HashMap::new();
    for row in table.rows() {
        let mut key = String::new();
        for &i in &idx {
            key.push_str(&row.values()[i].to_string());
            key.push('\u{1f}');
        }
        *groups.entry(key).or_insert(0) += 1;
    }
    groups
}

fn bench_surrogate_ablation(c: &mut Criterion) {
    let table = transformed_at_scale(40_000);
    let wh = load(&table);
    let columns = ["Gender", "Age_SubGroup", "FBG_Band"];
    let mut group = c.benchmark_group("load_and_cube/surrogate_vs_string_keys_40k");
    group.sample_size(10);
    group.bench_function("surrogate_key_cube", |b| {
        let spec = CubeSpec::count(columns.to_vec());
        b.iter(|| black_box(Cube::build(&wh, black_box(&spec)).expect("cube")))
    });
    group.bench_function("string_key_scan", |b| {
        b.iter(|| black_box(string_key_group_by(black_box(&table), &columns)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_load_scaling, bench_strategies, bench_surrogate_ablation
}
criterion_main!(benches);
