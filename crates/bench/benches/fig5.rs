//! F5 — the paper's Fig. 5: age and gender distribution of patients
//! with diabetes at two drill-down levels, including the reported
//! gender crossover in the 70–80 decade.
//!
//! Regenerates both granularities with the reproduction verdicts, then
//! benchmarks the coarse query, the drill-down and the chart render.

use bench::warehouse;
use clinical_types::Value;
use criterion::{criterion_group, criterion_main, Criterion};
use olap::execute_mdx;
use std::hint::black_box;
use viz::GroupedBarChart;

const COARSE: &str = "SELECT [Gender].MEMBERS ON COLUMNS, [Age_Band].MEMBERS ON ROWS \
                      FROM [Medical Measures] WHERE [DiabetesStatus] = 'yes' \
                      MEASURE COUNT(DISTINCT [PatientId])";
const FINE: &str = "SELECT [Gender].MEMBERS ON COLUMNS, [Age_SubGroup].MEMBERS ON ROWS \
                    FROM [Medical Measures] WHERE [DiabetesStatus] = 'yes' \
                    MEASURE COUNT(DISTINCT [PatientId])";

fn regenerate_fig5() {
    println!("\n=== FIG 5: diabetic patients by age and gender ===");
    let coarse = execute_mdx(warehouse(), COARSE).expect("coarse query");
    print!("{}", coarse.render());
    println!("--- drill-down to five-year sub-groups ---");
    let fine = execute_mdx(warehouse(), FINE).expect("fine query");
    print!("{}", fine.render());
    let get = |r: &str, c: &str| fine.get(&Value::from(r), &Value::from(c)).unwrap_or(0.0);
    println!(
        "shape checks: males dominate 70-75: {} | females majority 75-80: {} | female drop >78: {}",
        get("70-75", "M") > get("70-75", "F"),
        get("75-80", "F") > get("75-80", "M"),
        get("80-85", "F") + get(">=85", "F") < get("75-80", "F") * 0.8,
    );
    println!();
}

fn bench_fig5(c: &mut Criterion) {
    regenerate_fig5();
    let wh = warehouse();

    c.bench_function("fig5/coarse_distribution_query", |b| {
        b.iter(|| black_box(execute_mdx(wh, black_box(COARSE)).expect("query")))
    });

    c.bench_function("fig5/drilldown_distribution_query", |b| {
        b.iter(|| black_box(execute_mdx(wh, black_box(FINE)).expect("query")))
    });

    c.bench_function("fig5/chart_render", |b| {
        let pivot = execute_mdx(wh, FINE).expect("query");
        let chart = GroupedBarChart::titled("fig5");
        b.iter(|| black_box(chart.render(black_box(&pivot)).expect("render")))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_fig5
}
criterion_main!(benches);
