//! PRF — per-query execution profiles: the cost of profiling the OLAP
//! path, and the phase breakdown of the Fig. 5 distribution query.
//!
//! Prints an `EXPLAIN ANALYZE`-style profile first and writes the
//! machine-readable `BENCH_olap.json` summary (format documented in
//! EXPERIMENTS.md), then measures plain vs profiled execution so the
//! observability overhead stays visible in CI history.

use bench::{warehouse, write_bench_json};
use criterion::{criterion_group, criterion_main, Criterion};
use obs::{Json, ProfileBuilder, QueryProfile};
use olap::mdx::{execute_query_profiled, execute_query_unchecked};
use olap::parse_mdx;
use std::hint::black_box;
use std::time::Instant;

const FIG5: &str = "SELECT [Gender].MEMBERS ON COLUMNS, [Age_SubGroup].MEMBERS ON ROWS \
                    FROM [Medical Measures] WHERE [DiabetesStatus] = 'yes' \
                    MEASURE COUNT(DISTINCT [PatientId])";

fn profiled_run() -> QueryProfile {
    let wh = warehouse();
    let mut profile = ProfileBuilder::start();
    let query = profile
        .time(obs::Phase::Parse, || parse_mdx(FIG5))
        .expect("parse");
    execute_query_profiled(wh, &query, &mut profile).expect("query");
    profile.finish()
}

/// The same work as [`profiled_run`] minus phase accounting — NOT
/// `execute_mdx`, whose per-call catalog build + semantic analysis
/// would make "plain" the *slower* variant and the overhead negative.
fn plain_run() -> olap::PivotTable {
    let query = parse_mdx(FIG5).expect("parse");
    execute_query_unchecked(warehouse(), &query).expect("query")
}

fn regenerate_summary() {
    println!("\n=== OLAP PROFILE: Fig. 5 query phase breakdown ===");
    let profile = profiled_run();
    println!("{profile}");

    // Overhead of carrying a profile through execution (criterion
    // below gives the precise number; this one goes into the JSON
    // summary). Both variants warm up first and then interleave, so
    // neither side pays the cold caches alone — running all plain
    // iterations before all profiled ones used to yield a *negative*
    // overhead, an ordering artifact, not a measurement.
    const WARMUP: u32 = 3;
    const RUNS: u32 = 20;
    for _ in 0..WARMUP {
        black_box(plain_run());
        black_box(profiled_run());
    }
    let mut plain_total_us = 0.0;
    let mut profiled_total_us = 0.0;
    for _ in 0..RUNS {
        let t0 = Instant::now();
        black_box(plain_run());
        plain_total_us += t0.elapsed().as_micros() as f64;
        let t1 = Instant::now();
        black_box(profiled_run());
        profiled_total_us += t1.elapsed().as_micros() as f64;
    }
    let plain_us = plain_total_us / RUNS as f64;
    let profiled_us = profiled_total_us / RUNS as f64;
    let overhead_pct = (profiled_us / plain_us.max(1e-9) - 1.0) * 100.0;
    println!("plain {plain_us:.0}µs | profiled {profiled_us:.0}µs | overhead {overhead_pct:+.1}%");
    // Profiling a query is a handful of clock reads: anything far
    // outside this band means the harness is measuring noise (or the
    // interleaving regressed) and the JSON would memorialise garbage.
    assert!(
        (-15.0..75.0).contains(&overhead_pct),
        "profiling overhead {overhead_pct:+.1}% outside sanity band"
    );

    write_bench_json(
        "BENCH_olap.json",
        &Json::obj([
            ("bench", Json::Str("olap_profile".into())),
            ("query", Json::Str(FIG5.into())),
            ("profile", profile.to_json()),
            ("runs", Json::Int(RUNS as i64)),
            ("plain_us", Json::Float(plain_us)),
            ("profiled_us", Json::Float(profiled_us)),
            ("overhead_pct", Json::Float(overhead_pct)),
        ]),
    );
}

fn bench_olap_profile(c: &mut Criterion) {
    regenerate_summary();

    c.bench_function("olap_profile/plain_fig5", |b| {
        b.iter(|| black_box(plain_run()))
    });
    c.bench_function("olap_profile/profiled_fig5", |b| {
        b.iter(|| black_box(profiled_run()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_olap_profile
}
criterion_main!(benches);
