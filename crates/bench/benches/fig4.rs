//! F4 — the paper's Fig. 4: drag-and-drop query construction
//! ("family history of diabetes by age group and by gender").
//!
//! Regenerates the pivot the BI Studio screenshot shows, then
//! benchmarks the two query interfaces (builder and MDX) end to end.

use bench::warehouse;
use criterion::{criterion_group, criterion_main, Criterion};
use olap::{execute_mdx, parse_mdx, QueryBuilder};
use std::hint::black_box;

const FIG4_MDX: &str = "SELECT [Gender].MEMBERS ON COLUMNS, [Age_Band].MEMBERS ON ROWS \
                        FROM [Medical Measures] MEASURE COUNT(*)";

fn regenerate_fig4() {
    println!("\n=== FIG 4: family history of diabetes by age group & gender ===");
    let pivot = QueryBuilder::new(warehouse())
        .on_rows("Age_Band")
        .on_columns("Gender")
        .where_equals("FamilyHistoryDiabetes", true)
        .count()
        .execute()
        .expect("fig4 query");
    print!("{}", pivot.render());
    println!();
}

fn bench_fig4(c: &mut Criterion) {
    regenerate_fig4();
    let wh = warehouse();

    c.bench_function("fig4/builder_query_end_to_end", |b| {
        b.iter(|| {
            black_box(
                QueryBuilder::new(wh)
                    .on_rows("Age_Band")
                    .on_columns("Gender")
                    .where_equals("FamilyHistoryDiabetes", true)
                    .count()
                    .execute()
                    .expect("query"),
            )
        })
    });

    c.bench_function("fig4/mdx_parse_only", |b| {
        b.iter(|| black_box(parse_mdx(black_box(FIG4_MDX)).expect("parse")))
    });

    c.bench_function("fig4/mdx_end_to_end", |b| {
        b.iter(|| black_box(execute_mdx(wh, black_box(FIG4_MDX)).expect("exec")))
    });

    c.bench_function("fig4/drill_down_requery", |b| {
        b.iter(|| {
            black_box(
                QueryBuilder::new(wh)
                    .on_rows("Age_Band")
                    .on_columns("Gender")
                    .count()
                    .drill_down("Age_Band")
                    .expect("hierarchy")
                    .execute()
                    .expect("query"),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_fig4
}
criterion_main!(benches);
