//! SRV — the serving subsystem: cold vs warm latency on the Fig. 5
//! distribution query, and service throughput as client concurrency
//! grows.
//!
//! Prints a cold/warm/coalescing summary first (the EXPERIMENTS.md
//! evidence), then measures: direct execution, a cache miss through
//! the service, a cache hit, and closed-loop throughput at 1–16
//! client threads.

use bench::{warehouse, write_bench_json};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use obs::Json;
use olap::execute_mdx;
use serve::{QueryRequest, QueryService, ServeConfig, ServedSource};
use std::hint::black_box;
use std::thread;
use std::time::Instant;

const FIG5: &str = "SELECT [Gender].MEMBERS ON COLUMNS, [Age_SubGroup].MEMBERS ON ROWS \
                    FROM [Medical Measures] WHERE [DiabetesStatus] = 'yes' \
                    MEASURE COUNT(DISTINCT [PatientId])";

fn service(workers: usize) -> QueryService {
    QueryService::new(
        warehouse().clone(),
        ServeConfig {
            workers,
            queue_depth: 256,
            ..ServeConfig::default()
        },
    )
}

/// Closed-loop throughput at `threads` clients × `rounds` requests
/// each; returns (total requests, elapsed, final snapshot).
fn measure_throughput(
    threads: usize,
    rounds: usize,
) -> (u64, std::time::Duration, serve::MetricsSnapshot) {
    let svc = service(4);
    let t0 = Instant::now();
    thread::scope(|s| {
        for t in 0..threads {
            let svc = &svc;
            s.spawn(move || {
                for round in 0..rounds {
                    let mdx = if round % 2 == 0 {
                        FIG5.to_string()
                    } else {
                        format!(
                            "SELECT [Gender].MEMBERS ON COLUMNS, \
                             [Age_Band].MEMBERS ON ROWS \
                             FROM [Medical Measures] \
                             WHERE [BMI] BETWEEN 15 AND {} \
                             MEASURE COUNT(*)",
                            40 + t
                        )
                    };
                    svc.execute(&QueryRequest::Mdx(mdx)).expect("serve");
                }
            });
        }
    });
    let elapsed = t0.elapsed();
    ((threads * rounds) as u64, elapsed, svc.shutdown())
}

/// One `{"threads":…,"requests":…,"elapsed_us":…,"rps":…,…}` record.
fn throughput_record(threads: usize, rounds: usize) -> Json {
    let (requests, elapsed, m) = measure_throughput(threads, rounds);
    let rps = requests as f64 / elapsed.as_secs_f64().max(1e-9);
    println!(
        "{threads:>2} clients: {requests} requests in {elapsed:?} ({rps:.0} req/s, \
         amortised {:.0}%)",
        m.amortised_rate() * 100.0
    );
    Json::obj([
        ("threads", Json::Int(threads as i64)),
        ("requests", Json::Int(requests as i64)),
        (
            "elapsed_us",
            Json::Int(elapsed.as_micros().min(i64::MAX as u128) as i64),
        ),
        ("rps", Json::Float(rps)),
        ("amortised_rate", Json::Float(m.amortised_rate())),
        (
            "p50_us",
            Json::Int(m.p50().map_or(0, |d| d.as_micros() as i64)),
        ),
        (
            "p95_us",
            Json::Int(m.p95().map_or(0, |d| d.as_micros() as i64)),
        ),
        (
            "p99_us",
            Json::Int(m.p99().map_or(0, |d| d.as_micros() as i64)),
        ),
    ])
}

fn regenerate_summary() {
    println!("\n=== SERVE: cold vs warm on the Fig. 5 query ===");
    let svc = service(4);
    let request = QueryRequest::Mdx(FIG5.into());

    let t0 = Instant::now();
    let cold = svc.execute(&request).expect("cold serve");
    let cold_t = t0.elapsed();
    let t1 = Instant::now();
    let warm = svc.execute(&request).expect("warm serve");
    let warm_t = t1.elapsed();
    assert_eq!(cold.source, ServedSource::Executed);
    assert_eq!(warm.source, ServedSource::Cache);
    assert_eq!(cold.value, warm.value, "cache must not change the answer");

    let speedup = cold_t.as_secs_f64() / warm_t.as_secs_f64().max(1e-9);
    println!("cold {cold_t:?} | warm {warm_t:?} | speedup {speedup:.0}x");

    // Machine-readable summary (format documented in EXPERIMENTS.md).
    println!("\n=== SERVE: closed-loop throughput sweep ===");
    let sweep: Vec<Json> = [1usize, 2, 4, 8]
        .iter()
        .map(|&threads| throughput_record(threads, 32))
        .collect();
    write_bench_json(
        "BENCH_serve.json",
        &Json::obj([
            ("bench", Json::Str("serve".into())),
            ("query", Json::Str(FIG5.into())),
            ("cold_us", Json::Int(cold_t.as_micros() as i64)),
            ("warm_us", Json::Int(warm_t.as_micros() as i64)),
            ("speedup", Json::Float(speedup)),
            ("throughput", Json::Arr(sweep)),
        ]),
    );

    // Eight clients, one query, fresh service: single-flight makes it
    // one execution.
    drop(svc);
    let svc = service(4);
    thread::scope(|s| {
        for _ in 0..8 {
            let svc = &svc;
            let request = &request;
            s.spawn(move || svc.execute(request).expect("serve"));
        }
    });
    let m = svc.shutdown();
    println!(
        "8 concurrent identical queries → executed {} | coalesced {} | hits {}",
        m.executed, m.coalesced, m.hits
    );
    println!("{m}\n");

    // Admission gate: invalid queries are rejected by the semantic
    // analyzer before they cost a queue slot or an execution.
    let svc = service(4);
    let invalid = QueryRequest::Mdx(
        "SELECT [Gendr].MEMBERS ON COLUMNS, [Age_SubGroup].MEMBERS ON ROWS \
         FROM [Medical Measures] MEASURE COUNT(*)"
            .into(),
    );
    let t2 = Instant::now();
    let err = svc.execute(&invalid).expect_err("analyzer must reject");
    let reject_t = t2.elapsed();
    let m = svc.shutdown();
    assert_eq!(m.rejected_invalid, 1);
    assert_eq!(m.executed, 0);
    println!(
        "invalid query rejected at admission in {reject_t:?} \
         (rejected-invalid {} | executed {}) — first line: {}",
        m.rejected_invalid,
        m.executed,
        err.to_string().lines().next().unwrap_or_default()
    );
}

fn bench_serve(c: &mut Criterion) {
    regenerate_summary();
    let wh = warehouse();

    c.bench_function("serve/direct_fig5_query", |b| {
        b.iter(|| black_box(execute_mdx(wh, black_box(FIG5)).expect("query")))
    });

    let svc = service(4);
    let request = QueryRequest::Mdx(FIG5.into());

    c.bench_function("serve/cold_cache_miss", |b| {
        b.iter(|| {
            svc.clear_cache();
            black_box(svc.execute(black_box(&request)).expect("serve"))
        })
    });

    svc.execute(&request).expect("prime the cache");
    c.bench_function("serve/warm_cache_hit", |b| {
        b.iter(|| black_box(svc.execute(black_box(&request)).expect("serve")))
    });
    drop(svc);

    // Closed-loop throughput: each client thread issues its own
    // stream of distinct-then-repeated queries against a shared
    // 4-worker service; one iteration = `threads` × 8 requests.
    let mut group = c.benchmark_group("serve/throughput");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8, 16] {
        let svc = service(4);
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    thread::scope(|s| {
                        for t in 0..threads {
                            let svc = &svc;
                            s.spawn(move || {
                                for round in 0..8 {
                                    // Half the stream repeats (cache +
                                    // single-flight territory), half
                                    // varies by thread.
                                    let mdx = if round % 2 == 0 {
                                        FIG5.to_string()
                                    } else {
                                        format!(
                                            "SELECT [Gender].MEMBERS ON COLUMNS, \
                                             [Age_Band].MEMBERS ON ROWS \
                                             FROM [Medical Measures] \
                                             WHERE [BMI] BETWEEN 15 AND {} \
                                             MEASURE COUNT(*)",
                                            40 + t
                                        )
                                    };
                                    black_box(svc.execute(&QueryRequest::Mdx(mdx)).expect("serve"));
                                }
                            });
                        }
                    });
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_serve
}
criterion_main!(benches);
