//! SRV — the serving subsystem: cold vs warm latency on the Fig. 5
//! distribution query, and service throughput as client concurrency
//! grows.
//!
//! Prints a cold/warm/coalescing summary first (the EXPERIMENTS.md
//! evidence), then measures: direct execution, a cache miss through
//! the service, a cache hit, and closed-loop throughput at 1–16
//! client threads.

use bench::{warehouse, write_bench_json};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fault::{FaultKind, Trigger};
use obs::Json;
use olap::execute_mdx;
use serve::{
    BreakerState, QueryRequest, QueryService, ReplicaRouter, RouterConfig, ServeConfig,
    ServedSource,
};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;
use std::time::{Duration, Instant};

const FIG5: &str = "SELECT [Gender].MEMBERS ON COLUMNS, [Age_SubGroup].MEMBERS ON ROWS \
                    FROM [Medical Measures] WHERE [DiabetesStatus] = 'yes' \
                    MEASURE COUNT(DISTINCT [PatientId])";

fn service(workers: usize) -> QueryService {
    QueryService::new(
        warehouse().clone(),
        ServeConfig {
            workers,
            queue_depth: 256,
            ..ServeConfig::default()
        },
    )
    .expect("workers spawn")
}

/// The per-thread query mix: even rounds repeat the Fig. 5 query
/// (cache + single-flight territory), odd rounds vary by thread.
fn client_query(thread: usize, round: usize) -> String {
    if round.is_multiple_of(2) {
        FIG5.to_string()
    } else {
        format!(
            "SELECT [Gender].MEMBERS ON COLUMNS, \
             [Age_Band].MEMBERS ON ROWS \
             FROM [Medical Measures] \
             WHERE [BMI] BETWEEN 15 AND {} \
             MEASURE COUNT(*)",
            40 + thread
        )
    }
}

/// Closed-loop throughput at `threads` clients × `rounds` requests
/// each; returns (total requests, elapsed, block-local snapshot).
///
/// Each distinct query the clients will issue is executed once
/// off-clock first, so the timed window measures steady-state serving
/// rather than cold cube builds (whose count grows with the thread
/// sweep — the old version let 8 clients pay 8 distinct cold builds
/// inside the clock and then reported the warm-up-polluted service
/// histogram). The reported percentiles are diffed against a baseline
/// snapshot taken after warm-up, so each thread-level block gets its
/// own p50/p95/p99 instead of carrying earlier requests over.
fn measure_throughput(
    threads: usize,
    rounds: usize,
) -> (u64, std::time::Duration, serve::MetricsSnapshot) {
    let svc = service(4);
    for t in 0..threads {
        for round in 0..2.min(rounds) {
            svc.execute(&QueryRequest::Mdx(client_query(t, round)))
                .expect("warm-up serve");
        }
    }
    let baseline = svc.metrics();
    let t0 = Instant::now();
    thread::scope(|s| {
        for t in 0..threads {
            let svc = &svc;
            s.spawn(move || {
                for round in 0..rounds {
                    svc.execute(&QueryRequest::Mdx(client_query(t, round)))
                        .expect("serve");
                }
            });
        }
    });
    let elapsed = t0.elapsed();
    let block = svc.shutdown().since(&baseline);
    ((threads * rounds) as u64, elapsed, block)
}

/// One `{"threads":…,"requests":…,"elapsed_us":…,"rps":…,…}` record.
fn throughput_record(threads: usize, rounds: usize) -> Json {
    let (requests, elapsed, m) = measure_throughput(threads, rounds);
    let rps = requests as f64 / elapsed.as_secs_f64().max(1e-9);
    println!(
        "{threads:>2} clients: {requests} requests in {elapsed:?} ({rps:.0} req/s, \
         amortised {:.0}%)",
        m.amortised_rate() * 100.0
    );
    Json::obj([
        ("threads", Json::Int(threads as i64)),
        ("requests", Json::Int(requests as i64)),
        (
            "elapsed_us",
            Json::Int(elapsed.as_micros().min(i64::MAX as u128) as i64),
        ),
        ("rps", Json::Float(rps)),
        ("amortised_rate", Json::Float(m.amortised_rate())),
        (
            "p50_us",
            Json::Int(m.p50().map_or(0, |d| d.as_micros() as i64)),
        ),
        (
            "p95_us",
            Json::Int(m.p95().map_or(0, |d| d.as_micros() as i64)),
        ),
        (
            "p99_us",
            Json::Int(m.p99().map_or(0, |d| d.as_micros() as i64)),
        ),
    ])
}

/// Median of `n` timed runs of `f` (single-shot numbers on a shared
/// bencher are dominated by first-touch costs — thread-pool spin-up,
/// per-epoch catalog builds — that steady-state serving amortises).
fn median_us(n: usize, mut f: impl FnMut()) -> std::time::Duration {
    let mut samples: Vec<_> = (0..n)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

fn regenerate_summary() {
    println!("\n=== SERVE: cold vs warm on the Fig. 5 query ===");
    let svc = service(4);
    let request = QueryRequest::Mdx(FIG5.into());
    const RUNS: usize = 10;

    // First request ever pays service/thread warmup; do it off-clock,
    // then measure the steady-state cold (miss → worker) and warm
    // (fingerprint hit) paths.
    let cold = svc.execute(&request).expect("warmup serve");
    assert_eq!(cold.source, ServedSource::Executed);
    let cold_t = median_us(RUNS, || {
        svc.clear_cache();
        let r = svc.execute(&request).expect("cold serve");
        assert_eq!(r.source, ServedSource::Executed);
    });
    let warm = svc.execute(&request).expect("prime");
    let warm_t = median_us(RUNS, || {
        let r = svc.execute(&request).expect("warm serve");
        assert_eq!(r.source, ServedSource::Cache);
        assert_eq!(r.value, warm.value, "cache must not change the answer");
    });

    let speedup = cold_t.as_secs_f64() / warm_t.as_secs_f64().max(1e-9);
    println!("cold {cold_t:?} | warm {warm_t:?} | speedup {speedup:.0}x");

    // Cross-epoch reuse: each cycle adds a feedback dimension outside
    // the query's footprint, so the next lookup revalidates the stale
    // entry against the delta log and serves the identical bytes at
    // the new epoch instead of re-executing. The mutation itself and
    // the once-per-epoch catalog rebuild (warmed by an unrelated
    // query, as any busy service would) stay off the clock — the
    // timed call is admission + revalidation + serve, the path a
    // steady-state client actually sees.
    println!("\n=== SERVE: cross-epoch reuse after an out-of-footprint mutation ===");
    let n = svc.with_warehouse(|wh| wh.n_facts());
    let labels = vec![clinical_types::Value::from("unreviewed"); n];
    let other = QueryRequest::Mdx(
        "SELECT [Gender].MEMBERS ON COLUMNS, [Age_Band].MEMBERS ON ROWS \
         FROM [Medical Measures] MEASURE COUNT(*)"
            .into(),
    );
    let mut samples = Vec::with_capacity(RUNS);
    for cycle in 0..RUNS {
        svc.add_feedback_dimension(
            &format!("Review{cycle}"),
            &format!("Flag{cycle}"),
            labels.clone(),
        )
        .expect("feedback dimension");
        svc.execute(&other).expect("warm the per-epoch catalog");
        let epoch_after_mutation = svc.epoch();
        let t = Instant::now();
        let reused = svc.execute(&request).expect("revalidated serve");
        samples.push(t.elapsed());
        assert_eq!(reused.source, ServedSource::Cache, "delta reuse must apply");
        assert_eq!(reused.value, warm.value, "reuse must not change the answer");
        assert_eq!(
            reused.epoch, epoch_after_mutation,
            "served at the mutated epoch"
        );
    }
    samples.sort();
    let reuse_t = samples[samples.len() / 2];
    let m = svc.metrics();
    assert!(
        m.reused_cross_epoch >= RUNS as u64,
        "reuse counter must move: {m}"
    );
    let reuse_speedup = cold_t.as_secs_f64() / reuse_t.as_secs_f64().max(1e-9);
    println!(
        "cold rebuild {cold_t:?} | cross-epoch reuse {reuse_t:?} | speedup {reuse_speedup:.0}x"
    );
    assert!(
        reuse_speedup >= 5.0,
        "cross-epoch reuse must beat a cold rebuild by ≥5x, got {reuse_speedup:.1}x"
    );

    // Machine-readable summary (format documented in EXPERIMENTS.md).
    println!("\n=== SERVE: closed-loop throughput sweep ===");
    let sweep: Vec<Json> = [1usize, 2, 4, 8]
        .iter()
        .map(|&threads| throughput_record(threads, 32))
        .collect();

    // Degraded mode: trip the circuit breaker with injected faults and
    // compare stale-cache serving throughput against the healthy warm
    // path — the price of staying up, measured, not guessed.
    println!("\n=== SERVE: degraded-mode serving under an open breaker ===");
    let degraded = measure_degraded_mode();

    // Flight-recorder overhead: the always-on ring must be invisible
    // on the hot path (≤2% warm-serve regression, asserted).
    println!("\n=== SERVE: flight-recorder overhead on the warm path ===");
    let recorder = measure_recorder_overhead();

    // Replicated fan-out: execution-bound read load at 1, 2 and 4
    // replicas, plus the failover drill's tail latency.
    println!("\n=== SERVE: replicated fan-out (1 vs 2 vs 4 replicas) ===");
    let replicated = measure_replicated();

    write_bench_json(
        "BENCH_serve.json",
        &Json::obj([
            ("bench", Json::Str("serve".into())),
            ("query", Json::Str(FIG5.into())),
            ("cold_us", Json::Int(cold_t.as_micros() as i64)),
            ("warm_us", Json::Int(warm_t.as_micros() as i64)),
            ("speedup", Json::Float(speedup)),
            (
                "cross_epoch_reuse_us",
                Json::Int(reuse_t.as_micros() as i64),
            ),
            ("cross_epoch_speedup", Json::Float(reuse_speedup)),
            ("throughput", Json::Arr(sweep)),
            ("degraded", degraded),
            ("recorder", recorder),
            ("replicated", replicated),
        ]),
    );

    // Eight clients, one query, fresh service: single-flight makes it
    // one execution.
    drop(svc);
    let svc = service(4);
    thread::scope(|s| {
        for _ in 0..8 {
            let svc = &svc;
            let request = &request;
            s.spawn(move || svc.execute(request).expect("serve"));
        }
    });
    let m = svc.shutdown();
    println!(
        "8 concurrent identical queries → executed {} | coalesced {} | hits {}",
        m.executed, m.coalesced, m.hits
    );
    println!("{m}\n");

    // Admission gate: invalid queries are rejected by the semantic
    // analyzer before they cost a queue slot or an execution.
    let svc = service(4);
    let invalid = QueryRequest::Mdx(
        "SELECT [Gendr].MEMBERS ON COLUMNS, [Age_SubGroup].MEMBERS ON ROWS \
         FROM [Medical Measures] MEASURE COUNT(*)"
            .into(),
    );
    let t2 = Instant::now();
    let err = svc.execute(&invalid).expect_err("analyzer must reject");
    let reject_t = t2.elapsed();
    let m = svc.shutdown();
    assert_eq!(m.rejected_invalid, 1);
    assert_eq!(m.executed, 0);
    println!(
        "invalid query rejected at admission in {reject_t:?} \
         (rejected-invalid {} | executed {}) — first line: {}",
        m.rejected_invalid,
        m.executed,
        err.to_string().lines().next().unwrap_or_default()
    );
}

/// A distinct (never-cached) query per `n`, so replicated load stays
/// execution-bound: the sweep measures how far the replica fan-out
/// spreads real work, not how fast one cache answers repeats.
fn unique_query(n: usize) -> QueryRequest {
    QueryRequest::Mdx(format!(
        "SELECT [Gender].MEMBERS ON COLUMNS, [Age_Band].MEMBERS ON ROWS \
         FROM [Medical Measures] WHERE [BMI] BETWEEN 15 AND {n} \
         MEASURE COUNT(*)"
    ))
}

/// One-worker replicas with a fixed 2 ms per-query service time, so
/// total serving parallelism equals the replica count — the quantity
/// the sweep is varying. The deterministic `execution_delay` models an
/// execution-bound backend: scaling then reflects the fan-out's
/// dispatch parallelism rather than this machine's core count (CI
/// containers are often single-core, where CPU-bound queries cannot
/// scale no matter how many replicas absorb them).
fn replicated_router(replicas: usize) -> ReplicaRouter {
    ReplicaRouter::new(
        warehouse().clone(),
        RouterConfig {
            replicas,
            serve: ServeConfig {
                workers: 1,
                queue_depth: 256,
                watchdog: false,
                execution_delay: Some(Duration::from_millis(2)),
                ..ServeConfig::default()
            },
            ..RouterConfig::default()
        },
    )
    .expect("replica fan-out spawns")
}

/// Closed-loop replicated serving: 8 clients issuing distinct queries
/// through the epoch-aware router at 1, 2 and 4 replicas (rps per
/// configuration), then a failover drill — kill one of four replicas
/// mid-run and report the surviving tail latency. scripts/check.sh
/// gates on 4-replica rps ≥ 1.5× single-replica rps.
fn measure_replicated() -> Json {
    const THREADS: usize = 8;
    const ROUNDS: usize = 16;

    let run = |replicas: usize| -> (f64, u64) {
        let router = replicated_router(replicas);
        // Warm the per-epoch catalogs off-clock; p2c spreads these
        // across the fan-out.
        for n in 0..replicas * 2 {
            router.execute(&unique_query(9000 + n)).expect("warm-up");
        }
        let t0 = Instant::now();
        thread::scope(|s| {
            for t in 0..THREADS {
                let router = &router;
                s.spawn(move || {
                    for round in 0..ROUNDS {
                        router
                            .execute(&unique_query(16 + t * ROUNDS + round))
                            .expect("replicated serve");
                    }
                });
            }
        });
        let elapsed = t0.elapsed();
        let rps = (THREADS * ROUNDS) as f64 / elapsed.as_secs_f64().max(1e-9);
        (rps, router.metrics().routed)
    };

    let mut sweep = Vec::new();
    let mut rps_by_count = Vec::new();
    for replicas in [1usize, 2, 4] {
        let (rps, routed) = run(replicas);
        println!("{replicas} replica(s): {rps:.0} req/s ({routed} routed)");
        rps_by_count.push(rps);
        sweep.push(Json::obj([
            ("replicas", Json::Int(replicas as i64)),
            ("rps", Json::Float(rps)),
            ("routed", Json::Int(routed as i64)),
        ]));
    }
    let scaling = rps_by_count[2] / rps_by_count[0].max(1e-9);

    // Failover drill: four replicas, one killed once a quarter of the
    // load has been accepted. Every request must still be served; the
    // p99 is the tail price of absorbing the death.
    let router = replicated_router(4);
    for n in 0..8 {
        router.execute(&unique_query(9000 + n)).expect("warm-up");
    }
    let accepted = AtomicU64::new(0);
    let mut latencies_us: Vec<u64> = Vec::new();
    thread::scope(|s| {
        let mut clients = Vec::new();
        for t in 0..THREADS {
            let router = &router;
            let accepted = &accepted;
            clients.push(s.spawn(move || {
                let mut local = Vec::with_capacity(ROUNDS);
                for round in 0..ROUNDS {
                    let request = unique_query(100_000 + t * ROUNDS + round);
                    let t0 = Instant::now();
                    router.execute(&request).expect("failover serve");
                    local.push(t0.elapsed().as_micros().min(u64::MAX as u128) as u64);
                    accepted.fetch_add(1, Ordering::Relaxed);
                }
                local
            }));
        }
        let killer_router = &router;
        let killer_accepted = &accepted;
        let killer = s.spawn(move || {
            let quarter = (THREADS * ROUNDS / 4) as u64;
            while killer_accepted.load(Ordering::Relaxed) < quarter {
                thread::sleep(Duration::from_micros(200));
            }
            killer_router.fail_replica(0);
        });
        for client in clients {
            latencies_us.extend(client.join().expect("client thread"));
        }
        killer.join().expect("killer thread");
    });
    latencies_us.sort_unstable();
    let p99 = latencies_us[(latencies_us.len() * 99 / 100).min(latencies_us.len() - 1)];
    let failovers = router.metrics().failover;
    println!(
        "failover drill (4 replicas, one killed mid-run): {} requests, zero lost, \
         p99 {p99} µs, {failovers} failover re-routes | 4x/1x scaling {scaling:.2}x",
        latencies_us.len()
    );

    Json::obj([
        ("sweep", Json::Arr(sweep)),
        ("scaling_4x", Json::Float(scaling)),
        (
            "failover",
            Json::obj([
                ("replicas", Json::Int(4)),
                ("requests", Json::Int(latencies_us.len() as i64)),
                ("p99_us", Json::Int(p99 as i64)),
                ("failovers", Json::Int(failovers as i64)),
            ]),
        ),
    ])
}

/// Healthy-warm vs degraded-stale serving rates around a breaker trip,
/// plus the half-open probe's recovery latency. The cooldown is long
/// enough that no probe fires mid-measurement.
fn measure_degraded_mode() -> Json {
    const ROUNDS: usize = 256;
    let cooldown = Duration::from_millis(500);
    // No retry backoff: the drill measures the stale-serve path itself,
    // and keeps the whole degraded loop well inside the cooldown so no
    // half-open probe fires mid-measurement.
    let svc = QueryService::new(
        warehouse().clone(),
        ServeConfig {
            workers: 4,
            queue_depth: 256,
            breaker_cooldown: cooldown,
            retry: serve::RetryPolicy::none(),
            ..ServeConfig::default()
        },
    )
    .expect("workers spawn");
    let request = QueryRequest::Mdx(FIG5.into());

    let healthy = svc.execute(&request).expect("prime");
    let t = Instant::now();
    for _ in 0..ROUNDS {
        let r = svc.execute(&request).expect("warm serve");
        assert!(!r.value.degraded);
    }
    let healthy_rps = ROUNDS as f64 / t.elapsed().as_secs_f64().max(1e-9);

    // Stale the cached entry, then break both revalidation and
    // execution so every request fails internally until the breaker
    // opens and stale serving takes over.
    let n = svc.with_warehouse(|wh| wh.n_facts());
    svc.add_feedback_dimension(
        "DegradeDrill",
        "DrillFlag",
        vec![clinical_types::Value::from("x"); n],
    )
    .expect("feedback dimension");
    let revalidate = fault::arm("serve.revalidate", Trigger::Always, FaultKind::Error);
    let execute = fault::arm("serve.execute", Trigger::Always, FaultKind::Error);
    let mut trip_failures = 0u64;
    while svc.breaker_state() != BreakerState::Open {
        svc.execute(&request).expect_err("tripping the breaker");
        trip_failures += 1;
    }
    let t = Instant::now();
    for _ in 0..ROUNDS {
        let r = svc.execute(&request).expect("degraded serve");
        assert!(r.value.degraded, "stale serve must be marked");
        assert_eq!(r.value, healthy.value, "stale serve must match");
    }
    let degraded_rps = ROUNDS as f64 / t.elapsed().as_secs_f64().max(1e-9);

    // Heal, wait out the cooldown, and time the half-open probe that
    // closes the breaker.
    drop(revalidate);
    drop(execute);
    thread::sleep(cooldown + Duration::from_millis(50));
    svc.clear_cache();
    let t = Instant::now();
    let probe = svc.execute(&request).expect("probe after recovery");
    let recovery = t.elapsed();
    assert_eq!(probe.source, ServedSource::Executed);
    assert_eq!(svc.breaker_state(), BreakerState::Closed);
    let m = svc.shutdown();
    println!(
        "healthy warm {healthy_rps:.0} req/s | degraded stale {degraded_rps:.0} req/s | \
         breaker tripped after {trip_failures} failures | probe recovery {recovery:?} | \
         served_stale {} | breaker_open {}",
        m.served_stale, m.breaker_open
    );
    Json::obj([
        ("healthy_warm_rps", Json::Float(healthy_rps)),
        ("degraded_stale_rps", Json::Float(degraded_rps)),
        ("trip_failures", Json::Int(trip_failures as i64)),
        (
            "probe_recovery_us",
            Json::Int(recovery.as_micros().min(i64::MAX as u128) as i64),
        ),
        ("served_stale", Json::Int(m.served_stale as i64)),
        ("breaker_open", Json::Int(m.breaker_open as i64)),
    ])
}

/// Warm cache-hit throughput with the flight recorder off vs on.
/// The recorder's direct cost per warm hit (one span, two fields, one
/// event, head-sampled admission) is tens of nanoseconds on a ~6 µs
/// request, far below run-to-run scheduler noise, so the measurement
/// leans on statistics rather than best-of: many short off/on blocks
/// in alternating (ABBA) order so slow drift hits both modes equally,
/// a 10%-trimmed mean per block so preemption spikes cannot bias a
/// mode, and the median of the paired per-block deltas as the
/// estimate. The ≤2% regression budget is asserted so a hot-path
/// capture regression fails the bench rather than shipping.
fn measure_recorder_overhead() -> Json {
    const BLOCK: usize = 256;
    const PAIRS: usize = 1024;
    let svc = service(4);
    let request = QueryRequest::Mdx(FIG5.into());
    svc.execute(&request).expect("prime");

    // Trimmed mean of one block: per-request nanoseconds, fastest 90%.
    let block = || -> f64 {
        let mut times = [0u64; BLOCK];
        for slot in times.iter_mut() {
            let t = Instant::now();
            black_box(svc.execute(black_box(&request)).expect("warm serve"));
            *slot = t.elapsed().as_nanos() as u64;
        }
        times.sort_unstable();
        let keep = BLOCK * 9 / 10;
        times[..keep].iter().sum::<u64>() as f64 / keep as f64
    };

    // One recorder reused across on-blocks: installing fresh rings
    // every pair would measure allocator churn, not capture cost.
    let recorder = std::sync::Arc::new(obs::FlightRecorder::new(obs::RecorderConfig::default()));
    let mut offs = Vec::with_capacity(PAIRS);
    let mut deltas = Vec::with_capacity(PAIRS);
    for i in 0..PAIRS {
        let (off, on) = if i % 2 == 0 {
            let off = block();
            obs::install_recorder(std::sync::Arc::clone(&recorder));
            let on = block();
            obs::uninstall_recorder();
            (off, on)
        } else {
            obs::install_recorder(std::sync::Arc::clone(&recorder));
            let on = block();
            obs::uninstall_recorder();
            let off = block();
            (off, on)
        };
        offs.push(off);
        deltas.push(on - off);
    }
    svc.shutdown();

    offs.sort_by(f64::total_cmp);
    deltas.sort_by(f64::total_cmp);
    let off_ns = offs[PAIRS / 2];
    let delta_ns = deltas[PAIRS / 2];
    let overhead = delta_ns / off_ns;
    let off_rps = 1e9 / off_ns;
    let on_rps = 1e9 / (off_ns + delta_ns);
    println!(
        "recorder off {off_rps:.0} req/s | recorder on {on_rps:.0} req/s | \
         overhead {delta_ns:.0} ns/req ({:.2}%)",
        overhead * 100.0
    );
    assert!(
        overhead <= 0.02,
        "flight-recorder overhead budget blown: {:.2}% > 2% \
         (median off {off_ns:.0} ns/req, median paired delta {delta_ns:.0} ns/req)",
        overhead * 100.0
    );
    Json::obj([
        ("recorder_off_rps", Json::Float(off_rps)),
        ("recorder_on_rps", Json::Float(on_rps)),
        ("overhead_pct", Json::Float(overhead * 100.0)),
        ("block", Json::Int(BLOCK as i64)),
        ("pairs", Json::Int(PAIRS as i64)),
    ])
}

fn bench_serve(c: &mut Criterion) {
    regenerate_summary();
    let wh = warehouse();

    c.bench_function("serve/direct_fig5_query", |b| {
        b.iter(|| black_box(execute_mdx(wh, black_box(FIG5)).expect("query")))
    });

    let svc = service(4);
    let request = QueryRequest::Mdx(FIG5.into());

    c.bench_function("serve/cold_cache_miss", |b| {
        b.iter(|| {
            svc.clear_cache();
            black_box(svc.execute(black_box(&request)).expect("serve"))
        })
    });

    svc.execute(&request).expect("prime the cache");
    c.bench_function("serve/warm_cache_hit", |b| {
        b.iter(|| black_box(svc.execute(black_box(&request)).expect("serve")))
    });
    drop(svc);

    // Closed-loop throughput: each client thread issues its own
    // stream of distinct-then-repeated queries against a shared
    // 4-worker service; one iteration = `threads` × 8 requests.
    let mut group = c.benchmark_group("serve/throughput");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8, 16] {
        let svc = service(4);
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    thread::scope(|s| {
                        for t in 0..threads {
                            let svc = &svc;
                            s.spawn(move || {
                                for round in 0..8 {
                                    // Half the stream repeats (cache +
                                    // single-flight territory), half
                                    // varies by thread.
                                    let mdx = if round % 2 == 0 {
                                        FIG5.to_string()
                                    } else {
                                        format!(
                                            "SELECT [Gender].MEMBERS ON COLUMNS, \
                                             [Age_Band].MEMBERS ON ROWS \
                                             FROM [Medical Measures] \
                                             WHERE [BMI] BETWEEN 15 AND {} \
                                             MEASURE COUNT(*)",
                                            40 + t
                                        )
                                    };
                                    black_box(svc.execute(&QueryRequest::Mdx(mdx)).expect("serve"));
                                }
                            });
                        }
                    });
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_serve
}
criterion_main!(benches);
