//! P4 — data analytics over isolated cubes: the classification /
//! association / clustering triad of §IV on the DiScRi-shaped cohort,
//! including the AWSum interaction scan that produces the §V insight.

use bench::{transformed, warehouse};
use clinical_types::Value;
use criterion::{criterion_group, criterion_main, Criterion};
use mining::{Apriori, AwSum, DatasetBuilder, DecisionTree, KMeans, NaiveBayes};
use std::hint::black_box;

const FEATURES: [&str; 7] = [
    "KneeReflexRight",
    "KneeReflexLeft",
    "AnkleReflexRight",
    "AnkleReflexLeft",
    "FBG_Band",
    "Age_Band",
    "Gender",
];

fn bench_mining(c: &mut Criterion) {
    let table = transformed();
    let dataset = DatasetBuilder::new(FEATURES.to_vec(), "DiabetesStatus")
        .build(table)
        .expect("dataset");
    println!(
        "\n=== analytics dataset: {} rows × {} features, {} classes ===\n",
        dataset.len(),
        dataset.n_features(),
        dataset.n_classes()
    );

    c.bench_function("mining/dataset_extraction", |b| {
        let builder = DatasetBuilder::new(FEATURES.to_vec(), "DiabetesStatus");
        b.iter(|| black_box(builder.build(black_box(table)).expect("dataset")))
    });

    c.bench_function("mining/naive_bayes_fit", |b| {
        b.iter(|| black_box(NaiveBayes::fit(black_box(&dataset)).expect("fit")))
    });

    c.bench_function("mining/naive_bayes_predict_all", |b| {
        let model = NaiveBayes::fit(&dataset).expect("fit");
        b.iter(|| black_box(model.predict_all(black_box(&dataset)).expect("predict")))
    });

    c.bench_function("mining/decision_tree_fit", |b| {
        b.iter(|| black_box(DecisionTree::fit(black_box(&dataset)).expect("fit")))
    });

    c.bench_function("mining/awsum_fit", |b| {
        b.iter(|| black_box(AwSum::fit(black_box(&dataset)).expect("fit")))
    });

    c.bench_function("mining/awsum_interaction_scan", |b| {
        let model = AwSum::fit(&dataset).expect("fit");
        let yes = dataset
            .class_labels
            .iter()
            .position(|c| c == "yes")
            .expect("class");
        b.iter(|| {
            black_box(
                model
                    .top_interactions(black_box(&dataset), yes, 20, 8)
                    .expect("interactions"),
            )
        })
    });

    c.bench_function("mining/apriori_rules", |b| {
        let rule_data = DatasetBuilder::new(
            vec![
                "AnkleReflexRight",
                "KneeReflexRight",
                "FBG_Band",
                "DiabetesStatus",
            ],
            "DiabetesStatus",
        )
        .build(table)
        .expect("dataset");
        let miner = Apriori::new(table.len() / 40, 0.6, 3);
        b.iter(|| black_box(miner.rules(black_box(&rule_data), Some(3)).expect("rules")))
    });

    c.bench_function("mining/kmeans_patient_clusters", |b| {
        // Cluster attendances in (FBG, BMI, SBP) space from the fact
        // table — the "isolate a cube, then mine it" workflow.
        let wh = warehouse();
        let fbg = wh.measure("FBG").expect("measure");
        let bmi = wh.measure("BMI").expect("measure");
        let sbp = wh.measure("LyingSBPAverage").expect("measure");
        let points: Vec<Vec<f64>> = (0..wh.n_facts())
            .filter_map(|i| Some(vec![fbg.get(i)?, bmi.get(i)?, sbp.get(i)? / 10.0]))
            .collect();
        let km = KMeans::new(3, 11);
        b.iter(|| black_box(km.fit(black_box(&points)).expect("kmeans")))
    });

    // One-off: print the headline insight so bench logs double as
    // experiment evidence.
    let model = AwSum::fit(&dataset).expect("fit");
    let yes = dataset
        .class_labels
        .iter()
        .position(|c| c == "yes")
        .expect("class");
    if let Ok(interactions) = model.top_interactions(&dataset, yes, 20, 3) {
        println!("\ntop AWSum interactions toward diabetes:");
        for i in interactions {
            println!(
                "  {}={} & {}={} (joint {:.2} vs single {:.2}, n={})",
                i.feature_a,
                i.value_a,
                i.feature_b,
                Value::from(i.value_b.as_str()),
                i.joint_confidence,
                i.best_single_confidence,
                i.support
            );
        }
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_mining
}
criterion_main!(benches);
