//! P1 — the architectural claim: warehouse-mediated multivariate
//! aggregation vs the flat transactional (DG-SQL-style) access path
//! the DD-DGMS replaces.
//!
//! Both engines compute identical group-bys (verified in the
//! `olap_oltp_consistency` integration test); here we measure latency
//! as the number of grouping dimensions grows, at two data scales, and
//! the amortised regime where one cube serves many slice queries.

use bench::{transformed, transformed_at_scale};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use olap::{Cube, CubeSpec};
use oltp::{AggFn, Predicate, QueryEngine, RowStore};
use std::hint::black_box;

const DIMS: [&str; 4] = ["Gender", "Age_Band", "FBG_Band", "VisitKind"];

fn bench_group_by(c: &mut Criterion) {
    let mut group = c.benchmark_group("olap_vs_oltp/group_by");
    for scale in [2_500usize, 25_000] {
        let table = if scale == 2_500 {
            transformed().clone()
        } else {
            transformed_at_scale(scale)
        };
        let wh = bench::load(&table);
        let store = RowStore::new(table.schema().clone());
        store.load_table(&table).expect("load");
        let engine = QueryEngine::new(store);

        for n_dims in 1..=4usize {
            let axes: Vec<&str> = DIMS[..n_dims].to_vec();
            group.bench_with_input(
                BenchmarkId::new(format!("cube_{scale}rows"), n_dims),
                &n_dims,
                |b, _| {
                    let spec = CubeSpec::count(axes.clone());
                    b.iter(|| black_box(Cube::build(&wh, black_box(&spec)).expect("cube")))
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("flat_{scale}rows"), n_dims),
                &n_dims,
                |b, _| {
                    b.iter(|| {
                        black_box(
                            engine
                                .group_by(&Predicate::True, black_box(&axes), AggFn::Count, None)
                                .expect("group by"),
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

/// The warehouse's structural advantage: once a cube exists, slices
/// and roll-ups are sub-linear cube-to-cube transforms, while the flat
/// path re-scans per question.
fn bench_amortised(c: &mut Criterion) {
    let table = transformed();
    let wh = bench::load(table);
    let store = RowStore::new(table.schema().clone());
    store.load_table(table).expect("load");
    let engine = QueryEngine::new(store);
    let cube = Cube::build(
        &wh,
        &CubeSpec::count(vec!["Gender", "Age_Band", "FBG_Band"]),
    )
    .expect("cube");
    let members = cube.axis_values("FBG_Band").expect("axis");

    let mut group = c.benchmark_group("olap_vs_oltp/per_band_breakdown");
    group.bench_function("cube_slice_per_band", |b| {
        b.iter(|| {
            for m in &members {
                black_box(cube.slice("FBG_Band", black_box(m)).expect("slice"));
            }
        })
    });
    group.bench_function("flat_rescan_per_band", |b| {
        b.iter(|| {
            for m in &members {
                let predicate = Predicate::Eq("FBG_Band".into(), m.clone());
                black_box(
                    engine
                        .group_by(&predicate, &["Gender", "Age_Band"], AggFn::Count, None)
                        .expect("group by"),
                );
            }
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_group_by, bench_amortised
}
criterion_main!(benches);
