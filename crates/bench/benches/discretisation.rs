//! P2 — discretisation algorithm throughput: the clinical-scheme path
//! vs the algorithmic fall-backs of Kotsiantis & Kanellopoulos [17]
//! (equal-width, equal-frequency, MDLP, ChiMerge) across input sizes.
//! The DESIGN.md ablation: how much does the supervised machinery cost
//! relative to clinician-supplied cut points?

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use etl::{table1_schemes, ChiMerge, Discretiser, EqualFrequency, EqualWidth, Mdlp};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

/// Synthetic FBG-like values with a class structure MDLP/ChiMerge can
/// latch onto (diabetics above ~7, everyone else below).
fn synth(n: usize) -> (Vec<f64>, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(7);
    let mut values = Vec::with_capacity(n);
    let mut classes = Vec::with_capacity(n);
    for _ in 0..n {
        let diabetic = rng.random::<f64>() < 0.25;
        let v = if diabetic {
            7.0 + rng.random::<f64>() * 6.0
        } else {
            4.0 + rng.random::<f64>() * 3.0
        };
        values.push(v);
        classes.push(usize::from(diabetic));
    }
    (values, classes)
}

fn bench_discretisation(c: &mut Criterion) {
    let mut group = c.benchmark_group("discretisation/fit");
    for n in [1_000usize, 10_000, 100_000] {
        let (values, classes) = synth(n);
        group.bench_with_input(BenchmarkId::new("equal_width", n), &n, |b, _| {
            let d = EqualWidth::new(4);
            b.iter(|| black_box(d.fit(black_box(&values), None).expect("fit")))
        });
        group.bench_with_input(BenchmarkId::new("equal_frequency", n), &n, |b, _| {
            let d = EqualFrequency::new(4);
            b.iter(|| black_box(d.fit(black_box(&values), None).expect("fit")))
        });
        group.bench_with_input(BenchmarkId::new("mdlp", n), &n, |b, _| {
            let d = Mdlp::new();
            b.iter(|| black_box(d.fit(black_box(&values), Some(&classes)).expect("fit")))
        });
        // ChiMerge is quadratic-ish in distinct values; cap its input.
        if n <= 10_000 {
            group.bench_with_input(BenchmarkId::new("chimerge", n), &n, |b, _| {
                let d = ChiMerge::new(6);
                b.iter(|| black_box(d.fit(black_box(&values), Some(&classes)).expect("fit")))
            });
        }
    }
    group.finish();

    // The clinical path for contrast: fit is constant, assignment is
    // the only cost.
    let (values, _) = synth(100_000);
    let scheme = &table1_schemes()[2];
    c.bench_function("discretisation/clinical_assign_100k", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for v in &values {
                acc += scheme.bins.assign(black_box(*v));
            }
            black_box(acc)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_discretisation
}
criterion_main!(benches);
