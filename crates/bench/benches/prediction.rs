//! A2 — time-course prediction: fitting the Markov model over the
//! cohort's FBG-band trajectories and the leave-last-visit-out
//! evaluation against the majority baseline (printed as the
//! EXPERIMENTS.md evidence).

use bench::transformed;
use criterion::{criterion_group, criterion_main, Criterion};
use predict::{evaluate_predictor, extract_trajectories, MarkovModel, SimilarPatientPredictor};
use std::hint::black_box;

fn bench_prediction(c: &mut Criterion) {
    let table = transformed();
    let trajectories =
        extract_trajectories(table, "PatientId", "TestDate", "FBG_Band").expect("trajectories");
    let report = evaluate_predictor(&trajectories, 3).expect("evaluation");
    println!(
        "\n=== time-course evaluation (n={}): markov {:.1}% | similar {:.1}% | baseline {:.1}% ===\n",
        report.n_evaluated,
        report.markov_accuracy * 100.0,
        report.similar_accuracy * 100.0,
        report.baseline_accuracy * 100.0
    );

    c.bench_function("prediction/extract_trajectories", |b| {
        b.iter(|| {
            black_box(
                extract_trajectories(black_box(table), "PatientId", "TestDate", "FBG_Band")
                    .expect("trajectories"),
            )
        })
    });

    c.bench_function("prediction/markov_fit", |b| {
        b.iter(|| black_box(MarkovModel::fit(black_box(&trajectories)).expect("fit")))
    });

    c.bench_function("prediction/markov_predict_cohort", |b| {
        let model = MarkovModel::fit(&trajectories).expect("fit");
        b.iter(|| {
            let mut hits = 0usize;
            for t in &trajectories {
                if let Some(last) = t.states.last() {
                    if model.predict_next(black_box(last)) == *last {
                        hits += 1;
                    }
                }
            }
            black_box(hits)
        })
    });

    c.bench_function("prediction/similar_patient_predict", |b| {
        let predictor = SimilarPatientPredictor::new(trajectories.clone(), 3).expect("predictor");
        let histories: Vec<&predict::Trajectory> = trajectories
            .iter()
            .filter(|t| t.len() >= 2)
            .take(50)
            .collect();
        b.iter(|| {
            for t in &histories {
                let history = &t.states[..t.len() - 1];
                black_box(predictor.predict_next(black_box(history), Some(t.patient_id)));
            }
        })
    });

    c.bench_function("prediction/leave_last_out_evaluation", |b| {
        b.iter(|| black_box(evaluate_predictor(black_box(&trajectories), 3).expect("eval")))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_prediction
}
criterion_main!(benches);
