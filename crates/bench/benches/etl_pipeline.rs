//! P5 — the Data Transformation stage end to end: cleaning,
//! cardinality derivation, discretisation and trend abstraction over
//! the raw attendance table, plus the missing-value imputation
//! ablation (null-mask vs mean vs carry-forward).

use bench::cohort;
use criterion::{criterion_group, criterion_main, Criterion};
use etl::{Cleaner, CleaningRules, ImputeStrategy, Imputer, TransformPipeline};
use std::hint::black_box;

fn bench_etl(c: &mut Criterion) {
    let raw = &cohort().attendances;
    println!(
        "\n=== ETL input: {} raw attendances × {} attributes ===\n",
        raw.len(),
        raw.schema().len()
    );

    c.bench_function("etl/cleaning_only", |b| {
        let cleaner = Cleaner::new(CleaningRules::discri_default());
        b.iter(|| black_box(cleaner.clean(black_box(raw)).expect("clean")))
    });

    c.bench_function("etl/full_pipeline", |b| {
        let pipeline = TransformPipeline::discri_default();
        b.iter(|| black_box(pipeline.run(black_box(raw)).expect("pipeline")))
    });

    // Imputation ablation over the cleaned table.
    let (clean, _) = Cleaner::new(CleaningRules::discri_default())
        .clean(raw)
        .expect("clean");
    c.bench_function("etl/impute_mean_fbg_hba1c", |b| {
        let imputer = Imputer::new()
            .column("FBG", ImputeStrategy::Mean)
            .column("HbA1c", ImputeStrategy::Mean);
        b.iter(|| black_box(imputer.apply(black_box(&clean)).expect("impute")))
    });

    c.bench_function("etl/impute_carry_forward_fbg", |b| {
        let imputer = Imputer::new().column(
            "FBG",
            ImputeStrategy::CarryForward {
                patient_column: "PatientId".into(),
                date_column: "TestDate".into(),
            },
        );
        b.iter(|| black_box(imputer.apply(black_box(&clean)).expect("impute")))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_etl
}
criterion_main!(benches);
