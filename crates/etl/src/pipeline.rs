//! The composed DiScRi transformation pipeline.
//!
//! Mirrors §V.A of the paper: clean → cardinality → discretise
//! (clinical schemes first, algorithmic fall-back) → temporal trend
//! abstraction. The output table carries both the original continuous
//! attributes and the derived band/trend/cardinality columns, ready
//! for the warehouse loader.

use crate::cardinality::{derive_cardinality, CardinalityProfile};
use crate::clean::{Cleaner, CleaningReport, CleaningRules};
use crate::discretise::clinical::{age_subgroup_scheme, table1_schemes, ClinicalScheme};
use crate::discretise::equal_frequency::EqualFrequency;
use crate::discretise::mdlp::Mdlp;
use crate::discretise::{append_band_column, Discretiser};
use crate::temporal::step_labels;
use clinical_types::{DataType, Error, FieldDef, Record, Result, Table, Value};
use std::collections::HashMap;

/// How a derived band column was produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BandSource {
    /// Clinician-supplied scheme (Table I precedence).
    Clinical,
    /// Supervised MDLP fall-back.
    Mdlp,
    /// Unsupervised equal-frequency fall-back (no class labels).
    EqualFrequency,
}

/// Report of one pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Cleaning counters.
    pub cleaning: CleaningReport,
    /// Attendance structure.
    pub cardinality: CardinalityProfile,
    /// Derived band columns: `(new column, source attribute, method)`.
    pub bands: Vec<(String, String, BandSource)>,
    /// Derived trend columns: `(new column, source attribute)`.
    pub trends: Vec<(String, String)>,
}

/// The configured transformation pipeline.
#[derive(Debug, Clone)]
pub struct TransformPipeline {
    rules: CleaningRules,
    schemes: Vec<ClinicalScheme>,
    /// Attributes without clinical schemes to discretise algorithmically.
    algorithmic: Vec<String>,
    /// Class column supervising MDLP (usually `DiabetesStatus`).
    class_column: Option<String>,
    /// Attributes to derive per-visit trend labels for.
    trend_attributes: Vec<String>,
    /// Absolute change treated as noise by the trend abstraction.
    trend_tolerance: f64,
}

impl TransformPipeline {
    /// The pipeline used by the DiScRi trial: default cleaning rules,
    /// the Table I schemes plus the five-year age drill-down, MDLP on
    /// BMI and HbA1c supervised by `DiabetesStatus`, and FBG/BMI
    /// trend abstraction.
    pub fn discri_default() -> Self {
        TransformPipeline {
            rules: CleaningRules::discri_default(),
            schemes: table1_schemes(),
            algorithmic: vec!["BMI".into(), "HbA1c".into(), "QTc".into(), "SDNN".into()],
            class_column: Some("DiabetesStatus".into()),
            trend_attributes: vec!["FBG".into(), "BMI".into()],
            trend_tolerance: 0.3,
        }
    }

    /// A pipeline with custom parts.
    pub fn new(rules: CleaningRules, schemes: Vec<ClinicalScheme>) -> Self {
        TransformPipeline {
            rules,
            schemes,
            algorithmic: Vec::new(),
            class_column: None,
            trend_attributes: Vec::new(),
            trend_tolerance: 0.3,
        }
    }

    /// Add an attribute for algorithmic discretisation.
    pub fn discretise_algorithmic(mut self, attribute: impl Into<String>) -> Self {
        self.algorithmic.push(attribute.into());
        self
    }

    /// Set the supervising class column for MDLP.
    pub fn supervise_with(mut self, class_column: impl Into<String>) -> Self {
        self.class_column = Some(class_column.into());
        self
    }

    /// Add an attribute for trend abstraction.
    pub fn derive_trend(mut self, attribute: impl Into<String>) -> Self {
        self.trend_attributes.push(attribute.into());
        self
    }

    /// Run the full pipeline.
    pub fn run(&self, raw: &Table) -> Result<(Table, PipelineReport)> {
        let mut run_span = obs::span("etl.pipeline");
        run_span.record("rows_in", raw.len());

        // 1. Clean.
        let (table, cleaning) = {
            let _stage = obs::span("etl.clean");
            Cleaner::new(self.rules.clone()).clean(raw)?
        };

        // 2. Cardinality.
        let (mut table, cardinality) = {
            let _stage = obs::span("etl.cardinality");
            derive_cardinality(&table, "PatientId", "TestDate")?
        };

        // 3. Clinical schemes (Table I precedence), plus the age
        //    drill-down level when Age is present.
        let mut bands = Vec::new();
        {
            let _stage = obs::span("etl.clinical_bands");
            for scheme in &self.schemes {
                if !table.schema().contains(&scheme.attribute) {
                    continue;
                }
                let col = format!("{}_Band", scheme.attribute);
                table = append_band_column(&table, &scheme.attribute, &col, &scheme.bins)?;
                bands.push((col, scheme.attribute.clone(), BandSource::Clinical));
            }
            if table.schema().contains("Age") && !table.schema().contains("Age_SubGroup") {
                let fine = age_subgroup_scheme();
                table = append_band_column(&table, "Age", "Age_SubGroup", &fine.bins)?;
                bands.push(("Age_SubGroup".into(), "Age".into(), BandSource::Clinical));
            }
        }

        // 4. Algorithmic discretisation for the remaining attributes.
        {
            let _stage = obs::span("etl.algorithmic_bands");
            let classes = self.class_labels(&table)?;
            for attr in &self.algorithmic {
                if !table.schema().contains(attr) {
                    continue;
                }
                let col = format!("{attr}_Band");
                if table.schema().contains(&col) {
                    continue; // clinical scheme already produced it
                }
                let (values, value_classes) = self.numeric_with_classes(&table, attr, &classes)?;
                if values.is_empty() {
                    continue;
                }
                let (bins, source) = match &value_classes {
                    Some(cls) => (Mdlp::new().fit(&values, Some(cls))?, BandSource::Mdlp),
                    None => (
                        EqualFrequency::new(4).fit(&values, None)?,
                        BandSource::EqualFrequency,
                    ),
                };
                table = append_band_column(&table, attr, &col, &bins)?;
                bands.push((col, attr.clone(), source));
            }
        }

        // 5. Per-visit trend abstraction.
        let mut trends = Vec::new();
        {
            let _stage = obs::span("etl.trends");
            for attr in &self.trend_attributes {
                if !table.schema().contains(attr) {
                    continue;
                }
                let col = format!("{attr}_Trend");
                table = self.append_trend_column(&table, attr, &col)?;
                trends.push((col, attr.clone()));
            }
        }

        run_span.record("rows_out", table.len());
        run_span.record("bands", bands.len());
        Ok((
            table,
            PipelineReport {
                cleaning,
                cardinality,
                bands,
                trends,
            },
        ))
    }

    /// Class labels per row from the class column, if configured and
    /// present. Text categories are interned to dense indices.
    fn class_labels(&self, table: &Table) -> Result<Option<Vec<Option<usize>>>> {
        let Some(name) = &self.class_column else {
            return Ok(None);
        };
        if !table.schema().contains(name) {
            return Ok(None);
        }
        let mut intern: HashMap<String, usize> = HashMap::new();
        let mut out = Vec::with_capacity(table.len());
        for v in table.column(name)? {
            out.push(match v {
                Value::Null => None,
                other => {
                    let key = other.to_string();
                    let next = intern.len();
                    Some(*intern.entry(key).or_insert(next))
                }
            });
        }
        Ok(Some(out))
    }

    /// Extract the non-null numeric values of `attr` and, when class
    /// labels exist, the aligned class vector (rows missing either the
    /// value or the class are skipped).
    fn numeric_with_classes(
        &self,
        table: &Table,
        attr: &str,
        classes: &Option<Vec<Option<usize>>>,
    ) -> Result<(Vec<f64>, Option<Vec<usize>>)> {
        let idx = table.schema().index_of(attr)?;
        match classes {
            Some(cls) => {
                let mut values = Vec::new();
                let mut labels = Vec::new();
                for (row, c) in table.rows().iter().zip(cls) {
                    if let (Some(x), Some(c)) = (row[idx].as_f64(), c) {
                        values.push(x);
                        labels.push(*c);
                    }
                }
                Ok((values, Some(labels)))
            }
            None => Ok((table.numeric_column(attr)?, None)),
        }
    }

    /// Append a per-visit trend column for `attr`, computed per
    /// patient in visit order.
    fn append_trend_column(&self, table: &Table, attr: &str, col: &str) -> Result<Table> {
        let pid_idx = table.schema().index_of("PatientId")?;
        let date_idx = table.schema().index_of("TestDate")?;
        let attr_idx = table.schema().index_of(attr)?;

        // Visit order per patient.
        let mut per_patient: HashMap<i64, Vec<usize>> = HashMap::new();
        for (i, row) in table.rows().iter().enumerate() {
            let pid = row[pid_idx]
                .as_i64()
                .ok_or_else(|| Error::invalid("PatientId must be integer"))?;
            per_patient.entry(pid).or_default().push(i);
        }
        let mut labels: Vec<&'static str> = vec!["unknown"; table.len()];
        for rows in per_patient.values_mut() {
            rows.sort_by_key(|&i| table.rows()[i][date_idx].as_date());
            let series: Vec<Option<f64>> = rows
                .iter()
                .map(|&i| table.rows()[i][attr_idx].as_f64())
                .collect();
            for (&i, label) in rows.iter().zip(step_labels(&series, self.trend_tolerance)) {
                labels[i] = label;
            }
        }

        let mut schema = table.schema().clone();
        schema.push(FieldDef::nullable(col, DataType::Text))?;
        let mut out = Table::new(schema);
        for (i, row) in table.rows().iter().enumerate() {
            let mut values = row.values().to_vec();
            values.push(Value::Text(labels[i].to_string()));
            out.push_unchecked(Record::new(values));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_small() -> (Table, PipelineReport) {
        let cohort = discri::generate(&discri::CohortConfig::small(21));
        TransformPipeline::discri_default()
            .run(&cohort.attendances)
            .unwrap()
    }

    #[test]
    fn pipeline_adds_expected_columns() {
        let (table, report) = run_small();
        let schema = table.schema();
        for col in [
            "Age_Band",
            "Age_SubGroup",
            "FBG_Band",
            "LyingDBPAverage_Band",
            "DiagnosticHTYears_Band",
            "BMI_Band",
            "HbA1c_Band",
            "FBG_Trend",
            "BMI_Trend",
            "DerivedVisitNo",
            "PatientVisitCount",
            "VisitKind",
        ] {
            assert!(schema.contains(col), "missing derived column {col}");
        }
        assert_eq!(report.bands.len(), 9);
        assert_eq!(report.trends.len(), 2);
        // Continuous originals survive (the §V.A duplication rule).
        assert!(schema.contains("FBG"));
        assert!(schema.contains("Age"));
    }

    #[test]
    fn clinical_schemes_take_precedence_over_algorithms() {
        let (_, report) = run_small();
        let fbg = report
            .bands
            .iter()
            .find(|(c, _, _)| c == "FBG_Band")
            .unwrap();
        assert_eq!(fbg.2, BandSource::Clinical);
        let bmi = report
            .bands
            .iter()
            .find(|(c, _, _)| c == "BMI_Band")
            .unwrap();
        assert_eq!(bmi.2, BandSource::Mdlp);
    }

    #[test]
    fn band_values_agree_with_schemes() {
        let (table, _) = run_small();
        let schema = table.schema();
        let fbg = schema.index_of("FBG").unwrap();
        let band = schema.index_of("FBG_Band").unwrap();
        let scheme = &table1_schemes()[2];
        for row in table.rows() {
            match row[fbg].as_f64() {
                Some(x) => assert_eq!(
                    row[band].as_str(),
                    Some(scheme.bins.label_of(x)),
                    "band mismatch for FBG {x}"
                ),
                None => assert!(row[band].is_null()),
            }
        }
    }

    #[test]
    fn first_visits_have_first_trend() {
        let (table, _) = run_small();
        let schema = table.schema();
        let vno = schema.index_of("DerivedVisitNo").unwrap();
        let trend = schema.index_of("FBG_Trend").unwrap();
        for row in table.rows() {
            if row[vno].as_i64() == Some(1) {
                let t = row[trend].as_str().unwrap();
                assert!(t == "first" || t == "unknown", "first visit has trend {t}");
            }
        }
    }

    #[test]
    fn cleaning_report_is_propagated() {
        let (_, report) = run_small();
        assert!(report.cleaning.rows_in > 0);
        assert_eq!(report.cleaning.rows_out, report.cardinality.n_visits);
    }

    #[test]
    fn no_out_of_range_values_survive() {
        let (table, _) = run_small();
        for v in table.column("FBG").unwrap() {
            if let Some(x) = v.as_f64() {
                assert!((1.5..=35.0).contains(&x), "FBG {x} survived cleaning");
            }
        }
        for v in table.column("LyingDBPAverage").unwrap() {
            if let Some(x) = v.as_f64() {
                assert!((30.0..=160.0).contains(&x));
            }
        }
    }
}
