//! Cleaning of erroneous and missing values.
//!
//! §V.A: "Data transformation initiated with the replacement of
//! missing values, erroneous values and records." Clinical cleaning is
//! plausibility-driven: every numeric attribute has a physiologic
//! range outside which a recorded value must be an instrument or
//! transcription error (a negative fasting glucose, a 600 mmHg blood
//! pressure). Such cells are nulled (treated as missing); rows whose
//! identity keys are broken are dropped.

use clinical_types::{Record, Result, Table, Value};
use std::collections::HashMap;

/// Per-attribute plausibility ranges plus row-level key requirements.
#[derive(Debug, Clone, Default)]
pub struct CleaningRules {
    /// Inclusive plausible range per numeric attribute.
    ranges: HashMap<String, (f64, f64)>,
    /// Fields that must be non-null for a row to be kept at all.
    required: Vec<String>,
}

impl CleaningRules {
    /// Empty rule set (keeps everything).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a plausible range for a numeric attribute.
    pub fn range(mut self, attribute: impl Into<String>, lo: f64, hi: f64) -> Self {
        self.ranges.insert(attribute.into(), (lo, hi));
        self
    }

    /// Mark a field as row-critical: rows with it missing are dropped.
    pub fn require(mut self, attribute: impl Into<String>) -> Self {
        self.required.push(attribute.into());
        self
    }

    /// Plausible range for an attribute, if one is registered.
    pub fn range_of(&self, attribute: &str) -> Option<(f64, f64)> {
        self.ranges.get(attribute).copied()
    }

    /// The clinician-supplied rule set for the DiScRi screening data:
    /// physiologic plausibility ranges for the explicitly modelled
    /// measures, with identity keys required. Panel biomarkers get a
    /// generic non-negativity rule applied by [`Cleaner::clean`].
    pub fn discri_default() -> Self {
        CleaningRules::new()
            .require("PatientId")
            .require("VisitNo")
            .require("TestDate")
            .range("Age", 0.0, 120.0)
            .range("FBG", 1.5, 35.0)
            .range("HbA1c", 3.0, 20.0)
            .range("TotalCholesterol", 1.0, 15.0)
            .range("HDL", 0.2, 5.0)
            .range("LDL", 0.2, 12.0)
            .range("Triglycerides", 0.1, 12.0)
            .range("Creatinine", 20.0, 1500.0)
            .range("EGFR", 1.0, 150.0)
            .range("Urea", 0.5, 60.0)
            .range("UricAcid", 0.05, 1.2)
            .range("CRP", 0.0, 350.0)
            .range("MonofilamentScore", 0.0, 10.0)
            .range("VibrationPerception", 0.0, 60.0)
            .range("AnkleBrachialIndex", 0.2, 2.0)
            .range("ExerciseSessionsPerWeek", 0.0, 21.0)
            .range("ExerciseMinutesPerWeek", 0.0, 2000.0)
            .range("SedentaryHoursPerDay", 0.0, 24.0)
            .range("LyingSBPAverage", 60.0, 260.0)
            .range("LyingDBPAverage", 30.0, 160.0)
            .range("StandingSBP", 50.0, 260.0)
            .range("StandingDBP", 25.0, 160.0)
            .range("RestingHeartRate", 25.0, 220.0)
            .range("OrthostaticSBPDrop", -40.0, 120.0)
            .range("QRSDuration", 40.0, 250.0)
            .range("QTInterval", 200.0, 700.0)
            .range("QTc", 250.0, 700.0)
            .range("PRInterval", 60.0, 400.0)
            .range("SDNN", 0.0, 300.0)
            .range("EwingHRRatio3015", 0.5, 2.5)
            .range("EwingValsalvaRatio", 0.5, 3.5)
            .range("EwingHandGrip", 0.0, 60.0)
            .range("EwingDeepBreathingHRV", 0.0, 80.0)
            .range("BMI", 10.0, 70.0)
            .range("WeightKg", 25.0, 260.0)
            .range("HeightCm", 120.0, 220.0)
            .range("WaistCm", 40.0, 200.0)
            .range("HipCm", 40.0, 210.0)
            .range("WaistHipRatio", 0.4, 1.6)
            .range("EducationYears", 0.0, 30.0)
            .range("MedicationCount", 0.0, 40.0)
            .range("DiabetesDurationYears", 0.0, 80.0)
            .range("DiagnosticHTYears", 0.0, 80.0)
    }
}

/// Outcome counters of one cleaning pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CleaningReport {
    /// Rows inspected.
    pub rows_in: usize,
    /// Rows kept.
    pub rows_out: usize,
    /// Rows dropped because a required key was missing.
    pub rows_dropped: usize,
    /// Cells nulled because the value fell outside its plausible range.
    pub cells_nulled: usize,
    /// Cells nulled by the generic negativity rule (numeric panel
    /// attributes without an explicit range).
    pub cells_nulled_generic: usize,
}

/// Applies [`CleaningRules`] to tables.
#[derive(Debug, Clone)]
pub struct Cleaner {
    rules: CleaningRules,
    /// Apply `value >= 0` to numeric attributes without explicit
    /// ranges (clinical panels are concentrations — never negative).
    pub generic_nonnegative: bool,
}

impl Cleaner {
    /// Cleaner over a rule set; the generic non-negativity rule is on.
    pub fn new(rules: CleaningRules) -> Self {
        Cleaner {
            rules,
            generic_nonnegative: true,
        }
    }

    /// Clean a table, producing the cleaned copy and a report.
    pub fn clean(&self, table: &Table) -> Result<(Table, CleaningReport)> {
        let schema = table.schema().clone();
        // Precompute per-column handling.
        enum Check {
            Range(f64, f64),
            Generic,
            None,
        }
        let checks: Vec<Check> = schema
            .fields()
            .iter()
            .map(|f| match self.rules.range_of(&f.name) {
                Some((lo, hi)) => Check::Range(lo, hi),
                None if self.generic_nonnegative
                    && matches!(
                        f.dtype,
                        clinical_types::DataType::Float | clinical_types::DataType::Int
                    ) =>
                {
                    Check::Generic
                }
                None => Check::None,
            })
            .collect();
        let required_idx: Vec<usize> = self
            .rules
            .required
            .iter()
            .map(|n| schema.index_of(n))
            .collect::<Result<_>>()?;

        let mut out = Table::new(schema);
        let mut report = CleaningReport {
            rows_in: table.len(),
            ..Default::default()
        };
        for row in table.rows() {
            if required_idx.iter().any(|&i| row[i].is_null()) {
                report.rows_dropped += 1;
                continue;
            }
            let mut values = row.values().to_vec();
            for (i, v) in values.iter_mut().enumerate() {
                let Some(x) = v.as_f64() else { continue };
                match checks[i] {
                    Check::Range(lo, hi) => {
                        if x < lo || x > hi {
                            *v = Value::Null;
                            report.cells_nulled += 1;
                        }
                    }
                    Check::Generic => {
                        if x < 0.0 {
                            *v = Value::Null;
                            report.cells_nulled_generic += 1;
                        }
                    }
                    Check::None => {}
                }
            }
            out.push_unchecked(Record::new(values));
            report.rows_out += 1;
        }
        Ok((out, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clinical_types::{DataType, FieldDef, Schema};

    fn table_with(rows: Vec<Vec<Value>>) -> Table {
        let schema = Schema::new(vec![
            FieldDef::nullable("PatientId", DataType::Int),
            FieldDef::nullable("FBG", DataType::Float),
            FieldDef::nullable("Marker", DataType::Float),
            FieldDef::nullable("Label", DataType::Text),
        ])
        .unwrap();
        Table::from_rows(schema, rows.into_iter().map(Record::new).collect()).unwrap()
    }

    fn rules() -> CleaningRules {
        CleaningRules::new()
            .require("PatientId")
            .range("FBG", 1.5, 35.0)
    }

    #[test]
    fn out_of_range_values_are_nulled() {
        let t = table_with(vec![
            vec![1.into(), Value::Float(-5.5), Value::Float(2.0), "a".into()],
            vec![2.into(), Value::Float(550.0), Value::Float(2.0), "b".into()],
            vec![3.into(), Value::Float(5.5), Value::Float(2.0), "c".into()],
        ]);
        let (clean, report) = Cleaner::new(rules()).clean(&t).unwrap();
        assert_eq!(report.cells_nulled, 2);
        assert!(clean.value(0, "FBG").unwrap().is_null());
        assert!(clean.value(1, "FBG").unwrap().is_null());
        assert_eq!(clean.value(2, "FBG").unwrap().as_f64(), Some(5.5));
    }

    #[test]
    fn rows_missing_required_keys_are_dropped() {
        let t = table_with(vec![
            vec![
                Value::Null,
                Value::Float(5.0),
                Value::Float(1.0),
                "a".into(),
            ],
            vec![1.into(), Value::Float(5.0), Value::Float(1.0), "b".into()],
        ]);
        let (clean, report) = Cleaner::new(rules()).clean(&t).unwrap();
        assert_eq!(report.rows_dropped, 1);
        assert_eq!(report.rows_out, 1);
        assert_eq!(clean.len(), 1);
    }

    #[test]
    fn generic_rule_nulls_negative_panel_values() {
        let t = table_with(vec![vec![
            1.into(),
            Value::Float(5.0),
            Value::Float(-3.0),
            "a".into(),
        ]]);
        let (clean, report) = Cleaner::new(rules()).clean(&t).unwrap();
        assert_eq!(report.cells_nulled_generic, 1);
        assert!(clean.value(0, "Marker").unwrap().is_null());
    }

    #[test]
    fn generic_rule_can_be_disabled() {
        let t = table_with(vec![vec![
            1.into(),
            Value::Float(5.0),
            Value::Float(-3.0),
            "a".into(),
        ]]);
        let mut cleaner = Cleaner::new(rules());
        cleaner.generic_nonnegative = false;
        let (clean, report) = cleaner.clean(&t).unwrap();
        assert_eq!(report.cells_nulled_generic, 0);
        assert_eq!(clean.value(0, "Marker").unwrap().as_f64(), Some(-3.0));
    }

    #[test]
    fn text_and_null_cells_pass_through() {
        let t = table_with(vec![vec![
            1.into(),
            Value::Null,
            Value::Null,
            "keep".into(),
        ]]);
        let (clean, report) = Cleaner::new(rules()).clean(&t).unwrap();
        assert_eq!(report.cells_nulled, 0);
        assert_eq!(clean.value(0, "Label").unwrap().as_str(), Some("keep"));
    }

    #[test]
    fn discri_rules_cover_table1_attributes() {
        let r = CleaningRules::discri_default();
        for attr in ["Age", "DiagnosticHTYears", "FBG", "LyingDBPAverage"] {
            assert!(r.range_of(attr).is_some(), "no range for {attr}");
        }
    }

    #[test]
    fn cleaning_discri_cohort_removes_all_negative_fbg() {
        let cohort = discri_cohort();
        let (clean, report) = Cleaner::new(CleaningRules::discri_default())
            .clean(&cohort)
            .unwrap();
        assert!(report.cells_nulled > 0, "expected some corrupted cells");
        let negatives = clean
            .column("FBG")
            .unwrap()
            .filter_map(Value::as_f64)
            .filter(|f| *f < 0.0)
            .count();
        assert_eq!(negatives, 0);
    }

    fn discri_cohort() -> Table {
        discri::generate(&discri::CohortConfig::small(11)).attendances
    }
}
