//! Cardinality abstraction: distinguishing repeat attendances.
//!
//! §IV.3 of the paper: cardinality is "temporal abstraction applied to
//! a group of variables that have a contextual association" — in the
//! DiScRi trial, identifying *which attendance of which patient* a
//! block of measurements belongs to. The warehouse models this as a
//! dedicated Cardinality dimension (Fig. 3); this module derives it:
//! it re-derives visit sequence numbers from `(patient, date)` order
//! (never trusting upstream numbering), counts attendances per
//! patient, and labels first vs. return visits.

use clinical_types::{DataType, Error, FieldDef, Record, Result, Table, Value};
use std::collections::HashMap;

/// Summary of the per-patient attendance structure.
#[derive(Debug, Clone, PartialEq)]
pub struct CardinalityProfile {
    /// Number of distinct patients.
    pub n_patients: usize,
    /// Number of attendances.
    pub n_visits: usize,
    /// Largest attendance count of any patient.
    pub max_visits: usize,
    /// Mean attendances per patient.
    pub mean_visits: f64,
}

/// Derive the cardinality dimension columns.
///
/// Returns a new table with three columns appended:
///
/// * `DerivedVisitNo` — 1-based rank of the row among the patient's
///   attendances, ordered by `date_col`.
/// * `PatientVisitCount` — the patient's total attendance count.
/// * `VisitKind` — `"first"` or `"return"`.
///
/// Errors if a patient has two attendances on the same date (the
/// cardinality of the group of variables would be ambiguous — the
/// conflict situation §IV warns about).
pub fn derive_cardinality(
    table: &Table,
    patient_col: &str,
    date_col: &str,
) -> Result<(Table, CardinalityProfile)> {
    let pid_idx = table.schema().index_of(patient_col)?;
    let date_idx = table.schema().index_of(date_col)?;

    // Group row indices per patient.
    let mut per_patient: HashMap<i64, Vec<usize>> = HashMap::new();
    for (i, row) in table.rows().iter().enumerate() {
        let pid = row[pid_idx]
            .as_i64()
            .ok_or_else(|| Error::invalid(format!("non-integer {patient_col} in row {i}")))?;
        per_patient.entry(pid).or_default().push(i);
    }

    // Order each patient's rows by date and assign ranks.
    let mut visit_no = vec![0i64; table.len()];
    let mut visit_count = vec![0i64; table.len()];
    let mut max_visits = 0usize;
    for (pid, rows) in per_patient.iter_mut() {
        rows.sort_by_key(|&i| table.rows()[i][date_idx].as_date());
        for w in rows.windows(2) {
            let a = table.rows()[w[0]][date_idx].as_date();
            let b = table.rows()[w[1]][date_idx].as_date();
            match (a, b) {
                (Some(a), Some(b)) if a == b => {
                    return Err(Error::invalid(format!(
                        "patient {pid} has two attendances dated {a}: cardinality ambiguous"
                    )));
                }
                (None, _) | (_, None) => {
                    return Err(Error::invalid(format!(
                        "patient {pid} has an attendance without a {date_col}"
                    )));
                }
                _ => {}
            }
        }
        for (rank, &i) in rows.iter().enumerate() {
            visit_no[i] = rank as i64 + 1;
            visit_count[i] = rows.len() as i64;
        }
        max_visits = max_visits.max(rows.len());
    }

    let mut schema = table.schema().clone();
    schema.push(FieldDef::required("DerivedVisitNo", DataType::Int))?;
    schema.push(FieldDef::required("PatientVisitCount", DataType::Int))?;
    schema.push(FieldDef::required("VisitKind", DataType::Text))?;
    let mut out = Table::new(schema);
    for (i, row) in table.rows().iter().enumerate() {
        let mut values = row.values().to_vec();
        values.push(Value::Int(visit_no[i]));
        values.push(Value::Int(visit_count[i]));
        values.push(Value::Text(
            if visit_no[i] == 1 { "first" } else { "return" }.to_string(),
        ));
        out.push_unchecked(Record::new(values));
    }

    let n_patients = per_patient.len();
    let n_visits = table.len();
    Ok((
        out,
        CardinalityProfile {
            n_patients,
            n_visits,
            max_visits,
            mean_visits: if n_patients == 0 {
                0.0
            } else {
                n_visits as f64 / n_patients as f64
            },
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use clinical_types::{Date, Schema};

    fn visits(rows: Vec<(i64, (i32, u32, u32))>) -> Table {
        let schema = Schema::new(vec![
            FieldDef::required("PatientId", DataType::Int),
            FieldDef::required("TestDate", DataType::Date),
        ])
        .unwrap();
        let records = rows
            .into_iter()
            .map(|(pid, (y, m, d))| {
                Record::new(vec![
                    Value::Int(pid),
                    Value::Date(Date::new(y, m, d).unwrap()),
                ])
            })
            .collect();
        Table::from_rows(schema, records).unwrap()
    }

    #[test]
    fn ranks_follow_date_order_not_row_order() {
        // Patient 1's visits arrive out of chronological order.
        let t = visits(vec![
            (1, (2008, 5, 1)),
            (2, (2006, 1, 1)),
            (1, (2005, 3, 1)),
            (1, (2006, 9, 1)),
        ]);
        let (out, profile) = derive_cardinality(&t, "PatientId", "TestDate").unwrap();
        let v: Vec<i64> = out
            .column("DerivedVisitNo")
            .unwrap()
            .map(|x| x.as_i64().unwrap())
            .collect();
        assert_eq!(v, vec![3, 1, 1, 2]);
        assert_eq!(profile.n_patients, 2);
        assert_eq!(profile.n_visits, 4);
        assert_eq!(profile.max_visits, 3);
        assert!((profile.mean_visits - 2.0).abs() < 1e-12);
    }

    #[test]
    fn visit_kind_marks_first_and_return() {
        let t = visits(vec![(1, (2005, 1, 1)), (1, (2006, 1, 1))]);
        let (out, _) = derive_cardinality(&t, "PatientId", "TestDate").unwrap();
        assert_eq!(out.value(0, "VisitKind").unwrap().as_str(), Some("first"));
        assert_eq!(out.value(1, "VisitKind").unwrap().as_str(), Some("return"));
        assert_eq!(out.value(0, "PatientVisitCount").unwrap().as_i64(), Some(2));
    }

    #[test]
    fn duplicate_dates_for_one_patient_conflict() {
        let t = visits(vec![(1, (2005, 1, 1)), (1, (2005, 1, 1))]);
        assert!(derive_cardinality(&t, "PatientId", "TestDate").is_err());
    }

    #[test]
    fn same_date_for_different_patients_is_fine() {
        let t = visits(vec![(1, (2005, 1, 1)), (2, (2005, 1, 1))]);
        assert!(derive_cardinality(&t, "PatientId", "TestDate").is_ok());
    }

    #[test]
    fn empty_table_yields_empty_profile() {
        let t = visits(vec![]);
        let (out, profile) = derive_cardinality(&t, "PatientId", "TestDate").unwrap();
        assert!(out.is_empty());
        assert_eq!(profile.n_patients, 0);
        assert_eq!(profile.mean_visits, 0.0);
    }

    #[test]
    fn matches_generator_visit_numbers_on_discri_data() {
        // The generator's own VisitNo must agree with the re-derived one.
        let cohort = discri::generate(&discri::CohortConfig::small(13));
        let (out, profile) =
            derive_cardinality(&cohort.attendances, "PatientId", "TestDate").unwrap();
        let schema = out.schema();
        let orig = schema.index_of("VisitNo").unwrap();
        let derived = schema.index_of("DerivedVisitNo").unwrap();
        for row in out.rows() {
            assert_eq!(row[orig].as_i64(), row[derived].as_i64());
        }
        assert!(profile.mean_visits > 1.0);
    }
}
