//! Temporal abstraction of time-stamped clinical variables.
//!
//! §IV.2 of the paper, after Stacey & McGregor [18]: derive high-level
//! qualitative descriptions from low-level quantitative time-stamped
//! measurements. Two abstraction families are implemented:
//!
//! * **State abstraction** — map each measurement through a
//!   discretisation scheme and merge consecutive samples with the same
//!   qualitative state into [`StateEpisode`]s ("FBG was `preDiabetic`
//!   from 2006-03 to 2008-07").
//! * **Trend abstraction** — classify the movement between successive
//!   samples as increasing / steady / decreasing relative to a
//!   clinical tolerance.
//!
//! The paper stresses that abstractions over a multivariate space
//! "must not conflict with each other"; [`check_consistency`]
//! implements that check for episode sets.

use crate::discretise::Bins;
use clinical_types::{Date, Error, Result};

/// A maximal run of consecutive samples sharing one qualitative state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateEpisode {
    /// Qualitative state label (a bin label of the driving scheme).
    pub state: String,
    /// Date of the first sample in the episode.
    pub start: Date,
    /// Date of the last sample in the episode.
    pub end: Date,
    /// Number of samples merged into the episode.
    pub n_samples: usize,
}

/// State abstraction over one variable's time series.
#[derive(Debug, Clone)]
pub struct StateAbstraction {
    bins: Bins,
}

impl StateAbstraction {
    /// Abstraction driven by a discretisation scheme.
    pub fn new(bins: Bins) -> Self {
        StateAbstraction { bins }
    }

    /// Merge a chronologically sorted series into state episodes.
    /// Errors if the series is not sorted by date.
    pub fn episodes(&self, series: &[(Date, f64)]) -> Result<Vec<StateEpisode>> {
        ensure_sorted(series)?;
        let mut out: Vec<StateEpisode> = Vec::new();
        for &(date, value) in series {
            let state = self.bins.label_of(value);
            match out.last_mut() {
                Some(ep) if ep.state == state => {
                    ep.end = date;
                    ep.n_samples += 1;
                }
                _ => out.push(StateEpisode {
                    state: state.to_string(),
                    start: date,
                    end: date,
                    n_samples: 1,
                }),
            }
        }
        Ok(out)
    }
}

/// Direction of movement between successive samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Trend {
    /// Value rose by more than the tolerance.
    Increasing,
    /// Value stayed within ±tolerance.
    Steady,
    /// Value fell by more than the tolerance.
    Decreasing,
}

impl Trend {
    /// Stable label used when trends become warehouse dimension values.
    pub fn label(&self) -> &'static str {
        match self {
            Trend::Increasing => "increasing",
            Trend::Steady => "steady",
            Trend::Decreasing => "decreasing",
        }
    }
}

/// A maximal run of samples moving in one direction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrendAbstraction {
    /// The direction of this episode.
    pub trend: Trend,
    /// Date of the sample that starts the movement.
    pub start: Date,
    /// Date of the last sample in the movement.
    pub end: Date,
    /// Number of inter-sample steps merged (≥ 1).
    pub n_steps: usize,
}

/// Classify each step of a sorted series and merge runs with the same
/// direction. `tolerance` is the absolute change regarded as noise
/// (e.g. 0.3 mmol/L for FBG). A series with fewer than two samples has
/// no trends.
pub fn abstract_trends(series: &[(Date, f64)], tolerance: f64) -> Result<Vec<TrendAbstraction>> {
    ensure_sorted(series)?;
    if tolerance < 0.0 {
        return Err(Error::invalid("trend tolerance must be non-negative"));
    }
    let mut out: Vec<TrendAbstraction> = Vec::new();
    for w in series.windows(2) {
        let (d0, v0) = w[0];
        let (d1, v1) = w[1];
        let delta = v1 - v0;
        let trend = if delta > tolerance {
            Trend::Increasing
        } else if delta < -tolerance {
            Trend::Decreasing
        } else {
            Trend::Steady
        };
        match out.last_mut() {
            Some(ep) if ep.trend == trend => {
                ep.end = d1;
                ep.n_steps += 1;
            }
            _ => out.push(TrendAbstraction {
                trend,
                start: d0,
                end: d1,
                n_steps: 1,
            }),
        }
    }
    Ok(out)
}

/// Per-sample trend labels (the per-visit form used when loading a
/// trend column into the warehouse): the first visit is `"first"`,
/// every later visit is the direction relative to its predecessor.
/// Missing samples (`None`) yield `"unknown"` and do not update the
/// reference value.
pub fn step_labels(values: &[Option<f64>], tolerance: f64) -> Vec<&'static str> {
    let mut out = Vec::with_capacity(values.len());
    let mut prev: Option<f64> = None;
    for v in values {
        match (prev, v) {
            (_, None) => out.push("unknown"),
            (None, Some(x)) => {
                out.push("first");
                prev = Some(*x);
            }
            (Some(p), Some(x)) => {
                let delta = x - p;
                out.push(if delta > tolerance {
                    Trend::Increasing.label()
                } else if delta < -tolerance {
                    Trend::Decreasing.label()
                } else {
                    Trend::Steady.label()
                });
                prev = Some(*x);
            }
        }
    }
    out
}

/// Validate that a set of episodes is chronologically ordered and
/// non-overlapping — the paper's "abstractions must not conflict"
/// requirement. Episodes produced by [`StateAbstraction::episodes`]
/// always satisfy this; abstractions merged from multiple sources may
/// not.
pub fn check_consistency(episodes: &[StateEpisode]) -> Result<()> {
    for ep in episodes {
        if ep.start > ep.end {
            return Err(Error::invalid(format!(
                "episode `{}` ends before it starts ({} > {})",
                ep.state, ep.start, ep.end
            )));
        }
    }
    for w in episodes.windows(2) {
        if w[1].start <= w[0].end {
            return Err(Error::invalid(format!(
                "episodes `{}` and `{}` overlap at {}",
                w[0].state, w[1].state, w[1].start
            )));
        }
    }
    Ok(())
}

fn ensure_sorted(series: &[(Date, f64)]) -> Result<()> {
    if series.windows(2).any(|w| w[0].0 > w[1].0) {
        return Err(Error::invalid("time series must be sorted by date"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discretise::clinical::table1_schemes;

    fn d(y: i32, m: u32) -> Date {
        Date::new(y, m, 1).unwrap()
    }

    fn fbg_abstraction() -> StateAbstraction {
        StateAbstraction::new(table1_schemes()[2].bins.clone())
    }

    #[test]
    fn episodes_merge_consecutive_states() {
        let series = vec![
            (d(2005, 1), 5.0),
            (d(2006, 1), 5.2),
            (d(2007, 1), 6.5),
            (d(2008, 1), 6.3),
            (d(2009, 1), 7.4),
        ];
        let eps = fbg_abstraction().episodes(&series).unwrap();
        let states: Vec<&str> = eps.iter().map(|e| e.state.as_str()).collect();
        assert_eq!(states, vec!["very good", "preDiabetic", "Diabetic"]);
        assert_eq!(eps[0].n_samples, 2);
        assert_eq!(eps[0].start, d(2005, 1));
        assert_eq!(eps[0].end, d(2006, 1));
        assert_eq!(eps[1].n_samples, 2);
    }

    #[test]
    fn unsorted_series_rejected() {
        let series = vec![(d(2006, 1), 5.0), (d(2005, 1), 5.0)];
        assert!(fbg_abstraction().episodes(&series).is_err());
        assert!(abstract_trends(&series, 0.1).is_err());
    }

    #[test]
    fn empty_and_singleton_series() {
        assert!(fbg_abstraction().episodes(&[]).unwrap().is_empty());
        let one = vec![(d(2005, 1), 8.0)];
        let eps = fbg_abstraction().episodes(&one).unwrap();
        assert_eq!(eps.len(), 1);
        assert_eq!(eps[0].state, "Diabetic");
        assert!(abstract_trends(&one, 0.1).unwrap().is_empty());
    }

    #[test]
    fn trends_respect_tolerance() {
        let series = vec![
            (d(2005, 1), 5.0),
            (d(2006, 1), 5.1), // +0.1 → steady at tol 0.3
            (d(2007, 1), 6.0), // +0.9 → increasing
            (d(2008, 1), 6.8), // +0.8 → increasing (merged)
            (d(2009, 1), 5.9), // −0.9 → decreasing
        ];
        let eps = abstract_trends(&series, 0.3).unwrap();
        let dirs: Vec<Trend> = eps.iter().map(|e| e.trend).collect();
        assert_eq!(
            dirs,
            vec![Trend::Steady, Trend::Increasing, Trend::Decreasing]
        );
        assert_eq!(eps[1].n_steps, 2);
    }

    #[test]
    fn negative_tolerance_rejected() {
        assert!(abstract_trends(&[(d(2005, 1), 1.0)], -0.1).is_err());
    }

    #[test]
    fn step_labels_handle_missing_and_first() {
        let labels = step_labels(
            &[None, Some(5.0), Some(5.05), None, Some(6.0), Some(5.0)],
            0.3,
        );
        assert_eq!(
            labels,
            vec![
                "unknown",
                "first",
                "steady",
                "unknown",
                "increasing",
                "decreasing"
            ]
        );
    }

    #[test]
    fn consistency_accepts_abstraction_output() {
        let series = vec![(d(2005, 1), 5.0), (d(2006, 1), 6.5), (d(2007, 1), 8.0)];
        let eps = fbg_abstraction().episodes(&series).unwrap();
        assert!(check_consistency(&eps).is_ok());
    }

    #[test]
    fn consistency_rejects_overlap_and_inversion() {
        let ep = |state: &str, s: Date, e: Date| StateEpisode {
            state: state.into(),
            start: s,
            end: e,
            n_samples: 1,
        };
        // Overlapping states conflict.
        let overlapping = vec![
            ep("normal", d(2005, 1), d(2006, 6)),
            ep("high", d(2006, 1), d(2007, 1)),
        ];
        assert!(check_consistency(&overlapping).is_err());
        // An episode that ends before it starts conflicts with itself.
        let inverted = vec![ep("x", d(2007, 1), d(2006, 1))];
        assert!(check_consistency(&inverted).is_err());
    }
}
