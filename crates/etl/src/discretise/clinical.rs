//! Clinician-supplied discretisation schemes.
//!
//! The paper's Table I lists four example schemes provided by the
//! clinical scientist for the DiScRi trial. They are reproduced here
//! verbatim; [`table1_schemes`] is the machine-readable Table I.

use super::{Bins, Discretiser};
use clinical_types::Result;

/// A named, clinician-authored discretisation scheme for one attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct ClinicalScheme {
    /// Attribute the scheme applies to.
    pub attribute: String,
    /// Free-text description (Table I's "Description" column).
    pub description: String,
    /// The bins themselves.
    pub bins: Bins,
}

impl ClinicalScheme {
    /// Build a scheme.
    pub fn new(
        attribute: impl Into<String>,
        description: impl Into<String>,
        edges: Vec<f64>,
        labels: Vec<&str>,
    ) -> Result<Self> {
        Ok(ClinicalScheme {
            attribute: attribute.into(),
            description: description.into(),
            bins: Bins::with_labels(edges, labels.into_iter().map(String::from).collect())?,
        })
    }
}

/// A clinical scheme acts as a (pre-fitted) discretiser: `fit` ignores
/// the data and returns the clinician's bins, which is exactly the
/// paper's precedence rule — domain expertise overrides algorithms.
impl Discretiser for ClinicalScheme {
    fn method_name(&self) -> &'static str {
        "clinical"
    }

    fn fit(&self, _values: &[f64], _classes: Option<&[usize]>) -> Result<Bins> {
        Ok(self.bins.clone())
    }
}

/// The paper's Table I, verbatim.
///
/// | Attribute | Scheme |
/// |---|---|
/// | Age | `<40, 40-60, 60-80, >80` |
/// | DiagnosticHTYears | `<2, 2-5, 5-10, 10-20, >20` |
/// | FBG | `<5.5 very good, 5.5-6.1 high, 6.1-7 preDiabetic, >=7 Diabetic` |
/// | LyingDBPAverage | `<60 low, 60-80 normal, 80-90 high normal, >90 hypertension` |
pub fn table1_schemes() -> Vec<ClinicalScheme> {
    vec![
        ClinicalScheme::new(
            "Age",
            "Participant's age on test date",
            vec![40.0, 60.0, 80.0],
            vec!["<40", "40-60", "60-80", ">80"],
        )
        .expect("Table I Age scheme is well-formed"), // lint:allow(no-panic, "static Table I scheme, validated in tests")
        ClinicalScheme::new(
            "DiagnosticHTYears",
            "Number of years since diagnosis of hypertension",
            vec![2.0, 5.0, 10.0, 20.0],
            vec!["<2", "2-5", "5-10", "10-20", ">20"],
        )
        .expect("Table I DiagnosticHTYears scheme is well-formed"), // lint:allow(no-panic, "static Table I scheme, validated in tests")
        ClinicalScheme::new(
            "FBG",
            "Fasting blood glucose level",
            vec![5.5, 6.1, 7.0],
            vec!["very good", "high", "preDiabetic", "Diabetic"],
        )
        .expect("Table I FBG scheme is well-formed"), // lint:allow(no-panic, "static Table I scheme, validated in tests")
        ClinicalScheme::new(
            "LyingDBPAverage",
            "Diastolic blood pressure when lying down",
            vec![60.0, 80.0, 90.0],
            vec!["low", "normal", "high normal", "hypertension"],
        )
        .expect("Table I LyingDBPAverage scheme is well-formed"), // lint:allow(no-panic, "static Table I scheme, validated in tests")
    ]
}

/// Five-year age sub-groups (60–65 … 85+), the drill-down level that
/// Fig. 5 and Fig. 6 expand the coarse Age groups into.
pub fn age_subgroup_scheme() -> ClinicalScheme {
    let edges: Vec<f64> = (8..18).map(|k| (k * 5) as f64).collect(); // 40,45,…,85
    let mut labels = vec!["<40".to_string()];
    for k in 8..17 {
        labels.push(format!("{}-{}", k * 5, k * 5 + 5));
    }
    labels.push(">=85".to_string());
    ClinicalScheme {
        attribute: "Age".into(),
        description: "Five-year age sub-groups (drill-down level)".into(),
        bins: Bins::with_labels(edges, labels).expect("age subgroup scheme is well-formed"), // lint:allow(no-panic, "static scheme, validated in tests")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_the_four_paper_schemes() {
        let schemes = table1_schemes();
        let names: Vec<&str> = schemes.iter().map(|s| s.attribute.as_str()).collect();
        assert_eq!(
            names,
            vec!["Age", "DiagnosticHTYears", "FBG", "LyingDBPAverage"]
        );
    }

    #[test]
    fn fbg_scheme_matches_paper_cutoffs() {
        let schemes = table1_schemes();
        let fbg = &schemes[2];
        assert_eq!(fbg.bins.label_of(5.4), "very good");
        assert_eq!(fbg.bins.label_of(5.5), "high");
        assert_eq!(fbg.bins.label_of(6.0), "high");
        assert_eq!(fbg.bins.label_of(6.5), "preDiabetic");
        assert_eq!(fbg.bins.label_of(7.0), "Diabetic");
        assert_eq!(fbg.bins.label_of(11.2), "Diabetic");
    }

    #[test]
    fn dbp_scheme_matches_paper_cutoffs() {
        let schemes = table1_schemes();
        let dbp = &schemes[3];
        assert_eq!(dbp.bins.label_of(55.0), "low");
        assert_eq!(dbp.bins.label_of(75.0), "normal");
        assert_eq!(dbp.bins.label_of(85.0), "high normal");
        assert_eq!(dbp.bins.label_of(95.0), "hypertension");
    }

    #[test]
    fn ht_years_scheme_matches_paper_bands() {
        let schemes = table1_schemes();
        let ht = &schemes[1];
        assert_eq!(ht.bins.label_of(1.0), "<2");
        assert_eq!(ht.bins.label_of(3.0), "2-5");
        assert_eq!(ht.bins.label_of(7.5), "5-10");
        assert_eq!(ht.bins.label_of(15.0), "10-20");
        assert_eq!(ht.bins.label_of(25.0), ">20");
    }

    #[test]
    fn clinical_fit_ignores_data() {
        let schemes = table1_schemes();
        let age = &schemes[0];
        let bins = age.fit(&[1.0, 2.0, 3.0], None).unwrap();
        assert_eq!(&bins, &age.bins);
    }

    #[test]
    fn age_subgroups_refine_age_groups() {
        let coarse = &table1_schemes()[0].bins;
        let fine = age_subgroup_scheme().bins;
        // Every fine band must sit entirely inside one coarse band:
        // sample the midpoint of each fine interval.
        assert_eq!(fine.label_of(62.0), "60-65");
        assert_eq!(fine.label_of(73.0), "70-75");
        assert_eq!(fine.label_of(77.0), "75-80");
        assert_eq!(coarse.label_of(77.0), "60-80");
        // Fine edges include every coarse edge, so refinement is exact.
        for e in coarse.edges() {
            assert!(
                fine.edges().contains(e),
                "coarse edge {e} missing from fine"
            );
        }
    }
}
