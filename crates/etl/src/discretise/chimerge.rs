//! Supervised bottom-up discretisation: ChiMerge (Kerber, 1992).
//!
//! The canonical bottom-up method from the survey the paper cites
//! [17]: start with one interval per distinct value and repeatedly
//! merge the adjacent pair whose class distributions are most similar
//! (lowest chi-squared statistic), until every remaining adjacent pair
//! differs significantly or a bin budget is reached.

use super::{sorted_pairs, Bins, Discretiser};
use clinical_types::{Error, Result};

/// ChiMerge discretiser (supervised, bottom-up).
#[derive(Debug, Clone)]
pub struct ChiMerge {
    /// Significance level for the merge-stop test (0.90, 0.95 or 0.99).
    pub confidence: f64,
    /// Upper bound on the number of bins (merging continues past the
    /// significance threshold until satisfied). 0 = no bound.
    pub max_bins: usize,
    /// Lower bound on the number of bins — merging stops here even if
    /// adjacent pairs remain insignificant.
    pub min_bins: usize,
}

impl Default for ChiMerge {
    fn default() -> Self {
        ChiMerge {
            confidence: 0.95,
            max_bins: 8,
            min_bins: 2,
        }
    }
}

impl ChiMerge {
    /// ChiMerge at 95% confidence with a bin budget.
    pub fn new(max_bins: usize) -> Self {
        ChiMerge {
            max_bins,
            ..ChiMerge::default()
        }
    }
}

/// Critical chi-squared values, indexed by degrees of freedom 1..=10.
fn chi2_critical(confidence: f64, df: usize) -> f64 {
    const C90: [f64; 10] = [
        2.706, 4.605, 6.251, 7.779, 9.236, 10.645, 12.017, 13.362, 14.684, 15.987,
    ];
    const C95: [f64; 10] = [
        3.841, 5.991, 7.815, 9.488, 11.070, 12.592, 14.067, 15.507, 16.919, 18.307,
    ];
    const C99: [f64; 10] = [
        6.635, 9.210, 11.345, 13.277, 15.086, 16.812, 18.475, 20.090, 21.666, 23.209,
    ];
    let idx = df.clamp(1, 10) - 1;
    if confidence >= 0.99 {
        C99[idx]
    } else if confidence >= 0.95 {
        C95[idx]
    } else {
        C90[idx]
    }
}

/// One working interval: value bounds (inclusive of the contained
/// samples) plus class counts.
#[derive(Debug, Clone)]
struct Interval {
    /// Smallest sample value inside this interval.
    lo: f64,
    /// Largest sample value inside this interval.
    hi: f64,
    counts: Vec<usize>,
}

fn chi2(a: &Interval, b: &Interval) -> f64 {
    let n_classes = a.counts.len();
    let total_a: usize = a.counts.iter().sum();
    let total_b: usize = b.counts.iter().sum();
    let total = (total_a + total_b) as f64;
    let mut stat = 0.0;
    for k in 0..n_classes {
        let col = (a.counts[k] + b.counts[k]) as f64;
        if col == 0.0 {
            continue;
        }
        for (row_total, observed) in [(total_a, a.counts[k]), (total_b, b.counts[k])] {
            let expected = row_total as f64 * col / total;
            if expected > 0.0 {
                let d = observed as f64 - expected;
                stat += d * d / expected;
            }
        }
    }
    stat
}

impl Discretiser for ChiMerge {
    fn method_name(&self) -> &'static str {
        "chimerge"
    }

    fn fit(&self, values: &[f64], classes: Option<&[usize]>) -> Result<Bins> {
        let classes = classes
            .ok_or_else(|| Error::invalid("ChiMerge is supervised: class labels required"))?;
        if values.is_empty() {
            return Err(Error::invalid("cannot fit bins to an empty column"));
        }
        let pairs = sorted_pairs(values, classes)?;
        let n_classes = pairs.iter().map(|p| p.1).max().unwrap_or(0) + 1;
        let df = n_classes.saturating_sub(1).max(1);
        let threshold = chi2_critical(self.confidence, df);

        // Initial intervals: one per distinct value.
        let mut intervals: Vec<Interval> = Vec::new();
        for &(v, c) in &pairs {
            match intervals.last_mut() {
                Some(last) if last.hi == v => last.counts[c] += 1,
                _ => {
                    let mut counts = vec![0usize; n_classes];
                    counts[c] += 1;
                    intervals.push(Interval {
                        lo: v,
                        hi: v,
                        counts,
                    });
                }
            }
        }

        let min_bins = self.min_bins.max(1);
        loop {
            if intervals.len() <= min_bins {
                break;
            }
            // Find the adjacent pair with the lowest chi-squared.
            let Some((best_i, best_chi)) = intervals
                .windows(2)
                .enumerate()
                .map(|(i, w)| (i, chi2(&w[0], &w[1])))
                .min_by(|a, b| a.1.total_cmp(&b.1))
            else {
                break; // fewer than two intervals: nothing to merge
            };
            let over_budget = self.max_bins > 0 && intervals.len() > self.max_bins;
            if best_chi >= threshold && !over_budget {
                break; // every adjacent pair is significantly different
            }
            // Merge interval best_i+1 into best_i.
            let removed = intervals.remove(best_i + 1);
            let keep = &mut intervals[best_i];
            keep.hi = removed.hi;
            for (k, c) in removed.counts.iter().enumerate() {
                keep.counts[k] += c;
            }
        }

        // Cut points: midpoint of the gap between adjacent intervals.
        let mut edges = Vec::with_capacity(intervals.len().saturating_sub(1));
        for w in intervals.windows(2) {
            edges.push((w[0].hi + w[1].lo) / 2.0);
        }
        edges.dedup();
        Bins::from_edges(edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requires_class_labels() {
        assert!(ChiMerge::default().fit(&[1.0], None).is_err());
    }

    #[test]
    fn merges_noise_down_to_min_bins() {
        // Every distinct value carries one sample of each class, so
        // every adjacent pair has an identical class distribution
        // (chi² = 0) at every stage: ChiMerge must merge to min_bins.
        let values: Vec<f64> = (0..80).map(|i| f64::from(i / 2)).collect();
        let classes: Vec<usize> = (0..80).map(|i| i % 2).collect();
        let cm = ChiMerge {
            confidence: 0.95,
            max_bins: 0,
            min_bins: 2,
        };
        let bins = cm.fit(&values, Some(&classes)).unwrap();
        assert_eq!(bins.len(), 2);
    }

    #[test]
    fn preserves_a_strong_boundary() {
        let values: Vec<f64> = (0..60).map(f64::from).collect();
        let classes: Vec<usize> = (0..60).map(|i| usize::from(i >= 30)).collect();
        let bins = ChiMerge::new(6).fit(&values, Some(&classes)).unwrap();
        // The class boundary at 29/30 must survive merging.
        let b29 = bins.assign(29.0);
        let b30 = bins.assign(30.0);
        assert_ne!(b29, b30, "boundary merged away: bins {:?}", bins.edges());
    }

    #[test]
    fn max_bins_budget_is_enforced() {
        let values: Vec<f64> = (0..200).map(|i| f64::from(i % 50)).collect();
        let classes: Vec<usize> = (0..200).map(|i| (i % 3) as usize).collect();
        let bins = ChiMerge::new(4).fit(&values, Some(&classes)).unwrap();
        assert!(bins.len() <= 4, "got {} bins", bins.len());
    }

    #[test]
    fn constant_column_single_bin() {
        let bins = ChiMerge::default().fit(&[5.0; 20], Some(&[0; 20])).unwrap();
        assert_eq!(bins.len(), 1);
    }

    #[test]
    fn chi2_zero_for_identical_distributions() {
        let a = Interval {
            lo: 0.0,
            hi: 1.0,
            counts: vec![5, 5],
        };
        let b = Interval {
            lo: 1.5,
            hi: 2.0,
            counts: vec![10, 10],
        };
        assert!(chi2(&a, &b) < 1e-9);
    }

    #[test]
    fn chi2_large_for_disjoint_distributions() {
        let a = Interval {
            lo: 0.0,
            hi: 1.0,
            counts: vec![20, 0],
        };
        let b = Interval {
            lo: 1.5,
            hi: 2.0,
            counts: vec![0, 20],
        };
        assert!(chi2(&a, &b) > chi2_critical(0.99, 1));
    }

    #[test]
    fn critical_values_increase_with_confidence_and_df() {
        assert!(chi2_critical(0.95, 1) > chi2_critical(0.90, 1));
        assert!(chi2_critical(0.99, 1) > chi2_critical(0.95, 1));
        assert!(chi2_critical(0.95, 5) > chi2_critical(0.95, 1));
    }
}
