//! Unsupervised discretisation: equal-frequency (quantile) binning.

use super::{Bins, Discretiser};
use clinical_types::{Error, Result};

/// Places cut points at quantiles so every interval holds roughly the
/// same number of observations. More robust to skew than equal-width —
/// the natural default for the long-tailed biomarker panels.
#[derive(Debug, Clone)]
pub struct EqualFrequency {
    /// Target number of intervals.
    pub k: usize,
}

impl EqualFrequency {
    /// Equal-frequency binning with `k` intervals (`k >= 1`).
    pub fn new(k: usize) -> Self {
        EqualFrequency { k }
    }
}

impl Discretiser for EqualFrequency {
    fn method_name(&self) -> &'static str {
        "equal-frequency"
    }

    fn fit(&self, values: &[f64], _classes: Option<&[usize]>) -> Result<Bins> {
        if self.k == 0 {
            return Err(Error::invalid("equal-frequency needs k >= 1"));
        }
        if values.is_empty() {
            return Err(Error::invalid("cannot fit bins to an empty column"));
        }
        if values.iter().any(|v| !v.is_finite()) {
            return Err(Error::invalid("cannot discretise non-finite values"));
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let n = sorted.len();
        let mut edges = Vec::with_capacity(self.k.saturating_sub(1));
        for i in 1..self.k {
            let idx = (i * n) / self.k;
            let cut = sorted[idx.min(n - 1)];
            // Skip duplicate cut points caused by heavy ties.
            if edges.last().is_none_or(|last: &f64| cut > *last) {
                edges.push(cut);
            }
        }
        // A cut equal to the minimum would create an empty first bin.
        if edges.first().is_some_and(|e| *e <= sorted[0]) {
            edges.remove(0);
        }
        Bins::from_edges(edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn quartiles_split_counts_evenly() {
        let values: Vec<f64> = (0..100).map(f64::from).collect();
        let bins = EqualFrequency::new(4).fit(&values, None).unwrap();
        assert_eq!(bins.len(), 4);
        let mut counts = vec![0usize; 4];
        for v in &values {
            counts[bins.assign(*v)] += 1;
        }
        for c in counts {
            assert_eq!(c, 25);
        }
    }

    #[test]
    fn heavy_ties_collapse_bins_instead_of_failing() {
        let values = vec![1.0; 50]
            .into_iter()
            .chain(vec![2.0; 2])
            .collect::<Vec<_>>();
        let bins = EqualFrequency::new(4).fit(&values, None).unwrap();
        assert!(bins.len() <= 4);
        // Assignment still total.
        assert!(bins.assign(1.0) < bins.len());
        assert!(bins.assign(2.0) < bins.len());
    }

    #[test]
    fn constant_column_single_bin() {
        let bins = EqualFrequency::new(3).fit(&[7.0; 30], None).unwrap();
        assert_eq!(bins.len(), 1);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(EqualFrequency::new(0).fit(&[1.0], None).is_err());
        assert!(EqualFrequency::new(2).fit(&[], None).is_err());
        assert!(EqualFrequency::new(2).fit(&[f64::INFINITY], None).is_err());
    }

    proptest! {
        #[test]
        fn bins_are_balanced_within_factor_three(
            values in proptest::collection::vec(-1e3f64..1e3, 40..400),
            k in 2usize..8,
        ) {
            let bins = EqualFrequency::new(k).fit(&values, None).unwrap();
            let mut counts = vec![0usize; bins.len()];
            for v in &values {
                counts[bins.assign(*v)] += 1;
            }
            // With distinct-ish floats every bin should be populated.
            if bins.len() == k {
                let target = values.len() / k;
                for c in counts {
                    prop_assert!(c > 0);
                    prop_assert!(c <= target * 3 + 2, "bin count {c} vs target {target}");
                }
            }
        }
    }
}
