//! Supervised top-down discretisation: Fayyad–Irani entropy
//! partitioning with the MDL stopping criterion ("MDLP").
//!
//! The canonical top-down method from the survey the paper cites [17]:
//! recursively choose the cut point that minimises class-entropy of
//! the two sides, and stop when the information gain no longer pays
//! for the cost of encoding the cut (the Minimum Description Length
//! principle). Produces as many bins as the class structure supports —
//! no `k` parameter.

use super::{entropy, sorted_pairs, Bins, Discretiser};
use clinical_types::{Error, Result};
use std::collections::HashSet;

/// Fayyad–Irani MDLP discretiser (supervised).
#[derive(Debug, Clone, Default)]
pub struct Mdlp {
    /// Safety cap on recursion-produced cut points (0 = unlimited).
    pub max_cuts: usize,
}

impl Mdlp {
    /// MDLP with no cut cap.
    pub fn new() -> Self {
        Mdlp { max_cuts: 0 }
    }
}

impl Discretiser for Mdlp {
    fn method_name(&self) -> &'static str {
        "mdlp"
    }

    fn fit(&self, values: &[f64], classes: Option<&[usize]>) -> Result<Bins> {
        let classes =
            classes.ok_or_else(|| Error::invalid("MDLP is supervised: class labels required"))?;
        if values.is_empty() {
            return Err(Error::invalid("cannot fit bins to an empty column"));
        }
        let pairs = sorted_pairs(values, classes)?;
        let n_classes = pairs.iter().map(|p| p.1).max().unwrap_or(0) + 1;
        let mut cuts = Vec::new();
        partition(&pairs, n_classes, &mut cuts);
        cuts.sort_by(|a, b| a.total_cmp(b));
        cuts.dedup();
        if self.max_cuts > 0 && cuts.len() > self.max_cuts {
            cuts.truncate(self.max_cuts);
        }
        Bins::from_edges(cuts)
    }
}

/// Class-count vector over a slice of sorted pairs.
fn counts(pairs: &[(f64, usize)], n_classes: usize) -> Vec<usize> {
    let mut c = vec![0usize; n_classes];
    for &(_, cls) in pairs {
        c[cls] += 1;
    }
    c
}

/// Recursively partition `pairs` (sorted by value), appending accepted
/// cut points to `cuts`.
fn partition(pairs: &[(f64, usize)], n_classes: usize, cuts: &mut Vec<f64>) {
    let n = pairs.len();
    if n < 2 {
        return;
    }
    let parent_counts = counts(pairs, n_classes);
    let parent_entropy = entropy(&parent_counts);
    if parent_entropy == 0.0 {
        return; // already pure
    }

    // Scan boundary candidates: positions where the value changes.
    // Maintain left-side class counts incrementally — O(n · classes).
    let mut left = vec![0usize; n_classes];
    let mut best: Option<(usize, f64, f64)> = None; // (split index, cut value, weighted entropy)
    for i in 0..n - 1 {
        left[pairs[i].1] += 1;
        if pairs[i].0 == pairs[i + 1].0 {
            continue; // not a legal cut: same value on both sides
        }
        let right: Vec<usize> = parent_counts
            .iter()
            .zip(&left)
            .map(|(p, l)| p - l)
            .collect();
        let nl = (i + 1) as f64;
        let nr = (n - i - 1) as f64;
        let we = (nl * entropy(&left) + nr * entropy(&right)) / n as f64;
        if best.is_none_or(|(_, _, b)| we < b) {
            let cut = (pairs[i].0 + pairs[i + 1].0) / 2.0;
            best = Some((i, cut, we));
        }
    }
    let Some((split_idx, cut, weighted_entropy)) = best else {
        return; // all values identical: nothing to cut
    };

    // Fayyad–Irani MDL acceptance test.
    let gain = parent_entropy - weighted_entropy;
    let left_slice = &pairs[..=split_idx];
    let right_slice = &pairs[split_idx + 1..];
    let k = distinct_classes(pairs);
    let k1 = distinct_classes(left_slice);
    let k2 = distinct_classes(right_slice);
    let e = parent_entropy;
    let e1 = entropy(&counts(left_slice, n_classes));
    let e2 = entropy(&counts(right_slice, n_classes));
    let delta =
        ((3f64.powi(k as i32)) - 2.0).log2() - (k as f64 * e - k1 as f64 * e1 - k2 as f64 * e2);
    let threshold = ((n as f64 - 1.0).log2() + delta) / n as f64;
    if gain <= threshold {
        return;
    }

    cuts.push(cut);
    partition(left_slice, n_classes, cuts);
    partition(right_slice, n_classes, cuts);
}

fn distinct_classes(pairs: &[(f64, usize)]) -> usize {
    pairs.iter().map(|p| p.1).collect::<HashSet<_>>().len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requires_class_labels() {
        assert!(Mdlp::new().fit(&[1.0, 2.0], None).is_err());
    }

    #[test]
    fn finds_a_clean_class_boundary() {
        // Classes separate exactly at 5.0 with a wide margin.
        let values: Vec<f64> = (0..50)
            .map(|i| i as f64 / 10.0)
            .chain((0..50).map(|i| 6.0 + i as f64 / 10.0))
            .collect();
        let classes: Vec<usize> = std::iter::repeat_n(0, 50)
            .chain(std::iter::repeat_n(1, 50))
            .collect();
        let bins = Mdlp::new().fit(&values, Some(&classes)).unwrap();
        assert_eq!(bins.len(), 2, "expected exactly one accepted cut");
        let cut = bins.edges()[0];
        assert!((4.9..=6.0).contains(&cut), "cut {cut} not at the boundary");
    }

    #[test]
    fn pure_column_produces_single_bin() {
        let values: Vec<f64> = (0..40).map(f64::from).collect();
        let classes = vec![0usize; 40];
        let bins = Mdlp::new().fit(&values, Some(&classes)).unwrap();
        assert_eq!(bins.len(), 1);
    }

    #[test]
    fn random_labels_are_not_cut() {
        // Alternating classes over an ascending column carry no usable
        // split: MDL must reject every candidate.
        let values: Vec<f64> = (0..60).map(f64::from).collect();
        let classes: Vec<usize> = (0..60).map(|i| i % 2).collect();
        let bins = Mdlp::new().fit(&values, Some(&classes)).unwrap();
        assert_eq!(bins.len(), 1, "MDL should refuse to cut noise");
    }

    #[test]
    fn three_class_staircase_gets_two_cuts() {
        let mut values = Vec::new();
        let mut classes = Vec::new();
        for (c, base) in [(0usize, 0.0), (1, 10.0), (2, 20.0)] {
            for i in 0..40 {
                values.push(base + i as f64 * 0.1);
                classes.push(c);
            }
        }
        let bins = Mdlp::new().fit(&values, Some(&classes)).unwrap();
        assert_eq!(bins.len(), 3);
    }

    #[test]
    fn tied_values_never_become_cuts() {
        // All mass at two values; the only legal cut is between them.
        let values = [1.0, 1.0, 1.0, 2.0, 2.0, 2.0];
        let classes = [0, 0, 0, 1, 1, 1];
        let bins = Mdlp::new().fit(&values, Some(&classes)).unwrap();
        if bins.len() == 2 {
            let cut = bins.edges()[0];
            assert!(cut > 1.0 && cut < 2.0);
        }
    }

    #[test]
    fn length_mismatch_is_an_error() {
        assert!(Mdlp::new().fit(&[1.0, 2.0], Some(&[0])).is_err());
    }

    #[test]
    fn max_cuts_caps_output() {
        let mut values = Vec::new();
        let mut classes = Vec::new();
        for (c, base) in [(0usize, 0.0), (1, 10.0), (2, 20.0), (0, 30.0)] {
            for i in 0..30 {
                values.push(base + i as f64 * 0.1);
                classes.push(c);
            }
        }
        let bins = Mdlp { max_cuts: 1 }.fit(&values, Some(&classes)).unwrap();
        assert!(bins.len() <= 2);
    }
}
