//! Unsupervised top-down discretisation: equal-width binning.

use super::{Bins, Discretiser};
use clinical_types::{Error, Result};

/// Splits the observed value range into `k` intervals of equal width.
/// The simplest of the top-down methods surveyed in [17]; fast, but
/// sensitive to outliers (one extreme value stretches every bin).
#[derive(Debug, Clone)]
pub struct EqualWidth {
    /// Number of intervals to produce.
    pub k: usize,
}

impl EqualWidth {
    /// Equal-width binning with `k` intervals (`k >= 1`).
    pub fn new(k: usize) -> Self {
        EqualWidth { k }
    }
}

impl Discretiser for EqualWidth {
    fn method_name(&self) -> &'static str {
        "equal-width"
    }

    fn fit(&self, values: &[f64], _classes: Option<&[usize]>) -> Result<Bins> {
        if self.k == 0 {
            return Err(Error::invalid("equal-width needs k >= 1"));
        }
        if values.is_empty() {
            return Err(Error::invalid("cannot fit bins to an empty column"));
        }
        if values.iter().any(|v| !v.is_finite()) {
            return Err(Error::invalid("cannot discretise non-finite values"));
        }
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if lo == hi || self.k == 1 {
            // Degenerate column: a single bin covers everything.
            return Bins::from_edges(vec![]);
        }
        let width = (hi - lo) / self.k as f64;
        let mut edges: Vec<f64> = (1..self.k).map(|i| lo + width * i as f64).collect();
        edges.dedup();
        Bins::from_edges(edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn splits_range_evenly() {
        let bins = EqualWidth::new(4)
            .fit(&[0.0, 10.0, 20.0, 40.0], None)
            .unwrap();
        assert_eq!(bins.edges(), &[10.0, 20.0, 30.0]);
        assert_eq!(bins.len(), 4);
    }

    #[test]
    fn constant_column_collapses_to_one_bin() {
        let bins = EqualWidth::new(5).fit(&[3.3, 3.3, 3.3], None).unwrap();
        assert_eq!(bins.len(), 1);
    }

    #[test]
    fn rejects_empty_and_nonfinite() {
        assert!(EqualWidth::new(3).fit(&[], None).is_err());
        assert!(EqualWidth::new(3).fit(&[1.0, f64::NAN], None).is_err());
        assert!(EqualWidth::new(0).fit(&[1.0], None).is_err());
    }

    #[test]
    fn k_one_gives_single_bin() {
        let bins = EqualWidth::new(1).fit(&[1.0, 9.0], None).unwrap();
        assert_eq!(bins.len(), 1);
    }

    proptest! {
        #[test]
        fn every_observed_value_lands_in_a_bin(
            values in proptest::collection::vec(-1e6f64..1e6, 1..200),
            k in 1usize..12,
        ) {
            let bins = EqualWidth::new(k).fit(&values, None).unwrap();
            for v in &values {
                prop_assert!(bins.assign(*v) < bins.len());
            }
            prop_assert!(bins.len() <= k);
        }
    }
}
