//! Discretisation of continuous clinical measures.
//!
//! §IV.1 of the paper: numeric clinical measures must be converted to
//! discrete ranges before aggregation and analysis. Where a clinician
//! supplies a scheme (the paper's Table I) it is used directly
//! ([`clinical`]); otherwise an algorithmic method is chosen — the
//! paper cites Kotsiantis & Kanellopoulos [17], from which we
//! implement two unsupervised top-down methods ([`equal_width`],
//! [`equal_frequency`]), one supervised top-down method
//! ([`mdlp`], Fayyad–Irani entropy partitioning) and one supervised
//! bottom-up method ([`chimerge`]).
//!
//! All methods produce the same artefact: a [`Bins`] object — sorted
//! interior cut points plus interval labels — which can then be
//! applied to a table column, mirroring §V.A where attributes without
//! clinical schemes "were duplicated with one having the original
//! continuous form and the other discretised".

pub mod chimerge;
pub mod clinical;
pub mod equal_frequency;
pub mod equal_width;
pub mod mdlp;

use clinical_types::{DataType, Error, FieldDef, Record, Result, Table, Value};

/// A fitted discretisation: `edges.len() + 1` intervals.
///
/// Interval `i` covers `[edges[i-1], edges[i])` with the conventional
/// open ends: interval `0` is `(-inf, edges[0])` and the last interval
/// is `[edges.last(), +inf)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Bins {
    /// Sorted, strictly increasing interior cut points.
    edges: Vec<f64>,
    /// One label per interval.
    labels: Vec<String>,
}

impl Bins {
    /// Build from cut points, generating `[lo, hi)`-style labels.
    pub fn from_edges(edges: Vec<f64>) -> Result<Self> {
        let labels = auto_labels(&edges);
        Bins::with_labels(edges, labels)
    }

    /// Build from cut points and explicit interval labels.
    pub fn with_labels(edges: Vec<f64>, labels: Vec<String>) -> Result<Self> {
        if labels.len() != edges.len() + 1 {
            return Err(Error::invalid(format!(
                "{} edges need {} labels, got {}",
                edges.len(),
                edges.len() + 1,
                labels.len()
            )));
        }
        if edges.windows(2).any(|w| w[0] >= w[1]) {
            return Err(Error::invalid("bin edges must be strictly increasing"));
        }
        if edges.iter().any(|e| !e.is_finite()) {
            return Err(Error::invalid("bin edges must be finite"));
        }
        Ok(Bins { edges, labels })
    }

    /// Number of intervals.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Always at least one interval.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Interior cut points.
    pub fn edges(&self) -> &[f64] {
        &self.edges
    }

    /// Interval labels.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Index of the interval containing `value`.
    pub fn assign(&self, value: f64) -> usize {
        // partition_point returns the count of edges <= value, which is
        // exactly the interval index under the [lo, hi) convention.
        self.edges.partition_point(|e| *e <= value)
    }

    /// Label of the interval containing `value`.
    pub fn label_of(&self, value: f64) -> &str {
        &self.labels[self.assign(value)]
    }
}

fn auto_labels(edges: &[f64]) -> Vec<String> {
    if edges.is_empty() {
        return vec!["all".to_string()];
    }
    let mut labels = Vec::with_capacity(edges.len() + 1);
    labels.push(format!("<{}", fmt_num(edges[0])));
    for w in edges.windows(2) {
        labels.push(format!("{}-{}", fmt_num(w[0]), fmt_num(w[1])));
    }
    labels.push(format!(">={}", fmt_num(edges[edges.len() - 1])));
    labels
}

fn fmt_num(x: f64) -> String {
    if (x - x.round()).abs() < 1e-9 {
        format!("{}", x.round() as i64)
    } else {
        format!("{x}")
    }
}

/// A discretisation algorithm: fits [`Bins`] to observed values,
/// optionally supervised by class labels (one per value).
pub trait Discretiser {
    /// Human-readable method name (for reports and benches).
    fn method_name(&self) -> &'static str;

    /// Fit bins to `values`; supervised methods require `classes`
    /// (same length as `values`) and error without them.
    fn fit(&self, values: &[f64], classes: Option<&[usize]>) -> Result<Bins>;
}

/// Append a discretised text column `new_name` derived from numeric
/// column `src` using `bins`. Null or non-numeric source cells yield
/// null band cells. This is the "duplicate the attribute" pattern of
/// §V.A: the continuous column is retained.
pub fn append_band_column(table: &Table, src: &str, new_name: &str, bins: &Bins) -> Result<Table> {
    let src_idx = table.schema().index_of(src)?;
    let mut schema = table.schema().clone();
    schema.push(FieldDef::nullable(new_name, DataType::Text))?;
    let mut out = Table::new(schema);
    for row in table.rows() {
        let mut values = row.values().to_vec();
        let band = match values[src_idx].as_f64() {
            Some(x) => Value::Text(bins.label_of(x).to_string()),
            None => Value::Null,
        };
        values.push(band);
        out.push_unchecked(Record::new(values));
    }
    Ok(out)
}

/// Shared helper for the supervised methods: sorted `(value, class)`
/// pairs with NaNs rejected.
pub(crate) fn sorted_pairs(values: &[f64], classes: &[usize]) -> Result<Vec<(f64, usize)>> {
    if values.len() != classes.len() {
        return Err(Error::invalid(format!(
            "{} values but {} class labels",
            values.len(),
            classes.len()
        )));
    }
    if values.iter().any(|v| v.is_nan()) {
        return Err(Error::invalid("cannot discretise NaN values"));
    }
    let mut pairs: Vec<(f64, usize)> = values
        .iter()
        .copied()
        .zip(classes.iter().copied())
        .collect();
    pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
    Ok(pairs)
}

/// Shannon entropy (bits) of a class-count vector.
pub(crate) fn entropy(counts: &[usize]) -> f64 {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let n = total as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn assign_respects_half_open_convention() {
        let bins = Bins::from_edges(vec![5.5, 6.1, 7.0]).unwrap();
        assert_eq!(bins.assign(5.4), 0);
        assert_eq!(bins.assign(5.5), 1); // lower edge belongs to upper bin
        assert_eq!(bins.assign(6.0), 1);
        assert_eq!(bins.assign(6.1), 2);
        assert_eq!(bins.assign(7.0), 3);
        assert_eq!(bins.assign(12.0), 3);
    }

    #[test]
    fn auto_labels_render_ranges() {
        let bins = Bins::from_edges(vec![40.0, 60.0, 80.0]).unwrap();
        assert_eq!(bins.labels(), &["<40", "40-60", "60-80", ">=80"]);
    }

    #[test]
    fn zero_edges_means_one_bin() {
        let bins = Bins::from_edges(vec![]).unwrap();
        assert_eq!(bins.len(), 1);
        assert_eq!(bins.assign(1e9), 0);
        assert_eq!(bins.assign(-1e9), 0);
    }

    #[test]
    fn rejects_unsorted_or_nonfinite_edges() {
        assert!(Bins::from_edges(vec![2.0, 1.0]).is_err());
        assert!(Bins::from_edges(vec![1.0, 1.0]).is_err());
        assert!(Bins::from_edges(vec![f64::NAN]).is_err());
        assert!(Bins::from_edges(vec![f64::INFINITY]).is_err());
    }

    #[test]
    fn label_count_must_match() {
        assert!(Bins::with_labels(vec![1.0], vec!["a".into()]).is_err());
        assert!(Bins::with_labels(vec![1.0], vec!["a".into(), "b".into()]).is_ok());
    }

    #[test]
    fn entropy_of_pure_and_uniform() {
        assert_eq!(entropy(&[10, 0]), 0.0);
        assert!((entropy(&[5, 5]) - 1.0).abs() < 1e-12);
        assert!((entropy(&[1, 1, 1, 1]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn append_band_column_keeps_continuous_form() {
        use clinical_types::{FieldDef, Schema};
        let schema = Schema::new(vec![FieldDef::nullable("FBG", DataType::Float)]).unwrap();
        let table = Table::from_rows(
            schema,
            vec![
                Record::new(vec![Value::Float(5.0)]),
                Record::new(vec![Value::Null]),
                Record::new(vec![Value::Float(8.2)]),
            ],
        )
        .unwrap();
        let bins = Bins::with_labels(
            vec![5.5, 6.1, 7.0],
            vec![
                "very good".into(),
                "high".into(),
                "preDiabetic".into(),
                "Diabetic".into(),
            ],
        )
        .unwrap();
        let out = append_band_column(&table, "FBG", "FBG_Band", &bins).unwrap();
        assert_eq!(out.schema().len(), 2);
        assert_eq!(out.value(0, "FBG").unwrap().as_f64(), Some(5.0));
        assert_eq!(
            out.value(0, "FBG_Band").unwrap().as_str(),
            Some("very good")
        );
        assert!(out.value(1, "FBG_Band").unwrap().is_null());
        assert_eq!(out.value(2, "FBG_Band").unwrap().as_str(), Some("Diabetic"));
    }

    proptest! {
        #[test]
        fn assign_is_monotone(mut edges in proptest::collection::vec(-100.0f64..100.0, 1..6), a in -200.0f64..200.0, b in -200.0f64..200.0) {
            edges.sort_by(|x, y| x.partial_cmp(y).unwrap());
            edges.dedup();
            let bins = Bins::from_edges(edges).unwrap();
            if a <= b {
                prop_assert!(bins.assign(a) <= bins.assign(b));
            }
        }

        #[test]
        fn every_value_gets_a_valid_bin(v in any::<f64>().prop_filter("finite", |x| x.is_finite())) {
            let bins = Bins::from_edges(vec![0.0, 10.0]).unwrap();
            prop_assert!(bins.assign(v) < bins.len());
        }
    }
}
