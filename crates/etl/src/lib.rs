#![warn(missing_docs)]

//! Data transformation for the DD-DGMS pipeline.
//!
//! Implements the "Data Transformation" component of the paper's
//! architecture (§IV) and its three clinical-specific concerns, plus
//! the cleaning step the trial applies first (§V.A: "Data
//! transformation initiated with the replacement of missing values,
//! erroneous values and records"):
//!
//! * [`clean`] — plausibility-range based cleaning of erroneous
//!   values and handling of missing measurements.
//! * [`discretise`] — conversion of continuous clinical measures to
//!   ranges: clinician-supplied schemes (the paper's Table I) where
//!   available, otherwise algorithmic top-down (equal-width,
//!   entropy/MDLP) or bottom-up (ChiMerge) methods per Kotsiantis &
//!   Kanellopoulos [17].
//! * [`temporal`] — temporal abstraction: qualitative state and trend
//!   descriptions derived from time-stamped measurements [18].
//! * [`cardinality`] — visit-level abstraction distinguishing repeat
//!   attendances of the same patient.
//! * [`pipeline`] — the composed transformation applied before
//!   warehouse loading.

pub mod cardinality;
pub mod clean;
pub mod discretise;
pub mod impute;
pub mod pipeline;
pub mod temporal;

pub use cardinality::{derive_cardinality, CardinalityProfile};
pub use clean::{Cleaner, CleaningReport, CleaningRules};
pub use discretise::{
    chimerge::ChiMerge, clinical::table1_schemes, clinical::ClinicalScheme,
    equal_frequency::EqualFrequency, equal_width::EqualWidth, mdlp::Mdlp, Bins, Discretiser,
};
pub use impute::{ImputeReport, ImputeStrategy, Imputer};
pub use pipeline::{PipelineReport, TransformPipeline};
pub use temporal::{abstract_trends, StateAbstraction, Trend, TrendAbstraction};
