//! Replacement of missing values.
//!
//! §V.A opens with *"Data transformation initiated with the
//! replacement of missing values, erroneous values and records."*
//! [`crate::clean`] handles erroneous values and records; this module
//! handles the replacement of missing measurements. Four strategies
//! cover the clinical cases:
//!
//! * [`ImputeStrategy::Mean`] / [`ImputeStrategy::Median`] — numeric
//!   population statistics (robust default for labs and vitals).
//! * [`ImputeStrategy::Mode`] — most frequent category for
//!   categorical attributes.
//! * [`ImputeStrategy::CarryForward`] — per-patient last observation
//!   carried forward in visit order: the standard longitudinal rule
//!   ("the patient's height did not change because the nurse skipped
//!   the measurement").
//! * [`ImputeStrategy::Constant`] — an explicit clinical default.
//!
//! Imputation is deliberately *not* part of the default pipeline:
//! warehouse measures carry a null mask and every aggregate skips
//! missing values, which is the statistically safer default. The
//! imputer exists for consumers that need complete vectors (k-means,
//! external exports) and for the ablation bench.

use clinical_types::{Error, Record, Result, Table, Value};
use std::collections::HashMap;

/// How to fill missing cells of one column.
#[derive(Debug, Clone, PartialEq)]
pub enum ImputeStrategy {
    /// Column mean (numeric columns only).
    Mean,
    /// Column median (numeric columns only).
    Median,
    /// Most frequent non-null value (ties break to the first seen).
    Mode,
    /// Per-patient last observation carried forward, ordered by a
    /// date column; leading missing values stay missing.
    CarryForward {
        /// Patient identifier column.
        patient_column: String,
        /// Visit date column defining the order.
        date_column: String,
    },
    /// A fixed replacement value.
    Constant(Value),
}

/// Per-column imputation outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ImputeReport {
    /// Column name.
    pub column: String,
    /// Missing cells before imputation.
    pub missing_before: usize,
    /// Missing cells after (carry-forward can leave leading gaps).
    pub missing_after: usize,
}

/// An imputation plan: strategy per column.
#[derive(Debug, Clone, Default)]
pub struct Imputer {
    plans: Vec<(String, ImputeStrategy)>,
}

impl Imputer {
    /// Empty imputer.
    pub fn new() -> Self {
        Imputer::default()
    }

    /// Add a column plan.
    pub fn column(mut self, name: impl Into<String>, strategy: ImputeStrategy) -> Self {
        self.plans.push((name.into(), strategy));
        self
    }

    /// Apply all plans, returning the completed table and per-column
    /// reports (in plan order).
    pub fn apply(&self, table: &Table) -> Result<(Table, Vec<ImputeReport>)> {
        let mut rows: Vec<Record> = table.rows().to_vec();
        let schema = table.schema().clone();
        let mut reports = Vec::with_capacity(self.plans.len());
        for (column, strategy) in &self.plans {
            let idx = schema.index_of(column)?;
            let missing_before = rows.iter().filter(|r| r[idx].is_null()).count();
            match strategy {
                ImputeStrategy::Mean => {
                    let fill = numeric_stat(&rows, idx, column, Stat::Mean)?;
                    fill_nulls(&mut rows, idx, &Value::Float(fill));
                }
                ImputeStrategy::Median => {
                    let fill = numeric_stat(&rows, idx, column, Stat::Median)?;
                    fill_nulls(&mut rows, idx, &Value::Float(fill));
                }
                ImputeStrategy::Mode => {
                    let fill = mode_of(&rows, idx).ok_or_else(|| {
                        Error::invalid(format!("column `{column}` has no non-null values"))
                    })?;
                    fill_nulls(&mut rows, idx, &fill);
                }
                ImputeStrategy::Constant(v) => {
                    // The constant must type-check against the schema.
                    schema
                        .field(column)?
                        .check(v)
                        .map_err(|e| Error::invalid(format!("bad constant for `{column}`: {e}")))?;
                    fill_nulls(&mut rows, idx, v);
                }
                ImputeStrategy::CarryForward {
                    patient_column,
                    date_column,
                } => {
                    carry_forward(&mut rows, &schema, idx, patient_column, date_column)?;
                }
            }
            let missing_after = rows.iter().filter(|r| r[idx].is_null()).count();
            reports.push(ImputeReport {
                column: column.clone(),
                missing_before,
                missing_after,
            });
        }
        let table = Table::from_rows(schema, rows)?;
        Ok((table, reports))
    }
}

enum Stat {
    Mean,
    Median,
}

fn numeric_stat(rows: &[Record], idx: usize, column: &str, stat: Stat) -> Result<f64> {
    let mut values: Vec<f64> = rows.iter().filter_map(|r| r[idx].as_f64()).collect();
    if values.is_empty() {
        return Err(Error::invalid(format!(
            "column `{column}` has no numeric values to impute from"
        )));
    }
    Ok(match stat {
        Stat::Mean => values.iter().sum::<f64>() / values.len() as f64,
        Stat::Median => {
            values.sort_by(|a, b| a.total_cmp(b));
            let mid = values.len() / 2;
            if values.len() % 2 == 1 {
                values[mid]
            } else {
                (values[mid - 1] + values[mid]) / 2.0
            }
        }
    })
}

fn mode_of(rows: &[Record], idx: usize) -> Option<Value> {
    let mut counts: Vec<(Value, usize)> = Vec::new();
    for r in rows {
        let v = &r[idx];
        if v.is_null() {
            continue;
        }
        match counts.iter_mut().find(|(k, _)| k == v) {
            Some((_, c)) => *c += 1,
            None => counts.push((v.clone(), 1)),
        }
    }
    // First-seen wins on ties, deterministically.
    let mut best: Option<(Value, usize)> = None;
    for (v, c) in counts {
        if best.as_ref().is_none_or(|(_, bc)| c > *bc) {
            best = Some((v, c));
        }
    }
    best.map(|(v, _)| v)
}

fn fill_nulls(rows: &mut [Record], idx: usize, fill: &Value) {
    for r in rows {
        if r[idx].is_null() {
            r.values_mut()[idx] = fill.clone();
        }
    }
}

fn carry_forward(
    rows: &mut [Record],
    schema: &clinical_types::Schema,
    idx: usize,
    patient_column: &str,
    date_column: &str,
) -> Result<()> {
    let pid_idx = schema.index_of(patient_column)?;
    let date_idx = schema.index_of(date_column)?;
    let mut per_patient: HashMap<i64, Vec<usize>> = HashMap::new();
    for (i, r) in rows.iter().enumerate() {
        let pid = r[pid_idx]
            .as_i64()
            .ok_or_else(|| Error::invalid(format!("non-integer `{patient_column}` in row {i}")))?;
        per_patient.entry(pid).or_default().push(i);
    }
    for visit_rows in per_patient.values_mut() {
        visit_rows.sort_by_key(|&i| rows[i][date_idx].as_date());
        let mut last: Option<Value> = None;
        for &i in visit_rows.iter() {
            if rows[i][idx].is_null() {
                if let Some(v) = &last {
                    rows[i].values_mut()[idx] = v.clone();
                }
            } else {
                last = Some(rows[i][idx].clone());
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use clinical_types::{DataType, Date, FieldDef, Schema};

    fn table() -> Table {
        let schema = Schema::new(vec![
            FieldDef::required("PatientId", DataType::Int),
            FieldDef::required("TestDate", DataType::Date),
            FieldDef::nullable("FBG", DataType::Float),
            FieldDef::nullable("Gender", DataType::Text),
        ])
        .unwrap();
        let mk = |p: i64, y: i32, fbg: Option<f64>, g: Option<&str>| {
            Record::new(vec![
                Value::Int(p),
                Value::Date(Date::new(y, 6, 1).unwrap()),
                fbg.map(Value::Float).unwrap_or(Value::Null),
                g.map(Value::from).unwrap_or(Value::Null),
            ])
        };
        Table::from_rows(
            schema,
            vec![
                mk(1, 2005, Some(5.0), Some("F")),
                mk(1, 2006, None, Some("F")),
                mk(1, 2007, Some(7.0), None),
                mk(2, 2005, None, Some("M")),
                mk(2, 2006, Some(6.0), Some("M")),
            ],
        )
        .unwrap()
    }

    #[test]
    fn mean_imputation_fills_with_column_mean() {
        let (out, reports) = Imputer::new()
            .column("FBG", ImputeStrategy::Mean)
            .apply(&table())
            .unwrap();
        assert_eq!(reports[0].missing_before, 2);
        assert_eq!(reports[0].missing_after, 0);
        let mean = (5.0 + 7.0 + 6.0) / 3.0;
        assert_eq!(out.value(1, "FBG").unwrap().as_f64(), Some(mean));
        assert_eq!(out.value(3, "FBG").unwrap().as_f64(), Some(mean));
        // Non-missing cells untouched.
        assert_eq!(out.value(0, "FBG").unwrap().as_f64(), Some(5.0));
    }

    #[test]
    fn median_imputation_is_robust_to_outliers() {
        let mut t = table();
        t.push(Record::new(vec![
            Value::Int(3),
            Value::Date(Date::new(2005, 1, 1).unwrap()),
            Value::Float(100.0), // an absurd but "clean" outlier
            Value::Null,
        ]))
        .unwrap();
        let (out, _) = Imputer::new()
            .column("FBG", ImputeStrategy::Median)
            .apply(&t)
            .unwrap();
        // Median of {5, 7, 6, 100} = 6.5 — the mean would be 29.5.
        assert_eq!(out.value(1, "FBG").unwrap().as_f64(), Some(6.5));
    }

    #[test]
    fn mode_imputation_for_categorical() {
        let (out, _) = Imputer::new()
            .column("Gender", ImputeStrategy::Mode)
            .apply(&table())
            .unwrap();
        // F appears 2×, M 2× — first seen wins deterministically.
        assert_eq!(out.value(2, "Gender").unwrap().as_str(), Some("F"));
    }

    #[test]
    fn carry_forward_respects_patient_and_date_order() {
        let (out, reports) = Imputer::new()
            .column(
                "FBG",
                ImputeStrategy::CarryForward {
                    patient_column: "PatientId".into(),
                    date_column: "TestDate".into(),
                },
            )
            .apply(&table())
            .unwrap();
        // Patient 1's 2006 gap takes the 2005 value.
        assert_eq!(out.value(1, "FBG").unwrap().as_f64(), Some(5.0));
        // Patient 2's 2005 gap is a leading gap — stays missing.
        assert!(out.value(3, "FBG").unwrap().is_null());
        assert_eq!(reports[0].missing_before, 2);
        assert_eq!(reports[0].missing_after, 1);
    }

    #[test]
    fn constant_imputation_type_checks() {
        let (out, _) = Imputer::new()
            .column("Gender", ImputeStrategy::Constant(Value::from("unknown")))
            .apply(&table())
            .unwrap();
        assert_eq!(out.value(2, "Gender").unwrap().as_str(), Some("unknown"));
        // Wrong type rejected.
        assert!(Imputer::new()
            .column("Gender", ImputeStrategy::Constant(Value::Int(1)))
            .apply(&table())
            .is_err());
    }

    #[test]
    fn chained_plans_apply_in_order() {
        let (out, reports) = Imputer::new()
            .column("FBG", ImputeStrategy::Mean)
            .column("Gender", ImputeStrategy::Mode)
            .apply(&table())
            .unwrap();
        assert_eq!(reports.len(), 2);
        assert!(!out.rows().iter().any(|r| r[2].is_null() || r[3].is_null()));
    }

    #[test]
    fn empty_column_errors() {
        let schema = Schema::new(vec![FieldDef::nullable("X", DataType::Float)]).unwrap();
        let t = Table::from_rows(schema, vec![Record::new(vec![Value::Null])]).unwrap();
        assert!(Imputer::new()
            .column("X", ImputeStrategy::Mean)
            .apply(&t)
            .is_err());
        assert!(Imputer::new()
            .column("X", ImputeStrategy::Mode)
            .apply(&t)
            .is_err());
    }

    #[test]
    fn unknown_column_errors() {
        assert!(Imputer::new()
            .column("Nope", ImputeStrategy::Mean)
            .apply(&table())
            .is_err());
    }
}
