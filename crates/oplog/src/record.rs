//! Oplog positions and the framed record codec.
//!
//! A record on the wire is
//!
//! ```text
//! [epoch u64le][seq u64le][payload_len u32le][payload][crc32 u32le]
//! ```
//!
//! with the CRC-32 (the same IEEE polynomial as the OLTP WAL,
//! [`oltp::encoding::crc32`]) covering everything before it. The
//! payload opens with a kind tag and reuses the OLTP self-describing
//! row codec for values, so the oplog inherits the WAL's corruption
//! and torn-write detection properties instead of inventing a second
//! framing discipline.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use clinical_types::{DataType, Error, FieldDef, Record, Result, Schema, Table};
use oltp::encoding::{crc32, decode_row, encode_row};
use warehouse::WarehouseChange;

/// A position in the oplog: the epoch a record lands the warehouse on
/// and its log sequence number. Both components are strictly monotone
/// over the life of a log, so ordering by `(epoch, seq)` is total.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LogPos {
    /// Warehouse epoch after this record is applied.
    pub epoch: u64,
    /// 1-based log sequence number.
    pub seq: u64,
}

impl LogPos {
    /// The cursor of a replica that has applied nothing yet.
    pub fn start() -> LogPos {
        LogPos { epoch: 0, seq: 0 }
    }
}

impl std::fmt::Display for LogPos {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}s{}", self.epoch, self.seq)
    }
}

/// One sequenced change: the position it lands on and the mutation.
#[derive(Debug, Clone)]
pub struct LogRecord {
    /// Where in the log (and on which epoch) this record sits.
    pub pos: LogPos,
    /// The replayable mutation.
    pub change: WarehouseChange,
}

const KIND_APPEND: u8 = 0;
const KIND_FEEDBACK: u8 = 1;
const KIND_REWRITE: u8 = 2;

fn dtype_tag(dtype: DataType) -> u8 {
    match dtype {
        DataType::Int => 0,
        DataType::Float => 1,
        DataType::Text => 2,
        DataType::Bool => 3,
        DataType::Date => 4,
    }
}

fn tag_dtype(tag: u8) -> Result<DataType> {
    Ok(match tag {
        0 => DataType::Int,
        1 => DataType::Float,
        2 => DataType::Text,
        3 => DataType::Bool,
        4 => DataType::Date,
        other => return Err(Error::invalid(format!("unknown dtype tag {other}"))),
    })
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> Result<String> {
    if buf.remaining() < 4 {
        return Err(Error::invalid("payload truncated in string length"));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(Error::invalid("payload truncated in string body"));
    }
    let raw = buf.copy_to_bytes(len);
    std::str::from_utf8(&raw)
        .map(str::to_string)
        .map_err(|_| Error::invalid("invalid UTF-8 in oplog string"))
}

fn put_row(buf: &mut BytesMut, record: &Record) {
    let row = encode_row(record);
    buf.put_u32_le(row.len() as u32);
    buf.put_slice(&row);
}

fn get_row(buf: &mut Bytes) -> Result<Record> {
    if buf.remaining() < 4 {
        return Err(Error::invalid("payload truncated in row length"));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(Error::invalid("payload truncated in row body"));
    }
    let raw = buf.copy_to_bytes(len);
    decode_row(&raw)
}

/// Encode a change into its oplog payload (kind tag + body).
pub fn encode_change(change: &WarehouseChange) -> Bytes {
    let mut buf = BytesMut::new();
    match change {
        WarehouseChange::Append(table) => {
            buf.put_u8(KIND_APPEND);
            let fields = table.schema().fields();
            buf.put_u16_le(fields.len() as u16);
            for field in fields {
                put_str(&mut buf, &field.name);
                buf.put_u8(dtype_tag(field.dtype));
                buf.put_u8(u8::from(field.nullable));
            }
            buf.put_u32_le(table.len() as u32);
            for row in table.rows() {
                put_row(&mut buf, row);
            }
        }
        WarehouseChange::Feedback {
            dimension,
            attribute,
            labels,
        } => {
            buf.put_u8(KIND_FEEDBACK);
            put_str(&mut buf, dimension);
            put_str(&mut buf, attribute);
            put_row(&mut buf, &Record::new(labels.clone()));
        }
        WarehouseChange::Rewrite => buf.put_u8(KIND_REWRITE),
    }
    buf.freeze()
}

/// Decode an oplog payload back into the change it captured.
pub fn decode_change(payload: &Bytes) -> Result<WarehouseChange> {
    let mut buf = payload.clone();
    if buf.remaining() < 1 {
        return Err(Error::invalid("empty oplog payload"));
    }
    let change = match buf.get_u8() {
        KIND_APPEND => {
            if buf.remaining() < 2 {
                return Err(Error::invalid("payload truncated in field count"));
            }
            let nfields = buf.get_u16_le() as usize;
            let mut fields = Vec::with_capacity(nfields);
            for _ in 0..nfields {
                let name = get_str(&mut buf)?;
                if buf.remaining() < 2 {
                    return Err(Error::invalid("payload truncated in field flags"));
                }
                let dtype = tag_dtype(buf.get_u8())?;
                let nullable = buf.get_u8() != 0;
                fields.push(if nullable {
                    FieldDef::nullable(name, dtype)
                } else {
                    FieldDef::required(name, dtype)
                });
            }
            let schema = Schema::new(fields)?;
            if buf.remaining() < 4 {
                return Err(Error::invalid("payload truncated in row count"));
            }
            let nrows = buf.get_u32_le() as usize;
            let mut rows = Vec::with_capacity(nrows);
            for _ in 0..nrows {
                rows.push(get_row(&mut buf)?);
            }
            WarehouseChange::Append(Table::from_rows(schema, rows)?)
        }
        KIND_FEEDBACK => {
            let dimension = get_str(&mut buf)?;
            let attribute = get_str(&mut buf)?;
            let labels = get_row(&mut buf)?.into_values();
            WarehouseChange::Feedback {
                dimension,
                attribute,
                labels,
            }
        }
        KIND_REWRITE => WarehouseChange::Rewrite,
        other => return Err(Error::invalid(format!("unknown change kind {other}"))),
    };
    if buf.has_remaining() {
        return Err(Error::invalid("trailing bytes after oplog payload"));
    }
    Ok(change)
}

/// Size of the fixed frame prefix: epoch + seq + payload length.
pub(crate) const FRAME_PREFIX: usize = 8 + 8 + 4;

/// Encode one record into its on-disk frame (prefix, payload, CRC).
pub fn encode_frame(record: &LogRecord) -> Vec<u8> {
    let payload = encode_change(&record.change);
    let mut out = Vec::with_capacity(FRAME_PREFIX + payload.len() + 4);
    out.extend_from_slice(&record.pos.epoch.to_le_bytes());
    out.extend_from_slice(&record.pos.seq.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    out.extend_from_slice(&crc32(&out).to_le_bytes());
    out
}

/// Decode the frame starting at `buf[at..]`. Returns the record and
/// the offset one past its CRC, or `None` when the bytes from `at` on
/// are torn or corrupt (the caller truncates there).
pub fn decode_frame(buf: &[u8], at: usize) -> Option<(LogRecord, usize)> {
    let rest = buf.get(at..)?;
    if rest.len() < FRAME_PREFIX + 4 {
        return None;
    }
    let epoch = u64::from_le_bytes(rest[0..8].try_into().ok()?);
    let seq = u64::from_le_bytes(rest[8..16].try_into().ok()?);
    let payload_len = u32::from_le_bytes(rest[16..20].try_into().ok()?) as usize;
    let total = FRAME_PREFIX + payload_len;
    if rest.len() < total + 4 {
        return None;
    }
    let stored = u32::from_le_bytes(rest[total..total + 4].try_into().ok()?);
    if crc32(&rest[..total]) != stored {
        return None;
    }
    let payload = Bytes::from(&rest[FRAME_PREFIX..total]);
    let change = decode_change(&payload).ok()?;
    Some((
        LogRecord {
            pos: LogPos { epoch, seq },
            change,
        },
        at + total + 4,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use clinical_types::Value;
    use proptest::prelude::*;

    fn sample_table() -> Table {
        let schema = Schema::new(vec![
            FieldDef::required("FBG", DataType::Float),
            FieldDef::nullable("FBG_Band", DataType::Text),
            FieldDef::nullable("Recheck", DataType::Bool),
        ])
        .unwrap();
        Table::from_rows(
            schema,
            vec![
                Record::new(vec![5.0.into(), "very good".into(), Value::Bool(false)]),
                Record::new(vec![8.1.into(), "Diabetic".into(), Value::Null]),
            ],
        )
        .unwrap()
    }

    fn assert_same_change(a: &WarehouseChange, b: &WarehouseChange) {
        match (a, b) {
            (WarehouseChange::Append(x), WarehouseChange::Append(y)) => {
                assert_eq!(x.schema().fields(), y.schema().fields());
                assert_eq!(x.rows(), y.rows());
            }
            (
                WarehouseChange::Feedback {
                    dimension: d1,
                    attribute: a1,
                    labels: l1,
                },
                WarehouseChange::Feedback {
                    dimension: d2,
                    attribute: a2,
                    labels: l2,
                },
            ) => {
                assert_eq!((d1, a1, l1), (d2, a2, l2));
            }
            (WarehouseChange::Rewrite, WarehouseChange::Rewrite) => {}
            (a, b) => panic!("kind mismatch: {} vs {}", a.kind_name(), b.kind_name()),
        }
    }

    #[test]
    fn append_round_trips() {
        let change = WarehouseChange::Append(sample_table());
        let decoded = decode_change(&encode_change(&change)).unwrap();
        assert_same_change(&change, &decoded);
    }

    #[test]
    fn feedback_and_rewrite_round_trip() {
        let change = WarehouseChange::Feedback {
            dimension: "Clinician Review".into(),
            attribute: "RiskFlag".into(),
            labels: vec!["low".into(), Value::Null, "act".into()],
        };
        assert_same_change(&change, &decode_change(&encode_change(&change)).unwrap());
        assert_same_change(
            &WarehouseChange::Rewrite,
            &decode_change(&encode_change(&WarehouseChange::Rewrite)).unwrap(),
        );
    }

    #[test]
    fn frame_round_trips_and_reports_end() {
        let record = LogRecord {
            pos: LogPos { epoch: 7, seq: 3 },
            change: WarehouseChange::Append(sample_table()),
        };
        let frame = encode_frame(&record);
        let (decoded, end) = decode_frame(&frame, 0).unwrap();
        assert_eq!(decoded.pos, record.pos);
        assert_eq!(end, frame.len());
        assert_same_change(&decoded.change, &record.change);
    }

    #[test]
    fn torn_and_corrupt_frames_are_rejected() {
        let record = LogRecord {
            pos: LogPos { epoch: 1, seq: 1 },
            change: WarehouseChange::Rewrite,
        };
        let frame = encode_frame(&record);
        for cut in 0..frame.len() {
            assert!(decode_frame(&frame[..cut], 0).is_none(), "cut {cut}");
        }
        for flip in 0..frame.len() {
            let mut bad = frame.clone();
            bad[flip] ^= 0x40;
            assert!(decode_frame(&bad, 0).is_none(), "flip {flip} accepted");
        }
    }

    #[test]
    fn positions_order_by_epoch_then_seq() {
        let a = LogPos { epoch: 3, seq: 10 };
        let b = LogPos { epoch: 4, seq: 11 };
        assert!(a < b);
        assert!(LogPos::start() < a);
    }

    proptest! {
        #[test]
        fn arbitrary_feedback_labels_round_trip(
            labels in proptest::collection::vec(".*", 0..6),
            dim in ".{1,12}",
            attr in ".{1,12}",
        ) {
            let change = WarehouseChange::Feedback {
                dimension: dim,
                attribute: attr,
                labels: labels.into_iter().map(Value::Text).collect(),
            };
            let decoded = decode_change(&encode_change(&change)).unwrap();
            assert_same_change(&change, &decoded);
        }
    }
}
