#![warn(missing_docs)]

//! The durable operation log behind warehouse replication.
//!
//! The warehouse's delta log ([`warehouse::DeltaLog`]) describes *what
//! region* each mutation touched, which is enough for caches to
//! revalidate but not enough to rebuild state elsewhere. This crate
//! re-derives that delta stream as a **durable change feed**: every
//! primary-side mutation is captured as a self-contained
//! [`warehouse::WarehouseChange`], framed with the same CRC-32 the
//! OLTP write-ahead log uses ([`oltp::encoding::crc32`]), stamped with
//! a monotone [`LogPos`] `(epoch, seq)`, and appended to an [`Oplog`]
//! that read replicas tail.
//!
//! * [`record`] — the `(epoch, seq)` position, the framed record
//!   codec, and the binary payload encoding built on the OLTP row
//!   codec.
//! * [`log`] — the [`Oplog`] itself: in-memory or file-backed,
//!   torn-tail recovery on open, age-out via
//!   [`Oplog::truncate_before`], and the [`Oplog::tail_from`] cursor
//!   API replicas poll.
//! * [`replica`] — a [`Replica`]: a follower warehouse plus a cursor,
//!   with retry-wrapped [`Replica::catch_up`] and snapshot
//!   [`Replica::reseed`] for followers that fall behind the
//!   truncation horizon.
//!
//! The replication invariant ("a replica never serves an epoch it has
//! not fully applied") is inherited from
//! [`warehouse::Warehouse::apply_change`]: one log record is one
//! epoch, applied atomically, so a follower's epoch is always the
//! epoch of the last *fully* applied record.

pub mod log;
pub mod record;
pub mod replica;

pub use crate::log::{Oplog, OplogError};
pub use crate::record::{LogPos, LogRecord};
pub use crate::replica::Replica;
