//! The operation log: an ordered, optionally file-backed sequence of
//! framed [`LogRecord`]s with a truncation horizon.
//!
//! Durability follows the OLTP WAL discipline: a magic/version header,
//! per-record CRC framing, and recovery that keeps the longest intact
//! prefix (truncating a torn tail in place). Truncation for age-out
//! rewrites the file with the retained suffix and records the highest
//! epoch dropped, so a replica whose cursor predates the horizon gets
//! a typed [`OplogError::Truncated`] — its signal to re-seed from a
//! primary snapshot instead of replaying a gap.

use crate::record::{decode_frame, encode_frame, LogPos, LogRecord};
use obs::lockrank::{LockRank, RankedMutex};
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use warehouse::WarehouseChange;

const OPLOG_MAGIC: [u8; 3] = [0xD5, b'O', b'G'];
const OPLOG_VERSION: u8 = 1;
/// magic + version + truncated_epoch + first_seq.
const HEADER_LEN: usize = 4 + 8 + 8;

/// Errors surfaced by the oplog and the replication paths above it.
#[derive(Debug)]
pub enum OplogError {
    /// The requested cursor predates the truncation horizon: the gap
    /// is unrecoverable from the log and the replica must re-seed.
    Truncated {
        /// The cursor sequence number that was requested.
        cursor_seq: u64,
        /// Highest epoch dropped by truncation so far.
        horizon_epoch: u64,
    },
    /// An append targeted an epoch at or below the log's newest.
    Stale {
        /// The epoch the caller tried to append.
        epoch: u64,
        /// The newest epoch already in the log.
        last_epoch: u64,
    },
    /// The log file failed structural validation beyond recovery.
    Corrupt(String),
    /// An underlying filesystem operation failed.
    Io(String),
    /// A replayed change was rejected by the follower warehouse.
    Data(clinical_types::Error),
    /// An injected fault fired at an oplog or replication failpoint.
    Faulted(String),
}

impl std::fmt::Display for OplogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OplogError::Truncated {
                cursor_seq,
                horizon_epoch,
            } => write!(
                f,
                "log truncated past cursor seq {cursor_seq} (horizon epoch {horizon_epoch}); re-seed required"
            ),
            OplogError::Stale { epoch, last_epoch } => write!(
                f,
                "append at epoch {epoch} does not advance the log (last epoch {last_epoch})"
            ),
            OplogError::Corrupt(msg) => write!(f, "corrupt oplog: {msg}"),
            OplogError::Io(msg) => write!(f, "oplog I/O failure: {msg}"),
            OplogError::Data(err) => write!(f, "replicated change rejected: {err}"),
            OplogError::Faulted(point) => write!(f, "injected fault at {point}"),
        }
    }
}

impl std::error::Error for OplogError {}

impl From<clinical_types::Error> for OplogError {
    fn from(err: clinical_types::Error) -> Self {
        OplogError::Data(err)
    }
}

impl From<std::io::Error> for OplogError {
    fn from(err: std::io::Error) -> Self {
        OplogError::Io(err.to_string())
    }
}

impl From<fault::FaultError> for OplogError {
    fn from(err: fault::FaultError) -> Self {
        OplogError::Faulted(err.point().to_string())
    }
}

struct Inner {
    /// Retained records, ascending in `(epoch, seq)`.
    records: Vec<LogRecord>,
    /// Sequence number the next appended record receives.
    next_seq: u64,
    /// Sequence number of the first retained record (== `next_seq`
    /// when the log is empty).
    first_seq: u64,
    /// Highest epoch dropped by truncation (0 = nothing dropped).
    truncated_epoch: u64,
    /// Epoch of the newest record ever appended.
    last_epoch: u64,
    /// Backing file, when durable.
    file: Option<(PathBuf, File)>,
}

impl Inner {
    fn write_header(out: &mut Vec<u8>, truncated_epoch: u64, first_seq: u64) {
        out.extend_from_slice(&OPLOG_MAGIC);
        out.push(OPLOG_VERSION);
        out.extend_from_slice(&truncated_epoch.to_le_bytes());
        out.extend_from_slice(&first_seq.to_le_bytes());
    }

    /// Rewrite the whole backing file (header + retained frames).
    /// Used after truncation and torn-tail recovery; appends go
    /// through the cheaper append-one-frame path.
    fn rewrite_file(&mut self) -> Result<(), OplogError> {
        let Some((path, file)) = self.file.as_mut() else {
            return Ok(());
        };
        let mut out = Vec::new();
        Self::write_header(&mut out, self.truncated_epoch, self.first_seq);
        for record in &self.records {
            out.extend_from_slice(&encode_frame(record));
        }
        let mut fresh = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&*path)?;
        fresh.write_all(&out)?;
        fresh.sync_data()?;
        *file = fresh;
        Ok(())
    }
}

/// The sequenced, optionally durable change feed.
pub struct Oplog {
    inner: RankedMutex<Inner>,
}

impl Oplog {
    /// A log that lives only in memory (tests, single-process serve).
    pub fn in_memory() -> Oplog {
        Oplog {
            inner: RankedMutex::new(
                LockRank::Oplog,
                "oplog.log",
                Inner {
                    records: Vec::new(),
                    next_seq: 1,
                    first_seq: 1,
                    truncated_epoch: 0,
                    last_epoch: 0,
                    file: None,
                },
            ),
        }
    }

    /// Open (or create) a durable log at `path`, recovering the
    /// longest intact prefix. Returns the log and whether a torn or
    /// corrupt tail was discarded during recovery.
    pub fn open(path: impl AsRef<Path>) -> Result<(Oplog, bool), OplogError> {
        let path = path.as_ref().to_path_buf();
        let mut raw = Vec::new();
        let existed = path.exists();
        if existed {
            File::open(&path)?.read_to_end(&mut raw)?;
        }

        let mut inner = Inner {
            records: Vec::new(),
            next_seq: 1,
            first_seq: 1,
            truncated_epoch: 0,
            last_epoch: 0,
            file: None,
        };
        let mut torn = false;

        if raw.is_empty() {
            // Fresh log: stamp the header.
            let mut out = Vec::new();
            Inner::write_header(&mut out, 0, 1);
            let mut file = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&path)?;
            file.write_all(&out)?;
            file.sync_data()?;
            inner.file = Some((path, file));
        } else {
            if raw.len() < HEADER_LEN || raw[0..3] != OPLOG_MAGIC || raw[3] != OPLOG_VERSION {
                return Err(OplogError::Corrupt(format!(
                    "bad header in {}",
                    path.display()
                )));
            }
            inner.truncated_epoch = u64::from_le_bytes(raw[4..12].try_into().unwrap());
            inner.first_seq = u64::from_le_bytes(raw[12..20].try_into().unwrap());
            inner.next_seq = inner.first_seq;
            inner.last_epoch = inner.truncated_epoch;

            let mut at = HEADER_LEN;
            while at < raw.len() {
                match decode_frame(&raw, at) {
                    Some((record, end)) => {
                        inner.next_seq = record.pos.seq + 1;
                        inner.last_epoch = record.pos.epoch;
                        inner.records.push(record);
                        at = end;
                    }
                    None => {
                        // Torn tail: keep the intact prefix only.
                        torn = true;
                        break;
                    }
                }
            }

            let file = OpenOptions::new().append(true).open(&path)?;
            inner.file = Some((path, file));
            if torn {
                inner.rewrite_file()?;
                obs::event_with(
                    "oplog.recover_torn_tail",
                    &[("kept", &inner.records.len()), ("at", &at)],
                );
            }
        }

        Ok((
            Oplog {
                inner: RankedMutex::new(LockRank::Oplog, "oplog.log", inner),
            },
            torn,
        ))
    }

    /// Append `change` as the record landing the warehouse on `epoch`.
    ///
    /// Fails with [`OplogError::Stale`] unless `epoch` strictly
    /// advances the log — the caller (the primary, under its warehouse
    /// write lock) is the only writer, so a non-advancing epoch is a
    /// sequencing bug worth failing loudly on.
    pub fn append(&self, change: &WarehouseChange, epoch: u64) -> Result<LogPos, OplogError> {
        fault::point("oplog.append")?;
        let mut inner = self.inner.lock();
        if epoch <= inner.last_epoch {
            return Err(OplogError::Stale {
                epoch,
                last_epoch: inner.last_epoch,
            });
        }
        let pos = LogPos {
            epoch,
            seq: inner.next_seq,
        };
        let record = LogRecord {
            pos,
            change: change.clone(),
        };
        if let Some((_, file)) = inner.file.as_mut() {
            let frame = encode_frame(&record);
            file.write_all(&frame)?; // lint:allow(A301, "the oplog lock exists to serialise appends to the backing file; it is the innermost rank and nothing is acquired under it")
            file.sync_data()?; // lint:allow(A301, "durability point of the append; innermost rank, nothing acquired under it")
        }
        inner.next_seq += 1;
        inner.last_epoch = epoch;
        inner.records.push(record);
        obs::event_with(
            "oplog.append",
            &[
                ("pos", &pos),
                ("kind", &change.kind_name()),
                ("len", &inner.records.len()),
            ],
        );
        Ok(pos)
    }

    /// Every record after `cursor` (the position of the last record
    /// the caller has applied; [`LogPos::start`] for "nothing yet").
    ///
    /// Fails with [`OplogError::Truncated`] when records between the
    /// cursor and the first retained record have been aged out — the
    /// caller cannot reach the present by replay and must re-seed.
    pub fn tail_from(&self, cursor: LogPos) -> Result<Vec<LogRecord>, OplogError> {
        fault::point("oplog.tail")?;
        let inner = self.inner.lock();
        // Behind the horizon when dropped *records* sit between the
        // cursor and the first retained one (seq discontinuity), or
        // when the horizon itself passed the cursor's epoch — a gap
        // (`mark_gap`) drops epochs without ever assigning them a seq,
        // so the epoch comparison is what catches it.
        if cursor.epoch < inner.truncated_epoch || cursor.seq + 1 < inner.first_seq {
            return Err(OplogError::Truncated {
                cursor_seq: cursor.seq,
                horizon_epoch: inner.truncated_epoch,
            });
        }
        Ok(inner
            .records
            .iter()
            .filter(|r| r.pos.seq > cursor.seq)
            .cloned()
            .collect())
    }

    /// The cursor a replica seeded from a primary snapshot at `epoch`
    /// should start tailing from: the position of the last record with
    /// epoch ≤ `epoch`. Fails with [`OplogError::Truncated`] when
    /// records above `epoch` have already been aged out (the snapshot
    /// is itself behind the horizon).
    pub fn cursor_at(&self, epoch: u64) -> Result<LogPos, OplogError> {
        let inner = self.inner.lock();
        if let Some(record) = inner.records.iter().rev().find(|r| r.pos.epoch <= epoch) {
            return Ok(record.pos);
        }
        if inner.truncated_epoch > epoch {
            return Err(OplogError::Truncated {
                cursor_seq: 0,
                horizon_epoch: inner.truncated_epoch,
            });
        }
        Ok(LogPos {
            epoch,
            seq: inner.first_seq.saturating_sub(1),
        })
    }

    /// Age out every record whose epoch is below `epoch`, rewriting
    /// the backing file. Returns the number of records dropped.
    /// Cursors left behind the new horizon observe
    /// [`OplogError::Truncated`] on their next tail.
    pub fn truncate_before(&self, epoch: u64) -> Result<usize, OplogError> {
        let mut inner = self.inner.lock();
        let keep_from = inner
            .records
            .iter()
            .position(|r| r.pos.epoch >= epoch)
            .unwrap_or(inner.records.len());
        if keep_from == 0 {
            return Ok(0);
        }
        let dropped: Vec<LogRecord> = inner.records.drain(..keep_from).collect();
        let highest_dropped = dropped.last().map(|r| r.pos).unwrap_or(LogPos::start());
        inner.truncated_epoch = inner.truncated_epoch.max(highest_dropped.epoch);
        inner.first_seq = highest_dropped.seq + 1;
        inner.rewrite_file()?;
        obs::event_with(
            "oplog.truncate",
            &[
                ("dropped", &dropped.len()),
                ("horizon_epoch", &inner.truncated_epoch),
            ],
        );
        Ok(dropped.len())
    }

    /// Record that `epoch` happened on the primary but could not be
    /// appended (a durable publish failure after retries). A hole in
    /// the feed is indistinguishable from truncation to a follower, so
    /// it is recorded as one: every retained record is dropped, the
    /// horizon advances to at least `epoch`, and the epoch counts as
    /// the newest the log has seen. Followers observe
    /// [`OplogError::Truncated`] on their next tail and re-seed from a
    /// primary snapshot instead of replaying across the gap.
    pub fn mark_gap(&self, epoch: u64) -> Result<(), OplogError> {
        let mut inner = self.inner.lock();
        inner.records.clear();
        inner.first_seq = inner.next_seq;
        inner.truncated_epoch = inner.truncated_epoch.max(epoch);
        inner.last_epoch = inner.last_epoch.max(epoch);
        inner.rewrite_file()?;
        obs::event_with(
            "oplog.gap",
            &[("epoch", &epoch), ("horizon_epoch", &inner.truncated_epoch)],
        );
        Ok(())
    }

    /// Position of the newest record, if any record is retained.
    pub fn last_pos(&self) -> Option<LogPos> {
        self.inner.lock().records.last().map(|r| r.pos)
    }

    /// Highest epoch dropped by truncation (0 = nothing dropped).
    pub fn horizon_epoch(&self) -> u64 {
        self.inner.lock().truncated_epoch
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.inner.lock().records.len()
    }

    /// Whether no records are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clinical_types::{DataType, FieldDef, Record, Schema, Table};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_log_path(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "ddgms-oplog-{}-{}-{}.log",
            std::process::id(),
            tag,
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn batch(n: usize) -> WarehouseChange {
        let schema = Schema::new(vec![FieldDef::nullable("FBG", DataType::Float)]).unwrap();
        let rows = (0..n)
            .map(|i| Record::new(vec![(i as f64).into()]))
            .collect();
        WarehouseChange::Append(Table::from_rows(schema, rows).unwrap())
    }

    #[test]
    fn appends_sequence_and_tail_resumes() {
        let log = Oplog::in_memory();
        let p1 = log.append(&batch(1), 10).unwrap();
        let p2 = log.append(&WarehouseChange::Rewrite, 11).unwrap();
        assert_eq!((p1.seq, p2.seq), (1, 2));
        assert!(log.append(&batch(1), 11).is_err(), "stale epoch rejected");

        let all = log.tail_from(LogPos::start()).unwrap();
        assert_eq!(all.len(), 2);
        let rest = log.tail_from(p1).unwrap();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].pos, p2);
        assert!(log.tail_from(p2).unwrap().is_empty());
    }

    #[test]
    fn durable_log_survives_reopen() {
        let path = temp_log_path("reopen");
        {
            let (log, torn) = Oplog::open(&path).unwrap();
            assert!(!torn);
            log.append(&batch(3), 5).unwrap();
            log.append(
                &WarehouseChange::Feedback {
                    dimension: "Review".into(),
                    attribute: "Flag".into(),
                    labels: vec!["a".into(), "b".into(), "c".into()],
                },
                6,
            )
            .unwrap();
        }
        let (log, torn) = Oplog::open(&path).unwrap();
        assert!(!torn);
        assert_eq!(log.len(), 2);
        let tail = log.tail_from(LogPos::start()).unwrap();
        assert_eq!(tail[0].pos, LogPos { epoch: 5, seq: 1 });
        assert_eq!(tail[1].pos, LogPos { epoch: 6, seq: 2 });
        // Sequencing resumes above the recovered tail.
        let p = log.append(&WarehouseChange::Rewrite, 9).unwrap();
        assert_eq!(p.seq, 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_discarded_on_recovery() {
        let path = temp_log_path("torn");
        {
            let (log, _) = Oplog::open(&path).unwrap();
            log.append(&batch(2), 5).unwrap();
            log.append(&batch(2), 6).unwrap();
        }
        // Tear the last frame mid-payload.
        let mut raw = std::fs::read(&path).unwrap();
        let cut = raw.len() - 7;
        raw.truncate(cut);
        std::fs::write(&path, &raw).unwrap();

        let (log, torn) = Oplog::open(&path).unwrap();
        assert!(torn, "torn tail must be reported");
        assert_eq!(log.len(), 1, "intact prefix kept");
        // The rewritten file reopens clean.
        drop(log);
        let (log, torn) = Oplog::open(&path).unwrap();
        assert!(!torn);
        assert_eq!(log.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_header_is_a_hard_error() {
        let path = temp_log_path("header");
        std::fs::write(&path, b"not an oplog at all").unwrap();
        assert!(matches!(Oplog::open(&path), Err(OplogError::Corrupt(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncation_moves_the_horizon_and_breaks_old_cursors() {
        let log = Oplog::in_memory();
        log.append(&batch(1), 10).unwrap();
        let p2 = log.append(&batch(1), 11).unwrap();
        log.append(&batch(1), 12).unwrap();

        assert_eq!(log.truncate_before(12).unwrap(), 2);
        assert_eq!(log.horizon_epoch(), 11);
        assert_eq!(log.len(), 1);

        // A cursor at the horizon record still tails cleanly...
        assert_eq!(log.tail_from(p2).unwrap().len(), 1);
        // ...but one before the horizon must re-seed.
        assert!(matches!(
            log.tail_from(LogPos::start()),
            Err(OplogError::Truncated {
                horizon_epoch: 11,
                ..
            })
        ));
        // Idempotent: nothing below 12 remains.
        assert_eq!(log.truncate_before(12).unwrap(), 0);
    }

    #[test]
    fn truncation_horizon_survives_reopen() {
        let path = temp_log_path("horizon");
        {
            let (log, _) = Oplog::open(&path).unwrap();
            log.append(&batch(1), 10).unwrap();
            log.append(&batch(1), 11).unwrap();
            log.truncate_before(11).unwrap();
        }
        let (log, torn) = Oplog::open(&path).unwrap();
        assert!(!torn);
        assert_eq!(log.horizon_epoch(), 10);
        assert!(matches!(
            log.tail_from(LogPos::start()),
            Err(OplogError::Truncated { .. })
        ));
        // Epoch sequencing also survives: appends below the recovered
        // last epoch are rejected.
        assert!(log.append(&batch(1), 11).is_err());
        assert!(log.append(&batch(1), 12).is_ok());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn cursor_at_finds_the_snapshot_position() {
        let log = Oplog::in_memory();
        assert_eq!(log.cursor_at(5).unwrap().seq, 0, "empty log: start");
        log.append(&batch(1), 10).unwrap();
        let p2 = log.append(&batch(1), 12).unwrap();
        // A snapshot at epoch 11 has applied record 1 but not 2.
        let cursor = log.cursor_at(11).unwrap();
        assert_eq!(cursor, LogPos { epoch: 10, seq: 1 });
        assert_eq!(log.tail_from(cursor).unwrap()[0].pos, p2);
        // A snapshot past the end tails nothing.
        assert_eq!(log.cursor_at(99).unwrap(), p2);
        // A snapshot behind the horizon cannot be used.
        log.truncate_before(13).unwrap();
        assert!(matches!(
            log.cursor_at(5),
            Err(OplogError::Truncated { .. })
        ));
    }

    #[test]
    fn a_gap_behaves_exactly_like_truncation() {
        let log = Oplog::in_memory();
        log.append(&batch(1), 10).unwrap();
        let p1 = log.last_pos().unwrap();
        // Epoch 11 failed to publish: the feed has a hole.
        log.mark_gap(11).unwrap();
        assert_eq!(log.len(), 0);
        assert_eq!(log.horizon_epoch(), 11);
        // Every pre-gap cursor must re-seed, not replay across it.
        assert!(matches!(
            log.tail_from(p1),
            Err(OplogError::Truncated {
                horizon_epoch: 11,
                ..
            })
        ));
        // The gapped epoch counts as seen: re-publishing it is stale,
        // the next mutation's epoch appends cleanly.
        assert!(matches!(
            log.append(&batch(1), 11),
            Err(OplogError::Stale { .. })
        ));
        let p = log.append(&batch(1), 12).unwrap();
        assert_eq!(log.tail_from(log.cursor_at(11).unwrap()).unwrap()[0].pos, p);
    }

    #[test]
    fn failpoints_surface_as_faulted() {
        let _guard = fault::test_support::fault_lock();
        let armed = fault::arm(
            "oplog.append",
            fault::Trigger::Once,
            fault::FaultKind::Error,
        );
        let log = Oplog::in_memory();
        assert!(matches!(
            log.append(&WarehouseChange::Rewrite, 1),
            Err(OplogError::Faulted(_))
        ));
        drop(armed);
        log.append(&WarehouseChange::Rewrite, 1).unwrap();

        let armed = fault::arm("oplog.tail", fault::Trigger::Once, fault::FaultKind::Error);
        assert!(matches!(
            log.tail_from(LogPos::start()),
            Err(OplogError::Faulted(_))
        ));
        drop(armed);
        assert_eq!(log.tail_from(LogPos::start()).unwrap().len(), 1);
    }
}
