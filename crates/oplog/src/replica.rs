//! A read replica: a follower warehouse plus an oplog cursor.
//!
//! The replica owns a [`Warehouse`] seeded from a primary snapshot and
//! advances it by replaying the oplog tail through
//! [`Warehouse::apply_change`]. Its `applied_epoch` is therefore
//! always the epoch of the last *fully* applied record — the routing
//! invariant upstream layers rely on. When the log has been truncated
//! past its cursor the replica cannot replay its way forward; it
//! degrades to a snapshot re-seed ([`Replica::reseed`]) and resumes
//! tailing from there.

use crate::log::{Oplog, OplogError};
use crate::record::LogPos;
use fault::RetryPolicy;
use std::sync::Arc;
use warehouse::Warehouse;

/// A follower warehouse that tails the oplog.
pub struct Replica {
    warehouse: Warehouse,
    log: Arc<Oplog>,
    cursor: LogPos,
    retry: RetryPolicy,
}

impl Replica {
    /// Seed a replica from a snapshot of the primary: clone its
    /// warehouse and position the cursor at the snapshot's epoch.
    /// Fails with [`OplogError::Truncated`] when the snapshot is
    /// already behind the log's truncation horizon.
    pub fn seed(primary: &Warehouse, log: Arc<Oplog>) -> Result<Replica, OplogError> {
        let cursor = log.cursor_at(primary.epoch())?;
        Ok(Replica {
            warehouse: primary.clone(),
            log,
            cursor,
            retry: RetryPolicy::default(),
        })
    }

    /// Replace the catch-up retry policy (deterministic in tests).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Replica {
        self.retry = retry;
        self
    }

    /// Replay every record past the cursor, retrying transient tail
    /// failures under the shared [`RetryPolicy`]. Returns the number
    /// of records applied. [`OplogError::Truncated`] means the replica
    /// fell behind the horizon and the caller must [`Replica::reseed`]
    /// from a fresh primary snapshot.
    pub fn catch_up(&mut self) -> Result<usize, OplogError> {
        let log = Arc::clone(&self.log);
        let cursor = self.cursor;
        let (tail, retries) = self.retry.run(|| log.tail_from(cursor));
        let tail = tail?;
        let mut applied = 0usize;
        for record in tail {
            fault::point("replica.apply")?;
            self.warehouse
                .apply_change(&record.change, record.pos.epoch)?;
            // Cursor advances only after the record applied in full:
            // a crash between records resumes exactly here, and the
            // epoch exposed below never names a half-applied record.
            self.cursor = record.pos;
            applied += 1;
        }
        if applied > 0 || retries > 0 {
            obs::event_with(
                "replica.catch_up",
                &[
                    ("applied", &applied),
                    ("retries", &retries),
                    ("epoch", &self.applied_epoch()),
                ],
            );
        }
        Ok(applied)
    }

    /// Degrade to a snapshot re-seed: adopt a fresh clone of the
    /// primary and reposition the cursor at its epoch. The recovery
    /// path for a replica behind the truncation horizon.
    pub fn reseed(&mut self, primary: &Warehouse) -> Result<(), OplogError> {
        let cursor = self.log.cursor_at(primary.epoch())?;
        self.warehouse = primary.clone();
        self.cursor = cursor;
        obs::event_with("replica.reseed", &[("epoch", &self.warehouse.epoch())]);
        Ok(())
    }

    /// The epoch of the last fully applied change.
    pub fn applied_epoch(&self) -> u64 {
        self.warehouse.epoch()
    }

    /// How many retained log records the replica still has to apply.
    pub fn lag_records(&self) -> usize {
        self.log
            .tail_from(self.cursor)
            .map(|tail| tail.len())
            .unwrap_or(usize::MAX)
    }

    /// Read access to the follower warehouse.
    pub fn warehouse(&self) -> &Warehouse {
        &self.warehouse
    }

    /// The replica's current log cursor.
    pub fn cursor(&self) -> LogPos {
        self.cursor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clinical_types::{DataType, FieldDef, Record, Schema, Table};
    use warehouse::{DimensionDef, FactDef, LoadPlan, StarSchema, WarehouseChange};

    fn table(rows: &[(f64, &str)]) -> Table {
        let schema = Schema::new(vec![
            FieldDef::nullable("FBG", DataType::Float),
            FieldDef::nullable("FBG_Band", DataType::Text),
        ])
        .unwrap();
        let rows = rows
            .iter()
            .map(|&(v, b)| Record::new(vec![v.into(), b.into()]))
            .collect();
        Table::from_rows(schema, rows).unwrap()
    }

    fn primary() -> Warehouse {
        let star = StarSchema::new(
            FactDef::new("Facts", vec!["FBG"], vec![]),
            vec![DimensionDef::new("Bloods", vec!["FBG_Band"])],
        )
        .unwrap();
        let seed = table(&[(5.0, "very good"), (8.0, "Diabetic")]);
        Warehouse::load(&LoadPlan::from_star(star), &seed).unwrap()
    }

    /// Mutate the primary and publish the change, the way the serve
    /// tier does under its warehouse write lock.
    fn publish_append(primary: &mut Warehouse, log: &Oplog, batch: Table) {
        primary.append(&batch).unwrap();
        log.append(&WarehouseChange::Append(batch), primary.epoch())
            .unwrap();
    }

    #[test]
    fn replica_catches_up_to_the_primary() {
        let log = Arc::new(Oplog::in_memory());
        let mut primary = primary();
        let mut replica = Replica::seed(&primary, Arc::clone(&log)).unwrap();

        publish_append(&mut primary, &log, table(&[(6.5, "preDiabetic")]));
        publish_append(&mut primary, &log, table(&[(7.2, "Diabetic")]));
        assert!(replica.applied_epoch() < primary.epoch());
        assert_eq!(replica.lag_records(), 2);

        assert_eq!(replica.catch_up().unwrap(), 2);
        assert_eq!(replica.applied_epoch(), primary.epoch());
        assert_eq!(replica.warehouse().n_facts(), primary.n_facts());
        assert_eq!(replica.catch_up().unwrap(), 0, "idempotent when current");
    }

    #[test]
    fn transient_tail_faults_are_retried() {
        let _guard = fault::test_support::fault_lock();
        let log = Arc::new(Oplog::in_memory());
        let mut primary = primary();
        let mut replica = Replica::seed(&primary, Arc::clone(&log))
            .unwrap()
            .with_retry(RetryPolicy {
                attempts: 3,
                base_delay: std::time::Duration::from_micros(1),
                jitter_seed: 7,
            });
        publish_append(&mut primary, &log, table(&[(6.5, "preDiabetic")]));

        let _armed = fault::arm("oplog.tail", fault::Trigger::Once, fault::FaultKind::Error);
        assert_eq!(replica.catch_up().unwrap(), 1, "retry rode out the fault");
        assert_eq!(replica.applied_epoch(), primary.epoch());
    }

    #[test]
    fn apply_fault_halts_before_the_record() {
        let _guard = fault::test_support::fault_lock();
        let log = Arc::new(Oplog::in_memory());
        let mut primary = primary();
        let mut replica = Replica::seed(&primary, Arc::clone(&log)).unwrap();
        publish_append(&mut primary, &log, table(&[(6.5, "preDiabetic")]));
        let before = replica.applied_epoch();

        let armed = fault::arm(
            "replica.apply",
            fault::Trigger::Once,
            fault::FaultKind::Error,
        );
        assert!(matches!(replica.catch_up(), Err(OplogError::Faulted(_))));
        assert_eq!(replica.applied_epoch(), before, "no partial epoch exposed");
        drop(armed);

        assert_eq!(replica.catch_up().unwrap(), 1, "resumes from the cursor");
        assert_eq!(replica.applied_epoch(), primary.epoch());
    }

    #[test]
    fn behind_the_horizon_means_reseed() {
        let log = Arc::new(Oplog::in_memory());
        let mut primary = primary();
        let mut replica = Replica::seed(&primary, Arc::clone(&log)).unwrap();

        publish_append(&mut primary, &log, table(&[(6.5, "preDiabetic")]));
        publish_append(&mut primary, &log, table(&[(7.2, "Diabetic")]));
        publish_append(&mut primary, &log, table(&[(4.9, "very good")]));
        // Age out everything before the newest epoch while the replica
        // is still at its seed cursor.
        log.truncate_before(primary.epoch()).unwrap();

        let err = replica.catch_up().unwrap_err();
        assert!(matches!(err, OplogError::Truncated { .. }));

        replica.reseed(&primary).unwrap();
        assert_eq!(replica.applied_epoch(), primary.epoch());
        assert_eq!(replica.warehouse().n_facts(), primary.n_facts());
        // And tailing resumes normally afterwards.
        publish_append(&mut primary, &log, table(&[(6.0, "good")]));
        assert_eq!(replica.catch_up().unwrap(), 1);
        assert_eq!(replica.applied_epoch(), primary.epoch());
    }
}
