//! Findings: the unit of clinical knowledge.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Which DD-DGMS component produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Source {
    /// OLAP reporting (an aggregate observation, e.g. Fig. 5's gender
    /// crossover).
    Reporting,
    /// The prediction component (a time-course regularity).
    Prediction,
    /// Data analytics (a mined rule or interaction).
    Analytics,
    /// Decision optimisation (a validated robust aggregate or an
    /// optimal regimen).
    Optimisation,
    /// Direct clinician feedback.
    Clinician,
}

impl fmt::Display for Source {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Source::Reporting => "reporting",
            Source::Prediction => "prediction",
            Source::Analytics => "analytics",
            Source::Optimisation => "optimisation",
            Source::Clinician => "clinician",
        };
        f.write_str(s)
    }
}

impl Source {
    /// Parse the display form back (for the text persistence format).
    pub fn parse(s: &str) -> Option<Source> {
        match s {
            "reporting" => Some(Source::Reporting),
            "prediction" => Some(Source::Prediction),
            "analytics" => Some(Source::Analytics),
            "optimisation" => Some(Source::Optimisation),
            "clinician" => Some(Source::Clinician),
            _ => None,
        }
    }
}

/// Lifecycle status of a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FindingStatus {
    /// Observed, awaiting corroboration.
    Candidate,
    /// Enough independent evidence accumulated (the paper's
    /// "sufficient data-based evidence").
    Validated,
    /// Adopted into guidelines / training material.
    Promoted,
}

impl fmt::Display for FindingStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FindingStatus::Candidate => "candidate",
            FindingStatus::Validated => "validated",
            FindingStatus::Promoted => "promoted",
        };
        f.write_str(s)
    }
}

/// A unit of accumulated clinical knowledge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Finding {
    /// Stable id assigned by the knowledge base.
    pub id: u64,
    /// The statement, e.g. `"absent ankle reflexes + mid-range FBG
    /// predicts diabetes"`. Statements are the dedup key.
    pub statement: String,
    /// Producing component.
    pub source: Source,
    /// Times the statement was independently re-observed.
    pub evidence_count: u32,
    /// Strength of the latest supporting evidence (component-specific:
    /// confidence, lift, consistency, accuracy …).
    pub strength: f64,
    /// Free-form tags (`"diabetes"`, `"neuropathy"` …).
    pub tags: Vec<String>,
    /// Lifecycle status.
    pub status: FindingStatus,
    /// Ids of related findings (the ontology-generation seed).
    pub related: Vec<u64>,
}

impl Finding {
    /// One-line rendering used by examples and reports.
    pub fn describe(&self) -> String {
        format!(
            "[#{} {} | {}×, strength {:.2}] {}",
            self.id, self.status, self.evidence_count, self.strength, self.statement
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_round_trips_through_display() {
        for s in [
            Source::Reporting,
            Source::Prediction,
            Source::Analytics,
            Source::Optimisation,
            Source::Clinician,
        ] {
            assert_eq!(Source::parse(&s.to_string()), Some(s));
        }
        assert_eq!(Source::parse("nonsense"), None);
    }

    #[test]
    fn status_orders_by_maturity() {
        assert!(FindingStatus::Candidate < FindingStatus::Validated);
        assert!(FindingStatus::Validated < FindingStatus::Promoted);
    }

    #[test]
    fn describe_contains_the_statement() {
        let f = Finding {
            id: 3,
            statement: "reflex+glucose predicts diabetes".into(),
            source: Source::Analytics,
            evidence_count: 4,
            strength: 0.91,
            tags: vec!["diabetes".into()],
            status: FindingStatus::Validated,
            related: vec![],
        };
        let text = f.describe();
        assert!(text.contains("#3"));
        assert!(text.contains("validated"));
        assert!(text.contains("reflex+glucose"));
    }
}
