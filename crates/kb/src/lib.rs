#![warn(missing_docs)]

//! Knowledge Base — §IV of the paper:
//!
//! *"Outcomes from all the above features are the building blocks of
//! knowledge … These outcomes are initially maintained within the
//! warehouse and transferred into a knowledge base when sufficient
//! data-based evidence is accumulated. A mature knowledge base can be
//! useful to address knowledge management concerns such as ontology
//! generation, training and guidelines development."*
//!
//! * [`finding`] — a [`finding::Finding`]: a statement with its
//!   source component, support metrics, tags and lifecycle status
//!   (candidate → validated → promoted).
//! * [`store`] — the thread-safe [`store::KnowledgeBase`]: evidence
//!   accumulation (re-observing a statement strengthens it), the
//!   promotion rule, tag/status queries, concept linking (the
//!   "ontology generation" seed) and a human-readable text
//!   serialisation for persistence.

pub mod finding;
pub mod store;

pub use finding::{Finding, FindingStatus, Source};
pub use store::KnowledgeBase;
