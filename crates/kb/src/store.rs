//! The thread-safe knowledge base.

use crate::finding::{Finding, FindingStatus, Source};
use clinical_types::{Error, Result};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

#[derive(Debug, Default)]
struct Inner {
    findings: Vec<Finding>,
    by_statement: HashMap<String, usize>,
    next_id: u64,
}

/// Accumulates findings from every DD-DGMS component; clonable handle
/// over shared state so the facade can hand it to all components.
#[derive(Debug, Clone, Default)]
pub struct KnowledgeBase {
    inner: Arc<RwLock<Inner>>,
    /// Evidence count at which a candidate becomes validated
    /// (the "sufficient data-based evidence" threshold).
    validation_threshold: u32,
}

impl KnowledgeBase {
    /// Knowledge base validating findings after `validation_threshold`
    /// independent observations.
    pub fn new(validation_threshold: u32) -> Self {
        KnowledgeBase {
            inner: Arc::default(),
            validation_threshold: validation_threshold.max(1),
        }
    }

    /// Record evidence for a statement. A new statement becomes a
    /// candidate finding; a repeated statement gains an evidence count
    /// (keeping the strongest strength) and is auto-validated at the
    /// threshold. Returns the finding id.
    pub fn add_evidence(
        &self,
        statement: &str,
        source: Source,
        strength: f64,
        tags: &[&str],
    ) -> Result<u64> {
        if statement.trim().is_empty() {
            return Err(Error::invalid("a finding needs a non-empty statement"));
        }
        if !(0.0..=f64::MAX).contains(&strength) {
            return Err(Error::invalid("evidence strength must be non-negative"));
        }
        let mut inner = self.inner.write();
        if let Some(&idx) = inner.by_statement.get(statement) {
            let threshold = self.validation_threshold;
            let f = &mut inner.findings[idx];
            f.evidence_count += 1;
            f.strength = f.strength.max(strength);
            for t in tags {
                if !f.tags.iter().any(|x| x == t) {
                    f.tags.push((*t).to_string());
                }
            }
            if f.status == FindingStatus::Candidate && f.evidence_count >= threshold {
                f.status = FindingStatus::Validated;
            }
            return Ok(f.id);
        }
        let id = inner.next_id;
        inner.next_id += 1;
        let status = if self.validation_threshold <= 1 {
            FindingStatus::Validated
        } else {
            FindingStatus::Candidate
        };
        let finding = Finding {
            id,
            statement: statement.to_string(),
            source,
            evidence_count: 1,
            strength,
            tags: tags.iter().map(|t| t.to_string()).collect(),
            status,
            related: Vec::new(),
        };
        let slot = inner.findings.len();
        inner.by_statement.insert(statement.to_string(), slot);
        inner.findings.push(finding);
        Ok(id)
    }

    /// Promote a validated finding into guideline material.
    pub fn promote(&self, id: u64) -> Result<()> {
        let mut inner = self.inner.write();
        let f = inner
            .findings
            .iter_mut()
            .find(|f| f.id == id)
            .ok_or_else(|| Error::invalid(format!("no finding #{id}")))?;
        if f.status != FindingStatus::Validated {
            return Err(Error::invalid(format!(
                "finding #{id} is {}, only validated findings can be promoted",
                f.status
            )));
        }
        f.status = FindingStatus::Promoted;
        Ok(())
    }

    /// Link two findings as related concepts (bidirectional).
    pub fn link(&self, a: u64, b: u64) -> Result<()> {
        if a == b {
            return Err(Error::invalid("cannot link a finding to itself"));
        }
        let mut inner = self.inner.write();
        let ia = inner
            .findings
            .iter()
            .position(|f| f.id == a)
            .ok_or_else(|| Error::invalid(format!("no finding #{a}")))?;
        let ib = inner
            .findings
            .iter()
            .position(|f| f.id == b)
            .ok_or_else(|| Error::invalid(format!("no finding #{b}")))?;
        if !inner.findings[ia].related.contains(&b) {
            inner.findings[ia].related.push(b);
        }
        if !inner.findings[ib].related.contains(&a) {
            inner.findings[ib].related.push(a);
        }
        Ok(())
    }

    /// Finding by id.
    pub fn get(&self, id: u64) -> Option<Finding> {
        self.inner
            .read()
            .findings
            .iter()
            .find(|f| f.id == id)
            .cloned()
    }

    /// All findings at a status.
    pub fn by_status(&self, status: FindingStatus) -> Vec<Finding> {
        self.inner
            .read()
            .findings
            .iter()
            .filter(|f| f.status == status)
            .cloned()
            .collect()
    }

    /// All findings carrying a tag.
    pub fn by_tag(&self, tag: &str) -> Vec<Finding> {
        self.inner
            .read()
            .findings
            .iter()
            .filter(|f| f.tags.iter().any(|t| t == tag))
            .cloned()
            .collect()
    }

    /// Total findings.
    pub fn len(&self) -> usize {
        self.inner.read().findings.len()
    }

    /// True when no findings exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serialise to a line-based text format (one `key\tvalue…` record
    /// per finding) — dependency-free persistence.
    pub fn export_text(&self) -> String {
        let inner = self.inner.read();
        let mut out = String::new();
        for f in &inner.findings {
            out.push_str(&format!(
                "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
                f.id,
                f.status,
                f.source,
                f.evidence_count,
                f.strength,
                f.tags.join(","),
                f.related
                    .iter()
                    .map(u64::to_string)
                    .collect::<Vec<_>>()
                    .join(","),
                f.statement.replace('\n', " "),
            ));
        }
        out
    }

    /// Rebuild a knowledge base from [`Self::export_text`] output.
    pub fn import_text(text: &str, validation_threshold: u32) -> Result<KnowledgeBase> {
        let kb = KnowledgeBase::new(validation_threshold);
        {
            let mut inner = kb.inner.write();
            for (line_no, line) in text.lines().enumerate() {
                if line.trim().is_empty() {
                    continue;
                }
                let parts: Vec<&str> = line.splitn(8, '\t').collect();
                if parts.len() != 8 {
                    return Err(Error::invalid(format!(
                        "malformed KB record on line {}",
                        line_no + 1
                    )));
                }
                let bad =
                    |what: &str| Error::invalid(format!("bad {what} on line {}", line_no + 1));
                let id: u64 = parts[0].parse().map_err(|_| bad("id"))?;
                let status = match parts[1] {
                    "candidate" => FindingStatus::Candidate,
                    "validated" => FindingStatus::Validated,
                    "promoted" => FindingStatus::Promoted,
                    _ => return Err(bad("status")),
                };
                let source = Source::parse(parts[2]).ok_or_else(|| bad("source"))?;
                let evidence_count: u32 = parts[3].parse().map_err(|_| bad("evidence count"))?;
                let strength: f64 = parts[4].parse().map_err(|_| bad("strength"))?;
                let tags: Vec<String> = if parts[5].is_empty() {
                    Vec::new()
                } else {
                    parts[5].split(',').map(String::from).collect()
                };
                let related: Vec<u64> = if parts[6].is_empty() {
                    Vec::new()
                } else {
                    parts[6]
                        .split(',')
                        .map(|x| x.parse().map_err(|_| bad("related id")))
                        .collect::<Result<_>>()?
                };
                let statement = parts[7].to_string();
                let slot = inner.findings.len();
                inner.by_statement.insert(statement.clone(), slot);
                inner.next_id = inner.next_id.max(id + 1);
                inner.findings.push(Finding {
                    id,
                    statement,
                    source,
                    evidence_count,
                    strength,
                    tags,
                    status,
                    related,
                });
            }
        }
        Ok(kb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evidence_accumulates_and_validates() {
        let kb = KnowledgeBase::new(3);
        let id = kb
            .add_evidence(
                "reflex+glucose predicts diabetes",
                Source::Analytics,
                0.8,
                &["diabetes"],
            )
            .unwrap();
        assert_eq!(kb.get(id).unwrap().status, FindingStatus::Candidate);
        kb.add_evidence(
            "reflex+glucose predicts diabetes",
            Source::Reporting,
            0.7,
            &["neuropathy"],
        )
        .unwrap();
        assert_eq!(kb.get(id).unwrap().status, FindingStatus::Candidate);
        let id2 = kb
            .add_evidence(
                "reflex+glucose predicts diabetes",
                Source::Prediction,
                0.9,
                &[],
            )
            .unwrap();
        assert_eq!(id, id2, "same statement must dedupe");
        let f = kb.get(id).unwrap();
        assert_eq!(f.status, FindingStatus::Validated);
        assert_eq!(f.evidence_count, 3);
        assert_eq!(f.strength, 0.9, "keeps the strongest evidence");
        assert!(f.tags.contains(&"diabetes".to_string()));
        assert!(f.tags.contains(&"neuropathy".to_string()));
    }

    #[test]
    fn threshold_one_validates_immediately() {
        let kb = KnowledgeBase::new(1);
        let id = kb.add_evidence("x", Source::Clinician, 1.0, &[]).unwrap();
        assert_eq!(kb.get(id).unwrap().status, FindingStatus::Validated);
    }

    #[test]
    fn promotion_requires_validation() {
        let kb = KnowledgeBase::new(2);
        let id = kb.add_evidence("x", Source::Reporting, 0.5, &[]).unwrap();
        assert!(kb.promote(id).is_err());
        kb.add_evidence("x", Source::Reporting, 0.5, &[]).unwrap();
        kb.promote(id).unwrap();
        assert_eq!(kb.get(id).unwrap().status, FindingStatus::Promoted);
        // Double promotion fails (already promoted, not validated).
        assert!(kb.promote(id).is_err());
        assert!(kb.promote(999).is_err());
    }

    #[test]
    fn linking_is_bidirectional_and_idempotent() {
        let kb = KnowledgeBase::new(1);
        let a = kb.add_evidence("a", Source::Analytics, 1.0, &[]).unwrap();
        let b = kb.add_evidence("b", Source::Analytics, 1.0, &[]).unwrap();
        kb.link(a, b).unwrap();
        kb.link(a, b).unwrap();
        assert_eq!(kb.get(a).unwrap().related, vec![b]);
        assert_eq!(kb.get(b).unwrap().related, vec![a]);
        assert!(kb.link(a, a).is_err());
        assert!(kb.link(a, 42).is_err());
    }

    #[test]
    fn queries_by_status_and_tag() {
        let kb = KnowledgeBase::new(2);
        kb.add_evidence("one", Source::Reporting, 0.5, &["t1"])
            .unwrap();
        kb.add_evidence("two", Source::Reporting, 0.5, &["t1", "t2"])
            .unwrap();
        kb.add_evidence("two", Source::Reporting, 0.5, &[]).unwrap();
        assert_eq!(kb.by_status(FindingStatus::Candidate).len(), 1);
        assert_eq!(kb.by_status(FindingStatus::Validated).len(), 1);
        assert_eq!(kb.by_tag("t1").len(), 2);
        assert_eq!(kb.by_tag("t2").len(), 1);
        assert_eq!(kb.by_tag("t3").len(), 0);
    }

    #[test]
    fn rejects_bad_evidence() {
        let kb = KnowledgeBase::new(1);
        assert!(kb.add_evidence("  ", Source::Reporting, 0.5, &[]).is_err());
        assert!(kb.add_evidence("x", Source::Reporting, -1.0, &[]).is_err());
    }

    #[test]
    fn text_round_trip() {
        let kb = KnowledgeBase::new(2);
        let a = kb
            .add_evidence("finding A", Source::Analytics, 0.8, &["diabetes", "risk"])
            .unwrap();
        let b = kb
            .add_evidence("finding B", Source::Prediction, 0.6, &[])
            .unwrap();
        kb.add_evidence("finding A", Source::Reporting, 0.9, &[])
            .unwrap();
        kb.link(a, b).unwrap();

        let text = kb.export_text();
        let restored = KnowledgeBase::import_text(&text, 2).unwrap();
        assert_eq!(restored.len(), 2);
        let fa = restored.get(a).unwrap();
        assert_eq!(fa, kb.get(a).unwrap());
        assert_eq!(restored.get(b).unwrap(), kb.get(b).unwrap());
        // New evidence continues to dedupe after import.
        let id = restored
            .add_evidence("finding A", Source::Clinician, 0.1, &[])
            .unwrap();
        assert_eq!(id, a);
        assert_eq!(restored.get(a).unwrap().evidence_count, 3);
    }

    #[test]
    fn import_rejects_malformed_lines() {
        assert!(KnowledgeBase::import_text("not a record", 1).is_err());
        assert!(KnowledgeBase::import_text("1\tbogus\tanalytics\t1\t0.5\t\t\tX", 1).is_err());
    }

    #[test]
    fn concurrent_evidence_is_safe() {
        let kb = KnowledgeBase::new(100);
        let mut handles = Vec::new();
        for _ in 0..8 {
            let kb = kb.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    kb.add_evidence("shared", Source::Analytics, 0.5, &[])
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let f = &kb.by_tag("")[..]; // no tag — use get by status
        let _ = f;
        let all = kb.by_status(FindingStatus::Validated);
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].evidence_count, 400);
    }
}
