//! Typed, span-carrying diagnostics with stable error codes.
//!
//! Every problem the semantic analyzer can report has a stable code:
//! `A0xx` for name-resolution failures, `A1xx` for type errors on
//! condition literals, `A2xx` for aggregation-legality violations,
//! `A3xx` for concurrency findings from the lock auditor
//! ([`crate::locks`]). Codes are part of the service contract —
//! clients match on them, so they never change meaning; [`explain`]
//! returns the long-form description behind each one.

use clinical_types::{render_snippet, Span};
use std::fmt;

/// Stable diagnostic codes.
///
/// The numeric bands group related failures: `A0xx` naming, `A1xx`
/// typing, `A2xx` aggregation legality, `A3xx` lock discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // the variants are documented by `explain`
pub enum Code {
    /// `A001` — the FROM clause names a cube that is not the fact.
    A001UnknownCube,
    /// `A002` — an axis names an attribute missing from the catalog.
    A002UnknownAxisAttribute,
    /// `A003` — the MEASURE clause names an unknown measure column.
    A003UnknownMeasure,
    /// `A004` — a WHERE condition references an unknown column.
    A004UnknownConditionColumn,
    /// `A005` — COUNT(DISTINCT x) references an unknown column.
    A005UnknownDistinctColumn,
    /// `A006` — an axis resolves to a fact column, not an attribute.
    A006AxisNotDimensionAttribute,
    /// `A100` — equality condition on a numeric measure column.
    A100EqualityOnMeasure,
    /// `A101` — BETWEEN range condition on a categorical attribute.
    A101RangeOnCategorical,
    /// `A102` — BETWEEN range whose lower bound exceeds its upper.
    A102EmptyRange,
    /// `A103` — equality literal outside the attribute's observed domain.
    A103LiteralOutsideDomain,
    /// `A104` — BETWEEN bound is NaN or infinite.
    A104NonFiniteBound,
    /// `A200` — SUM of a non-additive measure across the cardinality dimension.
    A200SumAcrossCardinality,
    /// `A201` — COUNT(DISTINCT x) on a non-degenerate column.
    A201DistinctOnNonDegenerate,
    /// `A202` — CHILDREN drill-down from a level with no finer level.
    A202NoFinerLevel,
    /// `A203` — the same attribute appears on more than one axis.
    A203DuplicateAxis,
    /// `A204` — SUM/AVG/MIN/MAX target is not a numeric measure.
    A204AggregateTargetNotMeasure,
    /// `A205` — the query projects no axes at all.
    A205NoAxes,
    /// `A300` — lock-order cycle in the interprocedural lock graph.
    A300LockOrderCycle,
    /// `A301` — lock guard held across a blocking operation.
    A301LockAcrossBlocking,
    /// `A302` — lock guard held across `catch_unwind`.
    A302LockAcrossCatchUnwind,
    /// `A303` — lock field with no rank in a ranked crate.
    A303UnrankedLock,
    /// `A304` — observed acquisition order contradicts the rank table.
    A304RankOrderContradiction,
}

/// Every code, in ascending order (drives `explain --list`).
pub const ALL_CODES: [Code; 22] = [
    Code::A001UnknownCube,
    Code::A002UnknownAxisAttribute,
    Code::A003UnknownMeasure,
    Code::A004UnknownConditionColumn,
    Code::A005UnknownDistinctColumn,
    Code::A006AxisNotDimensionAttribute,
    Code::A100EqualityOnMeasure,
    Code::A101RangeOnCategorical,
    Code::A102EmptyRange,
    Code::A103LiteralOutsideDomain,
    Code::A104NonFiniteBound,
    Code::A200SumAcrossCardinality,
    Code::A201DistinctOnNonDegenerate,
    Code::A202NoFinerLevel,
    Code::A203DuplicateAxis,
    Code::A204AggregateTargetNotMeasure,
    Code::A205NoAxes,
    Code::A300LockOrderCycle,
    Code::A301LockAcrossBlocking,
    Code::A302LockAcrossCatchUnwind,
    Code::A303UnrankedLock,
    Code::A304RankOrderContradiction,
];

impl Code {
    /// The stable code string (`"A001"`, `"A200"`, …).
    pub fn as_str(&self) -> &'static str {
        match self {
            Code::A001UnknownCube => "A001",
            Code::A002UnknownAxisAttribute => "A002",
            Code::A003UnknownMeasure => "A003",
            Code::A004UnknownConditionColumn => "A004",
            Code::A005UnknownDistinctColumn => "A005",
            Code::A006AxisNotDimensionAttribute => "A006",
            Code::A100EqualityOnMeasure => "A100",
            Code::A101RangeOnCategorical => "A101",
            Code::A102EmptyRange => "A102",
            Code::A103LiteralOutsideDomain => "A103",
            Code::A104NonFiniteBound => "A104",
            Code::A200SumAcrossCardinality => "A200",
            Code::A201DistinctOnNonDegenerate => "A201",
            Code::A202NoFinerLevel => "A202",
            Code::A203DuplicateAxis => "A203",
            Code::A204AggregateTargetNotMeasure => "A204",
            Code::A205NoAxes => "A205",
            Code::A300LockOrderCycle => "A300",
            Code::A301LockAcrossBlocking => "A301",
            Code::A302LockAcrossCatchUnwind => "A302",
            Code::A303UnrankedLock => "A303",
            Code::A304RankOrderContradiction => "A304",
        }
    }

    /// Parse a code string back into a [`Code`].
    pub fn parse(s: &str) -> Option<Code> {
        ALL_CODES
            .iter()
            .copied()
            .find(|c| c.as_str().eq_ignore_ascii_case(s))
    }

    /// One-line summary of what the code means.
    pub fn summary(&self) -> &'static str {
        match self {
            Code::A001UnknownCube => "query names a cube that is not the fact table",
            Code::A002UnknownAxisAttribute => "axis names an attribute the catalog does not know",
            Code::A003UnknownMeasure => "measure clause names an unknown measure column",
            Code::A004UnknownConditionColumn => "condition references an unknown column",
            Code::A005UnknownDistinctColumn => "COUNT(DISTINCT …) references an unknown column",
            Code::A006AxisNotDimensionAttribute => {
                "axis resolves to a fact column, not a dimension attribute"
            }
            Code::A100EqualityOnMeasure => "equality condition applied to a numeric measure",
            Code::A101RangeOnCategorical => "range condition applied to a categorical attribute",
            Code::A102EmptyRange => "range lower bound exceeds its upper bound",
            Code::A103LiteralOutsideDomain => {
                "equality literal never observed in the attribute's domain"
            }
            Code::A104NonFiniteBound => "range bound is NaN or infinite",
            Code::A200SumAcrossCardinality => {
                "SUM of a non-additive measure across the cardinality dimension"
            }
            Code::A201DistinctOnNonDegenerate => {
                "COUNT(DISTINCT …) target is not a degenerate fact column"
            }
            Code::A202NoFinerLevel => "drill-down from a level with no finer hierarchy level",
            Code::A203DuplicateAxis => "the same attribute appears on more than one axis",
            Code::A204AggregateTargetNotMeasure => "aggregate target is not a numeric measure",
            Code::A205NoAxes => "query projects no axes",
            Code::A300LockOrderCycle => {
                "lock-order cycle: two paths acquire locks in opposite order"
            }
            Code::A301LockAcrossBlocking => "lock guard held across a blocking operation",
            Code::A302LockAcrossCatchUnwind => "lock guard held across catch_unwind",
            Code::A303UnrankedLock => "lock field in a ranked crate carries no rank",
            Code::A304RankOrderContradiction => {
                "observed acquisition order contradicts the LockRank table"
            }
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Long-form explanation for a code string, or `None` for an unknown
/// code. This backs `cargo run -p analyze --bin explain A200` and the
/// `DdDgms::explain` facade.
pub fn explain(code: &str) -> Option<&'static str> {
    Some(match Code::parse(code)? {
        Code::A001UnknownCube => {
            "A001 unknown cube: the FROM clause must name the star schema's fact \
             table (e.g. `FROM [Medical Measures]`). The analyzer suggests the \
             fact name when the query names anything else."
        }
        Code::A002UnknownAxisAttribute => {
            "A002 unknown axis attribute: ON COLUMNS / ON ROWS must project \
             dimension attributes declared in the catalog. A close match is \
             suggested via edit distance when one exists (did-you-mean)."
        }
        Code::A003UnknownMeasure => {
            "A003 unknown measure: the MEASURE clause (SUM/AVG/MIN/MAX/COUNT \
             DISTINCT target) must name a fact measure or degenerate column \
             declared in the catalog."
        }
        Code::A004UnknownConditionColumn => {
            "A004 unknown condition column: a WHERE equality or BETWEEN \
             condition references a column that is neither a dimension \
             attribute, a measure, nor a degenerate fact column."
        }
        Code::A005UnknownDistinctColumn => {
            "A005 unknown distinct column: COUNT(DISTINCT x) references a \
             column the catalog does not know."
        }
        Code::A006AxisNotDimensionAttribute => {
            "A006 axis is not a dimension attribute: the name resolves to a \
             measure or degenerate fact column. Axes group facts, so they must \
             be categorical dimension attributes; use the banded form of the \
             measure (e.g. FBG_Band instead of FBG)."
        }
        Code::A100EqualityOnMeasure => {
            "A100 equality on a measure: `[X] = value` only makes sense for \
             categorical attributes. Numeric measures are filtered with a \
             BETWEEN range instead; the analyzer names the measure involved."
        }
        Code::A101RangeOnCategorical => {
            "A101 range on a categorical attribute: BETWEEN compares numbers, \
             but the referenced column is a categorical dimension attribute. \
             Use an equality condition on one of its values."
        }
        Code::A102EmptyRange => {
            "A102 empty range: the BETWEEN lower bound is greater than the \
             upper bound, so the condition can never match a fact row."
        }
        Code::A103LiteralOutsideDomain => {
            "A103 literal outside domain (warning): the equality literal was \
             never observed among the attribute's loaded values. The query is \
             legal but will match nothing at the current epoch."
        }
        Code::A104NonFiniteBound => {
            "A104 non-finite bound: a BETWEEN bound is NaN or infinite; \
             comparisons against it are ill-defined."
        }
        Code::A200SumAcrossCardinality => {
            "A200 sum across cardinality: the measure is non-additive (a \
             point-in-time clinical reading, ratio or average), so SUM-rolling \
             it while grouping on the Cardinality dimension double-counts \
             patients across visits. Use AVG, or group on a non-cardinality \
             dimension. Duration- and count-like measures (minutes, sessions, \
             years, counts) are treated as additive."
        }
        Code::A201DistinctOnNonDegenerate => {
            "A201 distinct on non-degenerate column: COUNT(DISTINCT x) is the \
             paper's patient-count device and only applies to degenerate fact \
             columns such as PatientId; distinct counts over dimension \
             attributes or measures are not supported."
        }
        Code::A202NoFinerLevel => {
            "A202 no finer level: `[parent].CHILDREN` drills down one \
             hierarchy level, but the named level is already the finest (or \
             belongs to no hierarchy), so there is no finer level to expand."
        }
        Code::A203DuplicateAxis => {
            "A203 duplicate axis: the same attribute appears on more than one \
             axis (or twice on one), which would cross the attribute with \
             itself."
        }
        Code::A204AggregateTargetNotMeasure => {
            "A204 aggregate target is not a measure: SUM/AVG/MIN/MAX need a \
             numeric fact measure; dimension attributes are categorical and \
             cannot be aggregated numerically."
        }
        Code::A205NoAxes => {
            "A205 no axes: the query projects nothing; at least one axis \
             attribute is required to shape the pivot."
        }
        Code::A300LockOrderCycle => {
            "A300 lock-order cycle: the interprocedural lock graph contains a \
             cycle — some execution path acquires lock B while holding lock A, \
             and another acquires A while holding B. Two threads interleaving \
             those paths deadlock. The diagnostic carries the full witness \
             path (function chain and acquisition sites for every edge of the \
             cycle). Fix by making every path acquire the locks in the \
             LockRank order, or by shrinking one guard's scope so the inner \
             acquisition happens after release."
        }
        Code::A301LockAcrossBlocking => {
            "A301 lock across blocking operation: a guard is live across a \
             call that can block indefinitely (channel recv, thread join, \
             sleep, condvar wait, disk I/O, or a fault-injection point that \
             may stall). Every other thread needing that lock stalls too, and \
             under fault injection this turns a slow disk into a frozen \
             process. Drop the guard first, or move the blocking call out of \
             the critical section. Deliberate pairings (a condvar wait's own \
             mutex, a WAL mutex whose entire job is serialising the write) \
             are escaped with lint:allow(A301, \"reason\")."
        }
        Code::A302LockAcrossCatchUnwind => {
            "A302 lock across catch_unwind: a guard is live across \
             std::panic::catch_unwind. If the closure panics, the unwinding \
             stops at the boundary while the guard's lock stays held by a \
             thread that now continues in a possibly-inconsistent state; with \
             std locks this also poisons the mutex for every waiter. Acquire \
             inside the closure, or drop the guard before the boundary."
        }
        Code::A303UnrankedLock => {
            "A303 unranked lock: a Mutex/RwLock field in a crate under rank \
             discipline (serve, segstore, oltp, warehouse) is neither a \
             RankedMutex/RankedRwLock nor annotated with a \
             `// lock:rank(Name)` comment. Unranked locks are invisible to \
             both the static order check and the runtime rank assertion, so \
             the deadlock-freedom argument no longer covers them."
        }
        Code::A304RankOrderContradiction => {
            "A304 rank-order contradiction: the static lock graph observed an \
             acquisition edge from a higher-ranked (or equal-ranked) lock to \
             a lower-ranked one, contradicting obs::LockRank. Either the code \
             is wrong (reorder the acquisitions or split the critical \
             section) or the rank table is — the two are kept honest against \
             each other by the lock_conformance test."
        }
    })
}

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Severity {
    /// The query is rejected.
    Error,
    /// The query runs, but the analyzer flags a likely mistake.
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        })
    }
}

/// One analyzer finding: a coded message, optionally pinned to a span
/// of the query text and carrying a did-you-mean suggestion.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable code (see [`Code`]).
    pub code: Code,
    /// Error or warning.
    pub severity: Severity,
    /// Human-readable message naming the offending item.
    pub message: String,
    /// Byte span into the original query text, when known.
    pub span: Option<Span>,
    /// Did-you-mean candidate, when edit distance found one.
    pub suggestion: Option<String>,
}

impl Diagnostic {
    /// An error diagnostic with no span or suggestion.
    pub fn error(code: Code, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            message: message.into(),
            span: None,
            suggestion: None,
        }
    }

    /// A warning diagnostic with no span or suggestion.
    pub fn warning(code: Code, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            ..Diagnostic::error(code, message)
        }
    }

    /// Attach a source span.
    pub fn with_span(mut self, span: Span) -> Self {
        self.span = Some(span);
        self
    }

    /// Attach a did-you-mean suggestion.
    pub fn with_suggestion(mut self, suggestion: impl Into<String>) -> Self {
        self.suggestion = Some(suggestion.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        if let Some(s) = &self.suggestion {
            write!(f, " (did you mean `{s}`?)")?;
        }
        Ok(())
    }
}

/// The analyzer's full report for one query: zero or more findings
/// plus (when the input was textual MDX) the query text used to render
/// caret snippets.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Diagnostics {
    /// Original query text, if the request carried one.
    pub query: Option<String>,
    /// Findings in source order.
    pub items: Vec<Diagnostic>,
}

impl Diagnostics {
    /// An empty report for a textual query.
    pub fn for_query(query: impl Into<String>) -> Self {
        Diagnostics {
            query: Some(query.into()),
            items: Vec::new(),
        }
    }

    /// Add a finding.
    pub fn push(&mut self, diagnostic: Diagnostic) {
        self.items.push(diagnostic);
    }

    /// Whether nothing at all was reported.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether any finding is an [`Severity::Error`].
    pub fn has_errors(&self) -> bool {
        self.items.iter().any(|d| d.severity == Severity::Error)
    }

    /// The stable code strings, in report order.
    pub fn codes(&self) -> Vec<&'static str> {
        self.items.iter().map(|d| d.code.as_str()).collect()
    }

    /// First finding with the given code, if any.
    pub fn find(&self, code: Code) -> Option<&Diagnostic> {
        self.items.iter().find(|d| d.code == code)
    }

    /// `Err(self)` when the report contains errors, `Ok(self)`
    /// otherwise (warnings alone do not reject a query).
    pub fn into_result(self) -> Result<Diagnostics, Diagnostics> {
        if self.has_errors() {
            Err(self)
        } else {
            Ok(self)
        }
    }
}

impl fmt::Display for Diagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.items.is_empty() {
            return write!(f, "no diagnostics");
        }
        for (i, d) in self.items.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
            if let (Some(query), Some(span)) = (&self.query, d.span) {
                write!(
                    f,
                    "\n  {}",
                    render_snippet(query, span).replace('\n', "\n  ")
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_strings() {
        assert_eq!(Code::A001UnknownCube.as_str(), "A001");
        assert_eq!(Code::A200SumAcrossCardinality.as_str(), "A200");
        assert_eq!(Code::parse("a202"), Some(Code::A202NoFinerLevel));
        assert_eq!(Code::parse("Z999"), None);
        // Every code round-trips and has an explanation.
        for c in ALL_CODES {
            assert_eq!(Code::parse(c.as_str()), Some(c));
            assert!(explain(c.as_str()).is_some(), "no explain for {c}");
            assert!(!c.summary().is_empty());
        }
        assert!(explain("A999").is_none());
    }

    #[test]
    fn display_renders_code_suggestion_and_caret() {
        let mut diags = Diagnostics::for_query("SELECT [Gendr].MEMBERS ON ROWS");
        diags.push(
            Diagnostic::error(Code::A002UnknownAxisAttribute, "unknown attribute `Gendr`")
                .with_span(Span::new(7, 14))
                .with_suggestion("Gender"),
        );
        let text = diags.to_string();
        assert!(text.contains("error[A002]"), "{text}");
        assert!(text.contains("did you mean `Gender`?"), "{text}");
        assert!(text.contains("^^^^^^^"), "{text}");
        assert!(diags.has_errors());
        assert!(diags.clone().into_result().is_err());
    }

    #[test]
    fn warnings_alone_do_not_reject() {
        let mut diags = Diagnostics::default();
        diags.push(Diagnostic::warning(
            Code::A103LiteralOutsideDomain,
            "`Purple` never observed in `Gender`",
        ));
        assert!(!diags.has_errors());
        assert!(diags.clone().into_result().is_ok());
        assert_eq!(diags.codes(), vec!["A103"]);
    }
}
