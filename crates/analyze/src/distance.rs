//! Edit distance for did-you-mean suggestions.
//!
//! Optimal string alignment (Damerau-Levenshtein restricted to
//! adjacent transpositions): the classic typo model — insertions,
//! deletions, substitutions and swapped neighbours each cost one.

/// Optimal-string-alignment distance between `a` and `b`, case
/// insensitive (catalog names are matched the way users type them).
pub fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().flat_map(|c| c.to_lowercase()).collect();
    let b: Vec<char> = b.chars().flat_map(|c| c.to_lowercase()).collect();
    let (n, m) = (a.len(), b.len());
    if n == 0 {
        return m;
    }
    if m == 0 {
        return n;
    }

    // Three rolling rows: i-2, i-1, i.
    let mut prev2 = vec![0usize; m + 1];
    let mut prev: Vec<usize> = (0..=m).collect();
    let mut cur = vec![0usize; m + 1];
    for i in 1..=n {
        cur[0] = i;
        for j in 1..=m {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            cur[j] = (prev[j] + 1).min(cur[j - 1] + 1).min(prev[j - 1] + cost);
            if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] {
                cur[j] = cur[j].min(prev2[j - 2] + 1);
            }
        }
        std::mem::swap(&mut prev2, &mut prev);
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m]
}

/// The candidate closest to `target`, if one is close enough to be a
/// plausible typo. The threshold scales with the target's length —
/// one edit for short names, up to a third of the name for long ones —
/// so `"Gendr"` suggests `"Gender"` but `"XYZ"` suggests nothing.
pub fn closest<'c>(target: &str, candidates: impl IntoIterator<Item = &'c str>) -> Option<&'c str> {
    let threshold = (target.chars().count() / 3).max(1);
    candidates
        .into_iter()
        .map(|c| (edit_distance(target, c), c))
        .filter(|&(d, _)| d <= threshold && d > 0)
        .min_by_key(|&(d, c)| (d, c.len()))
        .map(|(_, c)| c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_distances() {
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("abc", "abc"), 0);
        // Adjacent transposition counts once, not twice.
        assert_eq!(edit_distance("Gedner", "Gender"), 1);
        // Case insensitive.
        assert_eq!(edit_distance("GENDER", "gender"), 0);
    }

    #[test]
    fn closest_respects_the_typo_threshold() {
        let names = ["Gender", "FBG_Band", "Age_Band"];
        assert_eq!(closest("Gendr", names), Some("Gender"));
        assert_eq!(closest("FBG_Bnad", names), Some("FBG_Band"));
        assert_eq!(closest("Zzz", names), None);
        // An exact match is not a suggestion.
        assert_eq!(closest("Gender", names), None);
    }
}
