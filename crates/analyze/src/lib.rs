#![warn(missing_docs)]

//! Static analysis for the DD-DGMS reproduction.
//!
//! Three prongs, one crate:
//!
//! 1. **Query semantic analysis.** The building blocks every query
//!    front end shares: a [`Catalog`] view of the star schema (column
//!    kinds, hierarchy edges, cardinality membership, additivity,
//!    observed value domains), typed span-carrying [`Diagnostic`]s
//!    with stable `A0xx`/`A1xx`/`A2xx` codes, did-you-mean
//!    suggestions via [`edit_distance`], and the [`explain`] facility
//!    behind `cargo run -p analyze --bin explain`. The AST-walking
//!    passes themselves live in `olap::semantic` (they need the MDX
//!    AST, which lives above this crate); `serve` runs them
//!    pre-admission so invalid queries never consume a worker slot.
//!
//! 2. **Incident forensics.** [`render_black_box`] and the
//!    `black-box` binary turn a flight-recorder JSONL dump into an
//!    operator-facing report: the triggering trace's span tree, the
//!    per-thread state table, the ranked-lock timeline, failpoint
//!    evaluations and metric movement.
//!
//! 3. **Repo lint.** [`lint_workspace`] and the `repo-lint` binary
//!    enforce source rules the compiler can't: no panicking calls in
//!    hot-path modules outside tests, no `todo!`/`dbg!` anywhere, and
//!    `Display` on every public error enum — with an audited
//!    `lint:allow(<rule>)` escape hatch. `scripts/check.sh` runs it
//!    as a failing gate.

pub mod blackbox;
pub mod catalog;
pub mod diag;
pub mod distance;
pub mod footprint;
pub mod lint;
pub mod locks;

pub use blackbox::render_black_box;
pub use catalog::{Catalog, ColumnKind, CARDINALITY_DIMENSION};
pub use diag::{explain, Code, Diagnostic, Diagnostics, Severity, ALL_CODES};
pub use distance::{closest, edit_distance};
pub use footprint::QueryFootprint;
pub use lint::{check_source, lint_workspace, LintReport, Violation};
pub use locks::{audit_sources, audit_workspace, LockAudit, LockDecl, LockEdge, LockFinding};
