//! Workspace lint gate: `cargo run -p analyze --bin repo-lint`.
//!
//! Walks every workspace `.rs` source and enforces the rules in
//! [`analyze::lint`]. Exits non-zero when any violation is found, so
//! `scripts/check.sh` can use it as a failing gate.
//!
//! Flags:
//! * `--root <path>` — workspace root (default: inferred from
//!   `CARGO_MANIFEST_DIR`, falling back to the current directory);
//! * `--fix-hints` — print each offending line together with its rule
//!   id and the suggested fix.

use analyze::lint::lint_workspace;
use std::path::PathBuf;
use std::process::ExitCode;

fn default_root() -> PathBuf {
    match std::env::var_os("CARGO_MANIFEST_DIR") {
        // crates/analyze → workspace root is two levels up.
        Some(dir) => PathBuf::from(dir).join("../.."),
        None => PathBuf::from("."),
    }
}

fn main() -> ExitCode {
    let mut root = default_root();
    let mut fix_hints = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(path) => root = PathBuf::from(path),
                None => {
                    eprintln!("repo-lint: --root requires a path");
                    return ExitCode::FAILURE;
                }
            },
            "--fix-hints" => fix_hints = true,
            other => {
                eprintln!(
                    "repo-lint: unknown flag `{other}` (expected --root <path>, --fix-hints)"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    let report = match lint_workspace(&root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("repo-lint: cannot walk {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    for v in &report.violations {
        if fix_hints {
            println!("{v}\n    fix: {}", v.hint);
        } else {
            println!("{v}");
        }
    }
    println!(
        "repo-lint: {} files checked, {} violation(s), {} lint:allow escape(s)",
        report.files_checked,
        report.violations.len(),
        report.escapes.len(),
    );
    if report.violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
