//! Workspace lint gate: `cargo run -p analyze --bin repo-lint`.
//!
//! Walks every workspace `.rs` source and enforces the rules in
//! [`analyze::lint`]. Exits non-zero when any violation is found, so
//! `scripts/check.sh` can use it as a failing gate.
//!
//! Flags:
//! * `--root <path>` — workspace root (default: inferred from
//!   `CARGO_MANIFEST_DIR`, falling back to the current directory);
//! * `--fix-hints` — print each offending line together with its rule
//!   id and the suggested fix;
//! * `--escapes` — print the full escape table: every honoured
//!   `lint:allow` with its justification (bare escapes are flagged);
//! * `--locks` — also run the [`analyze::locks`] concurrency audit
//!   and fail on any error-severity A3xx finding (lock-order cycle,
//!   unranked lock, rank contradiction).

use analyze::lint::lint_workspace;
use analyze::locks::audit_workspace;
use std::path::PathBuf;
use std::process::ExitCode;

fn default_root() -> PathBuf {
    match std::env::var_os("CARGO_MANIFEST_DIR") {
        // crates/analyze → workspace root is two levels up.
        Some(dir) => PathBuf::from(dir).join("../.."),
        None => PathBuf::from("."),
    }
}

fn main() -> ExitCode {
    let mut root = default_root();
    let mut fix_hints = false;
    let mut show_escapes = false;
    let mut locks = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(path) => root = PathBuf::from(path),
                None => {
                    eprintln!("repo-lint: --root requires a path");
                    return ExitCode::FAILURE;
                }
            },
            "--fix-hints" => fix_hints = true,
            "--escapes" => show_escapes = true,
            "--locks" => locks = true,
            other => {
                eprintln!(
                    "repo-lint: unknown flag `{other}` \
                     (expected --root <path>, --fix-hints, --escapes, --locks)"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    let report = match lint_workspace(&root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("repo-lint: cannot walk {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    for v in &report.violations {
        if fix_hints {
            println!("{v}\n    fix: {}", v.hint);
        } else {
            println!("{v}");
        }
    }

    // Every escape needs a stated reason; bare ones are warned about
    // (not failed) so justifications can be backfilled incrementally.
    let bare: Vec<_> = report
        .escapes
        .iter()
        .filter(|e| e.reason.is_none())
        .collect();
    if show_escapes {
        println!("escape table ({} honoured):", report.escapes.len());
        for e in &report.escapes {
            println!(
                "  {}:{} [{}] {}",
                e.file,
                e.line,
                e.rule,
                e.reason.as_deref().unwrap_or("(no reason given)")
            );
        }
    }
    for e in &bare {
        println!(
            "warning: bare escape {}:{} [{}] — justify it: lint:allow({}, \"reason\")",
            e.file, e.line, e.rule, e.rule
        );
    }

    let mut lock_errors = 0usize;
    if locks {
        match audit_workspace(&root) {
            Ok(audit) => {
                for f in audit.errors() {
                    println!(
                        "{}[{}] {}{}",
                        f.diagnostic.severity,
                        f.diagnostic.code,
                        if f.line > 0 {
                            format!("{}:{}: ", f.file, f.line)
                        } else {
                            String::new()
                        },
                        f.diagnostic.message
                    );
                    lock_errors += 1;
                }
                for f in audit.warnings() {
                    println!(
                        "{}[{}] {}:{}: {}",
                        f.diagnostic.severity,
                        f.diagnostic.code,
                        f.file,
                        f.line,
                        f.diagnostic.message
                    );
                }
                if show_escapes && !audit.escapes.is_empty() {
                    println!("lock-audit escapes ({} honoured):", audit.escapes.len());
                    for e in &audit.escapes {
                        println!(
                            "  {}:{} [{}] {}",
                            e.file,
                            e.line,
                            e.rule,
                            e.reason.as_deref().unwrap_or("(no reason given)")
                        );
                    }
                }
                println!(
                    "lock-audit: {} locks, {} edges, {} error(s), {} warning(s)",
                    audit.decls.len(),
                    audit.edges.len(),
                    audit.errors().len(),
                    audit.warnings().len(),
                );
            }
            Err(e) => {
                eprintln!(
                    "repo-lint: lock audit failed to walk {}: {e}",
                    root.display()
                );
                return ExitCode::FAILURE;
            }
        }
    }

    println!(
        "repo-lint: {} files checked, {} violation(s), {} lint:allow escape(s) ({} bare)",
        report.files_checked,
        report.violations.len(),
        report.escapes.len(),
        bare.len(),
    );
    if report.violations.is_empty() && lock_errors == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
