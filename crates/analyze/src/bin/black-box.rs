//! Render a flight-recorder black-box dump for humans.
//!
//! Usage:
//!
//! ```text
//! cargo run -p analyze --bin black-box -- incident.jsonl
//! cat incident.jsonl | cargo run -p analyze --bin black-box
//! ```
//!
//! Reads the JSONL written by `obs::BlackBox::write_to` (one header
//! line, then thread / metrics / record lines) and prints the
//! triggering trace's span tree, the per-thread state table, the
//! ranked-lock timeline, failpoint evaluations and metric movement.

use std::io::Read as _;
use std::process::ExitCode;

const USAGE: &str = "usage: black-box [FILE]\n\
    Renders a flight-recorder black-box JSONL dump (FILE, or stdin\n\
    when omitted) as a human-readable incident report.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let text = match args.first().map(String::as_str) {
        Some("--help") | Some("-h") => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("black-box: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => {
            let mut buffer = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut buffer) {
                eprintln!("black-box: cannot read stdin: {e}");
                return ExitCode::FAILURE;
            }
            buffer
        }
    };
    match analyze::render_black_box(&text) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("black-box: {e}");
            ExitCode::FAILURE
        }
    }
}
