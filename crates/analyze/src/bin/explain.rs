//! Diagnostic-code reference: `cargo run -p analyze --bin explain A200`.
//!
//! With a code argument, prints the long-form explanation; with no
//! arguments (or `--list`), prints the one-line summary of every code.

use analyze::{explain, ALL_CODES};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--list") {
        for code in ALL_CODES {
            println!("{code}  {}", code.summary());
        }
        return ExitCode::SUCCESS;
    }
    let mut ok = true;
    for code in &args {
        match explain(code) {
            Some(text) => println!("{text}\n"),
            None => {
                eprintln!("explain: unknown diagnostic code `{code}` (try --list)");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
