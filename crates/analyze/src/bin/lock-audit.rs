//! Stand-alone concurrency auditor CLI over [`analyze::locks`].
//!
//! ```text
//! cargo run -p analyze --bin lock-audit            # full report
//! cargo run -p analyze --bin lock-audit -- --edges # edge list only
//! cargo run -p analyze --bin lock-audit -- --order # derived topological order
//! cargo run -p analyze --bin lock-audit -- --dot   # graphviz
//! cargo run -p analyze --bin lock-audit -- --root <dir>
//! ```
//!
//! Exits non-zero when the audit finds any error-severity diagnostic
//! (A300 cycle, A303 unranked lock, A304 rank contradiction), so it
//! can serve as a CI gate.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut mode = "report";
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let Some(dir) = args.next() else {
                    eprintln!("lock-audit: --root needs a directory");
                    return ExitCode::from(2);
                };
                root = PathBuf::from(dir);
            }
            "--edges" => mode = "edges",
            "--order" => mode = "order",
            "--dot" => mode = "dot",
            "--help" | "-h" => {
                eprintln!("usage: lock-audit [--root <dir>] [--edges | --order | --dot]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("lock-audit: unknown flag `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let audit = match analyze::audit_workspace(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!(
                "lock-audit: cannot read workspace at {}: {e}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };

    match mode {
        "edges" => {
            for e in &audit.edges {
                let via = if e.via.is_empty() {
                    String::new()
                } else {
                    format!(" via {}", e.via.join(" -> "))
                };
                println!(
                    "{} -> {}  [{} at {}:{}{}]",
                    e.from, e.to, e.func, e.file, e.line, via
                );
            }
        }
        "order" => {
            for (i, id) in audit.derived_order().iter().enumerate() {
                let rank = audit
                    .decls
                    .iter()
                    .find(|d| &d.id == id)
                    .and_then(|d| d.rank.clone())
                    .unwrap_or_else(|| "-".into());
                println!("{i:>3}  {id:<28} {rank}");
            }
        }
        "dot" => print!("{}", audit.dot()),
        _ => print!("{}", audit.report()),
    }

    if audit.errors().is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
