//! Human-readable rendering of flight-recorder black-box dumps.
//!
//! A [`obs::BlackBox`] serialises to self-contained JSONL so it can be
//! written at incident time with no further dependencies; this module
//! is the read side: [`render_black_box`] turns that JSONL back into
//! an operator-facing report — the triggering trace's span tree, the
//! per-thread state table, the ranked-lock timeline, failpoint hits
//! and metric movement. `cargo run -p analyze --bin black-box` wraps
//! it for the command line.

use obs::{BlackBox, FlightRecord};
use std::fmt::Write as _;

/// Render the JSONL form of a black box as a plain-text report.
///
/// Errors (with a description) when `text` does not start with a
/// black-box header line; individually malformed later lines are
/// skipped, matching [`BlackBox::parse`]'s best-effort contract.
pub fn render_black_box(text: &str) -> Result<String, String> {
    let black_box = BlackBox::parse(text).ok_or_else(|| {
        "input is not a black-box dump (missing `blackbox` header line)".to_string()
    })?;
    Ok(render(&black_box))
}

fn render(bb: &BlackBox) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "=== black box #{} ===", bb.seq);
    let _ = writeln!(out, "trigger : {}", bb.trigger);
    match bb.trace {
        Some(trace) => {
            let _ = writeln!(out, "trace   : {}", trace.0);
        }
        None => {
            let _ = writeln!(out, "trace   : (none)");
        }
    }
    let _ = writeln!(out, "dumped  : t+{}µs", bb.at_us);
    let _ = writeln!(
        out,
        "contents: {} threads, {} metric sources, {} records",
        bb.threads.len(),
        bb.metrics.len(),
        bb.records.len()
    );

    if !bb.threads.is_empty() {
        let _ = writeln!(out, "\n--- threads at dump time ---");
        for t in &bb.threads {
            let age = bb.at_us.saturating_sub(t.heartbeat_us);
            let path = if t.path.is_empty() { "(idle)" } else { &t.path };
            let _ = write!(out, "  {:<20} {path}", t.worker);
            if !t.held.is_empty() {
                let _ = write!(out, "  holds [{}]", t.held.join(", "));
            }
            let _ = write!(out, "  heartbeat {age}µs ago");
            if t.stalled {
                let _ = write!(out, "  ** STALLED (budget {}µs)", t.budget_us);
            }
            let _ = writeln!(out);
        }
    }

    if let Some(trace) = bb.trace {
        let tree = obs::render_trace(&bb.spans(), trace);
        let _ = writeln!(out, "\n--- triggering trace {} ---", trace.0);
        if tree.is_empty() {
            let _ = writeln!(out, "  (no closed spans for this trace in the window)");
        } else {
            for line in tree.lines() {
                let _ = writeln!(out, "  {line}");
            }
        }
    }

    let locks: Vec<&FlightRecord> = bb
        .records
        .iter()
        .filter(|r| matches!(r, FlightRecord::Lock { .. }))
        .collect();
    if !locks.is_empty() {
        let _ = writeln!(out, "\n--- lock timeline ---");
        for record in locks {
            if let FlightRecord::Lock {
                name,
                rank,
                acquired,
                at_us,
                thread,
            } = record
            {
                let verb = if *acquired { "acquire" } else { "release" };
                let _ = writeln!(out, "  t+{at_us:<12}µs {thread:<20} {verb} {name} [{rank}]");
            }
        }
    }

    let failpoints: Vec<&FlightRecord> = bb
        .records
        .iter()
        .filter(|r| matches!(r, FlightRecord::Failpoint { .. }))
        .collect();
    if !failpoints.is_empty() {
        let _ = writeln!(out, "\n--- failpoint evaluations ---");
        for record in failpoints {
            if let FlightRecord::Failpoint {
                name,
                fired,
                at_us,
                thread,
            } = record
            {
                let verdict = if *fired { "FIRED" } else { "passed" };
                let _ = writeln!(out, "  t+{at_us:<12}µs {thread:<20} {name}: {verdict}");
            }
        }
    }

    let events: Vec<&FlightRecord> = bb
        .records
        .iter()
        .filter(|r| matches!(r, FlightRecord::Event(_)))
        .collect();
    if !events.is_empty() {
        let _ = writeln!(out, "\n--- events ---");
        for record in events {
            if let FlightRecord::Event(e) = record {
                let _ = write!(out, "  t+{:<12}µs {}", e.at_us, e.name);
                for (k, v) in &e.fields {
                    let _ = write!(out, " {k}={v}");
                }
                if let Some(trace) = e.trace {
                    let _ = write!(out, " (trace {})", trace.0);
                }
                let _ = writeln!(out);
            }
        }
    }

    let samples: Vec<&FlightRecord> = bb
        .records
        .iter()
        .filter(|r| matches!(r, FlightRecord::Metric { .. }))
        .collect();
    if !samples.is_empty() {
        let _ = writeln!(out, "\n--- metric movement (ring samples) ---");
        for record in samples {
            if let FlightRecord::Metric { name, delta, at_us } = record {
                let _ = writeln!(out, "  t+{at_us:<12}µs {name} +{delta}");
            }
        }
    }

    if !bb.metrics.is_empty() {
        let _ = writeln!(out, "\n--- metric deltas since attach ---");
        for (source, delta) in &bb.metrics {
            let _ = writeln!(out, "  [{source}]");
            for (name, value) in &delta.counters {
                if *value > 0 {
                    let _ = writeln!(out, "    {name} +{value}");
                }
            }
            for (name, value) in &delta.observations {
                if *value > 0 {
                    let _ = writeln!(out, "    {name} +{value} observations");
                }
            }
            for (name, value) in &delta.gauges {
                if *value != 0 {
                    let _ = writeln!(out, "    {name} {value:+}");
                }
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::{RegistryDelta, ThreadState, TraceId};

    fn sample_box() -> BlackBox {
        BlackBox {
            seq: 3,
            trigger: "serve.breaker_open".into(),
            trace: Some(TraceId(42)),
            at_us: 5_000,
            threads: vec![ThreadState {
                worker: "serve-worker-0".into(),
                path: "serve.request>serve.execute".into(),
                held: vec!["Warehouse".into()],
                trace: Some(TraceId(42)),
                heartbeat_us: 4_000,
                budget_us: 1_000_000,
                stalled: false,
            }],
            metrics: vec![(
                "serve".into(),
                RegistryDelta {
                    counters: [("serve_failed_total".to_string(), 3u64)]
                        .into_iter()
                        .collect(),
                    gauges: Default::default(),
                    observations: Default::default(),
                },
            )],
            records: vec![
                FlightRecord::Lock {
                    name: "serve.warehouse".into(),
                    rank: "Warehouse".into(),
                    acquired: true,
                    at_us: 4_500,
                    thread: "serve-worker-0".into(),
                },
                FlightRecord::Failpoint {
                    name: "serve.execute".into(),
                    fired: true,
                    at_us: 4_600,
                    thread: "serve-worker-0".into(),
                },
            ],
        }
    }

    #[test]
    fn renders_every_section_from_jsonl() {
        let report = render_black_box(&sample_box().to_jsonl()).expect("parses");
        assert!(report.contains("trigger : serve.breaker_open"));
        assert!(report.contains("trace   : 42"));
        assert!(report.contains("serve-worker-0"));
        assert!(report.contains("holds [Warehouse]"));
        assert!(report.contains("acquire serve.warehouse [Warehouse]"));
        assert!(report.contains("serve.execute: FIRED"));
        assert!(report.contains("serve_failed_total +3"));
    }

    #[test]
    fn rejects_non_blackbox_input() {
        assert!(render_black_box("").is_err());
        assert!(render_black_box("{\"kind\":\"span\"}").is_err());
        assert!(render_black_box("not json at all").is_err());
    }
}
