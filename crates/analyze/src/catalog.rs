//! The analyzer's view of a star schema.
//!
//! [`Catalog`] flattens a [`StarSchema`] into the lookups the semantic
//! passes need: column name → kind, hierarchy drill-down edges,
//! which attributes belong to the cardinality dimension, which
//! measures are additive, and (when built from a loaded [`Warehouse`])
//! the observed value domain of each categorical attribute.

use crate::distance::closest;
use std::collections::{HashMap, HashSet};
use warehouse::{StarSchema, Warehouse};

/// The name of the visit-multiplicity dimension (paper §III: the
/// Cardinality dimension distinguishing first visits, latest visits
/// and per-patient visit counts).
pub const CARDINALITY_DIMENSION: &str = "Cardinality";

/// What a resolved column name denotes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColumnKind {
    /// A categorical attribute owned by the named dimension.
    Attribute {
        /// Owning dimension name.
        dimension: String,
    },
    /// A numeric fact measure.
    Measure,
    /// A degenerate (identifier) column stored on the fact.
    Degenerate,
}

/// A resolved, analysis-ready view of one star schema.
#[derive(Debug, Clone)]
pub struct Catalog {
    fact_name: String,
    columns: HashMap<String, ColumnKind>,
    /// level → one-step-finer level, over every hierarchy.
    finer: HashMap<String, String>,
    cardinality_attrs: HashSet<String>,
    /// Observed values per attribute (empty unless built from a
    /// loaded warehouse).
    domains: HashMap<String, HashSet<String>>,
}

impl Catalog {
    /// Build from a schema alone (no value domains).
    pub fn from_star(star: &StarSchema) -> Self {
        let mut columns = HashMap::new();
        let mut finer = HashMap::new();
        let mut cardinality_attrs = HashSet::new();
        for d in &star.dimensions {
            for a in &d.attributes {
                columns.insert(
                    a.clone(),
                    ColumnKind::Attribute {
                        dimension: d.name.clone(),
                    },
                );
                if d.name == CARDINALITY_DIMENSION {
                    cardinality_attrs.insert(a.clone());
                }
            }
            for h in &d.hierarchies {
                for pair in h.levels.windows(2) {
                    finer.insert(pair[0].clone(), pair[1].clone());
                }
            }
        }
        for m in &star.fact.measures {
            columns.insert(m.clone(), ColumnKind::Measure);
        }
        for g in &star.fact.degenerate {
            columns.insert(g.clone(), ColumnKind::Degenerate);
        }
        Catalog {
            fact_name: star.fact.name.clone(),
            columns,
            finer,
            cardinality_attrs,
            domains: HashMap::new(),
        }
    }

    /// Build from a loaded warehouse: the schema view plus the
    /// observed value domain of every categorical attribute, enabling
    /// the `A103` literal-outside-domain warning.
    pub fn from_warehouse(warehouse: &Warehouse) -> Self {
        let mut catalog = Catalog::from_star(warehouse.star());
        // Walk the interned dimension tuples (distinct combinations),
        // not the fact rows, so this stays cheap on large loads.
        for dim in &warehouse.star().dimensions {
            let Ok(table) = warehouse.dimension(&dim.name) else {
                continue;
            };
            for attribute in &dim.attributes {
                let Some(ai) = table.attribute_index(attribute) else {
                    continue;
                };
                let mut domain = HashSet::new();
                for key in 0..table.len() as u32 {
                    if let Some(tuple) = table.tuple(key) {
                        domain.insert(tuple[ai].to_string());
                    }
                }
                catalog.domains.insert(attribute.clone(), domain);
            }
        }
        catalog
    }

    /// The fact (cube) name queries must address.
    pub fn fact_name(&self) -> &str {
        &self.fact_name
    }

    /// Resolve a column name.
    pub fn kind(&self, name: &str) -> Option<&ColumnKind> {
        self.columns.get(name)
    }

    /// Whether `name` is a categorical dimension attribute.
    pub fn is_attribute(&self, name: &str) -> bool {
        matches!(self.kind(name), Some(ColumnKind::Attribute { .. }))
    }

    /// Whether `name` is a numeric fact measure.
    pub fn is_measure(&self, name: &str) -> bool {
        matches!(self.kind(name), Some(ColumnKind::Measure))
    }

    /// Whether `name` is a degenerate fact column.
    pub fn is_degenerate(&self, name: &str) -> bool {
        matches!(self.kind(name), Some(ColumnKind::Degenerate))
    }

    /// The one-step-finer hierarchy level under `level`, if any.
    pub fn finer_level(&self, level: &str) -> Option<&str> {
        self.finer.get(level).map(String::as_str)
    }

    /// Whether `attribute` belongs to the cardinality dimension.
    pub fn is_cardinality_attribute(&self, attribute: &str) -> bool {
        self.cardinality_attrs.contains(attribute)
    }

    /// Whether SUM-rolling `measure` is meaningful across visit
    /// multiplicity. Clinical readings are point-in-time intensive
    /// quantities (concentrations, ratios, averages) — non-additive;
    /// duration- and count-like columns (minutes, hours, sessions,
    /// years, counts) are extensive and additive.
    pub fn is_additive_measure(&self, measure: &str) -> bool {
        ["Minutes", "Hours", "Sessions", "Years", "Count"]
            .iter()
            .any(|marker| measure.contains(marker))
    }

    /// Observed values of `attribute`, when the catalog was built from
    /// a loaded warehouse. `None` means "domain unknown" — the `A103`
    /// check is skipped rather than firing spuriously.
    pub fn domain(&self, attribute: &str) -> Option<&HashSet<String>> {
        self.domains.get(attribute)
    }

    /// Closest known column name to `name` (did-you-mean), if any is
    /// within typo distance. The fact name itself is included so a
    /// misspelled cube gets a suggestion too.
    pub fn suggest(&self, name: &str) -> Option<&str> {
        closest(
            name,
            self.columns
                .keys()
                .map(String::as_str)
                .chain(std::iter::once(self.fact_name.as_str())),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warehouse::discri_model;

    #[test]
    fn discri_catalog_resolves_all_kinds() {
        let c = Catalog::from_star(&discri_model());
        assert_eq!(c.fact_name(), "Medical Measures");
        assert_eq!(
            c.kind("Gender"),
            Some(&ColumnKind::Attribute {
                dimension: "Personal Information".into()
            })
        );
        assert!(c.is_measure("FBG"));
        assert!(c.is_degenerate("PatientId"));
        assert_eq!(c.kind("NoSuchThing"), None);
    }

    #[test]
    fn hierarchy_and_cardinality_views() {
        let c = Catalog::from_star(&discri_model());
        assert_eq!(c.finer_level("Age_Band"), Some("Age_SubGroup"));
        assert_eq!(c.finer_level("Age_SubGroup"), None);
        assert_eq!(c.finer_level("Gender"), None);
        assert!(c.is_cardinality_attribute("VisitKind"));
        assert!(!c.is_cardinality_attribute("Gender"));
    }

    #[test]
    fn additivity_heuristic_separates_extensive_measures() {
        let c = Catalog::from_star(&discri_model());
        assert!(c.is_additive_measure("ExerciseMinutesPerWeek"));
        assert!(c.is_additive_measure("DiabetesDurationYears"));
        assert!(!c.is_additive_measure("FBG"));
        assert!(!c.is_additive_measure("WaistHipRatio"));
        assert!(!c.is_additive_measure("LyingSBPAverage"));
    }

    #[test]
    fn suggestions_cover_columns_and_the_fact() {
        let c = Catalog::from_star(&discri_model());
        assert_eq!(c.suggest("Gendr"), Some("Gender"));
        assert_eq!(c.suggest("Medical Measure"), Some("Medical Measures"));
        assert_eq!(c.suggest("CompletelyUnrelated"), None);
    }
}
