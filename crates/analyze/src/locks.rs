//! Interprocedural lock-order auditor (the static half of the
//! concurrency discipline; `obs::lockrank` is the dynamic half).
//!
//! The pass parses every crate's source heuristically — no rustc, no
//! syn — extracting *lock-site facts*: which `Mutex`/`RwLock` field
//! each acquisition touches, how far the guard's scope extends
//! (tracked by brace depth), and whether the access is a read or a
//! write. Call edges are resolved by same-crate name resolution
//! (receiver field types, `impl` blocks, trait-method unions for
//! `dyn` dispatch), and the transitive closure yields the
//! interprocedural lock-acquisition graph. Over that graph it
//! reports, as typed [`Diagnostic`]s in the stable `A3xx` band:
//!
//! * **A300** — lock-order cycles, with the full witness path
//!   (function chain and acquisition site for every edge).
//! * **A301** — guards held across blocking operations (channel
//!   recv, thread join, sleep, condvar waits, disk I/O,
//!   `fault::point` sites).
//! * **A302** — guards held across `catch_unwind`.
//! * **A303** — unranked lock fields in crates under rank
//!   discipline ([`RANKED_CRATES`]): neither a
//!   `RankedMutex`/`RankedRwLock` nor a `// lock:rank(Name)`
//!   annotation.
//! * **A304** — acquisition edges that contradict the runtime
//!   [`obs::LockRank`] table (descending or equal rank).
//!
//! Deliberate A301/A302 patterns are escaped in place with
//! `lint:allow(A301, "reason")`, sharing the lint module's escape
//! grammar; the escapes surface in `repo-lint`'s escape table.
//!
//! Ranks are read from `RankedMutex::new(LockRank::X, "crate.name",
//! …)` constructor calls — matched to field declarations by the
//! name's last dot-segment or by a `field:` prefix on the same
//! logical line — and from `lock:rank(X)` comment annotations. The
//! derived topological order is diffed against the runtime table by
//! the `lock_conformance` integration test, so the static and
//! dynamic halves cannot drift apart silently.

use crate::diag::{Code, Diagnostic, Diagnostics, Severity};
use crate::lint::{self, escape_for, test_mask, workspace_sources, Escape};
use obs::LockRank;
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::Path;

/// Crates whose locks must carry a rank (A303 fires on bare
/// `Mutex`/`RwLock` fields here).
pub const RANKED_CRATES: [&str; 5] = ["serve", "segstore", "oltp", "warehouse", "oplog"];

/// Whether a lock is a mutex or a reader-writer lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    /// `Mutex` / `RankedMutex`.
    Mutex,
    /// `RwLock` / `RankedRwLock`.
    RwLock,
}

/// One lock declaration discovered in the source.
#[derive(Debug, Clone)]
pub struct LockDecl {
    /// Canonical id: the constructor's name string (`"serve.flights"`)
    /// when one exists, else `"<crate>.<field>"`.
    pub id: String,
    /// Rank name from the constructor or `lock:rank(...)` annotation.
    pub rank: Option<String>,
    /// Workspace-relative file of the field declaration.
    pub file: String,
    /// 1-based line of the field declaration.
    pub line: usize,
    /// Mutex or RwLock.
    pub kind: LockKind,
    /// Declared via the ranked wrappers (vs a bare std/parking_lot lock).
    pub ranked_wrapper: bool,
    /// The struct-field (or binding) name.
    pub field: String,
    /// Crate the declaration lives in.
    pub krate: String,
}

/// One acquisition-order edge: `to` is acquired while `from` is held.
#[derive(Debug, Clone)]
pub struct LockEdge {
    /// Lock held at the acquisition site.
    pub from: String,
    /// Lock acquired under it.
    pub to: String,
    /// Workspace-relative file of the acquisition site.
    pub file: String,
    /// 1-based line of the acquisition site.
    pub line: usize,
    /// Function containing the site.
    pub func: String,
    /// Call chain from `func` to the function that acquires `to`
    /// (empty for a direct same-function acquisition).
    pub via: Vec<String>,
}

/// One audit finding: a typed diagnostic pinned to a file and line.
#[derive(Debug, Clone)]
pub struct LockFinding {
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line (0 when the finding is graph-global, e.g. a cycle).
    pub line: usize,
    /// The coded diagnostic.
    pub diagnostic: Diagnostic,
}

/// Full result of a lock audit.
#[derive(Debug, Clone, Default)]
pub struct LockAudit {
    /// Every lock declaration found.
    pub decls: Vec<LockDecl>,
    /// Deduplicated acquisition-order edges (first witness kept).
    pub edges: Vec<LockEdge>,
    /// A3xx findings, errors first.
    pub findings: Vec<LockFinding>,
    /// `lint:allow(A3xx, …)` escapes honoured during the audit.
    pub escapes: Vec<Escape>,
}

impl LockAudit {
    /// Findings with error severity (A300, A303, A304).
    pub fn errors(&self) -> Vec<&LockFinding> {
        self.findings
            .iter()
            .filter(|f| f.diagnostic.severity == Severity::Error)
            .collect()
    }

    /// Findings with warning severity (A301, A302).
    pub fn warnings(&self) -> Vec<&LockFinding> {
        self.findings
            .iter()
            .filter(|f| f.diagnostic.severity == Severity::Warning)
            .collect()
    }

    /// The findings folded into the analyzer's [`Diagnostics`]
    /// machinery (file:line prefixed onto each message).
    pub fn diagnostics(&self) -> Diagnostics {
        let mut out = Diagnostics::default();
        for f in &self.findings {
            let mut d = f.diagnostic.clone();
            if f.line > 0 {
                d.message = format!("{}:{}: {}", f.file, f.line, d.message);
            } else if !f.file.is_empty() {
                d.message = format!("{}: {}", f.file, d.message);
            }
            out.push(d);
        }
        out
    }

    /// Distinct lock ids that appear in at least one edge or decl.
    pub fn lock_ids(&self) -> BTreeSet<String> {
        let mut ids: BTreeSet<String> = self.decls.iter().map(|d| d.id.clone()).collect();
        for e in &self.edges {
            ids.insert(e.from.clone());
            ids.insert(e.to.clone());
        }
        ids
    }

    /// Topological order of the locks constrained by the observed
    /// edges (Kahn's algorithm; alphabetical tie-break so the result
    /// is deterministic). Locks in a cycle are appended at the end in
    /// alphabetical order.
    pub fn derived_order(&self) -> Vec<String> {
        let ids = self.lock_ids();
        let mut indegree: BTreeMap<&str, usize> = ids.iter().map(|i| (i.as_str(), 0)).collect();
        let mut succ: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for e in &self.edges {
            if succ.entry(&e.from).or_default().insert(&e.to) {
                *indegree.entry(&e.to).or_default() += 1;
            }
        }
        let mut order = Vec::new();
        let mut ready: BTreeSet<&str> = indegree
            .iter()
            .filter(|(_, d)| **d == 0)
            .map(|(i, _)| *i)
            .collect();
        while let Some(&next) = ready.iter().next() {
            ready.remove(next);
            order.push(next.to_string());
            for s in succ.get(next).cloned().unwrap_or_default() {
                let d = indegree.get_mut(s).expect("successor is a known lock");
                *d -= 1;
                if *d == 0 {
                    ready.insert(s);
                }
            }
        }
        for id in ids.iter() {
            if !order.iter().any(|o| o == id) {
                order.push(id.clone());
            }
        }
        order
    }

    /// Human-readable report for the CLIs.
    pub fn report(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "lock audit: {} locks, {} edges, {} findings\n",
            self.decls.len(),
            self.edges.len(),
            self.findings.len()
        ));
        out.push_str("\nlocks:\n");
        for d in &self.decls {
            out.push_str(&format!(
                "  {:<28} rank={:<12} {} ({}:{})\n",
                d.id,
                d.rank.as_deref().unwrap_or("-"),
                if d.kind == LockKind::Mutex {
                    "mutex"
                } else {
                    "rwlock"
                },
                d.file,
                d.line
            ));
        }
        out.push_str("\nedges (held -> acquired):\n");
        for e in &self.edges {
            let via = if e.via.is_empty() {
                String::new()
            } else {
                format!(" via {}", e.via.join(" -> "))
            };
            out.push_str(&format!(
                "  {} -> {}  [{} at {}:{}{}]\n",
                e.from, e.to, e.func, e.file, e.line, via
            ));
        }
        if !self.findings.is_empty() {
            out.push_str("\nfindings:\n");
            for f in &self.findings {
                out.push_str(&format!("  {}\n", self.render_finding(f)));
            }
        }
        out
    }

    fn render_finding(&self, f: &LockFinding) -> String {
        if f.line > 0 {
            format!(
                "{}[{}] {}:{}: {}",
                f.diagnostic.severity, f.diagnostic.code, f.file, f.line, f.diagnostic.message
            )
        } else {
            format!(
                "{}[{}] {}",
                f.diagnostic.severity, f.diagnostic.code, f.diagnostic.message
            )
        }
    }

    /// Graphviz rendering of the lock graph for the `lock-audit` CLI.
    pub fn dot(&self) -> String {
        let mut out = String::from("digraph locks {\n  rankdir=LR;\n");
        for d in &self.decls {
            out.push_str(&format!(
                "  \"{}\" [label=\"{}\\n{}\"];\n",
                d.id,
                d.id,
                d.rank.as_deref().unwrap_or("unranked")
            ));
        }
        let mut seen = BTreeSet::new();
        for e in &self.edges {
            if seen.insert((e.from.clone(), e.to.clone())) {
                out.push_str(&format!("  \"{}\" -> \"{}\";\n", e.from, e.to));
            }
        }
        out.push_str("}\n");
        out
    }
}

// ---------------------------------------------------------------------------
// Parsing model
// ---------------------------------------------------------------------------

/// One logical source line: physical lines merged while parentheses
/// stay unbalanced or the next line continues a method chain.
struct LogicalLine {
    /// 1-based first physical line.
    line: usize,
    /// Raw text (strings and comments intact — escape checks need them).
    raw: String,
    /// Literal-stripped, comment-truncated text (needle checks).
    code: String,
}

fn paren_balance(code: &str) -> i64 {
    let mut b = 0i64;
    for c in code.chars() {
        match c {
            '(' | '[' => b += 1,
            ')' | ']' => b -= 1,
            _ => {}
        }
    }
    b
}

fn logical_lines(source: &str) -> Vec<LogicalLine> {
    let physical: Vec<&str> = source.lines().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < physical.len() {
        let start = i;
        let mut raw = physical[i].to_string();
        let mut code = lint::code_portion(physical[i]);
        let mut merged = 0;
        while merged < 80 && i + 1 < physical.len() {
            let next_trim = physical[i + 1].trim_start();
            let cont = paren_balance(&code) > 0
                || next_trim.starts_with('.')
                || next_trim.starts_with('?');
            if !cont {
                break;
            }
            i += 1;
            merged += 1;
            raw.push(' ');
            raw.push_str(physical[i]);
            code.push(' ');
            code.push_str(&lint::code_portion(physical[i]));
        }
        out.push(LogicalLine {
            line: start + 1,
            raw,
            code,
        });
        i += 1;
    }
    out
}

fn crate_of(rel: &str) -> Option<String> {
    let rest = rel.strip_prefix("crates/")?;
    let krate = rest.split('/').next()?;
    // Integration tests and benches model *client* locking, not the
    // library's; the audit covers library and bin sources.
    if rest.contains("/tests/") || rest.contains("/benches/") {
        return None;
    }
    Some(krate.to_string())
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Last `.`-separated receiver component before byte offset `at` in
/// `code`, e.g. `self.shared.warehouse` at `.read()` → `warehouse`,
/// `self.shard(fp)` at `.lock()` → `shard()`.
fn receiver_component(code: &str, at: usize) -> Option<String> {
    let bytes = code.as_bytes();
    let end = at;
    // Skip a trailing call/index suffix so `shard(fp)` keeps its name.
    if end > 0 && (bytes[end - 1] == b')' || bytes[end - 1] == b']') {
        let close = bytes[end - 1];
        let open = if close == b')' { b'(' } else { b'[' };
        let mut depth = 0i64;
        let mut j = end;
        while j > 0 {
            j -= 1;
            if bytes[j] == close {
                depth += 1;
            } else if bytes[j] == open {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
        }
        let mut k = j;
        while k > 0 && is_ident_char(bytes[k - 1] as char) {
            k -= 1;
        }
        if k == j {
            return None; // e.g. `).lock()` on a parenthesised expr
        }
        return Some(format!("{}()", &code[k..j]));
    }
    let mut startpos = end;
    while startpos > 0 && is_ident_char(bytes[startpos - 1] as char) {
        startpos -= 1;
    }
    if startpos == end {
        return None;
    }
    Some(code[startpos..end].to_string())
}

/// Find each occurrence of `needle` in `code` that is preceded by a
/// receiver expression (so `.lock()` matches, `lock()` alone does not
/// unless free-standing is allowed by the caller).
fn find_needle(code: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = code[from..].find(needle) {
        out.push(from + pos);
        from += pos + needle.len();
    }
    out
}

// ---------------------------------------------------------------------------
// Pass 1: declarations, types, functions
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct FnInfo {
    krate: String,
    /// `impl` target type, or empty for a free function.
    type_name: String,
    name: String,
    file: String,
    /// Logical body lines (line number, raw, code).
    body: Vec<(usize, String, String)>,
    /// Declared to return `&RankedMutex<…>` / `&RankedRwLock<…>`.
    returns_lock_ref: bool,
}

#[derive(Debug, Default)]
struct CrateTable {
    /// field name → candidate owner types (across all structs).
    field_types: BTreeMap<String, BTreeSet<String>>,
    /// (type, method) → indices into `fns`.
    methods: BTreeMap<(String, String), Vec<usize>>,
    /// free/any fn name → indices into `fns`.
    by_name: BTreeMap<String, Vec<usize>>,
    /// trait name → implementing types.
    trait_impls: BTreeMap<String, BTreeSet<String>>,
    /// lock field name → lock id (within this crate).
    lock_fields: BTreeMap<String, String>,
    /// accessor fn name → lock id.
    accessors: BTreeMap<String, String>,
}

#[derive(Debug, Default)]
struct World {
    fns: Vec<FnInfo>,
    crates: BTreeMap<String, CrateTable>,
    decls: Vec<LockDecl>,
}

/// Strip `Arc<`, `Box<`, `&`, `dyn `, `Option<` wrappers off a type
/// string and return the first path ident of what remains.
fn base_type(ty: &str) -> String {
    let mut t = ty.trim();
    loop {
        let before = t;
        for w in ["Arc<", "Box<", "Rc<", "Option<", "Vec<"] {
            if let Some(rest) = t.strip_prefix(w) {
                t = rest.trim_end_matches('>').trim();
            }
        }
        t = t.trim_start_matches('&').trim_start_matches("dyn ").trim();
        if t == before {
            break;
        }
    }
    t.split(|c: char| !is_ident_char(c))
        .find(|s| !s.is_empty())
        .unwrap_or("")
        .to_string()
}

fn lock_kind_of(ty: &str) -> Option<(LockKind, bool)> {
    // Order matters: Ranked* contains the bare names as substrings.
    if ty.contains("RankedMutex<") {
        Some((LockKind::Mutex, true))
    } else if ty.contains("RankedRwLock<") {
        Some((LockKind::RwLock, true))
    } else if ty.contains("Mutex<") {
        Some((LockKind::Mutex, false))
    } else if ty.contains("RwLock<") {
        Some((LockKind::RwLock, false))
    } else {
        None
    }
}

/// Extract every `(rank, name, field_prefix)` fact from
/// `Ranked{Mutex,RwLock}::new(LockRank::X, "crate.name", …)` calls on a
/// raw merged line (a merged struct literal can hold several).
/// `field_prefix` is the `ident:` immediately before the constructor,
/// when present.
fn constructor_facts(raw: &str) -> Vec<(String, String, Option<String>)> {
    let mut positions: Vec<usize> = Vec::new();
    for needle in ["RankedMutex::new(", "RankedRwLock::new("] {
        positions.extend(find_needle(raw, needle));
    }
    positions.sort_unstable();
    let mut out = Vec::new();
    for pos in positions {
        let after = &raw[pos..];
        let Some(rank_at) = after.find("LockRank::") else {
            continue;
        };
        let rank: String = after[rank_at + "LockRank::".len()..]
            .chars()
            .take_while(|c| is_ident_char(*c))
            .collect();
        let Some(q1) = after.find('"') else { continue };
        let rest = &after[q1 + 1..];
        let Some(q2) = rest.find('"') else { continue };
        let name = rest[..q2].to_string();
        // `ident:` or `ident =` prefix before the constructor?
        let before = raw[..pos].trim_end();
        let before = before
            .trim_end_matches("Arc::new(")
            .trim_end_matches(|c: char| c.is_whitespace());
        let field = before
            .strip_suffix(':')
            .or_else(|| before.strip_suffix('='))
            .map(|b| {
                b.trim_end()
                    .rsplit(|c: char| !is_ident_char(c))
                    .next()
                    .unwrap_or("")
                    .to_string()
            })
            .filter(|f| !f.is_empty() && f != "mut");
        if !rank.is_empty() && !name.is_empty() {
            out.push((rank, name, field));
        }
    }
    out
}

fn pass1(files: &[(String, String)]) -> World {
    let mut world = World::default();
    // (crate, field, kind, ranked, file, line, annot_rank)
    type RawField = (
        String,
        String,
        LockKind,
        bool,
        String,
        usize,
        Option<String>,
    );
    let mut raw_fields: Vec<RawField> = Vec::new();
    // crate → field/name-segment → (rank, canonical name)
    let mut ctor_by_field: BTreeMap<String, BTreeMap<String, (String, String)>> = BTreeMap::new();

    for (rel, source) in files {
        let Some(krate) = crate_of(rel) else { continue };
        let mask = test_mask(source);
        let lines = logical_lines(source);
        let table = world.crates.entry(krate.clone()).or_default();

        let mut impl_type = String::new();
        let mut impl_depth = 0i64;
        let mut depth = 0i64;
        let mut pending_fn: Option<(String, bool)> = None;
        let mut open_fn: Option<(usize, i64)> = None; // (fns index, body depth)

        for ll in &lines {
            if mask.get(ll.line - 1).copied().unwrap_or(false) {
                // Still track braces so depths stay consistent.
                for c in ll.code.chars() {
                    match c {
                        '{' => depth += 1,
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                continue;
            }
            let trimmed = ll.code.trim();

            // impl blocks: `impl Foo {`, `impl Trait for Foo {`.
            if impl_type.is_empty() && trimmed.starts_with("impl") {
                let head = trimmed.trim_start_matches("impl").trim();
                let head = head.split('{').next().unwrap_or("").trim();
                // Drop generic params on `impl<T>`.
                let head = head.trim_start_matches(['<', '>']);
                if let Some((tr, ty)) = head.split_once(" for ") {
                    impl_type = base_type(ty);
                    let tr = base_type(tr);
                    if !tr.is_empty() && !impl_type.is_empty() {
                        table
                            .trait_impls
                            .entry(tr)
                            .or_default()
                            .insert(impl_type.clone());
                    }
                } else {
                    impl_type = base_type(head);
                }
                impl_depth = depth + 1;
            }

            // Field declarations (and type facts) inside structs.
            let decl = trimmed.strip_prefix("pub ").unwrap_or(trimmed);
            if depth >= 1 && !decl.contains("::new(") && !decl.starts_with("fn ") {
                if let Some((name, ty)) = decl.split_once(':') {
                    let name = name.trim();
                    let ty = ty.trim().trim_end_matches(',');
                    if !name.is_empty()
                        && name.chars().all(is_ident_char)
                        && !ty.is_empty()
                        && !ty.contains("=>")
                    {
                        let bt = base_type(ty);
                        if !bt.is_empty() && bt.chars().next().is_some_and(|c| c.is_uppercase()) {
                            table
                                .field_types
                                .entry(name.to_string())
                                .or_default()
                                .insert(bt);
                        }
                        if let Some((kind, ranked)) = lock_kind_of(ty) {
                            let annot = ll.raw.find("lock:rank(").map(|p| {
                                ll.raw[p + "lock:rank(".len()..]
                                    .chars()
                                    .take_while(|c| is_ident_char(*c))
                                    .collect::<String>()
                            });
                            raw_fields.push((
                                krate.clone(),
                                name.to_string(),
                                kind,
                                ranked,
                                rel.clone(),
                                ll.line,
                                annot,
                            ));
                        }
                    }
                }
            }

            // Rank constructors.
            for (rank, name, field) in constructor_facts(&ll.raw) {
                let key =
                    field.unwrap_or_else(|| name.rsplit('.').next().unwrap_or(&name).to_string());
                ctor_by_field
                    .entry(krate.clone())
                    .or_default()
                    .insert(key, (rank.clone(), name.clone()));
                // The name's last segment is also a key, so both
                // `inner: RankedMutex::new(…, "serve.breaker", …)` and
                // plain-name matches resolve.
                let seg = name.rsplit('.').next().unwrap_or(&name).to_string();
                ctor_by_field
                    .entry(krate.clone())
                    .or_default()
                    .entry(seg)
                    .or_insert((rank, name));
            }

            // Function signatures.
            if let Some(fnpos) = find_fn_name(trimmed) {
                let returns_lock_ref =
                    trimmed.contains("-> &RankedMutex<") || trimmed.contains("-> &RankedRwLock<");
                pending_fn = Some((fnpos, returns_lock_ref));
                if trimmed.contains(';') && !trimmed.contains('{') {
                    pending_fn = None; // trait method declaration
                }
            }

            // Brace walk: open fns, close fns and impl blocks.
            for c in ll.code.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        if let Some((name, ret)) = pending_fn.take() {
                            if open_fn.is_none() {
                                world.fns.push(FnInfo {
                                    krate: krate.clone(),
                                    type_name: impl_type.clone(),
                                    name,
                                    file: rel.clone(),
                                    body: Vec::new(),
                                    returns_lock_ref: ret,
                                });
                                open_fn = Some((world.fns.len() - 1, depth));
                            }
                        }
                    }
                    '}' => {
                        if let Some((_, d)) = open_fn {
                            if depth == d {
                                open_fn = None;
                            }
                        }
                        if !impl_type.is_empty() && depth == impl_depth {
                            impl_type.clear();
                        }
                        depth -= 1;
                    }
                    _ => {}
                }
            }
            if let Some((idx, _)) = open_fn {
                // The signature line itself is excluded from the body.
                if world.fns[idx].body.is_empty() && find_fn_name(trimmed).is_some() {
                    // still include: acquisitions can share the brace line
                }
                world.fns[idx]
                    .body
                    .push((ll.line, ll.raw.clone(), ll.code.clone()));
            }
        }
    }

    // Fold fields + constructors into LockDecls.
    for (krate, field, kind, ranked, file, line, annot) in raw_fields {
        let ctor = ctor_by_field
            .get(&krate)
            .and_then(|m| m.get(&field))
            .cloned();
        let (rank, id) = match (annot, ctor) {
            (Some(a), Some((_, name))) => (Some(a), name),
            (Some(a), None) => (Some(a), format!("{krate}.{field}")),
            (None, Some((r, name))) => (Some(r), name),
            (None, None) => (None, format!("{krate}.{field}")),
        };
        let table = world.crates.entry(krate.clone()).or_default();
        table.lock_fields.insert(field.clone(), id.clone());
        world.decls.push(LockDecl {
            id,
            rank,
            file,
            line,
            kind,
            ranked_wrapper: ranked,
            field,
            krate,
        });
    }
    // Dedup decls by (crate, id): generics make some fields repeat.
    let mut seen = BTreeSet::new();
    world
        .decls
        .retain(|d| seen.insert((d.krate.clone(), d.id.clone(), d.file.clone())));

    // Index functions.
    for (i, f) in world.fns.iter().enumerate() {
        let table = world.crates.entry(f.krate.clone()).or_default();
        table.by_name.entry(f.name.clone()).or_default().push(i);
        if !f.type_name.is_empty() {
            table
                .methods
                .entry((f.type_name.clone(), f.name.clone()))
                .or_default()
                .push(i);
        }
    }

    // Resolve accessor fns (return `&RankedMutex<…>`) to the lock
    // field their body mentions.
    let mut accessors: Vec<(String, String, String)> = Vec::new();
    for f in &world.fns {
        if !f.returns_lock_ref {
            continue;
        }
        if let Some(table) = world.crates.get(&f.krate) {
            for (_, _, code) in &f.body {
                for (field, id) in &table.lock_fields {
                    if code.contains(&format!("self.{field}")) {
                        accessors.push((f.krate.clone(), f.name.clone(), id.clone()));
                    }
                }
            }
        }
    }
    for (krate, name, id) in accessors {
        world
            .crates
            .entry(krate)
            .or_default()
            .accessors
            .insert(name, id);
    }
    world
}

/// `fn name` on a signature line → the name, skipping `fn` keywords in
/// strings (already stripped) and closures.
fn find_fn_name(code: &str) -> Option<String> {
    let pos = code.find("fn ")?;
    if pos > 0 {
        let prev = code.as_bytes()[pos - 1] as char;
        if is_ident_char(prev) {
            return None;
        }
    }
    let rest = &code[pos + 3..];
    let name: String = rest.chars().take_while(|c| is_ident_char(*c)).collect();
    if name.is_empty() {
        return None;
    }
    rest[name.len()..]
        .trim_start()
        .starts_with(['(', '<'])
        .then_some(name)
}

// ---------------------------------------------------------------------------
// Pass 2: per-function events
// ---------------------------------------------------------------------------

const ACQUIRE_NEEDLES: [(&str, bool); 4] = [
    (".try_lock()", false),
    (".lock()", false),
    (".write()", true),
    (".read()", true),
];

const BLOCKING_NEEDLES: [&str; 16] = [
    ".recv()",
    ".recv_timeout(",
    ".join()",
    "thread::sleep",
    ".wait(",
    ".wait_timeout(",
    "fault::point(",
    "File::open(",
    "File::create(",
    "OpenOptions::new(",
    ".write_all(",
    ".read_to_end(",
    ".read_exact(",
    ".flush(",
    ".sync_all(",
    "fs::remove_file(",
];

/// Methods so common on std containers that resolving them by bare
/// name would wire the call graph to the wrong crate fn.
const METHOD_DENYLIST: [&str; 18] = [
    "insert",
    "get",
    "get_mut",
    "push",
    "pop",
    "len",
    "is_empty",
    "clear",
    "iter",
    "clone",
    "next",
    "entry",
    "keys",
    "values",
    "retain",
    "extend",
    "drain",
    "contains_key",
];

#[derive(Debug, Clone)]
enum Event {
    /// (lock id, line, held-beyond-statement, let-bound guard var)
    Acquire(String, usize, bool, Option<String>),
    /// (fn indices, line)
    Call(Vec<usize>, usize),
    /// (needle, line, escaped)
    Blocking(&'static str, usize, bool),
    /// (line, escaped)
    CatchUnwind(usize, bool),
    /// `drop(var)` / end-of-scope for the named guard var.
    Release(String),
    /// Brace depth after this point fell to `depth`.
    Depth(i64),
}

struct FnEvents {
    events: Vec<Event>,
    /// Locks this fn acquires directly (for the fixpoint).
    direct: BTreeSet<String>,
    /// Callee fn indices.
    callees: BTreeSet<usize>,
}

fn analyze_fn(f: &FnInfo, world: &World, escapes: &mut Vec<Escape>) -> FnEvents {
    let table = world.crates.get(&f.krate).expect("crate table exists");
    let mut events = Vec::new();
    let mut direct = BTreeSet::new();
    let mut callees = BTreeSet::new();
    let mut depth = 0i64;
    // for-loop / iterator bindings of lock collections: var → lock id.
    let mut loop_binds: BTreeMap<String, String> = BTreeMap::new();

    for (line, raw, code) in &f.body {
        let trimmed = code.trim();

        // `for shard in &self.shards` style bindings.
        if let Some(rest) = trimmed.strip_prefix("for ") {
            if let Some((var, src)) = rest.split_once(" in ") {
                let var = var.trim();
                if var.chars().all(is_ident_char) {
                    for (field, id) in &table.lock_fields {
                        if src.contains(field.as_str()) {
                            loop_binds.insert(var.to_string(), id.clone());
                        }
                    }
                }
            }
        }

        // drop(var) closes a guard.
        for pos in find_needle(code, "drop(") {
            let arg: String = code[pos + 5..]
                .chars()
                .take_while(|c| is_ident_char(*c))
                .collect();
            if !arg.is_empty() {
                events.push(Event::Release(arg));
            }
        }

        // Acquisitions.
        let mut best: Vec<(usize, String, bool)> = Vec::new(); // (pos, lock, held)
        for (needle, _is_rw) in ACQUIRE_NEEDLES {
            for pos in find_needle(code, needle) {
                // `.lock()` also matches inside `.try_lock()`: skip
                // positions already claimed by a longer needle.
                if best
                    .iter()
                    .any(|(p, _, _)| pos >= *p && pos < p + ".try_lock()".len())
                {
                    continue;
                }
                let Some(recv) = receiver_component(code, pos) else {
                    continue;
                };
                let lock = if let Some(acc) = recv.strip_suffix("()") {
                    table.accessors.get(acc).cloned()
                } else if let Some(id) = table.lock_fields.get(&recv) {
                    Some(id.clone())
                } else if let Some(id) = loop_binds.get(&recv) {
                    Some(id.clone())
                } else if recv != "self" {
                    // closure param over a lock collection named
                    // earlier on the same merged line.
                    table
                        .lock_fields
                        .iter()
                        .find(|(field, _)| code[..pos].contains(field.as_str()))
                        .map(|(_, id)| id.clone())
                } else {
                    None
                };
                let Some(lock) = lock else { continue };
                let held = held_beyond_statement(code, pos + needle.len(), trimmed);
                best.push((pos, lock, held));
            }
        }
        best.sort_by_key(|(p, _, _)| *p);
        let bound_var = let_bound_var(trimmed);
        for (_, lock, held) in &best {
            direct.insert(lock.clone());
            events.push(Event::Acquire(
                lock.clone(),
                *line,
                *held,
                held.then(|| bound_var.clone()).flatten(),
            ));
        }

        // Calls (same-crate resolution).
        for idx in resolve_calls(code, &f.type_name, table, world) {
            callees.insert(idx);
            events.push(Event::Call(vec![idx], *line));
        }

        // Blocking operations and catch_unwind.
        for needle in BLOCKING_NEEDLES {
            if !code.contains(needle) {
                continue;
            }
            let escaped = escape_for(raw, "A301");
            if let Some(reason) = &escaped {
                escapes.push(Escape {
                    file: f.file.clone(),
                    line: *line,
                    rule: "A301",
                    reason: reason.clone(),
                });
            }
            events.push(Event::Blocking(needle, *line, escaped.is_some()));
            break;
        }
        if code.contains("catch_unwind") {
            let escaped = escape_for(raw, "A302");
            if let Some(reason) = &escaped {
                escapes.push(Escape {
                    file: f.file.clone(),
                    line: *line,
                    rule: "A302",
                    reason: reason.clone(),
                });
            }
            events.push(Event::CatchUnwind(*line, escaped.is_some()));
        }

        // Brace depth.
        for c in code.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
        events.push(Event::Depth(depth));
    }
    FnEvents {
        events,
        direct,
        callees,
    }
}

/// The variable a `let` / `if let Some(x)` statement binds, when the
/// pattern is a simple identifier.
fn let_bound_var(trimmed: &str) -> Option<String> {
    let rest = trimmed
        .strip_prefix("if let ")
        .or_else(|| trimmed.strip_prefix("let "))?;
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let var: String = rest.chars().take_while(|c| is_ident_char(*c)).collect();
    (!var.is_empty() && rest[var.len()..].trim_start().starts_with('=')).then_some(var)
}

/// After an acquisition at `end`, does the guard outlive the
/// statement? Poison adapters are part of the acquisition; any other
/// chained call consumes the guard within the statement.
fn held_beyond_statement(code: &str, mut end: usize, trimmed: &str) -> bool {
    let bytes = code.as_bytes();
    loop {
        while end < bytes.len() && (bytes[end] as char).is_whitespace() {
            end += 1;
        }
        let rest = &code[end..];
        if rest.starts_with(".unwrap_or_else(")
            || rest.starts_with(".expect(")
            || rest.starts_with(".unwrap()")
        {
            // Skip the adapter's balanced parens.
            let open = rest.find('(').map(|p| end + p).unwrap_or(end);
            let mut depth = 0i64;
            let mut j = open;
            while j < bytes.len() {
                match bytes[j] as char {
                    '(' => depth += 1,
                    ')' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            end = (j + 1).min(bytes.len());
            continue;
        }
        break;
    }
    let rest = code[end..].trim_start();
    let terminal = rest.is_empty() || rest.starts_with(';') || rest.starts_with(')');
    terminal && (trimmed.starts_with("let ") || trimmed.starts_with("if let "))
}

fn resolve_calls(code: &str, self_type: &str, table: &CrateTable, world: &World) -> Vec<usize> {
    let mut out = Vec::new();
    let bytes = code.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'(' && i > 0 {
            let mut s = i;
            while s > 0 && is_ident_char(bytes[s - 1] as char) {
                s -= 1;
            }
            if s < i {
                let name = &code[s..i];
                let before = if s > 0 { bytes[s - 1] as char } else { ' ' };
                if before == '!' || name == "fn" {
                    i += 1;
                    continue;
                }
                // Don't treat `fn name(` definitions as calls.
                let prefix = code[..s].trim_end();
                if prefix.ends_with("fn") {
                    i += 1;
                    continue;
                }
                let resolved: Vec<usize> = if before == '.' {
                    let recv = receiver_component(code, s - 1);
                    match recv.as_deref() {
                        Some("self") => lookup_method(table, self_type, name)
                            .or_else(|| table.by_name.get(name).cloned())
                            .unwrap_or_default(),
                        Some(r) => {
                            if METHOD_DENYLIST.contains(&name) {
                                Vec::new()
                            } else if let Some(r) = r.strip_suffix("()") {
                                // Chained accessor: type comes from the
                                // accessor's lock — skip, handled as an
                                // acquisition.
                                let _ = r;
                                Vec::new()
                            } else {
                                resolve_field_method(table, world, r, name)
                            }
                        }
                        None => Vec::new(),
                    }
                } else if before == ':' {
                    // `Type::name(` — the segment before `::`.
                    let head = code[..s.saturating_sub(2)]
                        .rsplit(|c: char| !is_ident_char(c))
                        .next()
                        .unwrap_or("");
                    table
                        .methods
                        .get(&(head.to_string(), name.to_string()))
                        .cloned()
                        .unwrap_or_default()
                } else if !is_ident_char(before) {
                    table
                        .by_name
                        .get(name)
                        .cloned()
                        .unwrap_or_default()
                        .into_iter()
                        // Bare-name calls resolve to free fns only;
                        // methods need a receiver.
                        .filter(|&idx| world.fns[idx].type_name.is_empty())
                        .collect()
                } else {
                    Vec::new()
                };
                out.extend(resolved);
            }
        }
        i += 1;
    }
    out.sort_unstable();
    out.dedup();
    out
}

fn lookup_method(table: &CrateTable, ty: &str, name: &str) -> Option<Vec<usize>> {
    if ty.is_empty() {
        return None;
    }
    table
        .methods
        .get(&(ty.to_string(), name.to_string()))
        .cloned()
}

/// `recv.name(…)` where `recv` is a struct field: resolve via the
/// field's candidate types (unioning trait impls for `dyn` fields).
fn resolve_field_method(table: &CrateTable, world: &World, recv: &str, name: &str) -> Vec<usize> {
    let Some(types) = table.field_types.get(recv) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for ty in types {
        if let Some(m) = table.methods.get(&(ty.clone(), name.to_string())) {
            out.extend(m.iter().copied());
        }
        // `dyn Trait` fields: union over implementing types.
        if let Some(impls) = table.trait_impls.get(ty) {
            for it in impls {
                if let Some(m) = table.methods.get(&(it.clone(), name.to_string())) {
                    out.extend(m.iter().copied());
                }
            }
        }
    }
    let _ = world;
    out
}

// ---------------------------------------------------------------------------
// Graph construction and checks
// ---------------------------------------------------------------------------

/// Run the audit over in-memory `(workspace-relative path, source)`
/// pairs. This is the seam the fixture tests drive.
pub fn audit_sources(files: &[(String, String)]) -> LockAudit {
    let world = pass1(files);
    let mut audit = LockAudit {
        decls: world.decls.clone(),
        ..Default::default()
    };

    // A303: unranked locks in ranked crates.
    for d in &world.decls {
        if RANKED_CRATES.contains(&d.krate.as_str()) && d.rank.is_none() {
            audit.findings.push(LockFinding {
                file: d.file.clone(),
                line: d.line,
                diagnostic: Diagnostic::error(
                    Code::A303UnrankedLock,
                    format!(
                        "lock `{}` in ranked crate `{}` has no rank: use RankedMutex/RankedRwLock \
                         or annotate with `// lock:rank(Name)`",
                        d.id, d.krate
                    ),
                ),
            });
        }
    }

    // Per-function events.
    let fn_events: Vec<FnEvents> = world
        .fns
        .iter()
        .map(|f| analyze_fn(f, &world, &mut audit.escapes))
        .collect();

    // Fixpoint: transitive lock sets with a sample call path per lock.
    let mut trans: Vec<BTreeMap<String, Vec<String>>> = fn_events
        .iter()
        .map(|e| e.direct.iter().map(|l| (l.clone(), Vec::new())).collect())
        .collect();
    loop {
        let mut changed = false;
        for i in 0..world.fns.len() {
            let callees: Vec<usize> = fn_events[i].callees.iter().copied().collect();
            for c in callees {
                if c == i {
                    continue;
                }
                let add: Vec<(String, Vec<String>)> = trans[c]
                    .iter()
                    .map(|(l, path)| {
                        let mut p = vec![world.fns[c].name.clone()];
                        p.extend(path.iter().cloned());
                        (l.clone(), p)
                    })
                    .collect();
                for (l, p) in add {
                    if let std::collections::btree_map::Entry::Vacant(e) = trans[i].entry(l) {
                        e.insert(p);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Walk events: edges, A301, A302.
    let mut edge_seen: BTreeSet<(String, String)> = BTreeSet::new();
    for (i, f) in world.fns.iter().enumerate() {
        // (lock, depth at open, synthetic release var)
        let mut held: Vec<(String, i64)> = Vec::new();
        let mut var_of: BTreeMap<String, String> = BTreeMap::new();
        let mut depth = 0i64;
        let mut last_line = 0usize;
        for ev in &fn_events[i].events {
            match ev {
                Event::Depth(d) => {
                    depth = *d;
                    held.retain(|(_, open)| depth >= *open);
                }
                Event::Release(var) => {
                    if let Some(lock) = var_of.get(var).cloned() {
                        if let Some(pos) = held.iter().rposition(|(l, _)| *l == lock) {
                            held.remove(pos);
                        }
                    }
                }
                Event::Acquire(lock, line, held_beyond, var) => {
                    last_line = *line;
                    for (h, _) in &held {
                        if edge_seen.insert((h.clone(), lock.clone())) {
                            audit.edges.push(LockEdge {
                                from: h.clone(),
                                to: lock.clone(),
                                file: f.file.clone(),
                                line: *line,
                                func: f.name.clone(),
                                via: Vec::new(),
                            });
                        }
                    }
                    if *held_beyond {
                        held.push((lock.clone(), depth));
                        if let Some(v) = var {
                            var_of.insert(v.clone(), lock.clone());
                        }
                    }
                }
                Event::Call(idxs, line) => {
                    last_line = *line;
                    if held.is_empty() {
                        continue;
                    }
                    for idx in idxs {
                        for (lock, path) in &trans[*idx] {
                            for (h, _) in &held {
                                if h == lock {
                                    continue; // re-entrant self edge: dynamic half's job
                                }
                                if edge_seen.insert((h.clone(), lock.clone())) {
                                    let mut via = vec![world.fns[*idx].name.clone()];
                                    via.extend(path.iter().cloned());
                                    audit.edges.push(LockEdge {
                                        from: h.clone(),
                                        to: lock.clone(),
                                        file: f.file.clone(),
                                        line: *line,
                                        func: f.name.clone(),
                                        via,
                                    });
                                }
                            }
                        }
                    }
                }
                Event::Blocking(needle, line, escaped) => {
                    last_line = *line;
                    if !held.is_empty() && !escaped {
                        let (h, _) = &held[held.len() - 1];
                        audit.findings.push(LockFinding {
                            file: f.file.clone(),
                            line: *line,
                            diagnostic: Diagnostic::warning(
                                Code::A301LockAcrossBlocking,
                                format!(
                                    "lock `{}` held across blocking `{}` in `{}`",
                                    h,
                                    needle.trim_matches(['.', '(']),
                                    f.name
                                ),
                            ),
                        });
                    }
                }
                Event::CatchUnwind(line, escaped) => {
                    last_line = *line;
                    if !held.is_empty() && !escaped {
                        let (h, _) = &held[held.len() - 1];
                        audit.findings.push(LockFinding {
                            file: f.file.clone(),
                            line: *line,
                            diagnostic: Diagnostic::warning(
                                Code::A302LockAcrossCatchUnwind,
                                format!("lock `{}` held across catch_unwind in `{}`", h, f.name),
                            ),
                        });
                    }
                }
            }
        }
        let _ = last_line;
    }

    // A304: edges contradicting the runtime rank table.
    let rank_of: BTreeMap<&str, LockRank> = audit
        .decls
        .iter()
        .filter_map(|d| {
            d.rank
                .as_deref()
                .and_then(LockRank::parse)
                .map(|r| (d.id.as_str(), r))
        })
        .collect();
    let mut contradiction: Vec<LockFinding> = Vec::new();
    for e in &audit.edges {
        if let (Some(a), Some(b)) = (rank_of.get(e.from.as_str()), rank_of.get(e.to.as_str())) {
            if a >= b {
                contradiction.push(LockFinding {
                    file: e.file.clone(),
                    line: e.line,
                    diagnostic: Diagnostic::error(
                        Code::A304RankOrderContradiction,
                        format!(
                            "`{}` ({a}) acquired while holding `{}` ({b}) in `{}`{}: \
                             contradicts the LockRank order",
                            e.to,
                            e.from,
                            e.func,
                            render_via(&e.via),
                        ),
                    ),
                });
            }
        }
    }
    audit.findings.extend(contradiction);

    // A300: cycles, with full witness paths.
    audit.findings.extend(find_cycles(&audit.edges));

    audit.findings.sort_by_key(|f| {
        (
            f.diagnostic.severity == Severity::Warning,
            f.file.clone(),
            f.line,
        )
    });
    audit
}

fn render_via(via: &[String]) -> String {
    if via.is_empty() {
        String::new()
    } else {
        format!(" (via {})", via.join(" -> "))
    }
}

/// DFS cycle detection; each cycle is reported once, with every edge's
/// acquisition site as the witness.
fn find_cycles(edges: &[LockEdge]) -> Vec<LockFinding> {
    let mut adj: BTreeMap<&str, Vec<&LockEdge>> = BTreeMap::new();
    for e in edges {
        adj.entry(&e.from).or_default().push(e);
    }
    let mut findings = Vec::new();
    let mut reported: BTreeSet<BTreeSet<String>> = BTreeSet::new();
    let nodes: BTreeSet<&str> = edges
        .iter()
        .flat_map(|e| [e.from.as_str(), e.to.as_str()])
        .collect();
    for start in nodes {
        let mut stack: Vec<&LockEdge> = Vec::new();
        dfs_cycles(
            start,
            start,
            &adj,
            &mut stack,
            &mut BTreeSet::new(),
            &mut |cycle| {
                let key: BTreeSet<String> = cycle.iter().map(|e| e.from.clone()).collect();
                if !reported.insert(key) {
                    return;
                }
                let path = cycle
                    .iter()
                    .map(|e| {
                        format!(
                            "{} -> {} [{} at {}:{}{}]",
                            e.from,
                            e.to,
                            e.func,
                            e.file,
                            e.line,
                            render_via(&e.via)
                        )
                    })
                    .collect::<Vec<_>>()
                    .join("; ");
                findings.push(LockFinding {
                    file: cycle.first().map(|e| e.file.clone()).unwrap_or_default(),
                    line: 0,
                    diagnostic: Diagnostic::error(
                        Code::A300LockOrderCycle,
                        format!("lock-order cycle: {path}"),
                    ),
                });
            },
        );
    }
    findings
}

fn dfs_cycles<'a>(
    start: &str,
    node: &str,
    adj: &BTreeMap<&str, Vec<&'a LockEdge>>,
    stack: &mut Vec<&'a LockEdge>,
    visiting: &mut BTreeSet<String>,
    report: &mut impl FnMut(&[&'a LockEdge]),
) {
    if !visiting.insert(node.to_string()) {
        return;
    }
    if let Some(nexts) = adj.get(node) {
        for e in nexts {
            stack.push(e);
            if e.to == start {
                report(stack);
            } else {
                dfs_cycles(start, &e.to, adj, stack, visiting, report);
            }
            stack.pop();
        }
    }
}

/// Audit every source file under `root` (the workspace directory).
pub fn audit_workspace(root: &Path) -> io::Result<LockAudit> {
    let mut files = Vec::new();
    for (rel, path) in workspace_sources(root)? {
        files.push((rel, fs::read_to_string(&path)?));
    }
    Ok(audit_sources(&files))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(path: &str, src: &str) -> (String, String) {
        (path.to_string(), src.to_string())
    }

    // Fixture sources are assembled with concat so this file never
    // trips its own needles.
    fn lockline(field: &str, rank: &str, name: &str) -> String {
        format!(
            "            {field}: RankedMutex::new(LockRank::{rank}, \"{name}\", X::default()),"
        )
    }

    fn fixture_crate(body_a: &str, body_b: &str) -> String {
        format!(
            "pub struct S {{\n    a: RankedMutex<X>,\n    b: RankedMutex<X>,\n}}\n\
             impl S {{\n    fn new() -> S {{\n        S {{\n{}\n{}\n        }}\n    }}\n\
             \n    fn fwd(&self) {{\n{body_a}\n    }}\n\
             \n    fn back(&self) {{\n{body_b}\n    }}\n}}\n",
            lockline("a", "Admission", "serve.a"),
            lockline("b", "Breaker", "serve.b"),
        )
    }

    #[test]
    fn decls_and_ranks_are_extracted() {
        let src = fixture_crate("", "");
        let audit = audit_sources(&[file("crates/serve/src/x.rs", &src)]);
        assert_eq!(audit.decls.len(), 2, "{:?}", audit.decls);
        let a = audit
            .decls
            .iter()
            .find(|d| d.id == "serve.a")
            .expect("serve.a");
        assert_eq!(a.rank.as_deref(), Some("Admission"));
        assert!(a.ranked_wrapper);
        assert!(audit.errors().is_empty(), "{:?}", audit.findings);
    }

    #[test]
    fn ascending_nesting_produces_edge_and_no_findings() {
        let body = "        let g = self.a.lock();\n        let h = self.b.lock();";
        let src = fixture_crate(body, "");
        let audit = audit_sources(&[file("crates/serve/src/x.rs", &src)]);
        assert!(
            audit
                .edges
                .iter()
                .any(|e| e.from == "serve.a" && e.to == "serve.b"),
            "{:?}",
            audit.edges
        );
        assert!(audit.errors().is_empty(), "{:?}", audit.findings);
    }

    #[test]
    fn inverted_nesting_is_a304() {
        let body = "        let g = self.b.lock();\n        let h = self.a.lock();";
        let src = fixture_crate("", body);
        let audit = audit_sources(&[file("crates/serve/src/x.rs", &src)]);
        let codes: Vec<&str> = audit
            .findings
            .iter()
            .map(|f| f.diagnostic.code.as_str())
            .collect();
        assert!(codes.contains(&"A304"), "{codes:?}");
    }

    #[test]
    fn opposite_orders_in_two_fns_form_a300_cycle_with_witness() {
        let fwd = "        let g = self.a.lock();\n        let h = self.b.lock();";
        let back = "        let g = self.b.lock();\n        let h = self.a.lock();";
        let src = fixture_crate(fwd, back);
        let audit = audit_sources(&[file("crates/serve/src/x.rs", &src)]);
        let cycle = audit
            .findings
            .iter()
            .find(|f| f.diagnostic.code == Code::A300LockOrderCycle)
            .expect("cycle reported");
        let msg = &cycle.diagnostic.message;
        assert!(msg.contains("serve.a -> serve.b"), "{msg}");
        assert!(msg.contains("serve.b -> serve.a"), "{msg}");
        assert!(
            msg.contains("fwd at") || msg.contains("back at"),
            "witness sites: {msg}"
        );
    }

    #[test]
    fn interprocedural_edge_carries_call_chain() {
        let src = format!(
            "pub struct S {{\n    a: RankedMutex<X>,\n    b: RankedMutex<X>,\n}}\n\
             impl S {{\n    fn new() -> S {{\n        S {{\n{}\n{}\n        }}\n    }}\n\
             \n    fn outer(&self) {{\n        let g = self.a.lock();\n        self.inner_step();\n    }}\n\
             \n    fn inner_step(&self) {{\n        let h = self.b.lock();\n    }}\n}}\n",
            lockline("a", "Admission", "serve.a"),
            lockline("b", "Breaker", "serve.b"),
        );
        let audit = audit_sources(&[file("crates/serve/src/x.rs", &src)]);
        let edge = audit
            .edges
            .iter()
            .find(|e| e.from == "serve.a" && e.to == "serve.b")
            .expect("interprocedural edge");
        assert_eq!(edge.via, vec!["inner_step".to_string()]);
        assert_eq!(edge.func, "outer");
    }

    #[test]
    fn blocking_under_guard_is_a301_unless_escaped() {
        let recv = [".recv", "()"].concat();
        let body = format!("        let g = self.a.lock();\n        let x = rx{recv};");
        let src = fixture_crate(&body, "");
        let audit = audit_sources(&[file("crates/serve/src/x.rs", &src)]);
        let codes: Vec<&str> = audit
            .findings
            .iter()
            .map(|f| f.diagnostic.code.as_str())
            .collect();
        assert!(codes.contains(&"A301"), "{codes:?}");

        let escaped = format!(
            "        let g = self.a.lock();\n        let x = rx{recv}; // lint:allow(A301, \"drained at shutdown\")"
        );
        let src = fixture_crate(&escaped, "");
        let audit = audit_sources(&[file("crates/serve/src/x.rs", &src)]);
        assert!(
            !audit
                .findings
                .iter()
                .any(|f| f.diagnostic.code == Code::A301LockAcrossBlocking),
            "{:?}",
            audit.findings
        );
        assert_eq!(audit.escapes.len(), 1);
        assert_eq!(
            audit.escapes[0].reason.as_deref(),
            Some("drained at shutdown")
        );
    }

    #[test]
    fn catch_unwind_under_guard_is_a302() {
        let body =
            "        let g = self.a.lock();\n        let r = std::panic::catch_unwind(|| body());";
        let src = fixture_crate(body, "");
        let audit = audit_sources(&[file("crates/serve/src/x.rs", &src)]);
        assert!(
            audit
                .findings
                .iter()
                .any(|f| f.diagnostic.code == Code::A302LockAcrossCatchUnwind),
            "{:?}",
            audit.findings
        );
    }

    #[test]
    fn unranked_lock_in_ranked_crate_is_a303_unless_annotated() {
        let src = "pub struct S {\n    m: Mutex<u32>,\n}\n";
        let audit = audit_sources(&[file("crates/serve/src/x.rs", src)]);
        assert!(
            audit
                .findings
                .iter()
                .any(|f| f.diagnostic.code == Code::A303UnrankedLock),
            "{:?}",
            audit.findings
        );

        let annotated = "pub struct S {\n    m: Mutex<u32>, // lock:rank(FlightSlot)\n}\n";
        let audit = audit_sources(&[file("crates/serve/src/x.rs", annotated)]);
        assert!(audit.errors().is_empty(), "{:?}", audit.findings);
        assert_eq!(audit.decls[0].rank.as_deref(), Some("FlightSlot"));

        // Unranked crates are exempt.
        let audit = audit_sources(&[file("crates/kb/src/x.rs", src)]);
        assert!(audit.errors().is_empty(), "{:?}", audit.findings);
    }

    #[test]
    fn transient_chained_guard_does_not_stay_held() {
        let recv = [".recv", "()"].concat();
        let body = format!("        self.a.lock().poke();\n        let x = rx{recv};");
        let src = fixture_crate(&body, "");
        let audit = audit_sources(&[file("crates/serve/src/x.rs", &src)]);
        assert!(
            !audit
                .findings
                .iter()
                .any(|f| f.diagnostic.code == Code::A301LockAcrossBlocking),
            "statement-scoped guard released before the recv: {:?}",
            audit.findings
        );
    }

    #[test]
    fn drop_releases_the_guard() {
        let recv = [".recv", "()"].concat();
        let body =
            format!("        let a = self.a.lock();\n        drop(a);\n        let x = rx{recv};");
        let src = fixture_crate(&body, "");
        let audit = audit_sources(&[file("crates/serve/src/x.rs", &src)]);
        assert!(
            !audit
                .findings
                .iter()
                .any(|f| f.diagnostic.code == Code::A301LockAcrossBlocking),
            "{:?}",
            audit.findings
        );
    }

    #[test]
    fn derived_order_respects_edges() {
        let body = "        let g = self.a.lock();\n        let h = self.b.lock();";
        let src = fixture_crate(body, "");
        let audit = audit_sources(&[file("crates/serve/src/x.rs", &src)]);
        let order = audit.derived_order();
        let ia = order
            .iter()
            .position(|l| l == "serve.a")
            .expect("a in order");
        let ib = order
            .iter()
            .position(|l| l == "serve.b")
            .expect("b in order");
        assert!(ia < ib, "{order:?}");
    }
}
