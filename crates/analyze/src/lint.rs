//! Source-level lint rules the compiler cannot express.
//!
//! Five rules keep the serving hot path honest:
//!
//! * `no-panic` — no `unwrap()` / `expect()` / `panic!` in designated
//!   hot-path modules (`serve`, `etl`, `warehouse`, `segstore`,
//!   `oltp::{wal,txn,store}`, `olap::{cube,mdx::exec}`) outside
//!   `#[cfg(test)]`;
//! * `no-todo` — no `todo!` / `unimplemented!` / `dbg!` anywhere;
//! * `no-raw-timing` — no direct `Instant::now()` in the `serve` /
//!   `olap` hot paths outside `#[cfg(test)]`: timing must flow through
//!   the `obs` layer (`obs::monotonic_us()`, span guards,
//!   `ProfileBuilder` phases) so profiles and traces stay complete.
//!   Legitimate deadline arithmetic escapes with
//!   `lint:allow(no-raw-timing)`;
//! * `no-bare-spawn` — no bare `std::thread::spawn` in the `serve` /
//!   `olap` crates outside `#[cfg(test)]`: a bare spawn gives the
//!   thread a panic-swallowing default and no name, so a crashed
//!   worker vanishes silently. Long-lived threads must go through
//!   `thread::Builder` with a `catch_unwind` body (serve's
//!   self-healing pool) or a scoped spawn whose join propagates
//!   panics (olap's cube builders);
//! * `display-impl` — every public `…Error` enum must implement
//!   `Display` somewhere in its crate.
//!
//! A line may opt out with an inline
//! `lint:allow(<rule>, "reason")` comment; escapes are reported (with
//! their reasons) so gates can bound them (the wal/cube burn-down
//! demands zero). A bare `lint:allow(<rule>)` without a reason is
//! still honoured but surfaces as a warning in `repo-lint` — every
//! escape must explain itself.
//!
//! The scanner is deliberately line-based and heuristic. Test code is
//! exempt from the hot-path rules: `#[cfg(test)]` regions are tracked
//! by brace depth ([`test_mask`]), so a test module in the middle of a
//! file exempts only itself, not everything after it.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Rule identifiers (the names accepted by `lint:allow(...)`).
pub const RULE_NO_PANIC: &str = "no-panic";
/// See [`RULE_NO_PANIC`].
pub const RULE_NO_TODO: &str = "no-todo";
/// See [`RULE_NO_PANIC`].
pub const RULE_NO_RAW_TIMING: &str = "no-raw-timing";
/// See [`RULE_NO_PANIC`].
pub const RULE_NO_BARE_SPAWN: &str = "no-bare-spawn";
/// See [`RULE_NO_PANIC`].
pub const RULE_DISPLAY_IMPL: &str = "display-impl";

/// Workspace-relative path fragments whose files count as the serving
/// hot path for `no-panic`.
const HOT_PATHS: [&str; 11] = [
    "crates/serve/src/",
    "crates/etl/src/",
    "crates/warehouse/src/",
    "crates/segstore/src/",
    "crates/kb/src/",
    "crates/obs/src/",
    "crates/oltp/src/wal.rs",
    "crates/oltp/src/txn.rs",
    "crates/oltp/src/store.rs",
    "crates/olap/src/cube.rs",
    "crates/olap/src/mdx/exec.rs",
];

/// Workspace-relative path fragments where `no-raw-timing` applies:
/// query-serving code whose timings must be observable through `obs`.
/// `segstore` and `fault` are included because their timings feed the
/// flight recorder's incident timeline — an untraced clock there is
/// invisible in black-box dumps.
const TIMED_PATHS: [&str; 4] = [
    "crates/serve/src/",
    "crates/olap/src/",
    "crates/segstore/src/",
    "crates/fault/src/",
];

/// Workspace-relative path fragments where `no-bare-spawn` applies:
/// crates that run long-lived or pooled threads and must contain
/// worker panics instead of losing the thread silently.
const SPAWN_PATHS: [&str; 2] = ["crates/serve/src/", "crates/olap/src/"];

/// One rule violation at a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number (0 for whole-file findings).
    pub line: usize,
    /// Which rule fired (`no-panic`, `no-todo`, `display-impl`).
    pub rule: &'static str,
    /// The offending line (trimmed), or a description for whole-file
    /// findings.
    pub excerpt: String,
    /// How to fix it.
    pub hint: &'static str,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.excerpt
        )
    }
}

/// A `lint:allow` escape that suppressed a would-be violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Escape {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The rule the escape suppressed.
    pub rule: &'static str,
    /// The justification given in `lint:allow(rule, "reason")`.
    /// `None` marks a bare escape, which `repo-lint` warns about.
    pub reason: Option<String>,
}

/// Result of linting a set of files.
#[derive(Debug, Default, Clone)]
pub struct LintReport {
    /// Violations found (empty means the gate passes).
    pub violations: Vec<Violation>,
    /// `lint:allow` escapes that were honoured.
    pub escapes: Vec<Escape>,
    /// Number of `.rs` files scanned.
    pub files_checked: usize,
}

impl LintReport {
    /// Escapes recorded in files whose path contains `fragment`.
    pub fn escapes_in(&self, fragment: &str) -> usize {
        self.escapes
            .iter()
            .filter(|e| e.file.contains(fragment))
            .count()
    }
}

/// The forbidden call patterns, built at runtime so this file never
/// matches its own rules.
fn panic_needles() -> Vec<(String, &'static str)> {
    let call = |head: &str| [".", head, "("].concat();
    let mac = |head: &str| [head, "!("].concat();
    vec![
        (call("unwrap"), "return a typed error instead of unwrapping"),
        (call("expect"), "return a typed error instead of expecting"),
        (mac("panic"), "propagate a Result instead of panicking"),
    ]
}

fn timing_needles() -> Vec<(String, &'static str)> {
    vec![(
        ["Instant::", "now("].concat(),
        "route timing through obs (monotonic_us, span guards, ProfileBuilder)",
    )]
}

/// Matches the free-function form `thread::spawn(`; deliberately does
/// NOT match `thread::Builder::new()…​.spawn(` (a method call) or
/// `scope.spawn(` — both of those surface panics at join or spawn
/// time, which is exactly what the rule wants.
fn spawn_needles() -> Vec<(String, &'static str)> {
    vec![(
        ["thread::", "spawn("].concat(),
        "use thread::Builder with a catch_unwind body (or a scoped spawn) so panics are contained",
    )]
}

fn todo_needles() -> Vec<(String, &'static str)> {
    let mac = |head: &str| [head, "!("].concat();
    vec![
        (mac("todo"), "finish the implementation before merging"),
        (
            mac("unimplemented"),
            "finish the implementation before merging",
        ),
        (mac("dbg"), "remove debug output before merging"),
    ]
}

fn is_comment(trimmed: &str) -> bool {
    trimmed.starts_with("//")
}

/// All `lint:allow(...)` escapes on one line, as
/// `(rule, Some(reason))` for the justified form
/// `lint:allow(rule, "reason")` and `(rule, None)` for a bare
/// `lint:allow(rule)`.
pub fn escapes_on(line: &str) -> Vec<(String, Option<String>)> {
    let mut out = Vec::new();
    for rest in line.split("lint:allow(").skip(1) {
        let chars: Vec<char> = rest.chars().collect();
        let mut i = 0;
        while i < chars.len() && chars[i] != ',' && chars[i] != ')' {
            i += 1;
        }
        let rule: String = chars[..i].iter().collect::<String>().trim().to_string();
        if rule.is_empty() {
            continue;
        }
        if i >= chars.len() || chars[i] == ')' {
            out.push((rule, None));
            continue;
        }
        // After the comma: a quoted reason, which may itself contain
        // parentheses and commas.
        i += 1;
        while i < chars.len() && chars[i] != '"' {
            i += 1;
        }
        if i >= chars.len() {
            out.push((rule, None));
            continue;
        }
        i += 1;
        let start = i;
        while i < chars.len() && chars[i] != '"' {
            i += 1;
        }
        let reason: String = chars[start..i.min(chars.len())].iter().collect();
        let reason = reason.trim().to_string();
        out.push((rule, (!reason.is_empty()).then_some(reason)));
    }
    out
}

/// Does `line` carry an escape for `rule`? Returns `Some(reason)` when
/// it does — the inner `Option` is `None` for a bare (unjustified)
/// escape.
pub fn escape_for(line: &str, rule: &str) -> Option<Option<String>> {
    escapes_on(line)
        .into_iter()
        .find(|(r, _)| r == rule)
        .map(|(_, reason)| reason)
}

/// `line` with string/char-literal contents blanked to spaces and any
/// `//` comment truncated, so brace counting and code-needle searches
/// never match inside literals. Length is *not* preserved past a
/// comment.
pub(crate) fn code_portion(line: &str) -> String {
    let chars: Vec<char> = line.chars().collect();
    let mut out = String::with_capacity(chars.len());
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            '"' => {
                out.push('"');
                i += 1;
                while i < chars.len() {
                    if chars[i] == '\\' {
                        out.push(' ');
                        out.push(' ');
                        i += 2;
                        continue;
                    }
                    if chars[i] == '"' {
                        out.push('"');
                        break;
                    }
                    out.push(' ');
                    i += 1;
                }
            }
            '/' if i + 1 < chars.len() && chars[i + 1] == '/' => break,
            '\'' => {
                // Char literal ('x' or '\n') vs lifetime ('a with no
                // closing quote): only literals are blanked.
                if i + 2 < chars.len() && chars[i + 1] != '\\' && chars[i + 2] == '\'' {
                    out.push_str("' '");
                    i += 2;
                } else if i + 3 < chars.len() && chars[i + 1] == '\\' && chars[i + 3] == '\'' {
                    out.push_str("'  '");
                    i += 3;
                } else {
                    out.push(c);
                }
            }
            _ => out.push(c),
        }
        i += 1;
    }
    out
}

/// Per-line test-code mask for `source`: `mask[i]` is true when line
/// `i` (0-based) belongs to a `#[cfg(test)]` item. Regions are tracked
/// by brace depth, so a test module in the middle of a file exempts
/// only its own block — not everything after it.
pub fn test_mask(source: &str) -> Vec<bool> {
    let lines: Vec<&str> = source.lines().collect();
    let mut mask = vec![false; lines.len()];
    let mut depth: i64 = 0;
    // Brace depths at which an active #[cfg(test)] block opened.
    let mut regions: Vec<i64> = Vec::new();
    // Saw the attribute; waiting for the item's opening brace (or a
    // `;` ending a braceless item like `#[cfg(test)] use …;`).
    let mut pending = false;
    for (i, raw) in lines.iter().enumerate() {
        let code = code_portion(raw);
        if code.contains("#[cfg(test)]") {
            pending = true;
        }
        mask[i] = pending || !regions.is_empty();
        for c in code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if pending {
                        regions.push(depth);
                        pending = false;
                    }
                }
                '}' => {
                    if regions.last() == Some(&depth) {
                        regions.pop();
                    }
                    depth -= 1;
                }
                ';' => {
                    // A braceless cfg(test) item ends here.
                    pending = false;
                }
                _ => {}
            }
        }
    }
    mask
}

/// Lint one file's source text. `file` is the workspace-relative path
/// used both for reporting and for hot-path classification.
pub fn check_source(file: &str, source: &str, report: &mut LintReport) {
    let hot = HOT_PATHS.iter().any(|p| file.starts_with(p));
    let timed = TIMED_PATHS.iter().any(|p| file.starts_with(p));
    let spawny = SPAWN_PATHS.iter().any(|p| file.starts_with(p));
    let panic_rules = panic_needles();
    let timing_rules = timing_needles();
    let spawn_rules = spawn_needles();
    let todo_rules = todo_needles();

    let mask = test_mask(source);
    for (i, raw) in source.lines().enumerate() {
        let in_tests = mask[i];
        let trimmed = raw.trim();
        if is_comment(trimmed) {
            continue;
        }
        let line = i + 1;
        let mut check = |needles: &[(String, &'static str)], rule: &'static str| {
            for (needle, hint) in needles {
                if !trimmed.contains(needle.as_str()) {
                    continue;
                }
                if let Some(reason) = escape_for(raw, rule) {
                    report.escapes.push(Escape {
                        file: file.into(),
                        line,
                        rule,
                        reason,
                    });
                } else {
                    report.violations.push(Violation {
                        file: file.into(),
                        line,
                        rule,
                        excerpt: trimmed.to_string(),
                        hint,
                    });
                }
                return;
            }
        };
        if hot && !in_tests {
            check(&panic_rules, RULE_NO_PANIC);
        }
        if timed && !in_tests {
            check(&timing_rules, RULE_NO_RAW_TIMING);
        }
        if spawny && !in_tests {
            check(&spawn_rules, RULE_NO_BARE_SPAWN);
        }
        check(&todo_rules, RULE_NO_TODO);
    }
    report.files_checked += 1;
}

/// Public error-enum declarations found in `source`, for the
/// `display-impl` rule.
fn declared_error_enums(source: &str) -> Vec<String> {
    let mut out = Vec::new();
    for raw in source.lines() {
        let trimmed = raw.trim();
        if is_comment(trimmed) {
            continue;
        }
        let Some(rest) = trimmed.strip_prefix("pub enum ") else {
            continue;
        };
        let name: String = rest
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if name.ends_with("Error") {
            out.push(name);
        }
    }
    out
}

fn implements_display(source: &str, name: &str) -> bool {
    [
        "impl fmt::Display for ",
        "impl std::fmt::Display for ",
        "impl Display for ",
    ]
    .iter()
    .any(|head| source.contains(&[head, name].concat()))
}

/// Walk `root` collecting workspace `.rs` files, skipping `target/`,
/// `shims/` (vendored reimplementations) and VCS metadata. Paths are
/// returned workspace-relative with `/` separators, sorted.
pub fn workspace_sources(root: &Path) -> io::Result<Vec<(String, PathBuf)>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name == "shims" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/");
                files.push((rel, path));
            }
        }
    }
    files.sort();
    Ok(files)
}

/// The crate-level grouping key for `display-impl`: the containing
/// crate directory, or `"<root>"` for workspace-level sources.
fn crate_dir_of(rel: &str) -> String {
    rel.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .map(|c| ["crates/", c].concat())
        .unwrap_or_else(|| "<root>".into())
}

/// Lint every workspace source under `root`.
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let mut report = LintReport::default();
    let mut sources = Vec::new();
    // crate dir (e.g. "crates/olap") → concatenated sources, so the
    // display-impl rule can look for the impl anywhere in the crate.
    let mut crate_sources: BTreeMap<String, String> = BTreeMap::new();
    for (rel, path) in workspace_sources(root)? {
        let source = fs::read_to_string(&path)?;
        check_source(&rel, &source, &mut report);
        crate_sources
            .entry(crate_dir_of(&rel))
            .or_default()
            .push_str(&source);
        sources.push((rel, source));
    }
    for (rel, source) in &sources {
        let whole_crate = crate_sources
            .get(&crate_dir_of(rel))
            .map(String::as_str)
            .unwrap_or("");
        for name in declared_error_enums(source) {
            if implements_display(whole_crate, &name) {
                continue;
            }
            if let Some(reason) = escape_for(source, RULE_DISPLAY_IMPL) {
                report.escapes.push(Escape {
                    file: rel.clone(),
                    line: 0,
                    rule: RULE_DISPLAY_IMPL,
                    reason,
                });
            } else {
                report.violations.push(Violation {
                    file: rel.clone(),
                    line: 0,
                    rule: RULE_DISPLAY_IMPL,
                    excerpt: format!("pub enum {name} has no Display impl in its crate"),
                    hint: "implement std::fmt::Display so callers can render the error",
                });
            }
        }
    }
    report
        .violations
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn needle_line(kind: &str) -> String {
        // Build forbidden source text at runtime so this test file
        // itself stays clean under the lint.
        match kind {
            "unwrap" => ["let x = foo.", "unwrap", "();"].concat(),
            "todo" => ["    ", "todo", "!(\"later\")"].concat(),
            "dbg" => ["    ", "dbg", "!(x);"].concat(),
            _ => unreachable!("unknown kind"),
        }
    }

    #[test]
    fn hot_path_unwrap_is_flagged_only_outside_tests() {
        let src = format!(
            "fn f() {{\n{}\n}}\n#[cfg(test)]\nmod tests {{\n{}\n}}\n",
            needle_line("unwrap"),
            needle_line("unwrap"),
        );
        let mut report = LintReport::default();
        check_source("crates/serve/src/service.rs", &src, &mut report);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, RULE_NO_PANIC);
        assert_eq!(report.violations[0].line, 2);

        // The same file outside the hot path is fine.
        let mut cold = LintReport::default();
        check_source("crates/mining/src/lib.rs", &src, &mut cold);
        assert!(cold.violations.is_empty());
    }

    #[test]
    fn todo_and_dbg_are_flagged_everywhere() {
        let src = format!(
            "fn f() {{\n{}\n{}\n}}\n",
            needle_line("todo"),
            needle_line("dbg")
        );
        let mut report = LintReport::default();
        check_source("crates/mining/src/lib.rs", &src, &mut report);
        assert_eq!(report.violations.len(), 2);
        assert!(report.violations.iter().all(|v| v.rule == RULE_NO_TODO));
    }

    #[test]
    fn raw_timing_is_flagged_in_serving_code() {
        // Build the forbidden call at runtime so this file stays clean.
        let raw = ["let t = std::time::Instant::", "now();"].concat();
        let escaped = [
            "let start = Instant::",
            "now(); // lint:allow(no-raw-timing) — deadline math",
        ]
        .concat();
        let src = format!("fn f() {{\n{raw}\n{escaped}\n}}\n#[cfg(test)]\nmod t {{\n{raw}\n}}\n");

        let mut report = LintReport::default();
        check_source("crates/serve/src/service.rs", &src, &mut report);
        assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
        assert_eq!(report.violations[0].rule, RULE_NO_RAW_TIMING);
        assert_eq!(report.violations[0].line, 2);
        assert_eq!(report.escapes.len(), 1);
        assert_eq!(report.escapes[0].rule, RULE_NO_RAW_TIMING);

        // olap is also a timed path; obs itself (the sanctioned clock)
        // and everything else are not.
        let mut olap = LintReport::default();
        check_source("crates/olap/src/cube.rs", &src, &mut olap);
        assert_eq!(olap.violations.len(), 1);
        let mut obs_crate = LintReport::default();
        check_source("crates/obs/src/profile.rs", &src, &mut obs_crate);
        assert!(obs_crate.violations.is_empty());
    }

    #[test]
    fn bare_spawn_is_flagged_but_builder_and_scope_are_not() {
        // Built at runtime so this test file stays clean.
        let bare = ["let h = std::thread::", "spawn", "(move || work());"].concat();
        let builder = "let h = thread::Builder::new().name(n).spawn(body);";
        let scoped = "scope.spawn(|| chunk_cells(rows));";
        let src = format!("fn f() {{\n{bare}\n{builder}\n{scoped}\n}}\n");

        let mut report = LintReport::default();
        check_source("crates/serve/src/service.rs", &src, &mut report);
        assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
        assert_eq!(report.violations[0].rule, RULE_NO_BARE_SPAWN);
        assert_eq!(report.violations[0].line, 2);

        // olap is also covered; everything else is not.
        let mut olap = LintReport::default();
        check_source("crates/olap/src/cube.rs", &src, &mut olap);
        assert_eq!(olap.violations.len(), 1);
        let mut cold = LintReport::default();
        check_source("crates/bench/src/lib.rs", &src, &mut cold);
        assert!(cold.violations.is_empty());

        // `#[cfg(test)]` code may spawn bare threads for drills.
        let test_src = format!("#[cfg(test)]\nmod t {{\n{bare}\n}}\n");
        let mut tests_only = LintReport::default();
        check_source("crates/serve/src/service.rs", &test_src, &mut tests_only);
        assert!(tests_only.violations.is_empty());
    }

    #[test]
    fn comments_are_skipped_and_escapes_are_recorded() {
        let commented = ["// foo.", "unwrap", "();"].concat();
        let escaped = [
            "let x = spawn().",
            "expect",
            "(\"spawn\"); // lint:allow(no-panic): startup only",
        ]
        .concat();
        let src = format!("{commented}\n{escaped}\n");
        let mut report = LintReport::default();
        check_source("crates/serve/src/service.rs", &src, &mut report);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert_eq!(report.escapes.len(), 1);
        assert_eq!(report.escapes[0].rule, RULE_NO_PANIC);
        assert_eq!(report.escapes_in("serve"), 1);
    }

    #[test]
    fn reasoned_escape_parses_rule_and_reason() {
        let line = [
            "let x = f().",
            "unwrap",
            "(); // lint:allow(no-panic, \"poisoning is unrecoverable (by design), abort\")",
        ]
        .concat();
        let got = escape_for(&line, "no-panic").expect("escape present");
        assert_eq!(
            got.as_deref(),
            Some("poisoning is unrecoverable (by design), abort"),
            "quoted reason may contain parens and commas"
        );
        // Bare and legacy forms are honoured but carry no reason.
        assert_eq!(
            escape_for("// lint:allow(no-panic)", "no-panic"),
            Some(None)
        );
        assert_eq!(
            escape_for("// lint:allow(no-panic): startup only", "no-panic"),
            Some(None)
        );
        // A different rule's escape does not match.
        assert_eq!(escape_for("// lint:allow(no-todo)", "no-panic"), None);
    }

    #[test]
    fn reasoned_escape_is_recorded_with_reason() {
        let escaped = [
            "let x = g().",
            "expect",
            "(\"g\"); // lint:allow(no-panic, \"startup only\")",
        ]
        .concat();
        let src = format!("fn f() {{\n{escaped}\n}}\n");
        let mut report = LintReport::default();
        check_source("crates/serve/src/service.rs", &src, &mut report);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert_eq!(report.escapes.len(), 1);
        assert_eq!(report.escapes[0].reason.as_deref(), Some("startup only"));
    }

    #[test]
    fn mid_file_test_module_does_not_exempt_trailing_code() {
        // Regression: the old scanner latched `in_tests` at the first
        // `#[cfg(test)]` and exempted everything to EOF.
        let src = format!(
            "#[cfg(test)]\nmod tests {{\n{}\n}}\nfn f() {{\n{}\n}}\n",
            needle_line("unwrap"),
            needle_line("unwrap"),
        );
        let mut report = LintReport::default();
        check_source("crates/serve/src/service.rs", &src, &mut report);
        assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
        assert_eq!(
            report.violations[0].line, 6,
            "only the post-module line is live code"
        );
    }

    #[test]
    fn test_mask_tracks_braces_not_eof() {
        let src = "fn a() {}\n#[cfg(test)]\nmod t {\n  fn b() {}\n}\nfn c() {}\n";
        assert_eq!(test_mask(src), vec![false, true, true, true, true, false]);
        // Braces inside strings and comments don't confuse the depth.
        let tricky = "#[cfg(test)]\nfn t() {\n  let s = \"}}}\"; // }\n}\nfn live() {}\n";
        assert_eq!(test_mask(tricky), vec![true, true, true, true, false]);
        // A braceless cfg(test) item exempts only its own line.
        let braceless = "#[cfg(test)]\nuse helper::*;\nfn live() {}\n";
        assert_eq!(test_mask(braceless), vec![true, true, false]);
    }

    #[test]
    fn error_enums_need_display() {
        let decl = "pub enum FrobError { A, B }";
        assert_eq!(declared_error_enums(decl), vec!["FrobError"]);
        assert!(!implements_display(decl, "FrobError"));
        let with_impl = format!("{decl}\nimpl fmt::Display for FrobError {{}}");
        assert!(implements_display(&with_impl, "FrobError"));
        // Non-error enums are ignored.
        assert!(declared_error_enums("pub enum Shape { X }").is_empty());
    }
}
