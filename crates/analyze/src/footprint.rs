//! Query dimension footprints — which dimension tables a query reads.
//!
//! The delta-aware epoch layer needs to answer: *does this mutation
//! affect that cached result?* A mutation's effect is described by a
//! `warehouse::DeltaSummary` (dimensions touched, rows appended); the
//! query side of the comparison is its **footprint**: the set of
//! dimension tables its axes and attribute filters resolve to through
//! the [`Catalog`]. Measures and degenerate columns live on the fact
//! table and are covered by the delta's appended-row range, so they
//! contribute no dimension to the footprint.
//!
//! A name the catalog cannot resolve makes the footprint
//! *conservative*: it then reports itself as touching everything,
//! which degrades to the pre-delta behaviour (full invalidation)
//! instead of risking a stale answer.

use crate::catalog::{Catalog, ColumnKind};
use std::collections::BTreeSet;

/// The set of dimension tables a query reads.
///
/// ```
/// use analyze::{Catalog, QueryFootprint};
/// use warehouse::discri_model;
///
/// let catalog = Catalog::from_star(&discri_model());
/// let fp = QueryFootprint::resolve(&catalog, ["Gender", "FBG_Band", "FBG"]);
/// // FBG is a measure: fact-resident, no dimension contributed.
/// assert_eq!(fp.dimensions().len(), 2);
/// let unrelated = ["Clinician Feedback".to_string()].into_iter().collect();
/// assert!(!fp.touches_any(&unrelated));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryFootprint {
    dimensions: BTreeSet<String>,
    conservative: bool,
}

impl QueryFootprint {
    /// Resolve the referenced `columns` against `catalog`. Attributes
    /// contribute their owning dimension; measures and degenerates
    /// contribute nothing (fact-resident); an unresolvable name makes
    /// the footprint conservative.
    pub fn resolve<'a>(catalog: &Catalog, columns: impl IntoIterator<Item = &'a str>) -> Self {
        let mut dimensions = BTreeSet::new();
        let mut conservative = false;
        for name in columns {
            match catalog.kind(name) {
                Some(ColumnKind::Attribute { dimension }) => {
                    dimensions.insert(dimension.clone());
                }
                Some(ColumnKind::Measure) | Some(ColumnKind::Degenerate) => {}
                None => conservative = true,
            }
        }
        QueryFootprint {
            dimensions,
            conservative,
        }
    }

    /// A footprint that touches everything — for queries that could
    /// not be resolved at all.
    pub fn conservative() -> Self {
        QueryFootprint {
            dimensions: BTreeSet::new(),
            conservative: true,
        }
    }

    /// The dimension tables the query provably reads.
    pub fn dimensions(&self) -> &BTreeSet<String> {
        &self.dimensions
    }

    /// Whether the footprint had to assume it touches everything.
    pub fn is_conservative(&self) -> bool {
        self.conservative
    }

    /// Whether the query could be affected by a mutation touching
    /// `dimensions`. Conservative footprints always report `true`.
    pub fn touches_any(&self, dimensions: &BTreeSet<String>) -> bool {
        self.conservative || self.dimensions.intersection(dimensions).next().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warehouse::discri_model;

    fn catalog() -> Catalog {
        Catalog::from_star(&discri_model())
    }

    fn dims(names: &[&str]) -> BTreeSet<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn attributes_map_to_their_owning_dimensions() {
        let fp = QueryFootprint::resolve(&catalog(), ["Gender", "FBG_Band"]);
        assert!(!fp.is_conservative());
        assert!(fp.dimensions().contains("Personal Information"));
        assert!(fp.touches_any(&dims(&["Personal Information"])));
        assert!(!fp.touches_any(&dims(&["Clinician Feedback"])));
    }

    #[test]
    fn fact_columns_contribute_no_dimension() {
        let fp = QueryFootprint::resolve(&catalog(), ["FBG", "PatientId"]);
        assert!(fp.dimensions().is_empty());
        assert!(!fp.is_conservative());
        assert!(!fp.touches_any(&dims(&["Personal Information"])));
    }

    #[test]
    fn unknown_names_force_conservatism() {
        let fp = QueryFootprint::resolve(&catalog(), ["NoSuchColumn"]);
        assert!(fp.is_conservative());
        assert!(fp.touches_any(&dims(&["Anything"])));
        assert!(QueryFootprint::conservative().touches_any(&BTreeSet::new()));
        assert!(QueryFootprint::conservative().is_conservative());
    }
}
