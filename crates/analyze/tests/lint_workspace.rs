//! The repo-lint acceptance gate, run as a test so `cargo test` keeps
//! the workspace panic-free even when `scripts/check.sh` is skipped.

use analyze::lint::lint_workspace;
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn workspace_is_lint_clean() {
    let report = lint_workspace(&workspace_root()).expect("walk workspace");
    assert!(
        report.files_checked > 50,
        "walked only {} files",
        report.files_checked
    );
    assert!(
        report.violations.is_empty(),
        "repo-lint violations:\n{}",
        report
            .violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn burned_down_files_carry_no_escapes() {
    let report = lint_workspace(&workspace_root()).expect("walk workspace");
    assert_eq!(
        report.escapes_in("crates/oltp/src/wal.rs"),
        0,
        "wal.rs must stay escape-free"
    );
    assert_eq!(
        report.escapes_in("crates/olap/src/cube.rs"),
        0,
        "cube.rs must stay escape-free"
    );
}
