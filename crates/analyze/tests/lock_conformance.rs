//! Conformance between the two halves of the concurrency discipline:
//! the static lock graph (`analyze::locks`) and the runtime rank table
//! (`obs::lockrank`). If either drifts — a new lock without a rank, an
//! acquisition path that contradicts the table, a rank the static pass
//! cannot parse — this test fails before the deadlock can.

use analyze::locks::{audit_workspace, RANKED_CRATES};
use obs::{LockRank, ALL_RANKS};
use std::path::Path;

fn workspace_root() -> &'static Path {
    // crates/analyze → workspace root is two levels up.
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

#[test]
fn workspace_lock_audit_is_clean() {
    let audit = audit_workspace(workspace_root()).expect("walk workspace");
    let errors: Vec<String> = audit
        .errors()
        .iter()
        .map(|f| format!("{}:{} {}", f.file, f.line, f.diagnostic.message))
        .collect();
    assert!(
        errors.is_empty(),
        "lock audit errors:\n{}",
        errors.join("\n")
    );
    let warnings: Vec<String> = audit
        .warnings()
        .iter()
        .map(|f| format!("{}:{} {}", f.file, f.line, f.diagnostic.message))
        .collect();
    assert!(
        warnings.is_empty(),
        "lock audit warnings (escape deliberate ones with lint:allow):\n{}",
        warnings.join("\n")
    );
}

#[test]
fn every_static_rank_parses_into_the_runtime_table() {
    let audit = audit_workspace(workspace_root()).expect("walk workspace");
    for d in &audit.decls {
        if let Some(rank) = &d.rank {
            assert!(
                LockRank::parse(rank).is_some(),
                "`{}` ({}:{}) carries rank `{rank}` unknown to obs::LockRank",
                d.id,
                d.file,
                d.line
            );
        }
    }
}

#[test]
fn all_runtime_ranks_are_represented_by_real_locks() {
    let audit = audit_workspace(workspace_root()).expect("walk workspace");
    for rank in ALL_RANKS {
        assert!(
            audit
                .decls
                .iter()
                .any(|d| d.rank.as_deref().and_then(LockRank::parse) == Some(rank)),
            "runtime rank {rank} has no lock declaration behind it — \
             remove it from obs::LockRank or rank the lock"
        );
    }
}

#[test]
fn every_observed_edge_ascends_the_runtime_ranks() {
    let audit = audit_workspace(workspace_root()).expect("walk workspace");
    // The analysis must not be trivially empty: the serve crate's
    // well-known nestings have to be discovered.
    let has = |from: &str, to: &str| audit.edges.iter().any(|e| e.from == from && e.to == to);
    assert!(
        has("serve.warehouse", "serve.catalog"),
        "expected warehouse→catalog edge (catalog_for under the warehouse read lock); \
         edges: {:?}",
        audit
            .edges
            .iter()
            .map(|e| (&e.from, &e.to))
            .collect::<Vec<_>>()
    );
    assert!(
        has("serve.warehouse", "serve.cache.shards"),
        "expected warehouse→cache edge (revalidation touches the cache under the read lock)"
    );

    let rank_of = |id: &str| {
        audit
            .decls
            .iter()
            .find(|d| d.id == id)
            .and_then(|d| d.rank.as_deref())
            .and_then(LockRank::parse)
    };
    for e in &audit.edges {
        if let (Some(a), Some(b)) = (rank_of(&e.from), rank_of(&e.to)) {
            assert!(
                a < b,
                "edge {} ({a}) -> {} ({b}) at {}:{} does not ascend the rank table",
                e.from,
                e.to,
                e.file,
                e.line
            );
        }
    }
}

#[test]
fn derived_topological_order_is_a_linear_extension_of_the_rank_table() {
    let audit = audit_workspace(workspace_root()).expect("walk workspace");
    let order = audit.derived_order();
    let rank_of = |id: &str| {
        audit
            .decls
            .iter()
            .find(|d| d.id == id)
            .and_then(|d| d.rank.as_deref())
            .and_then(LockRank::parse)
    };
    // For every edge-constrained pair, the derived order and the
    // runtime table must agree on direction.
    for e in &audit.edges {
        let ia = order
            .iter()
            .position(|l| *l == e.from)
            .expect("from in order");
        let ib = order.iter().position(|l| *l == e.to).expect("to in order");
        assert!(
            ia < ib,
            "derived order violates edge {} -> {}",
            e.from,
            e.to
        );
        if let (Some(a), Some(b)) = (rank_of(&e.from), rank_of(&e.to)) {
            assert!(
                (a < b) == (ia < ib),
                "derived order and rank table disagree on {} vs {}",
                e.from,
                e.to
            );
        }
    }
}

#[test]
fn ranked_crates_have_no_unranked_locks() {
    let audit = audit_workspace(workspace_root()).expect("walk workspace");
    for d in &audit.decls {
        if RANKED_CRATES.contains(&d.krate.as_str()) {
            assert!(
                d.rank.is_some(),
                "`{}` ({}:{}) in ranked crate `{}` has no rank",
                d.id,
                d.file,
                d.line,
                d.krate
            );
        }
    }
}
