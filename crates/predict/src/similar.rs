//! Similar-patient prediction.
//!
//! The paper phrases Prediction as using *"past records of other
//! patients in similar circumstances"*. This predictor does exactly
//! that: given a query patient's recent state history, it finds every
//! position in every other patient's trajectory whose preceding
//! history matches (longest suffix match) and votes on the state that
//! followed.

use crate::trajectory::Trajectory;
use clinical_types::{Error, Result};
use std::collections::HashMap;

/// Suffix-matching next-state predictor.
#[derive(Debug, Clone)]
pub struct SimilarPatientPredictor {
    trajectories: Vec<Trajectory>,
    /// Longest history suffix considered (order of the context).
    pub max_context: usize,
}

impl SimilarPatientPredictor {
    /// Build over a trajectory corpus.
    pub fn new(trajectories: Vec<Trajectory>, max_context: usize) -> Result<Self> {
        if trajectories.is_empty() {
            return Err(Error::invalid("no trajectories supplied"));
        }
        if max_context == 0 {
            return Err(Error::invalid("max_context must be at least 1"));
        }
        Ok(SimilarPatientPredictor {
            trajectories,
            max_context,
        })
    }

    /// Votes for the state following `history`, matched at context
    /// length `ctx`, excluding patient `exclude` (so self-matches
    /// cannot leak during evaluation).
    fn votes_at(
        &self,
        history: &[String],
        ctx: usize,
        exclude: Option<i64>,
    ) -> HashMap<&str, usize> {
        let suffix = &history[history.len() - ctx..];
        let mut votes: HashMap<&str, usize> = HashMap::new();
        for t in &self.trajectories {
            if Some(t.patient_id) == exclude {
                continue;
            }
            if t.states.len() <= ctx {
                continue;
            }
            for start in 0..=(t.states.len() - ctx - 1) {
                if t.states[start..start + ctx] == *suffix {
                    *votes.entry(t.states[start + ctx].as_str()).or_insert(0) += 1;
                }
            }
        }
        votes
    }

    /// Predict the next state after `history`, backing off from the
    /// longest context with any match down to context 1; `None` when
    /// no other patient ever exhibited any suffix of this history.
    pub fn predict_next(&self, history: &[String], exclude: Option<i64>) -> Option<String> {
        if history.is_empty() {
            return None;
        }
        let max_ctx = self.max_context.min(history.len());
        for ctx in (1..=max_ctx).rev() {
            let votes = self.votes_at(history, ctx, exclude);
            if votes.is_empty() {
                continue;
            }
            // Deterministic: highest vote count, ties by label order.
            let mut entries: Vec<(&str, usize)> = votes.into_iter().collect();
            entries.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
            return Some(entries[0].0.to_string());
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traj(id: i64, states: &[&str]) -> Trajectory {
        Trajectory {
            patient_id: id,
            states: states.iter().map(|s| s.to_string()).collect(),
        }
    }

    fn corpus() -> Vec<Trajectory> {
        vec![
            traj(1, &["N", "P", "D", "D"]),
            traj(2, &["N", "P", "D"]),
            traj(3, &["N", "N", "N"]),
            traj(4, &["P", "D", "D"]),
        ]
    }

    #[test]
    fn longest_context_wins() {
        let p = SimilarPatientPredictor::new(corpus(), 3).unwrap();
        // History [N, P]: matching 2-contexts are patients 1 and 2,
        // both followed by D.
        let hist = vec!["N".to_string(), "P".to_string()];
        assert_eq!(p.predict_next(&hist, None), Some("D".to_string()));
    }

    #[test]
    fn backs_off_to_shorter_context() {
        let p = SimilarPatientPredictor::new(corpus(), 3).unwrap();
        // [X, P] has no 2-context match (no one went X then P), but
        // context 1 ("P") matches and votes D.
        let hist = vec!["X".to_string(), "P".to_string()];
        assert_eq!(p.predict_next(&hist, None), Some("D".to_string()));
    }

    #[test]
    fn exclusion_prevents_self_matching() {
        let single = vec![traj(1, &["A", "B", "A", "B"]), traj(2, &["C", "C"])];
        let p = SimilarPatientPredictor::new(single, 2).unwrap();
        let hist = vec!["A".to_string()];
        // Only patient 1 has A-contexts; excluding them leaves nothing.
        assert_eq!(p.predict_next(&hist, Some(1)), None);
        assert_eq!(p.predict_next(&hist, None), Some("B".to_string()));
    }

    #[test]
    fn empty_history_and_unknown_states() {
        let p = SimilarPatientPredictor::new(corpus(), 2).unwrap();
        assert_eq!(p.predict_next(&[], None), None);
        let hist = vec!["Z".to_string()];
        assert_eq!(p.predict_next(&hist, None), None);
    }

    #[test]
    fn deterministic_tie_break() {
        let c = vec![traj(1, &["A", "B"]), traj(2, &["A", "C"])];
        let p = SimilarPatientPredictor::new(c, 1).unwrap();
        let hist = vec!["A".to_string()];
        // B and C tie at one vote each; label order wins.
        assert_eq!(p.predict_next(&hist, None), Some("B".to_string()));
    }

    #[test]
    fn invalid_construction() {
        assert!(SimilarPatientPredictor::new(vec![], 2).is_err());
        assert!(SimilarPatientPredictor::new(corpus(), 0).is_err());
    }
}
