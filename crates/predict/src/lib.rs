#![warn(missing_docs)]

//! Prediction — §IV of the paper:
//!
//! *"The availability of time-course analysis capabilities allows a
//! clinician to use the warehouse to predict the subsequent phase of a
//! patient affected by a medical condition based on past records of
//! other patients in similar circumstances."*
//!
//! * [`trajectory`] — extraction of per-patient qualitative state
//!   sequences (e.g. the FBG band per visit) from the transformed
//!   attendance table.
//! * [`markov`] — a smoothed first-order Markov chain over those
//!   states: the population-level disease time-course model.
//! * [`similar`] — the "patients in similar circumstances" predictor:
//!   match the query patient's recent state history against other
//!   patients' histories and vote on the next state.
//! * [`evaluate`] — leave-last-visit-out evaluation against the
//!   majority-state baseline.

pub mod evaluate;
pub mod markov;
pub mod similar;
pub mod trajectory;

pub use evaluate::{evaluate_predictor, EvaluationReport};
pub use markov::MarkovModel;
pub use similar::SimilarPatientPredictor;
pub use trajectory::{extract_trajectories, Trajectory};
