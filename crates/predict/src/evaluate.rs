//! Leave-last-visit-out evaluation of time-course predictors.

use crate::markov::MarkovModel;
use crate::similar::SimilarPatientPredictor;
use crate::trajectory::Trajectory;
use clinical_types::{Error, Result};
use std::collections::HashMap;

/// Accuracy of a predictor against the majority baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct EvaluationReport {
    /// Patients with at least two visits (the evaluable set).
    pub n_evaluated: usize,
    /// Markov-model accuracy on the held-out last visit.
    pub markov_accuracy: f64,
    /// Similar-patient predictor accuracy (unpredictable cases fall
    /// back to the majority state).
    pub similar_accuracy: f64,
    /// Majority-state baseline accuracy.
    pub baseline_accuracy: f64,
}

/// Hold out each patient's last state; predict it from their earlier
/// states using (a) a Markov model fitted on the truncated corpus,
/// (b) the similar-patient predictor with self-exclusion, and (c) the
/// global majority state.
pub fn evaluate_predictor(
    trajectories: &[Trajectory],
    max_context: usize,
) -> Result<EvaluationReport> {
    let evaluable: Vec<&Trajectory> = trajectories.iter().filter(|t| t.len() >= 2).collect();
    if evaluable.is_empty() {
        return Err(Error::invalid(
            "no patient has two or more visits to evaluate on",
        ));
    }

    // Training corpus: all trajectories with their last visit removed
    // (patients with a single visit keep it — nothing is tested there).
    let truncated: Vec<Trajectory> = trajectories
        .iter()
        .map(|t| {
            if t.len() >= 2 {
                Trajectory {
                    patient_id: t.patient_id,
                    states: t.states[..t.len() - 1].to_vec(),
                }
            } else {
                t.clone()
            }
        })
        .collect();

    let markov = MarkovModel::fit(&truncated)?;
    let similar = SimilarPatientPredictor::new(truncated.clone(), max_context)?;

    // Majority over training states.
    let mut counts: HashMap<&str, usize> = HashMap::new();
    for t in &truncated {
        for s in &t.states {
            *counts.entry(s.as_str()).or_insert(0) += 1;
        }
    }
    let mut ranked: Vec<(&str, usize)> = counts.into_iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    let majority = ranked
        .first()
        .map(|(s, _)| s.to_string())
        .ok_or_else(|| Error::invalid("empty training corpus"))?;

    let mut markov_hits = 0usize;
    let mut similar_hits = 0usize;
    let mut baseline_hits = 0usize;
    for t in &evaluable {
        let truth = t.states.last().expect("len >= 2");
        let history = &t.states[..t.len() - 1];
        let current = history.last().expect("len >= 1");
        if &markov.predict_next(current) == truth {
            markov_hits += 1;
        }
        let similar_pred = similar
            .predict_next(history, Some(t.patient_id))
            .unwrap_or_else(|| majority.clone());
        if &similar_pred == truth {
            similar_hits += 1;
        }
        if &majority == truth {
            baseline_hits += 1;
        }
    }
    let n = evaluable.len();
    Ok(EvaluationReport {
        n_evaluated: n,
        markov_accuracy: markov_hits as f64 / n as f64,
        similar_accuracy: similar_hits as f64 / n as f64,
        baseline_accuracy: baseline_hits as f64 / n as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traj(id: i64, states: &[&str]) -> Trajectory {
        Trajectory {
            patient_id: id,
            states: states.iter().map(|s| s.to_string()).collect(),
        }
    }

    #[test]
    fn beats_baseline_on_structured_progression() {
        // Two cohorts oscillate in counter-phase (A,B,A,B vs
        // B,A,B,A): the held-out transition types are abundantly
        // observed in training, while the majority baseline can only
        // ever name one of the two states.
        let mut ts = Vec::new();
        for i in 0..30 {
            ts.push(traj(i, &["A", "B", "A", "B"]));
            ts.push(traj(100 + i, &["B", "A", "B", "A"]));
        }
        let report = evaluate_predictor(&ts, 2).unwrap();
        assert_eq!(report.n_evaluated, 60);
        assert!(
            report.markov_accuracy > report.baseline_accuracy,
            "markov {} <= baseline {}",
            report.markov_accuracy,
            report.baseline_accuracy
        );
        assert!(
            report.similar_accuracy > report.baseline_accuracy,
            "similar {} <= baseline {}",
            report.similar_accuracy,
            report.baseline_accuracy
        );
        assert!(report.markov_accuracy > 0.9);
    }

    #[test]
    fn single_visit_patients_are_skipped() {
        let ts = vec![traj(1, &["A"]), traj(2, &["A", "B"])];
        let report = evaluate_predictor(&ts, 2).unwrap();
        assert_eq!(report.n_evaluated, 1);
    }

    #[test]
    fn no_evaluable_patients_is_an_error() {
        let ts = vec![traj(1, &["A"])];
        assert!(evaluate_predictor(&ts, 2).is_err());
    }

    #[test]
    fn runs_on_discri_cohort_and_beats_chance() {
        let cohort = discri::generate(&discri::CohortConfig::small(61));
        let (table, _) = etl::TransformPipeline::discri_default()
            .run(&cohort.attendances)
            .unwrap();
        let ts =
            crate::trajectory::extract_trajectories(&table, "PatientId", "TestDate", "FBG_Band")
                .unwrap();
        let report = evaluate_predictor(&ts, 3).unwrap();
        assert!(report.n_evaluated > 20);
        // Phases are sticky year-to-year, so the Markov model must be
        // well above uniform chance over 4 bands.
        assert!(report.markov_accuracy > 0.3, "{report:?}");
    }
}
